// Database view-update scenario (the setting that motivated the
// formula-based operators: Fagin-Ullman-Vardi's PODS'83 work, and the
// bounded-P analysis of Section 4).
//
// A personnel database holds many facts and integrity constraints, while
// each incoming update touches a handful of letters.  This is exactly the
// paper's "bounded case": |T| is large, |P| <= k.  We run a stream of
// updates under Winslett's operator (the update semantics appropriate for
// a changing world) with the three storage strategies and report the
// stored representation sizes after every update — the compact strategy
// (Section 6's query-equivalent scheme) stays linear.

#include <cstdio>
#include <string>
#include <vector>

#include "core/knowledge_base.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "revision/operator.h"

namespace {

// Builds a department database: employees e0..e{n-1}, each with
// office/badge/parking facts and a few constraints.
revise::Theory BuildDatabase(int employees, revise::Vocabulary* vocabulary) {
  using revise::Formula;
  revise::Theory db;
  for (int i = 0; i < employees; ++i) {
    const std::string id = std::to_string(i);
    const Formula office =
        Formula::Variable(vocabulary->Intern("office_e" + id));
    const Formula badge =
        Formula::Variable(vocabulary->Intern("badge_e" + id));
    const Formula parking =
        Formula::Variable(vocabulary->Intern("parking_e" + id));
    const Formula remote =
        Formula::Variable(vocabulary->Intern("remote_e" + id));
    db.Add(office);
    db.Add(badge);
    // Integrity constraints: office workers hold badges; nobody is both
    // remote and assigned parking; remote implies no office.
    db.Add(Formula::Implies(office, badge));
    db.Add(Formula::Implies(remote, Formula::Not(office)));
    db.Add(Formula::Implies(parking, Formula::Not(remote)));
  }
  return db;
}

}  // namespace

int main() {
  using namespace revise;

  Vocabulary vocabulary;
  const int kEmployees = 6;
  const Theory db = BuildDatabase(kEmployees, &vocabulary);
  std::printf("database: %zu facts/constraints over %zu letters (|T| = %llu)\n",
              db.size(), db.Vars().size(),
              static_cast<unsigned long long>(db.VarOccurrences()));

  // A stream of small updates: employees go remote, lose badges, ...
  const std::vector<Formula> updates = {
      ParseOrDie("remote_e0", &vocabulary),
      ParseOrDie("!badge_e1", &vocabulary),
      ParseOrDie("remote_e2 & !parking_e2", &vocabulary),
      ParseOrDie("!office_e3", &vocabulary),
      ParseOrDie("remote_e4", &vocabulary),
  };

  const RevisionOperator* winslett = OperatorById(OperatorId::kWinslett);
  KnowledgeBase delayed(db, winslett, RevisionStrategy::kDelayed,
                        &vocabulary);
  KnowledgeBase compact(db, winslett, RevisionStrategy::kCompact,
                        &vocabulary);

  std::printf("\n%-6s %-28s %14s %14s\n", "step", "update", "delayed size",
              "compact size");
  for (size_t i = 0; i < updates.size(); ++i) {
    delayed.Revise(updates[i]);
    compact.Revise(updates[i]);
    std::printf("%-6zu %-28s %14llu %14llu\n", i + 1,
                ToString(updates[i], vocabulary).c_str(),
                static_cast<unsigned long long>(delayed.StoredSize()),
                static_cast<unsigned long long>(compact.StoredSize()));
  }

  // Query the updated database through both strategies.
  struct Query {
    const char* text;
    const char* description;
  };
  const Query queries[] = {
      {"!office_e0", "did e0 leave the office?"},
      {"badge_e0", "does e0 still hold a badge?"},
      {"office_e5", "is untouched e5 still in the office?"},
      {"!parking_e2", "did e2 lose the parking spot?"},
  };
  std::printf("\nqueries against T * P1 * ... * P%zu:\n", updates.size());
  for (const Query& q : queries) {
    const Formula query = ParseOrDie(q.text, &vocabulary);
    const bool a = delayed.Ask(query);
    const bool b = compact.Ask(query);
    std::printf("  %-34s %-14s -> %s%s\n", q.description, q.text,
                a ? "yes" : "no", a == b ? "" : "  (STRATEGY MISMATCH!)");
  }
  return 0;
}
