// The advice-taking machine of Theorem 2.2, run for real.
//
// Theorem 3.1's non-compactability proof constructs, for each size n, a
// single pair (T_n, P_n) such that the satisfiability of EVERY 3-SAT
// instance pi over n variables is decided by the query
//     T_n *_GFUV P_n |= (/\ W_pi) -> r.
// If the revised base had a small representation, that representation
// would be a polynomial advice string deciding NP — hence the collapse.
//
// This example materializes the machine for n = 3: it computes the revised
// knowledge base ONCE (the advice), then answers a stream of 3-SAT
// instances purely through revision queries, cross-checking each answer
// against the CDCL solver.  It also reports the size of the advice, which
// is where the exponentiality hides.

#include <cstdio>

#include "hardness/families.h"
#include "logic/printer.h"
#include "revision/formula_based.h"
#include "solve/services.h"
#include "util/random.h"

int main() {
  using namespace revise;

  Vocabulary vocabulary;
  const int n = 3;
  const Theorem31Family family(n, &vocabulary);
  std::printf("n = %d: tau_max has %zu clauses; |T_n| = %llu, |P_n| = %llu\n",
              n, family.tau.num_clauses(),
              static_cast<unsigned long long>(family.t.VarOccurrences()),
              static_cast<unsigned long long>(family.p.VarOccurrences()));

  std::printf("computing the advice T_n *_GFUV P_n ...\n");
  const Formula advice = GfuvFormula(family.t, family.p);
  std::printf("advice (naive GFUV representation) size: %llu variable "
              "occurrences\n\n",
              static_cast<unsigned long long>(advice.VarOccurrences()));

  Rng rng(2026);
  int checked = 0;
  int mismatches = 0;
  std::printf("%-10s %-14s %-14s %s\n", "instance", "via revision",
              "via CDCL SAT", "agree");
  for (int trial = 0; trial < 12; ++trial) {
    const size_t size = 1 + rng.Below(family.tau.num_clauses());
    const auto pi = family.tau.RandomInstance(size, &rng);
    const bool by_revision = Entails(advice, family.Query(pi));
    const bool by_sat = IsSatisfiable(family.tau.InstanceFormula(pi));
    ++checked;
    if (by_revision != by_sat) ++mismatches;
    std::printf("|pi| = %-4zu %-14s %-14s %s\n", pi.size(),
                by_revision ? "satisfiable" : "unsatisfiable",
                by_sat ? "satisfiable" : "unsatisfiable",
                by_revision == by_sat ? "yes" : "NO  <-- BUG");
  }
  std::printf("\n%d instances decided through the revised knowledge base, "
              "%d mismatches.\n",
              checked, mismatches);
  std::printf(
      "The punchline of the paper: this works for every pi of size n, so a\n"
      "polynomial-size query-equivalent T' would put NP in coNP/poly.\n");
  return mismatches == 0 ? 0 : 1;
}
