// An agent revising its beliefs over a stream of observations
// (Section 2.2.3 / Sections 5-6: iterated revision), comparing how the
// operators diverge and how the storage strategies scale.
//
// Scenario: a tiny smart-home agent tracks four rooms.  Letters:
//   l1..l4  (light on in room i),  o1..o4  (room i occupied).
// House rules (initial theory): occupied rooms have their lights on; room
// 4 is a corridor whose light is wired to room 3's.  A stream of sensor
// readings then arrives, some contradicting the current beliefs.

#include <cstdio>
#include <string>
#include <vector>

#include "core/knowledge_base.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "revision/operator.h"

int main() {
  using namespace revise;

  Vocabulary vocabulary;
  const Theory house = Theory::ParseOrDie(
      "o1 -> l1; o2 -> l2; o3 -> l3; l4 <-> l3; o1 & o2; !o3",
      &vocabulary);

  const std::vector<Formula> readings = {
      ParseOrDie("!l1", &vocabulary),        // room 1 went dark
      ParseOrDie("o3 & l3", &vocabulary),    // someone entered room 3
      ParseOrDie("!o2 & !l2", &vocabulary),  // room 2 emptied
      ParseOrDie("!l3", &vocabulary),        // room 3 went dark
  };

  const Formula corridor_lit = ParseOrDie("l4", &vocabulary);
  const Formula room1_occupied = ParseOrDie("o1", &vocabulary);

  std::printf("initial rules:\n");
  for (const Formula& f : house) {
    std::printf("  %s\n", ToString(f, vocabulary).c_str());
  }
  std::printf("\nbeliefs after each reading (per operator):\n");
  std::printf("%-10s", "reading");
  for (const RevisionOperator* op : AllOperators()) {
    std::printf(" %9s", std::string(op->name()).c_str());
  }
  std::printf("\n");

  // Track one KB per operator; report whether the corridor is believed
  // lit after each revision.
  std::vector<KnowledgeBase> agents;
  for (const RevisionOperator* op : AllOperators()) {
    agents.emplace_back(house, op, RevisionStrategy::kDelayed,
                        &vocabulary);
  }
  for (size_t step = 0; step < readings.size(); ++step) {
    std::printf("%-10s", ToString(readings[step], vocabulary)
                             .substr(0, 10)
                             .c_str());
    for (KnowledgeBase& kb : agents) {
      kb.Revise(readings[step]);
      const bool lit = kb.Ask(corridor_lit);
      const bool unlit = kb.Ask(Formula::Not(corridor_lit));
      std::printf(" %9s", lit ? "l4" : (unlit ? "!l4" : "unknown"));
    }
    std::printf("   <- is the corridor lit?\n");
  }

  std::printf("\nDoes the agent still believe room 1 is occupied?\n");
  for (size_t i = 0; i < agents.size(); ++i) {
    std::printf("  %-9s %s\n",
                std::string(AllOperators()[i]->name()).c_str(),
                agents[i].Ask(room1_occupied)
                    ? "yes"
                    : (agents[i].Ask(Formula::Not(room1_occupied))
                           ? "no"
                           : "agnostic"));
  }

  // Storage comparison for Dalal: delayed vs compact vs explicit.
  std::printf("\nstorage growth under Dalal:\n%-6s %10s %10s %10s\n",
              "step", "delayed", "compact", "explicit");
  KnowledgeBase delayed(house, OperatorById(OperatorId::kDalal),
                        RevisionStrategy::kDelayed, &vocabulary);
  KnowledgeBase compact(house, OperatorById(OperatorId::kDalal),
                        RevisionStrategy::kCompact, &vocabulary);
  KnowledgeBase explicit_kb(house, OperatorById(OperatorId::kDalal),
                            RevisionStrategy::kExplicit, &vocabulary);
  for (size_t step = 0; step < readings.size(); ++step) {
    delayed.Revise(readings[step]);
    compact.Revise(readings[step]);
    explicit_kb.Revise(readings[step]);
    std::printf("%-6zu %10llu %10llu %10llu\n", step + 1,
                static_cast<unsigned long long>(delayed.StoredSize()),
                static_cast<unsigned long long>(compact.StoredSize()),
                static_cast<unsigned long long>(explicit_kb.StoredSize()));
  }
  std::printf(
      "\n(Each strategy answers queries identically; Section 8's advice is\n"
      "to keep T and the P^i around — the delayed column.)\n");
  return 0;
}
