// Counterfactual queries through formula-based revision.
//
// Ginsberg's reading (the paper's reference [15]) of the counterfactual
// conditional "if P were true, then Q" is: Q follows from every maximal
// subset of what we believe that is consistent with P — i.e.
// T *_GFUV P |= Q.  This example evaluates counterfactuals about a small
// electrical circuit and contrasts GFUV with WIDTIO (which throws away
// everything doubtful) and with Nebel's prioritized variant (physics
// outranks observations).

#include <cstdio>
#include <vector>

#include "logic/parser.h"
#include "logic/printer.h"
#include "revision/formula_based.h"
#include "revision/operator.h"
#include "solve/services.h"

int main() {
  using namespace revise;

  Vocabulary vocabulary;
  // A lamp circuit: power & switch -> lamp; no power -> !lamp.
  // Current observations: power on, switch off, lamp off.
  const Formula physics1 =
      ParseOrDie("(power & switch) -> lamp", &vocabulary);
  const Formula physics2 = ParseOrDie("!power -> !lamp", &vocabulary);
  const Formula obs_power = ParseOrDie("power", &vocabulary);
  const Formula obs_switch = ParseOrDie("!switch", &vocabulary);
  const Formula obs_lamp = ParseOrDie("!lamp", &vocabulary);
  const Theory beliefs(
      {physics1, physics2, obs_power, obs_switch, obs_lamp});

  struct Counterfactual {
    const char* antecedent;
    const char* consequent;
    const char* gloss;
  };
  const std::vector<Counterfactual> queries = {
      {"switch", "lamp", "if the switch were on, would the lamp light?"},
      {"lamp", "power", "if the lamp were lit, would there be power?"},
      {"!power", "!lamp", "if power failed, would the lamp be off?"},
      {"lamp", "!switch",
       "if the lamp were lit, would the switch still be off?"},
  };

  std::printf("beliefs:\n");
  for (const Formula& f : beliefs) {
    std::printf("  %s\n", ToString(f, vocabulary).c_str());
  }
  std::printf("\n%-55s %-8s %-8s\n", "counterfactual", "GFUV", "WIDTIO");
  for (const Counterfactual& cf : queries) {
    const Formula p = ParseOrDie(cf.antecedent, &vocabulary);
    const Formula q = ParseOrDie(cf.consequent, &vocabulary);
    const bool gfuv = Entails(GfuvFormula(beliefs, p), q);
    const bool widtio = Entails(WidtioTheory(beliefs, p).AsFormula(), q);
    std::printf("%-55s %-8s %-8s\n", cf.gloss, gfuv ? "yes" : "no",
                widtio ? "yes" : "no");
  }

  // Prioritized counterfactuals: physics can never be retracted.
  std::printf("\nwith Nebel priorities (physics > observations):\n");
  const std::vector<Theory> classes = {
      Theory({physics1, physics2}),
      Theory({obs_power, obs_switch, obs_lamp})};
  for (const Counterfactual& cf : queries) {
    const Formula p = ParseOrDie(cf.antecedent, &vocabulary);
    const Formula q = ParseOrDie(cf.consequent, &vocabulary);
    const bool nebel = Entails(NebelFormula(classes, p), q);
    std::printf("%-55s %-8s\n", cf.gloss, nebel ? "yes" : "no");
  }
  std::printf(
      "\n(GFUV keeps every maximal consistent subset of the beliefs; "
      "WIDTIO\nkeeps only their intersection, so it entails strictly "
      "less; Nebel's\npriorities protect physics when observations "
      "must be retracted.)\n");
  return 0;
}
