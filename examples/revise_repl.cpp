// An interactive belief-revision shell on top of the public API.
//
// Commands (one per line; also accepted from a pipe or here-doc):
//   operator <name>      select GFUV|Nebel|WIDTIO|Winslett|Borgida|
//                        Forbus|Satoh|Dalal|Weber    (default Dalal)
//   strategy <s>         delayed | explicit | compact (resets the KB)
//   assert <formula>     add a formula to the initial theory (resets)
//   revise <formula>     incorporate new information
//   ask <formula>        is it entailed by the revised base?
//   models               print the current model set
//   size                 stored representation size
//   :stats               instrumentation snapshot: counters, gauges,
//                        histogram percentiles, peak RSS
//   :trace <path>        write a Chrome Trace Event file covering the
//                        spans of the most recent `revise`
//   :explain <op> <phi> <mu>
//                        run {phi} * mu under <op> with per-operation
//                        cost attribution and print the EXPLAIN tree
//                        (formulas with spaces: separate phi and mu
//                        with ';')
//   :statsz [port]       start the live introspection HTTP server
//                        (obs/statsz.h) — no port binds an ephemeral
//                        one, announced on stderr; also started
//                        automatically when REVISE_STATSZ is set
//   :save <path>         compile the current knowledge base into a
//                        checksummed .rkb artifact (core/kb_artifact.h)
//   :load <path>         replace the session with a knowledge base
//                        loaded from a .rkb artifact
//   reset                clear everything
//   help, quit
//
// Example session:
//   assert g | b
//   revise !g
//   ask b            -> yes
//
// Run scripted:  printf 'assert g|b\nrevise !g\nask b\n' | revise_repl

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/kb_artifact.h"
#include "core/librevise.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/statsz.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace {

using namespace revise;

const RevisionOperator* FindOperator(const std::string& name) {
  for (const RevisionOperator* op : AllOperators()) {
    std::string lower(op->name());
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    std::string query = name;
    for (char& c : query) c = static_cast<char>(std::tolower(c));
    if (lower == query) return op;
  }
  return nullptr;
}

class Repl {
 public:
  void Run() {
    std::printf("librevise shell — 'help' for commands\n");
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) return true;  // blank line
    std::string rest;
    std::getline(in, rest);
    while (!rest.empty() && std::isspace(rest.front())) rest.erase(0, 1);

    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      std::printf(
          "operator <name> | strategy <delayed|explicit|compact> |\n"
          "assert <f> | revise <f> | ask <f> | models | size | :stats | "
          ":trace <path> | :explain <op> <phi> <mu> | :statsz [port] | "
          ":save <path> | :load <path> | reset | quit\n");
      return true;
    }
    if (command == "operator") {
      const RevisionOperator* found = FindOperator(rest);
      if (found == nullptr) {
        std::printf("unknown operator '%s'\n", rest.c_str());
        return true;
      }
      op_ = found;
      Rebuild();
      std::printf("operator = %s\n", std::string(op_->name()).c_str());
      return true;
    }
    if (command == "strategy") {
      if (rest == "delayed") {
        strategy_ = RevisionStrategy::kDelayed;
      } else if (rest == "explicit") {
        strategy_ = RevisionStrategy::kExplicit;
      } else if (rest == "compact") {
        strategy_ = RevisionStrategy::kCompact;
      } else {
        std::printf("unknown strategy '%s'\n", rest.c_str());
        return true;
      }
      Rebuild();
      std::printf("strategy = %s (knowledge base rebuilt)\n",
                  rest.c_str());
      return true;
    }
    if (command == "reset") {
      theory_ = Theory();
      Rebuild();
      std::printf("cleared\n");
      return true;
    }
    if (command == "assert") {
      StatusOr<Formula> f = Parse(rest, &vocabulary_);
      if (!f.ok()) {
        std::printf("parse error: %s\n", f.status().ToString().c_str());
        return true;
      }
      theory_.Add(*f);
      Rebuild();
      std::printf("theory now has %zu formula(s)\n", theory_.size());
      return true;
    }
    if (command == "revise") {
      StatusOr<Formula> f = Parse(rest, &vocabulary_);
      if (!f.ok()) {
        std::printf("parse error: %s\n", f.status().ToString().c_str());
        return true;
      }
      EnsureKb();
      // Keep only the spans of this revision in the buffer so a
      // following :trace exports exactly one revision's timeline.
      obs::ClearSpans();
      kb_->Revise(*f);
      std::printf("revised (%zu revision(s) so far)\n",
                  kb_->num_revisions());
      return true;
    }
    if (command == "ask") {
      StatusOr<Formula> f = Parse(rest, &vocabulary_);
      if (!f.ok()) {
        std::printf("parse error: %s\n", f.status().ToString().c_str());
        return true;
      }
      EnsureKb();
      const bool yes = kb_->Ask(*f);
      const bool no = kb_->Ask(Formula::Not(*f));
      std::printf("%s\n", yes ? "yes" : (no ? "no" : "unknown"));
      return true;
    }
    if (command == "models") {
      EnsureKb();
      const Alphabet alphabet = kb_->CurrentAlphabet();
      const ModelSet models = kb_->Models();
      std::printf("%zu model(s):", models.size());
      for (const Interpretation& m : models) {
        std::printf(" %s", m.ToString(alphabet, vocabulary_).c_str());
      }
      std::printf("\n");
      return true;
    }
    if (command == ":stats" || command == "stats") {
      const auto counters = obs::Registry::Global().SnapshotCounters();
      const auto gauges = obs::Registry::Global().SnapshotGauges();
      const auto histograms = obs::Registry::Global().SnapshotHistograms();
      if (counters.empty() && gauges.empty() && histograms.empty()) {
        std::printf("no instrumentation recorded yet\n");
        return true;
      }
      for (const auto& [name, value] : counters) {
        std::printf("%-28s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
      for (const auto& [name, value] : gauges) {
        std::printf("%-28s %lld  (gauge)\n", name.c_str(),
                    static_cast<long long>(value));
      }
      for (const auto& [name, snapshot] : histograms) {
        std::printf("%-28s n=%llu p50=%llu p90=%llu p99=%llu max=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(snapshot.count),
                    static_cast<unsigned long long>(snapshot.p50),
                    static_cast<unsigned long long>(snapshot.p90),
                    static_cast<unsigned long long>(snapshot.p99),
                    static_cast<unsigned long long>(snapshot.max));
      }
      std::printf("%-28s %llu bytes\n", "peak rss",
                  static_cast<unsigned long long>(
                      obs::MemoryStats::PeakRssBytes()));
      return true;
    }
    if (command == ":trace") {
      if (rest.empty()) {
        std::printf("usage: :trace <path>\n");
        return true;
      }
      if (obs::SnapshotSpans().empty()) {
        std::printf(
            "no spans recorded — run a `revise` first (tracing is "
            "collected automatically)\n");
        return true;
      }
      const Status status = obs::WriteChromeTrace(rest);
      if (status.ok()) {
        std::printf("chrome trace written to %s\n", rest.c_str());
      } else {
        std::printf("trace export failed: %s\n",
                    status.ToString().c_str());
      }
      return true;
    }
    if (command == ":explain") {
      std::istringstream args(rest);
      std::string op_name;
      if (!(args >> op_name)) {
        std::printf("usage: :explain <op> <phi> <mu>\n");
        return true;
      }
      const RevisionOperator* op = FindOperator(op_name);
      if (op == nullptr) {
        std::printf("unknown operator '%s'\n", op_name.c_str());
        return true;
      }
      std::string formulas;
      std::getline(args, formulas);
      // phi and mu are separated by ';' (needed when the formulas contain
      // spaces) or, failing that, by the last run of whitespace.
      std::string phi_text;
      std::string mu_text;
      if (const size_t semi = formulas.find(';');
          semi != std::string::npos) {
        phi_text = formulas.substr(0, semi);
        mu_text = formulas.substr(semi + 1);
      } else {
        const size_t split = formulas.find_last_not_of(" \t");
        const size_t space = formulas.find_last_of(" \t", split);
        if (space == std::string::npos) {
          std::printf("usage: :explain <op> <phi> <mu>\n");
          return true;
        }
        phi_text = formulas.substr(0, space);
        mu_text = formulas.substr(space + 1);
      }
      StatusOr<Formula> phi = Parse(phi_text, &vocabulary_);
      if (!phi.ok()) {
        std::printf("parse error in phi: %s\n",
                    phi.status().ToString().c_str());
        return true;
      }
      StatusOr<Formula> mu = Parse(mu_text, &vocabulary_);
      if (!mu.ok()) {
        std::printf("parse error in mu: %s\n",
                    mu.status().ToString().c_str());
        return true;
      }
      const Explanation explanation =
          Explain(*op, Theory({*phi}), *mu);
      std::printf("%s", RenderExplanation(explanation).c_str());
      return true;
    }
    if (command == ":statsz") {
      if (obs::GlobalStatsz() != nullptr) {
        std::printf("statsz already running on 127.0.0.1:%u\n",
                    static_cast<unsigned>(obs::GlobalStatsz()->port()));
        return true;
      }
      obs::StatszOptions options;
      if (!rest.empty()) {
        options.port =
            static_cast<uint16_t>(std::strtoul(rest.c_str(), nullptr, 10));
      }
      const Status status = obs::StartGlobalStatsz(options);
      if (!status.ok()) {
        std::printf("statsz failed to start: %s\n",
                    status.ToString().c_str());
        return true;
      }
      std::printf("statsz listening on 127.0.0.1:%u — try "
                  "curl http://127.0.0.1:%u/metrics\n",
                  static_cast<unsigned>(obs::GlobalStatsz()->port()),
                  static_cast<unsigned>(obs::GlobalStatsz()->port()));
      return true;
    }
    if (command == ":save") {
      if (rest.empty()) {
        std::printf("usage: :save <path>\n");
        return true;
      }
      EnsureKb();
      const Status status = SaveKnowledgeBaseArtifact(*kb_, rest);
      if (status.ok()) {
        std::printf("artifact written to %s\n", rest.c_str());
      } else {
        std::printf("save failed: %s\n", status.ToString().c_str());
      }
      return true;
    }
    if (command == ":load") {
      if (rest.empty()) {
        std::printf("usage: :load <path>\n");
        return true;
      }
      StatusOr<KnowledgeBase> loaded =
          LoadKnowledgeBaseArtifact(rest, &vocabulary_);
      if (!loaded.ok()) {
        std::printf("load failed: %s\n",
                    loaded.status().ToString().c_str());
        return true;
      }
      kb_ = std::make_unique<KnowledgeBase>(std::move(loaded).value());
      // Sync the session so assert/reset rebuild from the loaded state.
      theory_ = kb_->initial();
      op_ = &kb_->op();
      strategy_ = kb_->strategy();
      std::printf("loaded %s: operator=%s, %zu revision(s), %zu model(s)\n",
                  rest.c_str(), std::string(op_->name()).c_str(),
                  kb_->num_revisions(), kb_->Models().size());
      return true;
    }
    if (command == "size") {
      EnsureKb();
      std::printf("stored size: %llu variable occurrences\n",
                  static_cast<unsigned long long>(kb_->StoredSize()));
      return true;
    }
    std::printf("unknown command '%s' — try 'help'\n", command.c_str());
    return true;
  }

  void EnsureKb() {
    if (kb_ == nullptr) Rebuild();
  }

  void Rebuild() {
    auto kb = KnowledgeBase::Create(theory_, op_, strategy_, &vocabulary_);
    if (!kb.ok()) {
      std::printf("%s — falling back to the delayed strategy\n",
                  kb.status().ToString().c_str());
      strategy_ = RevisionStrategy::kDelayed;
      kb = KnowledgeBase::Create(theory_, op_, strategy_, &vocabulary_);
    }
    kb_ = std::make_unique<KnowledgeBase>(std::move(kb).value());
  }

  Vocabulary vocabulary_;
  Theory theory_;
  const RevisionOperator* op_ = OperatorById(OperatorId::kDalal);
  RevisionStrategy strategy_ = RevisionStrategy::kDelayed;
  std::unique_ptr<KnowledgeBase> kb_;
};

}  // namespace

int main() {
  // Collect spans silently so :trace always has a timeline to export;
  // an explicit REVISE_TRACE setting (text/json/chrome) wins.
  if (!revise::obs::TracingEnabled()) {
    revise::obs::SetTraceSink(revise::obs::TraceSink::kSilent);
  }
  // Honor the live-introspection activation variables (REVISE_STATSZ,
  // REVISE_METRICS_DUMP, REVISE_WATCHDOG_S) like the benches do.
  revise::obs::StartStatszFromEnv();
  revise::obs::StartMetricsDumperFromEnv();
  revise::obs::StartStallWatchdogFromEnv();
  Repl repl;
  repl.Run();
  return 0;
}
