// Quickstart: the paper's introductory George & Bill example (Section 1),
// driven through the public API.
//
// You share a corridor with George and Bill's office.  Letters: g = George
// is in the office, b = Bill is in the office.  You hear a voice, so you
// believe T = g | b.  Then you see George outside: P = !g.
//
//   * Belief REVISION (your earlier belief was about an unchanged world,
//     part of it was simply wrong): since T & P is consistent, the revised
//     belief is T & P, and you conclude the voice was Bill's.
//   * Knowledge UPDATE (the world may have changed between observations):
//     Winslett's operator updates each model of T separately, and you can
//     no longer conclude that Bill is in the office.

#include <cstdio>

#include "core/knowledge_base.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "revision/operator.h"

int main() {
  using namespace revise;

  Vocabulary vocabulary;
  const Theory belief = Theory::ParseOrDie("g | b", &vocabulary);
  const Formula observation = ParseOrDie("!g", &vocabulary);
  const Formula bill_in_office = ParseOrDie("b", &vocabulary);

  std::printf("initial belief T:      g | b   (someone is in the office)\n");
  std::printf("new information P:     !g      (George is in the corridor)\n\n");

  // --- Revision: Dalal's operator. ---
  KnowledgeBase revision(belief, OperatorById(OperatorId::kDalal),
                         RevisionStrategy::kDelayed, &vocabulary);
  revision.Revise(observation);
  std::printf("[revision, Dalal]   T * P |= b ?   %s\n",
              revision.Ask(bill_in_office) ? "yes -- the voice was Bill's"
                                           : "no");

  // --- Update: Winslett's possible-models approach. ---
  KnowledgeBase update(belief, OperatorById(OperatorId::kWinslett),
                       RevisionStrategy::kDelayed, &vocabulary);
  update.Revise(observation);
  std::printf("[update, Winslett]  T * P |= b ?   %s\n\n",
              update.Ask(bill_in_office)
                  ? "yes"
                  : "no  -- no evidence Bill is there");

  // Peek at the model sets behind the two answers.
  const Alphabet alphabet = revision.CurrentAlphabet();
  std::printf("models after revision: ");
  for (const Interpretation& m : revision.Models()) {
    std::printf("%s ", m.ToString(alphabet, vocabulary).c_str());
  }
  std::printf("\nmodels after update:   ");
  for (const Interpretation& m : update.Models()) {
    std::printf("%s ", m.ToString(alphabet, vocabulary).c_str());
  }
  std::printf("\n\nAll nine operators on the same pair:\n");
  for (const RevisionOperator* op : AllOperators()) {
    const ModelSet models = op->ReviseModels(belief, observation, alphabet);
    std::printf("  %-8s -> %zu model(s):", std::string(op->name()).c_str(),
                models.size());
    for (const Interpretation& m : models) {
      std::printf(" %s", m.ToString(alphabet, vocabulary).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
