// Fixture: a header whose symbols the includer never references.
#ifndef REVISE_DEPS_FIXTURE_TREE_UNUSED_UTIL_BITS_H_
#define REVISE_DEPS_FIXTURE_TREE_UNUSED_UTIL_BITS_H_

inline int FixtureParity(int x) { return x & 1; }

#endif  // REVISE_DEPS_FIXTURE_TREE_UNUSED_UTIL_BITS_H_
