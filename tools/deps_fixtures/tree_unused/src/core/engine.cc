// Fixture: includes util/bits.h without using FixtureParity — the
// unused-include (IWYU-lite) check must flag line 3.
#include "util/bits.h"

int FixtureUnusedEngineMain() { return 7; }
