// Fixture: half of an include cycle (a.h -> b.h -> a.h).
#ifndef REVISE_DEPS_FIXTURE_TREE_CYCLE_CORE_A_H_
#define REVISE_DEPS_FIXTURE_TREE_CYCLE_CORE_A_H_

#include "core/b.h"

inline int FixtureAlpha(int x) { return FixtureBeta(x) + 1; }

#endif  // REVISE_DEPS_FIXTURE_TREE_CYCLE_CORE_A_H_
