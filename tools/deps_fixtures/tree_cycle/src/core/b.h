// Fixture: the other half of the include cycle (b.h -> a.h).
#ifndef REVISE_DEPS_FIXTURE_TREE_CYCLE_CORE_B_H_
#define REVISE_DEPS_FIXTURE_TREE_CYCLE_CORE_B_H_

#include "core/a.h"

inline int FixtureBeta(int x) { return x == 0 ? 0 : FixtureAlpha(x - 1); }

#endif  // REVISE_DEPS_FIXTURE_TREE_CYCLE_CORE_B_H_
