// Fixture: util includes core — an edge the manifest does not allow, so
// revise_deps must report `forbidden edge util -> core`.
#ifndef REVISE_DEPS_FIXTURE_TREE_FORBIDDEN_UTIL_HELPER_H_
#define REVISE_DEPS_FIXTURE_TREE_FORBIDDEN_UTIL_HELPER_H_

#include "core/engine.h"

inline int FixtureHelperTicks() { return FixtureEngineTicks() + 1; }

#endif  // REVISE_DEPS_FIXTURE_TREE_FORBIDDEN_UTIL_HELPER_H_
