// Fixture: a core header the util layer must not reach down into.
#ifndef REVISE_DEPS_FIXTURE_TREE_FORBIDDEN_CORE_ENGINE_H_
#define REVISE_DEPS_FIXTURE_TREE_FORBIDDEN_CORE_ENGINE_H_

inline int FixtureEngineTicks() { return 42; }

#endif  // REVISE_DEPS_FIXTURE_TREE_FORBIDDEN_CORE_ENGINE_H_
