// Fixture: a leaf utility header (module util).
#ifndef REVISE_DEPS_FIXTURE_TREE_GOOD_UTIL_BITS_H_
#define REVISE_DEPS_FIXTURE_TREE_GOOD_UTIL_BITS_H_

inline int FixtureBitCount(int x) {
  int n = 0;
  while (x != 0) {
    x &= x - 1;
    ++n;
  }
  return n;
}

#endif  // REVISE_DEPS_FIXTURE_TREE_GOOD_UTIL_BITS_H_
