// Fixture: core depends on util — an edge the layers manifest allows.
#ifndef REVISE_DEPS_FIXTURE_TREE_GOOD_CORE_ENGINE_H_
#define REVISE_DEPS_FIXTURE_TREE_GOOD_CORE_ENGINE_H_

#include "util/bits.h"

inline int FixtureEngineWeight(int mask) { return FixtureBitCount(mask); }

#endif  // REVISE_DEPS_FIXTURE_TREE_GOOD_CORE_ENGINE_H_
