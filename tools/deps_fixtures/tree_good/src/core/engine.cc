// Fixture: engine.h is this file's primary header, so the unused-include
// check must not fire even though no symbol is referenced here.
#include "core/engine.h"

int FixtureEngineMain() { return FixtureEngineWeight(7); }
