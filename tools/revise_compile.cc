// revise_compile: compile, inspect and verify .rkb knowledge-base
// artifacts (src/artifact/).
//
// Subcommands:
//   compile <theory-file> --out=<kb.rkb> [--operator=Dalal]
//           [--strategy=delayed|explicit|compact] [--revise=<file>]
//     Parses the theory, applies each formula of the --revise file (one
//     per line, same syntax as theory files) as a revision, and writes
//     the compiled artifact: vocabulary, formula DAG, canonical packed
//     model set, its ROBDD, and the folded representation.
//
//   inspect <kb.rkb>
//     Prints the validated header and per-section metadata.
//
//   verify <kb.rkb> [--deep]
//     Validates every checksum and the packed-section invariants; with
//     --deep also replays the revision sequence from the stored formulas
//     and checks the recomputed model set, and the stored BDD, against
//     the stored rows bit for bit.
//
// `--json` on any subcommand emits the same information as a single JSON
// object on stdout.  Exit status: 0 success, 1 failure, 2 usage.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "artifact/kb_image.h"
#include "core/io.h"
#include "core/kb_artifact.h"
#include "core/knowledge_base.h"
#include "obs/json.h"

namespace {

using revise::Formula;
using revise::KnowledgeBase;
using revise::OperatorById;
using revise::RevisionOperator;
using revise::RevisionStrategy;
using revise::Status;
using revise::StatusOr;
using revise::Theory;
using revise::Vocabulary;
using revise::artifact::ArtifactInfo;
using revise::artifact::KbArtifact;
using revise::artifact::KbImage;
using revise::obs::Json;

int Usage() {
  std::fprintf(
      stderr,
      "usage: revise_compile compile <theory> --out=<kb.rkb>\n"
      "                      [--operator=<name>] [--strategy=<name>]\n"
      "                      [--revise=<file>] [--json]\n"
      "       revise_compile inspect <kb.rkb> [--json]\n"
      "       revise_compile verify <kb.rkb> [--deep] [--json]\n");
  return 2;
}

int Fail(bool json, const std::string& action, const Status& status) {
  if (json) {
    Json out = Json::MakeObject();
    out["action"] = action;
    out["ok"] = false;
    out["error"] = status.ToString();
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    std::fprintf(stderr, "revise_compile %s: %s\n", action.c_str(),
                 status.ToString().c_str());
  }
  return 1;
}

const RevisionOperator* OperatorByName(const std::string& name) {
  for (const RevisionOperator* op : revise::AllOperators()) {
    if (name == std::string(op->name())) return op;
  }
  return nullptr;
}

bool StrategyByName(const std::string& name, RevisionStrategy* strategy) {
  if (name == "delayed") {
    *strategy = RevisionStrategy::kDelayed;
  } else if (name == "explicit") {
    *strategy = RevisionStrategy::kExplicit;
  } else if (name == "compact") {
    *strategy = RevisionStrategy::kCompact;
  } else {
    return false;
  }
  return true;
}

Json InfoToJson(const ArtifactInfo& info) {
  Json out = Json::MakeObject();
  out["format_version"] = info.format_version;
  out["file_size"] = info.file_size;
  out["file_crc"] = info.file_crc;
  out["mapped"] = info.mapped;
  out["operator"] = info.operator_name;
  out["strategy"] = info.strategy_name;
  out["vocabulary_size"] = info.vocabulary_size;
  out["formula_nodes"] = info.formula_nodes;
  out["updates"] = info.update_count;
  out["alphabet_size"] = info.alphabet_size;
  out["models"] = info.model_count;
  out["bdd_nodes"] = info.bdd_nodes;
  Json sections = Json::MakeArray();
  for (const revise::artifact::SectionInfo& section : info.sections) {
    Json row = Json::MakeObject();
    row["name"] = section.name;
    row["offset"] = section.offset;
    row["size"] = section.size;
    row["crc"] = section.crc;
    sections.Append(std::move(row));
  }
  out["sections"] = std::move(sections);
  return out;
}

void PrintInfo(const ArtifactInfo& info) {
  std::printf("format version : %u\n", info.format_version);
  std::printf("file size      : %llu bytes\n",
              static_cast<unsigned long long>(info.file_size));
  std::printf("file crc64     : %016llx\n",
              static_cast<unsigned long long>(info.file_crc));
  std::printf("read path      : %s\n", info.mapped ? "mmap" : "streamed");
  std::printf("operator       : %s\n", info.operator_name.c_str());
  std::printf("strategy       : %s\n", info.strategy_name.c_str());
  std::printf("vocabulary     : %llu names\n",
              static_cast<unsigned long long>(info.vocabulary_size));
  std::printf("formula nodes  : %llu\n",
              static_cast<unsigned long long>(info.formula_nodes));
  std::printf("revisions      : %llu\n",
              static_cast<unsigned long long>(info.update_count));
  std::printf("alphabet       : %llu letters\n",
              static_cast<unsigned long long>(info.alphabet_size));
  std::printf("models         : %llu\n",
              static_cast<unsigned long long>(info.model_count));
  std::printf("bdd nodes      : %llu\n",
              static_cast<unsigned long long>(info.bdd_nodes));
  std::printf("sections       :\n");
  for (const revise::artifact::SectionInfo& section : info.sections) {
    std::printf("  %-12s offset=%-8llu size=%-8llu crc64=%016llx\n",
                section.name.c_str(),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.size),
                static_cast<unsigned long long>(section.crc));
  }
}

int RunCompile(const std::string& theory_path, const std::string& out_path,
               const std::string& operator_name,
               const std::string& strategy_name,
               const std::string& revise_path, bool json) {
  const RevisionOperator* op = OperatorByName(operator_name);
  if (op == nullptr) {
    return Fail(json, "compile",
                revise::InvalidArgumentError("unknown operator " +
                                             operator_name));
  }
  RevisionStrategy strategy;
  if (!StrategyByName(strategy_name, &strategy)) {
    return Fail(json, "compile",
                revise::InvalidArgumentError("unknown strategy " +
                                             strategy_name));
  }

  Vocabulary vocabulary;
  StatusOr<Theory> theory =
      revise::LoadTheoryFromFile(theory_path, &vocabulary);
  if (!theory.ok()) return Fail(json, "compile", theory.status());

  std::vector<Formula> revisions;
  if (!revise_path.empty()) {
    StatusOr<Theory> parsed =
        revise::LoadTheoryFromFile(revise_path, &vocabulary);
    if (!parsed.ok()) return Fail(json, "compile", parsed.status());
    revisions = parsed->formulas();
  }

  StatusOr<KnowledgeBase> kb =
      KnowledgeBase::Create(*std::move(theory), op, strategy, &vocabulary);
  if (!kb.ok()) return Fail(json, "compile", kb.status());
  for (const Formula& p : revisions) {
    kb->Revise(p);
  }

  Status saved = revise::SaveKnowledgeBaseArtifact(*kb, out_path);
  if (!saved.ok()) return Fail(json, "compile", saved);

  // Re-open what was just written: the summary doubles as a self-check.
  StatusOr<KbArtifact> artifact = KbArtifact::Open(out_path);
  if (!artifact.ok()) return Fail(json, "compile", artifact.status());
  if (json) {
    Json out = InfoToJson(artifact->info());
    out["action"] = "compile";
    out["ok"] = true;
    out["output"] = out_path;
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    std::printf("compiled %s -> %s\n", theory_path.c_str(),
                out_path.c_str());
    PrintInfo(artifact->info());
  }
  return 0;
}

int RunInspect(const std::string& path, bool json) {
  StatusOr<KbArtifact> artifact = KbArtifact::Open(path);
  if (!artifact.ok()) return Fail(json, "inspect", artifact.status());
  if (json) {
    Json out = InfoToJson(artifact->info());
    out["action"] = "inspect";
    out["ok"] = true;
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    PrintInfo(artifact->info());
  }
  return 0;
}

int RunVerify(const std::string& path, bool deep, bool json) {
  StatusOr<KbArtifact> artifact = KbArtifact::Open(path);
  if (!artifact.ok()) return Fail(json, "verify", artifact.status());

  // Checksums passed in Open; now the packed rows against the stored BDD
  // (in place, no materialization).
  Status packed = artifact->VerifyPackedSections();
  if (!packed.ok()) return Fail(json, "verify", packed);

  if (deep) {
    Vocabulary vocabulary;
    StatusOr<KbImage> image = artifact->Materialize(&vocabulary);
    if (!image.ok()) return Fail(json, "verify", image.status());

    // Replay the stored revision sequence from the stored formulas and
    // demand the same canonical model set.
    RevisionStrategy strategy = RevisionStrategy::kDelayed;
    if (image->strategy == revise::artifact::kStrategyExplicit) {
      strategy = RevisionStrategy::kExplicit;
    } else if (image->strategy == revise::artifact::kStrategyCompact) {
      strategy = RevisionStrategy::kCompact;
    }
    StatusOr<KnowledgeBase> replay =
        KnowledgeBase::Create(image->initial, OperatorById(image->operator_id),
                              strategy, &vocabulary);
    if (!replay.ok()) return Fail(json, "verify", replay.status());
    for (const Formula& p : image->updates) {
      replay->Revise(p);
    }
    if (!(replay->Models() == image->models)) {
      return Fail(json, "verify",
                  revise::InternalError(
                      "stored model set differs from a fresh replay of the "
                      "stored revision sequence"));
    }

    // The stored BDD must accept exactly the stored models.  Exhaustive
    // when the alphabet is small; membership-only beyond that.
    const revise::Alphabet& alphabet = image->models.alphabet();
    if (alphabet.size() <= 16) {
      for (uint64_t index = 0;
           index < (uint64_t{1} << alphabet.size()); ++index) {
        revise::Interpretation m =
            revise::Interpretation::FromIndex(alphabet.size(), index);
        const bool stored = image->models.Contains(m);
        if (image->bdd.Evaluate(m, alphabet) != stored) {
          return Fail(json, "verify",
                      revise::InternalError(
                          "stored BDD disagrees with the stored model set"));
        }
      }
    } else {
      for (const revise::Interpretation& m : image->models) {
        if (!image->bdd.Evaluate(m, alphabet)) {
          return Fail(json, "verify",
                      revise::InternalError(
                          "stored BDD rejects a stored model"));
        }
      }
    }
  }

  if (json) {
    Json out = InfoToJson(artifact->info());
    out["action"] = "verify";
    out["ok"] = true;
    out["deep"] = deep;
    std::printf("%s\n", out.Dump(2).c_str());
  } else {
    std::printf("OK %s(%s)\n", deep ? "deep " : "", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  std::string input;
  std::string out_path;
  std::string operator_name = "Dalal";
  std::string strategy_name = "delayed";
  std::string revise_path;
  bool json = false;
  bool deep = false;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--operator=", 11) == 0) {
      operator_name = arg + 11;
    } else if (std::strncmp(arg, "--strategy=", 11) == 0) {
      strategy_name = arg + 11;
    } else if (std::strncmp(arg, "--revise=", 9) == 0) {
      revise_path = arg + 9;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--deep") == 0) {
      deep = true;
    } else if (arg[0] == '-') {
      return Usage();
    } else if (input.empty()) {
      input = arg;
    } else {
      return Usage();
    }
  }
  if (input.empty()) return Usage();

  if (command == "compile") {
    if (out_path.empty()) return Usage();
    return RunCompile(input, out_path, operator_name, strategy_name,
                      revise_path, json);
  }
  if (command == "inspect") {
    return RunInspect(input, json);
  }
  if (command == "verify") {
    return RunVerify(input, deep, json);
  }
  return Usage();
}
