# Self-test for revise_benchdiff, run as a ctest (see tools/CMakeLists.txt):
#   1. a candidate within thresholds passes (row reorder, extra rows,
#      informational speedup changes, sub-noise-floor jitter);
#   2. a seeded 10x slowdown fails;
#   3. exact-value regressions fail (size, boolean, series verdict);
#   4. a dropped row / dropped table fails;
#   5. tightening --time-threshold flips case 1 to a failure;
#   6. lowering --noise-floor-ms exposes the micro-timing jitter;
#   7. candidate rows colliding on the baseline join key are flagged;
#   8. an unreadable input is a usage error (exit 2), not a pass;
#   9. histogram percentiles within --hist-threshold pass (improvements
#      and extra histograms included), a seeded p99 blow-up and a dropped
#      histogram fail, tightening --hist-threshold or lowering
#      --hist-noise-floor flips the healthy candidate, and a report
#      without a histograms section (schema v1) diffs cleanly against one
#      with it;
#  10. a hardware_threads mismatch between the manifests demotes timing
#      exceedances to warnings (exit 0, warning printed) while
#      exact-value regressions still fail; the same slowdown on matching
#      hardware keeps failing (case 2).
#
# Invoked as:
#   cmake -DBENCHDIFF=<binary> -DFIXTURES=<dir> -P benchdiff_selftest.cmake

function(expect_exit code description)
  if(NOT RUN_RESULT EQUAL ${code})
    message(FATAL_ERROR
            "${description}: expected exit ${code}, got ${RUN_RESULT}\n"
            "output:\n${RUN_OUTPUT}")
  endif()
endfunction()

function(expect_output needle description)
  string(FIND "${RUN_OUTPUT}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "${description}: expected output to mention '${needle}'\n"
            "output:\n${RUN_OUTPUT}")
  endif()
endfunction()

macro(run_diff)
  execute_process(COMMAND ${BENCHDIFF} ${ARGN}
                  RESULT_VARIABLE RUN_RESULT
                  OUTPUT_VARIABLE RUN_OUTPUT
                  ERROR_VARIABLE RUN_OUTPUT)
endmacro()

# 1. Healthy candidate passes.
run_diff(${FIXTURES}/base.json ${FIXTURES}/ok.json)
expect_exit(0 "healthy candidate")
expect_output("OK" "healthy candidate summary")

# 2. Seeded 10x slowdown fails.
run_diff(${FIXTURES}/base.json ${FIXTURES}/regress_time.json)
expect_exit(1 "seeded slowdown")
expect_output("seq_ms" "seeded slowdown column")

# 3. Exact-value regressions fail and are all reported.
run_diff(${FIXTURES}/base.json ${FIXTURES}/regress_value.json)
expect_exit(1 "value regression")
expect_output("identical" "boolean regression")
expect_output("dalal_size" "size regression")
expect_output("verdict changed" "series verdict regression")

# 4. Dropped row and dropped table fail.
run_diff(${FIXTURES}/base.json ${FIXTURES}/regress_missing_row.json)
expect_exit(1 "missing row")
expect_output("missing from candidate" "missing row message")
expect_output("table sizes" "missing table message")

# 5. A tighter timing threshold flips the healthy candidate.
run_diff(${FIXTURES}/base.json ${FIXTURES}/ok.json --time-threshold=1.1)
expect_exit(1 "tight threshold")

# 6. Removing the noise floor exposes micro-timing jitter.
run_diff(${FIXTURES}/base.json ${FIXTURES}/ok.json --noise-floor-ms=0.0001)
expect_exit(1 "no noise floor")

# 7. A candidate row colliding with another on the baseline's
#    shortest-unique key prefix is reported as an ambiguity, not silently
#    joined against whichever row the map kept first.
run_diff(${FIXTURES}/base.json ${FIXTURES}/regress_ambiguous_prefix.json)
expect_exit(1 "ambiguous join key")
expect_output("ambiguous at baseline key [6]" "ambiguity message")

# 8. Unreadable input is a usage error.
run_diff(${FIXTURES}/base.json ${FIXTURES}/does_not_exist.json)
expect_exit(2 "missing input")

# 9a. Histogram drift within the threshold passes; improvements and
#     extra candidate histograms are not regressions.
run_diff(${FIXTURES}/hist_base.json ${FIXTURES}/hist_ok.json)
expect_exit(0 "healthy histograms")

# 9b. A seeded p99 blow-up and a dropped histogram both fail.
run_diff(${FIXTURES}/hist_base.json ${FIXTURES}/hist_regress.json)
expect_exit(1 "histogram regression")
expect_output("sat.decisions_per_solve.p99" "histogram percentile message")
expect_output("histogram revise.result_models missing"
              "dropped histogram message")

# 9c. Tightening --hist-threshold flips the healthy candidate.
run_diff(${FIXTURES}/hist_base.json ${FIXTURES}/hist_ok.json
         --hist-threshold=1.01)
expect_exit(1 "tight histogram threshold")

# 9d. Lowering the noise floor exposes the tiny-count quantile jitter.
run_diff(${FIXTURES}/hist_base.json ${FIXTURES}/hist_ok.json
         --hist-noise-floor=1)
expect_exit(1 "no histogram noise floor")
expect_output("qm.tiny_counts" "tiny histogram message")

# 9e. Reports without a histograms section (schema v1) parse and diff
#     cleanly against v2.1 reports, in both directions.
run_diff(${FIXTURES}/hist_base.json ${FIXTURES}/hist_cand_v1.json)
expect_exit(0 "v2.1 baseline vs v1 candidate")
run_diff(${FIXTURES}/hist_cand_v1.json ${FIXTURES}/hist_base.json)
expect_exit(0 "v1 baseline vs v2.1 candidate")

# 10a. The 10x slowdown that fails case 2 is demoted to a warning when
#      the baseline manifest records different hardware (8 threads vs the
#      candidate's 1): exit 0, but the slow cell is still printed.
run_diff(${FIXTURES}/mismatch_base.json ${FIXTURES}/regress_time.json)
expect_exit(0 "hardware-mismatch slowdown demoted")
expect_output("hardware_threads differ" "hardware mismatch note")
expect_output("warning: kernel_scaling" "demoted timing warning")

# 10b. A hardware mismatch excuses slow numbers, never wrong ones:
#      exact-value regressions still fail.
run_diff(${FIXTURES}/mismatch_base.json ${FIXTURES}/regress_value.json)
expect_exit(1 "hardware-mismatch value regression")
expect_output("dalal_size" "value regression under mismatch")

message(STATUS "revise_benchdiff self-test passed")
