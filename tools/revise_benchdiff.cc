// revise_benchdiff: structural regression diff of two bench reports.
//
// Compares a committed baseline report (obs/report.h JSON, schema v1 or
// v2) against a freshly produced candidate and exits non-zero when the
// candidate regressed.  The diff is schema-aware, not textual:
//
//   * tables are matched by name and rows are joined on the shortest
//     leading column prefix that uniquely keys the baseline rows, so row
//     reordering and added rows do not produce noise;
//   * timing columns (suffix _ms/_us/_ns) are compared by ratio: the
//     candidate may be at most --time-threshold times the baseline, and
//     cells where both sides are below --noise-floor-ms are skipped
//     (micro-timings are dominated by jitter);
//   * ratio columns ("speedup" plus anything in --ratio-columns) are
//     informational: parallel speedup depends on the machine, not the
//     code, so they never fail the diff;
//   * every other column — sizes, counts, verdict strings, agreement
//     booleans — must match exactly, unless a per-column
//     --threshold=<column>=<ratio> override turns it into a ratio check;
//   * a table, row, column, or series present in the baseline but missing
//     from the candidate is a regression (coverage must not shrink);
//     extras in the candidate are ignored so baselines can trail new
//     code;
//   * series are matched by name: verdicts exactly, values numerically;
//   * histogram distributions (schema v2+) are matched by name and their
//     p50/p90/p99 compared by ratio: the candidate percentile may be at
//     most --hist-threshold times the baseline (upward only — a faster
//     or smaller distribution is never a regression), and percentiles
//     where both sides are below --hist-noise-floor are skipped (tiny
//     samples shift their tail quantiles by whole buckets).  A histogram
//     present in the baseline but absent from the candidate is a
//     regression; reports without a histograms section (schema v1) skip
//     the comparison entirely, so old and new reports diff both ways;
//   * timing ratios only transfer between comparable machines: when the
//     two reports' manifests disagree on `hardware_threads` (falling
//     back to the meta block for reports that predate the manifest),
//     timing-column and histogram-percentile exceedances are demoted to
//     printed warnings instead of failures.  Structural and exact-value
//     regressions still fail — a different machine excuses slow numbers,
//     never wrong ones.
//
// Exit codes: 0 no regression, 1 regression found, 2 usage or I/O error.
//
// Usage:
//   revise_benchdiff <baseline.json> <candidate.json>
//       [--time-threshold=<ratio>]    (default 1.5)
//       [--noise-floor-ms=<ms>]       (default 1.0)
//       [--hist-threshold=<ratio>]    (default 1.5)
//       [--hist-noise-floor=<value>]  (default 16)
//       [--threshold=<column>=<ratio>] ...
//       [--ratio-columns=<a,b,...>]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace revise {
namespace {

using obs::Json;

struct Options {
  std::string baseline_path;
  std::string candidate_path;
  double time_threshold = 1.5;
  double noise_floor_ms = 1.0;
  double hist_threshold = 1.5;
  double hist_noise_floor = 16.0;
  std::map<std::string, double> column_thresholds;
  std::set<std::string> ratio_columns = {"speedup"};
};

// Collected regressions; the tool reports all of them, not just the
// first.  Timing exceedances route through AddTiming so a hardware
// mismatch between the reports can demote them to warnings (printed,
// never failing) while exact-value regressions keep failing.
struct Findings {
  std::vector<std::string> messages;
  std::vector<std::string> warnings;
  size_t compared = 0;
  bool timing_as_warning = false;

  void Add(std::string message) { messages.push_back(std::move(message)); }
  void AddTiming(std::string message) {
    if (timing_as_warning) {
      warnings.push_back(std::move(message));
    } else {
      messages.push_back(std::move(message));
    }
  }
  bool any() const { return !messages.empty(); }
};

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--time-threshold=", 0) == 0) {
      if (!ParseDouble(arg.substr(17), &options->time_threshold) ||
          options->time_threshold < 1.0) {
        std::fprintf(stderr, "benchdiff: bad --time-threshold '%s'\n",
                     arg.c_str());
        return false;
      }
    } else if (arg.rfind("--noise-floor-ms=", 0) == 0) {
      if (!ParseDouble(arg.substr(17), &options->noise_floor_ms) ||
          options->noise_floor_ms < 0.0) {
        std::fprintf(stderr, "benchdiff: bad --noise-floor-ms '%s'\n",
                     arg.c_str());
        return false;
      }
    } else if (arg.rfind("--hist-threshold=", 0) == 0) {
      if (!ParseDouble(arg.substr(17), &options->hist_threshold) ||
          options->hist_threshold < 1.0) {
        std::fprintf(stderr, "benchdiff: bad --hist-threshold '%s'\n",
                     arg.c_str());
        return false;
      }
    } else if (arg.rfind("--hist-noise-floor=", 0) == 0) {
      if (!ParseDouble(arg.substr(19), &options->hist_noise_floor) ||
          options->hist_noise_floor < 0.0) {
        std::fprintf(stderr, "benchdiff: bad --hist-noise-floor '%s'\n",
                     arg.c_str());
        return false;
      }
    } else if (arg.rfind("--threshold=", 0) == 0) {
      const std::string spec = arg.substr(12);
      const size_t eq = spec.rfind('=');
      double ratio = 0;
      if (eq == std::string::npos || eq == 0 ||
          !ParseDouble(spec.substr(eq + 1), &ratio) || ratio < 1.0) {
        std::fprintf(stderr,
                     "benchdiff: bad --threshold '%s' "
                     "(want <column>=<ratio>, ratio >= 1)\n",
                     arg.c_str());
        return false;
      }
      options->column_thresholds[spec.substr(0, eq)] = ratio;
    } else if (arg.rfind("--ratio-columns=", 0) == 0) {
      std::stringstream list(arg.substr(16));
      std::string column;
      while (std::getline(list, column, ',')) {
        if (!column.empty()) options->ratio_columns.insert(column);
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "benchdiff: unknown flag '%s'\n", arg.c_str());
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: revise_benchdiff <baseline.json> <candidate.json> "
                 "[--time-threshold=R] [--noise-floor-ms=X] "
                 "[--hist-threshold=R] [--hist-noise-floor=X] "
                 "[--threshold=col=R] [--ratio-columns=a,b]\n");
    return false;
  }
  options->baseline_path = positional[0];
  options->candidate_path = positional[1];
  return true;
}

bool LoadReport(const std::string& path, Json* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<Json> parsed = Json::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  if (!parsed->is_object() || !parsed->Has("tables")) {
    std::fprintf(stderr, "benchdiff: %s is not a bench report\n",
                 path.c_str());
    return false;
  }
  *out = std::move(parsed).value();
  return true;
}

// Numeric cells may round-trip through double formatting; compare with a
// relative epsilon instead of bit equality.
bool NumbersEqual(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

bool CellsEqual(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    return NumbersEqual(a.AsDouble(), b.AsDouble());
  }
  return a == b;
}

std::string CellToString(const Json& cell) { return cell.Dump(); }

// Multiplier turning a value in the column's unit into milliseconds.
// Returns 0 for non-timing columns.
double TimingUnitToMs(const std::string& column) {
  auto ends_with = [&](const char* suffix) {
    const size_t n = std::strlen(suffix);
    return column.size() >= n &&
           column.compare(column.size() - n, n, suffix) == 0;
  };
  if (ends_with("_ms")) return 1.0;
  if (ends_with("_us")) return 1e-3;
  if (ends_with("_ns")) return 1e-6;
  return 0.0;
}

// The shortest leading column prefix that uniquely keys `rows`; falls
// back to the full width when no prefix disambiguates.
size_t KeyWidth(const Json& rows, size_t columns) {
  for (size_t width = 1; width <= columns; ++width) {
    std::set<std::string> seen;
    bool unique = true;
    for (const Json& row : rows.array()) {
      std::string key;
      for (size_t c = 0; c < width && c < row.size(); ++c) {
        key += row.at(c).Dump();
        key += '\x1f';
      }
      if (!seen.insert(key).second) {
        unique = false;
        break;
      }
    }
    if (unique) return width;
  }
  return columns;
}

std::string RowKey(const Json& row, size_t width) {
  std::string key;
  for (size_t c = 0; c < width && c < row.size(); ++c) {
    key += row.at(c).Dump();
    key += '\x1f';
  }
  return key;
}

// Human-readable form of a join key for messages.
std::string RowKeyLabel(const Json& row, size_t width) {
  std::string label;
  for (size_t c = 0; c < width && c < row.size(); ++c) {
    if (!label.empty()) label += ", ";
    label += CellToString(row.at(c));
  }
  return label;
}

void CompareCell(const Options& options, const std::string& table,
                 const std::string& row_label, const std::string& column,
                 const Json& base_cell, const Json& cand_cell,
                 Findings* findings) {
  ++findings->compared;
  char message[512];

  const auto threshold_it = options.column_thresholds.find(column);
  const double unit_ms = TimingUnitToMs(column);

  // Explicit per-column threshold wins over every default.
  if (threshold_it != options.column_thresholds.end()) {
    if (!base_cell.is_number() || !cand_cell.is_number()) {
      if (!CellsEqual(base_cell, cand_cell)) {
        std::snprintf(message, sizeof(message),
                      "%s [%s] %s: expected %s, got %s", table.c_str(),
                      row_label.c_str(), column.c_str(),
                      CellToString(base_cell).c_str(),
                      CellToString(cand_cell).c_str());
        findings->Add(message);
      }
      return;
    }
    const double base = base_cell.AsDouble();
    const double cand = cand_cell.AsDouble();
    const double bound = base == 0.0 ? 0.0 : base * threshold_it->second;
    if (cand > bound * (1 + 1e-9) + (base == 0.0 ? 1e-9 : 0.0)) {
      std::snprintf(message, sizeof(message),
                    "%s [%s] %s: %g exceeds %gx of baseline %g",
                    table.c_str(), row_label.c_str(), column.c_str(), cand,
                    threshold_it->second, base);
      findings->Add(message);
    }
    return;
  }

  // Informational ratios never fail.
  if (options.ratio_columns.count(column) != 0) return;

  if (unit_ms > 0.0 && base_cell.is_number() && cand_cell.is_number()) {
    const double base_ms = base_cell.AsDouble() * unit_ms;
    const double cand_ms = cand_cell.AsDouble() * unit_ms;
    if (base_ms < options.noise_floor_ms &&
        cand_ms < options.noise_floor_ms) {
      return;  // both in the jitter band
    }
    // Only a slowdown is a regression; allow the noise floor as an
    // absolute grace so a tiny baseline does not demand a tiny ratio.
    const double bound =
        std::max(base_ms * options.time_threshold, options.noise_floor_ms);
    if (cand_ms > bound * (1 + 1e-9)) {
      std::snprintf(message, sizeof(message),
                    "%s [%s] %s: %g ms exceeds %gx of baseline %g ms",
                    table.c_str(), row_label.c_str(), column.c_str(),
                    cand_ms, options.time_threshold, base_ms);
      findings->AddTiming(message);
    }
    return;
  }

  if (!CellsEqual(base_cell, cand_cell)) {
    std::snprintf(message, sizeof(message),
                  "%s [%s] %s: expected %s, got %s", table.c_str(),
                  row_label.c_str(), column.c_str(),
                  CellToString(base_cell).c_str(),
                  CellToString(cand_cell).c_str());
    findings->Add(message);
  }
}

void CompareTable(const Options& options, const Json& base_table,
                  const Json& cand_table, Findings* findings) {
  const std::string name = base_table.Find("name")->AsString();
  const Json& base_columns = *base_table.Find("columns");
  const Json& base_rows = *base_table.Find("rows");
  const Json& cand_columns = *cand_table.Find("columns");
  const Json& cand_rows = *cand_table.Find("rows");

  // Column name -> index in the candidate (its order may differ).
  std::map<std::string, size_t> cand_column_index;
  for (size_t c = 0; c < cand_columns.size(); ++c) {
    cand_column_index[cand_columns.at(c).AsString()] = c;
  }

  // Candidate-row key built through the column-name mapping, so the join
  // tolerates reordered candidate columns.
  const auto cand_key = [&](const Json& row, size_t width) {
    std::string key;
    for (size_t c = 0; c < width; ++c) {
      const auto cc = cand_column_index.find(base_columns.at(c).AsString());
      key += (cc != cand_column_index.end() && cc->second < row.size()
                  ? row.at(cc->second).Dump()
                  : "null");
      key += '\x1f';
    }
    return key;
  };
  const auto first_duplicate = [&](size_t width) -> const Json* {
    std::set<std::string> seen;
    for (const Json& row : cand_rows.array()) {
      if (!seen.insert(cand_key(row, width)).second) return &row;
    }
    return nullptr;
  };

  // The shortest prefix that uniquely keys the baseline must also
  // uniquely key the candidate: an added candidate row colliding on that
  // prefix would otherwise silently decide which row gets compared (the
  // map keeps the first), masking a regression in the other.  Widen until
  // both sides are unique — full row if nothing shorter disambiguates —
  // and report the ambiguity itself as a finding.
  size_t key_width = KeyWidth(base_rows, base_columns.size());
  if (const Json* duplicate = first_duplicate(key_width)) {
    std::string label;
    for (size_t c = 0; c < key_width; ++c) {
      const auto cc = cand_column_index.find(base_columns.at(c).AsString());
      if (!label.empty()) label += ", ";
      label += (cc != cand_column_index.end() && cc->second < duplicate->size()
                    ? CellToString(duplicate->at(cc->second))
                    : "null");
    }
    while (key_width < base_columns.size() &&
           first_duplicate(key_width) != nullptr) {
      ++key_width;
    }
    findings->Add("table " + name + ": candidate rows are ambiguous at "
                  "baseline key [" + label + "]; joining on " +
                  (key_width == base_columns.size()
                       ? std::string("the full row")
                       : "the first " + std::to_string(key_width) +
                             " column(s)"));
  }

  for (size_t c = 0; c < key_width; ++c) {
    // Join columns must exist and (being part of the key) line up.
    const std::string& column = base_columns.at(c).AsString();
    if (cand_column_index.count(column) == 0) {
      findings->Add("table " + name + ": candidate lost key column '" +
                    column + "'");
      return;
    }
  }

  std::map<std::string, const Json*> cand_by_key;
  for (const Json& row : cand_rows.array()) {
    cand_by_key.emplace(cand_key(row, key_width), &row);
  }

  for (const Json& base_row : base_rows.array()) {
    const auto found = cand_by_key.find(RowKey(base_row, key_width));
    const std::string row_label = RowKeyLabel(base_row, key_width);
    if (found == cand_by_key.end()) {
      findings->Add("table " + name + ": row [" + row_label +
                    "] missing from candidate");
      continue;
    }
    const Json& cand_row = *found->second;
    for (size_t c = key_width; c < base_columns.size(); ++c) {
      const std::string& column = base_columns.at(c).AsString();
      const auto cand_c = cand_column_index.find(column);
      if (cand_c == cand_column_index.end() ||
          cand_c->second >= cand_row.size()) {
        findings->Add("table " + name + ": column '" + column +
                      "' missing from candidate");
        break;  // report a lost column once, not per row
      }
      CompareCell(options, name, row_label, column, base_row.at(c),
                  cand_row.at(cand_c->second), findings);
    }
  }
}

void CompareSeries(const Json& base_series, const Json& cand_series,
                   Findings* findings) {
  const std::string name = base_series.Find("name")->AsString();
  const Json* base_verdict = base_series.Find("verdict");
  const Json* cand_verdict = cand_series.Find("verdict");
  ++findings->compared;
  if (base_verdict != nullptr &&
      (cand_verdict == nullptr || !(*base_verdict == *cand_verdict))) {
    findings->Add(
        "series " + name + ": verdict changed from " +
        CellToString(*base_verdict) + " to " +
        (cand_verdict == nullptr ? "<absent>" : CellToString(*cand_verdict)));
  }
  const Json& base_values = *base_series.Find("values");
  const Json* cand_values = cand_series.Find("values");
  if (cand_values == nullptr || cand_values->size() < base_values.size()) {
    findings->Add("series " + name + ": candidate has fewer values");
    return;
  }
  for (size_t i = 0; i < base_values.size(); ++i) {
    ++findings->compared;
    if (!CellsEqual(base_values.at(i), cand_values->at(i))) {
      findings->Add("series " + name + "[" + std::to_string(i) +
                    "]: expected " + CellToString(base_values.at(i)) +
                    ", got " + CellToString(cand_values->at(i)));
    }
  }
}

// Histogram distributions (report schema v2+): per-name upward-only
// ratio check on the published percentiles.  The count is deliberately
// ignored — it scales with benchmark iterations, which depend on machine
// speed — while the percentiles describe the distribution itself.
void CompareHistograms(const Options& options, const Json& baseline,
                       const Json& candidate, Findings* findings) {
  const Json* base_hists = baseline.Find("histograms");
  const Json* cand_hists = candidate.Find("histograms");
  // Schema v1 reports have no histograms section; nothing to compare
  // (and a v1 baseline must keep diffing against a v2.1 candidate).
  if (base_hists == nullptr || cand_hists == nullptr ||
      !base_hists->is_object() || !cand_hists->is_object()) {
    return;
  }
  static constexpr const char* kPercentiles[] = {"p50", "p90", "p99"};
  for (const auto& [name, base_entry] : base_hists->object()) {
    const Json* cand_entry = cand_hists->Find(name);
    if (cand_entry == nullptr) {
      findings->Add("histogram " + name + " missing from candidate");
      continue;
    }
    for (const char* percentile : kPercentiles) {
      const Json* base_cell = base_entry.Find(percentile);
      const Json* cand_cell = cand_entry->Find(percentile);
      if (base_cell == nullptr || !base_cell->is_number()) continue;
      if (cand_cell == nullptr || !cand_cell->is_number()) {
        findings->Add("histogram " + name + "." + percentile +
                      " missing from candidate");
        continue;
      }
      ++findings->compared;
      const double base = base_cell->AsDouble();
      const double cand = cand_cell->AsDouble();
      if (base < options.hist_noise_floor &&
          cand < options.hist_noise_floor) {
        continue;  // both within quantile-bucket jitter
      }
      const double bound =
          std::max(base * options.hist_threshold, options.hist_noise_floor);
      if (cand > bound * (1 + 1e-9)) {
        char message[256];
        std::snprintf(message, sizeof(message),
                      "histogram %s.%s: %g exceeds %gx of baseline %g",
                      name.c_str(), percentile, cand,
                      options.hist_threshold, base);
        findings->AddTiming(message);
      }
    }
  }
}

// hardware_threads from the report's manifest, falling back to the meta
// block for reports that predate the manifest.  Negative when neither
// section records it.
double HardwareThreads(const Json& report) {
  for (const char* section : {"manifest", "meta"}) {
    const Json* block = report.Find(section);
    if (block == nullptr || !block->is_object()) continue;
    const Json* value = block->Find("hardware_threads");
    if (value != nullptr && value->is_number()) return value->AsDouble();
  }
  return -1.0;
}

int Run(const Options& options) {
  Json baseline;
  Json candidate;
  if (!LoadReport(options.baseline_path, &baseline) ||
      !LoadReport(options.candidate_path, &candidate)) {
    return 2;
  }
  const Json* base_name = baseline.Find("name");
  const Json* cand_name = candidate.Find("name");
  if (base_name != nullptr && cand_name != nullptr &&
      !(*base_name == *cand_name)) {
    std::fprintf(stderr,
                 "benchdiff: reports are from different benches (%s vs "
                 "%s)\n",
                 CellToString(*base_name).c_str(),
                 CellToString(*cand_name).c_str());
    return 2;
  }

  Findings findings;

  // Timing ratios only transfer between comparable machines.  A
  // baseline regenerated on an 8-thread box diffed on a 1-thread CI
  // runner would flag every parallel row as a regression; demote those
  // to warnings instead of silently passing or loudly failing.
  const double base_hw = HardwareThreads(baseline);
  const double cand_hw = HardwareThreads(candidate);
  if (base_hw >= 0.0 && cand_hw >= 0.0 && !NumbersEqual(base_hw, cand_hw)) {
    findings.timing_as_warning = true;
    std::fprintf(stderr,
                 "benchdiff: note: hardware_threads differ (baseline %g, "
                 "candidate %g); timing comparisons are demoted to "
                 "warnings\n",
                 base_hw, cand_hw);
  }

  // Candidate tables by name.
  std::map<std::string, const Json*> cand_tables;
  if (const Json* tables = candidate.Find("tables")) {
    for (const Json& table : tables->array()) {
      cand_tables[table.Find("name")->AsString()] = &table;
    }
  }
  for (const Json& base_table : baseline.Find("tables")->array()) {
    const std::string name = base_table.Find("name")->AsString();
    const auto found = cand_tables.find(name);
    if (found == cand_tables.end()) {
      findings.Add("table " + name + " missing from candidate");
      continue;
    }
    CompareTable(options, base_table, *found->second, &findings);
  }

  std::map<std::string, const Json*> cand_series;
  if (const Json* series = candidate.Find("series")) {
    for (const Json& entry : series->array()) {
      cand_series[entry.Find("name")->AsString()] = &entry;
    }
  }
  if (const Json* series = baseline.Find("series")) {
    for (const Json& entry : series->array()) {
      const std::string name = entry.Find("name")->AsString();
      const auto found = cand_series.find(name);
      if (found == cand_series.end()) {
        findings.Add("series " + name + " missing from candidate");
        continue;
      }
      CompareSeries(entry, *found->second, &findings);
    }
  }

  CompareHistograms(options, baseline, candidate, &findings);

  if (!findings.warnings.empty()) {
    std::fprintf(stderr,
                 "benchdiff: %zu timing warning(s) vs %s (hardware "
                 "differs, not failing):\n",
                 findings.warnings.size(), options.baseline_path.c_str());
    for (const std::string& warning : findings.warnings) {
      std::fprintf(stderr, "  warning: %s\n", warning.c_str());
    }
  }
  if (findings.any()) {
    std::fprintf(stderr, "benchdiff: %zu regression(s) vs %s:\n",
                 findings.messages.size(), options.baseline_path.c_str());
    for (const std::string& message : findings.messages) {
      std::fprintf(stderr, "  %s\n", message.c_str());
    }
    return 1;
  }
  std::printf("benchdiff: OK — %zu value(s) match %s within thresholds\n",
              findings.compared, options.baseline_path.c_str());
  return 0;
}

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::Options options;
  if (!revise::ParseArgs(argc, argv, &options)) return 2;
  return revise::Run(options);
}
