# Self-test for revise_deps, run as a ctest (see tools/CMakeLists.txt):
#   1. the known-good fixture tree is clean and dumps a sane graph;
#   2. an include cycle is reported with its full path;
#   3. an edge missing from the layers manifest is forbidden;
#   4. an include whose symbols are never referenced is flagged;
#   5. a manifest edge no include uses (stale) fails a clean tree.
#
# Invoked as:
#   cmake -DDEPS=<binary> -DFIXTURES=<dir> -DOUT=<scratch-dir>
#         -P deps_selftest.cmake

function(expect_exit code description)
  if(NOT RUN_RESULT EQUAL ${code})
    message(FATAL_ERROR
            "${description}: expected exit ${code}, got ${RUN_RESULT}\n"
            "output:\n${RUN_OUTPUT}")
  endif()
endfunction()

function(expect_output needle description)
  string(FIND "${RUN_OUTPUT}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "${description}: expected output to mention '${needle}'\n"
            "output:\n${RUN_OUTPUT}")
  endif()
endfunction()

macro(run_deps)
  execute_process(COMMAND ${DEPS} ${ARGN}
                  RESULT_VARIABLE RUN_RESULT
                  OUTPUT_VARIABLE RUN_OUTPUT
                  ERROR_VARIABLE RUN_OUTPUT)
endmacro()

file(MAKE_DIRECTORY ${OUT})

# 1. Good tree is clean; the graph dumps contain the one edge.
run_deps(--root=${FIXTURES}/tree_good
         --layers=${FIXTURES}/tree_good/layers.txt
         --dot=${OUT}/good.dot --json=${OUT}/good.json)
expect_exit(0 "good tree")
file(READ ${OUT}/good.dot DOT_TEXT)
string(FIND "${DOT_TEXT}" "\"core\" -> \"util\"" DOT_EDGE)
if(DOT_EDGE EQUAL -1)
  message(FATAL_ERROR "good tree: dot dump missing core -> util edge:\n"
          "${DOT_TEXT}")
endif()
file(READ ${OUT}/good.json JSON_TEXT)
string(FIND "${JSON_TEXT}" "\"from\": \"core\", \"to\": \"util\"" JSON_EDGE)
if(JSON_EDGE EQUAL -1)
  message(FATAL_ERROR "good tree: json dump missing core -> util edge:\n"
          "${JSON_TEXT}")
endif()

# 2. Include cycle, reported with the full path.
run_deps(--root=${FIXTURES}/tree_cycle
         --layers=${FIXTURES}/tree_cycle/layers.txt)
expect_exit(1 "cycle tree")
expect_output("include cycle" "cycle finding")
expect_output(
    "src/core/a.h -> src/core/b.h -> src/core/a.h" "cycle path")

# 3. Edge absent from the manifest is forbidden, with an example site.
run_deps(--root=${FIXTURES}/tree_forbidden
         --layers=${FIXTURES}/tree_forbidden/layers.txt)
expect_exit(1 "forbidden tree")
expect_output("forbidden edge util -> core" "forbidden finding")
expect_output("src/util/helper.h:" "forbidden example site")

# 4. Unused include (IWYU-lite).
run_deps(--root=${FIXTURES}/tree_unused
         --layers=${FIXTURES}/tree_unused/layers.txt)
expect_exit(1 "unused tree")
expect_output("unused include \"src/util/bits.h\"" "unused finding")
expect_output("src/core/engine.cc:3" "unused include site")

# 5. Stale manifest edge on a clean tree fails the run.
run_deps(--root=${FIXTURES}/tree_good
         --layers=${FIXTURES}/tree_good/layers_stale.txt)
expect_exit(1 "stale manifest")
expect_output("stale layer edge obs -> util" "stale finding")

message(STATUS "revise_deps self-test passed")
