// revise_lint: project-specific static checks clang-tidy cannot express.
//
// Rules (ids are stable; they key the allowlist):
//   unlimited-enumerate  EnumerateModels without an explicit limit argument
//                        outside src/solve/.  Unlimited AllSAT sweeps are
//                        the library's exponential hazard; call sites
//                        outside the solve layer must bound the
//                        enumeration (limit-taking overload) or be
//                        explicitly grandfathered in the allowlist as
//                        known-safe (they then go through the model
//                        cache).
//   raw-thread           std::thread construction/storage outside
//                        src/util/parallel.  All parallelism goes through
//                        the deterministic ThreadPool so results stay
//                        bit-identical across thread counts.  (Qualified
//                        uses like std::thread::hardware_concurrency are
//                        allowed.)
//   raw-mutex            std::mutex / std::lock_guard / std::unique_lock /
//                        std::condition_variable and friends anywhere in
//                        the tree.  All locking goes through the
//                        annotated util::Mutex / util::MutexLock wrappers
//                        (src/util/mutex.h) so clang -Wthread-safety sees
//                        every acquisition; the wrapper itself is the one
//                        allowlisted exception.
//   bench-json-meta      a bench file that emits a JSON report without the
//                        shared JsonReporter, which stamps the
//                        threads/hardware/model-cache metadata making
//                        reports comparable across machines.
//   include-guard        header guard not matching
//                        REVISE_<DIR>_<FILE>_H_ (path relative to the
//                        repository root, leading "src/" dropped).
//   check-side-effect    REVISE_CHECK* / REVISE_DCHECK* whose argument
//                        text mutates state (++/--/assignment/container
//                        mutation).  DCHECK arguments are not evaluated in
//                        Release builds, so side effects there change
//                        behavior between build types.
//   obs-name             a REVISE_OBS_COUNTER/GAUGE/HISTOGRAM,
//                        REVISE_FLIGHT_EVENT, or REVISE_PROFILE_KEY call
//                        whose literal name does not follow the
//                        `subsystem.metric` convention (lowercase
//                        [a-z0-9_] segments joined by '.').  Instrument
//                        names key the JSON reports, profile counter keys
//                        key the EXPLAIN trees, and flight-recorder event
//                        names key the crash dumps; a stray spelling
//                        silently forks a metric.  Names must also start
//                        with a lowercase letter so the OpenMetrics
//                        exporter's '.'-to-'_' sanitization yields a
//                        spec-valid family name.  Non-literal arguments
//                        (the macro definitions, forwarded identifiers)
//                        are skipped.
//   hot-kernel           REVISE_CHECK* (the always-on flavor) in a file
//                        under src/kernel/.  The kernel layer is the
//                        measured inner loop — its sweeps run per 32x32
//                        tile — so release builds must pay no check cost
//                        there; use REVISE_DCHECK*, which compiles out of
//                        Release, and validate at the operator boundary.
//   fuzz-corpus          a committed .corpus regression repro that the
//                        replay job would reject: wrong header line,
//                        unknown or duplicated key, bad expect/seed
//                        value, or a missing required field.  A rotted
//                        corpus file silently drops a regression from the
//                        replay, so malformedness is a lint failure, not
//                        a runtime skip.  (The validation mirrors
//                        src/fuzz/corpus.cc deliberately but
//                        independently: the linter stays link-free and
//                        double-checks the parser's contract.)
//
// Usage:
//   revise_lint --root=DIR [--allowlist=FILE] [file...]
//
// Without positional files the tool walks src/, bench/, tests/, tools/ and
// examples/ under the root (skipping build dirs, hidden dirs and
// tools/lint_fixtures).  Exit status: 0 clean, 1 findings, 2 bad usage.
//
// The allowlist holds lines of the form "<rule-id> <path>" (paths relative
// to the root, '#' comments).  Allowlisted findings are reported as
// "allowed" but do not fail the run; stale entries (no finding) fail the
// run so the list only shrinks.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string path;  // relative to root, '/'-separated
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  fs::path root;
  fs::path allowlist;
  std::vector<fs::path> files;
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Replaces comments and string/character literals with spaces, preserving
// newlines so byte offsets keep their line numbers.  This keeps every
// scan below from tripping over patterns that only occur in prose.
std::string StripCommentsAndLiterals(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delimiter;  // for )delim" of a raw string
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(text[i - 1]))) {
          // R"delim( ... )delim"
          size_t open = text.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delimiter =
              ")" + text.substr(i + 2, open - (i + 2)) + "\"";
          state = State::kRawString;
          i = open;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && IsIdentChar(text[i - 1]))) {
          // Excludes digit separators (1'000'000).
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (next == '\n') out[i] = '\n';
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          i += raw_delimiter.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

size_t LineOfOffset(const std::string& text, size_t offset) {
  return 1 + static_cast<size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<ptrdiff_t>(
                                               std::min(offset, text.size())),
                            '\n'));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// --- rule: include-guard ------------------------------------------------

std::string ExpectedGuard(const std::string& rel_path) {
  std::string_view path = rel_path;
  if (StartsWith(path, "src/")) path.remove_prefix(4);
  std::string guard = "REVISE_";
  for (const char c : path) {
    if (c >= 'a' && c <= 'z') {
      guard += static_cast<char>(c - 'a' + 'A');
    } else if ((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
      guard += c;
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const std::string& rel_path, const std::string& code,
                       std::vector<Finding>* findings) {
  const std::string expected = ExpectedGuard(rel_path);
  std::istringstream in(code);
  std::string line;
  size_t line_number = 0;
  size_t ifndef_line = 0;
  std::string guard;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;
    if (directive == "#ifndef") {
      tokens >> guard;
      ifndef_line = line_number;
      break;
    }
    if (directive == "#pragma") {
      std::string what;
      tokens >> what;
      if (what == "once") {
        findings->push_back({rel_path, line_number, "include-guard",
                             "use an include guard named " + expected +
                                 ", not #pragma once"});
        return;
      }
    }
  }
  if (guard.empty()) {
    findings->push_back({rel_path, 1, "include-guard",
                         "missing include guard " + expected});
    return;
  }
  if (guard != expected) {
    findings->push_back({rel_path, ifndef_line, "include-guard",
                         "guard is " + guard + ", expected " + expected});
  }
}

// --- rule: raw-thread ---------------------------------------------------

void CheckRawThread(const std::string& rel_path, const std::string& code,
                    std::vector<Finding>* findings) {
  if (StartsWith(rel_path, "src/util/parallel")) return;
  constexpr std::string_view kToken = "std::thread";
  size_t pos = 0;
  while ((pos = code.find(kToken, pos)) != std::string::npos) {
    const size_t after = pos + kToken.size();
    const bool qualified =
        after + 1 < code.size() && code[after] == ':' && code[after + 1] == ':';
    const bool ident_continues = after < code.size() && IsIdentChar(code[after]);
    if (!qualified && !ident_continues) {
      findings->push_back(
          {rel_path, LineOfOffset(code, pos), "raw-thread",
           "raw std::thread; use util/parallel (ThreadPool / "
           "ParallelMapRanges) so results stay deterministic"});
    }
    pos = after;
  }
}

// --- rule: raw-mutex ----------------------------------------------------

// Any mention of the std locking vocabulary is a finding; there is no
// legitimate qualified use (unlike std::thread::hardware_concurrency),
// so no qualified-access carve-out.  The prefix overlap between
// condition_variable and condition_variable_any is resolved by the
// own-token check.
void CheckRawMutex(const std::string& rel_path, const std::string& code,
                   std::vector<Finding>* findings) {
  constexpr std::string_view kTokens[] = {
      "std::mutex",
      "std::recursive_mutex",
      "std::timed_mutex",
      "std::shared_mutex",
      "std::lock_guard",
      "std::unique_lock",
      "std::scoped_lock",
      "std::shared_lock",
      "std::condition_variable",
      "std::condition_variable_any",
  };
  for (const std::string_view token : kTokens) {
    size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
      const size_t after = pos + token.size();
      const bool own_token =
          (pos == 0 || !IsIdentChar(code[pos - 1])) &&
          (after >= code.size() || !IsIdentChar(code[after]));
      if (own_token) {
        findings->push_back(
            {rel_path, LineOfOffset(code, pos), "raw-mutex",
             "raw " + std::string(token) +
                 "; use util::Mutex / util::MutexLock / util::CondVar "
                 "(src/util/mutex.h) so -Wthread-safety sees the "
                 "acquisition"});
      }
      pos = after;
    }
  }
}

// --- rule: unlimited-enumerate ------------------------------------------

// Returns the number of top-level arguments of the call whose opening
// parenthesis is at `open`, or -1 if the parentheses never balance.
int CountCallArgs(const std::string& code, size_t open) {
  int depth = 0;
  int args = 1;
  bool any_token = false;
  for (size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return any_token ? args : 0;
    } else if (c == ',' && depth == 1) {
      ++args;
    } else if (depth >= 1 && !std::isspace(static_cast<unsigned char>(c))) {
      any_token = true;
    }
  }
  return -1;
}

void CheckUnlimitedEnumerate(const std::string& rel_path,
                             const std::string& code,
                             std::vector<Finding>* findings) {
  if (!StartsWith(rel_path, "src/") || StartsWith(rel_path, "src/solve/")) {
    return;
  }
  constexpr std::string_view kToken = "EnumerateModels";
  size_t pos = 0;
  while ((pos = code.find(kToken, pos)) != std::string::npos) {
    const size_t after = pos + kToken.size();
    const bool own_token =
        (pos == 0 || !IsIdentChar(code[pos - 1])) &&
        (after >= code.size() || !IsIdentChar(code[after]));
    if (own_token) {
      size_t open = after;
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open]))) {
        ++open;
      }
      if (open < code.size() && code[open] == '(') {
        const int args = CountCallArgs(code, open);
        if (args >= 0 && args < 3) {
          findings->push_back(
              {rel_path, LineOfOffset(code, pos), "unlimited-enumerate",
               "unlimited EnumerateModels outside solve/; pass an explicit "
               "limit or allowlist the site as known-safe"});
        }
      }
    }
    pos = after;
  }
}

// --- rule: bench-json-meta ----------------------------------------------

// `code` (comments/literals stripped) decides whether JsonReporter is
// actually used; `raw` is scanned for the writer patterns, which typically
// live inside string literals ("--json").
void CheckBenchJsonMeta(const std::string& rel_path, const std::string& code,
                        const std::string& raw,
                        std::vector<Finding>* findings) {
  if (!StartsWith(rel_path, "bench/")) return;
  if (code.find("JsonReporter") != std::string::npos) return;
  constexpr std::string_view kWriters[] = {"WriteToFile(", "--json",
                                           "std::ofstream"};
  for (const std::string_view writer : kWriters) {
    const size_t pos = raw.find(writer);
    if (pos != std::string::npos) {
      findings->push_back(
          {rel_path, LineOfOffset(raw, pos), "bench-json-meta",
           "bench emits JSON without bench_util.h JsonReporter; reports "
           "must stamp the shared execution metadata"});
      return;
    }
  }
}

// --- rule: check-side-effect --------------------------------------------

bool HasMutation(std::string_view args) {
  constexpr std::string_view kMutators[] = {
      ".push_back(",  ".pop_back(", ".pop_front(", ".insert(",
      ".erase(",      ".emplace",   ".clear(",     ".reset(",
      ".release(",    "->push_back(", "->insert(", "->erase(",
      "->emplace",    "->clear(",   "->reset(",    "->release(",
  };
  for (const std::string_view m : kMutators) {
    if (args.find(m) != std::string_view::npos) return true;
  }
  for (size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    const char next = i + 1 < args.size() ? args[i + 1] : '\0';
    if ((c == '+' && next == '+') || (c == '-' && next == '-')) return true;
    if (c == '=' ) {
      const char prev = i > 0 ? args[i - 1] : '\0';
      // Comparison / relational operators are fine; a bare or compound
      // assignment is a mutation.
      if (next == '=') {
        ++i;  // ==
        continue;
      }
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
      if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
          prev == '%' || prev == '&' || prev == '|' || prev == '^') {
        return true;  // compound assignment
      }
      return true;  // plain assignment
    }
  }
  return false;
}

void CheckCheckSideEffect(const std::string& rel_path,
                          const std::string& code,
                          std::vector<Finding>* findings) {
  if (rel_path == "src/util/check.h") return;  // the macro definitions
  constexpr std::string_view kPrefixes[] = {"REVISE_CHECK", "REVISE_DCHECK"};
  for (const std::string_view prefix : kPrefixes) {
    size_t pos = 0;
    while ((pos = code.find(prefix, pos)) != std::string::npos) {
      if (pos > 0 && IsIdentChar(code[pos - 1])) {
        pos += prefix.size();
        continue;
      }
      size_t cursor = pos + prefix.size();
      while (cursor < code.size() && IsIdentChar(code[cursor])) ++cursor;
      const std::string_view macro(code.data() + pos, cursor - pos);
      while (cursor < code.size() &&
             std::isspace(static_cast<unsigned char>(code[cursor]))) {
        ++cursor;
      }
      if (cursor >= code.size() || code[cursor] != '(') {
        pos = cursor;
        continue;
      }
      int depth = 0;
      size_t end = cursor;
      for (; end < code.size(); ++end) {
        if (code[end] == '(') ++depth;
        if (code[end] == ')' && --depth == 0) break;
      }
      if (end >= code.size()) break;
      const std::string_view args(code.data() + cursor + 1,
                                  end - cursor - 1);
      if (HasMutation(args)) {
        findings->push_back(
            {rel_path, LineOfOffset(code, pos), "check-side-effect",
             std::string(macro) +
                 " argument has side effects; checks may be compiled out "
                 "and must be pure"});
      }
      pos = end;
    }
  }
}

// --- rule: obs-name -----------------------------------------------------

// `subsystem.metric`: lowercase [a-z0-9_] segments, at least one dot, no
// empty segments.
bool IsValidInstrumentName(std::string_view name) {
  bool saw_dot = false;
  bool segment_empty = true;
  for (const char c : name) {
    if (c == '.') {
      if (segment_empty) return false;
      saw_dot = true;
      segment_empty = true;
    } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
               c == '_') {
      segment_empty = false;
    } else {
      return false;
    }
  }
  return saw_dot && !segment_empty;
}

// Macro positions come from the stripped `code`; the literal itself was
// blanked there, so it is read back out of `raw` (same offsets — the
// strip preserves length).
void CheckObsName(const std::string& rel_path, const std::string& code,
                  const std::string& raw,
                  std::vector<Finding>* findings) {
  constexpr std::string_view kMacros[] = {
      "REVISE_OBS_COUNTER", "REVISE_OBS_GAUGE", "REVISE_OBS_HISTOGRAM",
      "REVISE_FLIGHT_EVENT", "REVISE_PROFILE_KEY"};
  for (const std::string_view macro : kMacros) {
    size_t pos = 0;
    while ((pos = code.find(macro, pos)) != std::string::npos) {
      const size_t after = pos + macro.size();
      const bool own_token =
          (pos == 0 || !IsIdentChar(code[pos - 1])) &&
          (after >= code.size() || !IsIdentChar(code[after]));
      if (!own_token) {
        pos = after;
        continue;
      }
      size_t open = after;
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open]))) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') {
        pos = after;
        continue;
      }
      size_t quote = open + 1;
      while (quote < raw.size() &&
             std::isspace(static_cast<unsigned char>(raw[quote]))) {
        ++quote;
      }
      if (quote >= raw.size() || raw[quote] != '"') {
        pos = after;  // not a literal argument
        continue;
      }
      const size_t end = raw.find('"', quote + 1);
      if (end == std::string::npos) break;
      const std::string_view name(raw.data() + quote + 1, end - quote - 1);
      if (!IsValidInstrumentName(name)) {
        findings->push_back(
            {rel_path, LineOfOffset(code, pos), "obs-name",
             "instrument name \"" + std::string(name) +
                 "\" violates the subsystem.metric convention (lowercase "
                 "[a-z0-9_] segments joined by '.')"});
      } else if ((name[0] >= '0' && name[0] <= '9') || name[0] == '_') {
        // The OpenMetrics exporter (obs/openmetrics.h) maps '.' to '_';
        // the result must match [a-zA-Z_][a-zA-Z0-9_]* and we reserve
        // leading underscores for the spec's own suffix machinery, so a
        // sanitized family must start with a letter.
        findings->push_back(
            {rel_path, LineOfOffset(code, pos), "obs-name",
             "instrument name \"" + std::string(name) +
                 "\" would not survive OpenMetrics sanitization (the "
                 "first character must be a lowercase letter)"});
      }
      pos = end;
    }
  }
}

// --- rule: hot-kernel ---------------------------------------------------

// Finds REVISE_CHECK / REVISE_CHECK_EQ / ... tokens under src/kernel/.
// The token match deliberately excludes REVISE_DCHECK* ("REVISE_CHECK"
// is not a substring of "REVISE_DCHECK") and identifiers that merely
// embed the name (preceded by an identifier character).
void CheckHotKernel(const std::string& rel_path, const std::string& code,
                    std::vector<Finding>* findings) {
  if (!StartsWith(rel_path, "src/kernel/")) return;
  constexpr std::string_view kToken = "REVISE_CHECK";
  size_t pos = 0;
  while ((pos = code.find(kToken, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(code[pos - 1])) {
      findings->push_back(
          {rel_path, LineOfOffset(code, pos), "hot-kernel",
           "always-on REVISE_CHECK* in the kernel layer; the tiled "
           "sweeps must use REVISE_DCHECK* and validate at the operator "
           "boundary"});
    }
    pos += kToken.size();
  }
}

// --- rule: fuzz-corpus --------------------------------------------------

// Validates a committed fuzz-regression repro without linking the fuzz
// library: header line, known keys only, no duplicates, well-formed
// expect/seed, and the required name/p fields.  Must stay in sync with
// the format in src/fuzz/corpus.cc.
void CheckFuzzCorpus(const std::string& rel_path, const std::string& raw,
                     std::vector<Finding>* findings) {
  constexpr std::string_view kHeader = "# revise_fuzz corpus v1";
  constexpr std::string_view kKeys[] = {"name",   "oracle", "expect",
                                        "seed",   "theory", "p",
                                        "q"};
  const auto add = [&](size_t line, const std::string& message) {
    findings->push_back({rel_path, line, "fuzz-corpus", message});
  };
  const auto trim = [](std::string_view s) {
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back()))) {
      s.remove_suffix(1);
    }
    return s;
  };

  std::istringstream in(raw);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view text = trim(line);
    if (line_number == 1) {
      if (text != kHeader) {
        add(1, "first line must be \"" + std::string(kHeader) + "\"");
        return;  // everything after a bad header would be noise
      }
      saw_header = true;
      continue;
    }
    if (text.empty() || text.front() == '#') continue;
    const size_t colon = text.find(':');
    if (colon == std::string_view::npos) {
      add(line_number, "expected \"key: value\", got \"" +
                           std::string(text) + "\"");
      continue;
    }
    const std::string key(trim(text.substr(0, colon)));
    const std::string value(trim(text.substr(colon + 1)));
    if (std::find(std::begin(kKeys), std::end(kKeys), key) ==
        std::end(kKeys)) {
      add(line_number, "unknown key \"" + key + "\"");
      continue;
    }
    if (!seen.insert(key).second) {
      add(line_number, "duplicate key \"" + key + "\"");
      continue;
    }
    if (key == "expect" && value != "ok" && value != "parse-error") {
      add(line_number,
          "expect must be \"ok\" or \"parse-error\", got \"" + value +
              "\"");
    }
    if (key == "seed" &&
        (value.empty() ||
         !std::all_of(value.begin(), value.end(), [](char c) {
           return c >= '0' && c <= '9';
         }))) {
      add(line_number, "seed must be a non-negative integer, got \"" +
                           value + "\"");
    }
  }
  if (!saw_header) {
    add(1, "empty corpus file (missing header line)");
    return;
  }
  for (const char* required : {"name", "p"}) {
    if (seen.count(required) == 0) {
      add(line_number, std::string("missing required key \"") + required +
                           "\"");
    }
  }
}

// --- driver -------------------------------------------------------------

bool HasExtension(const fs::path& path, std::string_view ext) {
  return path.extension() == ext;
}

bool ShouldScan(const fs::path& path) {
  return HasExtension(path, ".h") || HasExtension(path, ".cc") ||
         HasExtension(path, ".cpp") || HasExtension(path, ".corpus");
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* files) {
  constexpr std::string_view kTopDirs[] = {"src", "bench", "tests", "tools",
                                           "examples"};
  for (const std::string_view top : kTopDirs) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          ((name.size() > 9 &&
            name.compare(name.size() - 9, 9, "_fixtures") == 0) ||
           name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && ShouldScan(it->path())) {
        files->push_back(it->path());
      }
    }
  }
  std::sort(files->begin(), files->end());
}

std::string RelativeTo(const fs::path& root, const fs::path& path) {
  return fs::relative(fs::absolute(path), fs::absolute(root))
      .generic_string();
}

int Fail(const char* message) {
  std::fprintf(stderr, "revise_lint: %s\n", message);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--root=")) {
      options.root = std::string(arg.substr(7));
    } else if (StartsWith(arg, "--allowlist=")) {
      options.allowlist = std::string(arg.substr(12));
    } else if (arg == "--help") {
      std::printf(
          "usage: revise_lint --root=DIR [--allowlist=FILE] [file...]\n");
      return 0;
    } else if (StartsWith(arg, "--")) {
      return Fail("unknown flag (see --help)");
    } else {
      options.files.emplace_back(std::string(arg));
    }
  }
  if (options.root.empty()) return Fail("--root=DIR is required");
  if (!fs::is_directory(options.root)) return Fail("--root is not a directory");

  // rule-id -> path pairs that are tolerated.
  std::set<std::pair<std::string, std::string>> allowed;
  if (!options.allowlist.empty()) {
    std::ifstream in(options.allowlist);
    if (!in) return Fail("cannot read allowlist");
    std::string line;
    while (std::getline(in, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream tokens(line);
      std::string rule, path;
      if (tokens >> rule >> path) allowed.insert({rule, path});
    }
  }

  std::vector<fs::path> files = options.files;
  if (files.empty()) CollectFiles(options.root, &files);

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "revise_lint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string rel = RelativeTo(options.root, file);

    if (HasExtension(file, ".corpus")) {
      // Corpus repros are line-oriented data, not C++; only the format
      // rule applies.
      CheckFuzzCorpus(rel, raw, &findings);
      continue;
    }
    const std::string code = StripCommentsAndLiterals(raw);

    if (HasExtension(file, ".h")) CheckIncludeGuard(rel, code, &findings);
    CheckRawThread(rel, code, &findings);
    CheckRawMutex(rel, code, &findings);
    CheckUnlimitedEnumerate(rel, code, &findings);
    CheckBenchJsonMeta(rel, code, raw, &findings);
    CheckCheckSideEffect(rel, code, &findings);
    CheckObsName(rel, code, raw, &findings);
    CheckHotKernel(rel, code, &findings);
  }

  // Partition into hard findings and allowlisted ones; track which
  // allowlist entries actually fired so stale entries are flagged.
  std::set<std::pair<std::string, std::string>> used;
  size_t hard = 0;
  for (const Finding& finding : findings) {
    const auto key = std::make_pair(finding.rule, finding.path);
    const bool is_allowed = allowed.count(key) > 0;
    if (is_allowed) used.insert(key);
    std::fprintf(stderr, "%s:%zu: [%s]%s %s\n", finding.path.c_str(),
                 finding.line, finding.rule.c_str(),
                 is_allowed ? " (allowed)" : "", finding.message.c_str());
    if (!is_allowed) ++hard;
  }
  // An unfired entry is stale; an entry whose file is gone entirely gets
  // the sharper message (the usual cause: the file was deleted or moved
  // and the allowlist was not updated with it).
  size_t stale = 0;
  for (const auto& entry : allowed) {
    if (used.count(entry) != 0) continue;
    if (!fs::exists(options.root / entry.second)) {
      std::fprintf(stderr,
                   "revise_lint: allowlist entry %s %s references a "
                   "missing file (remove it)\n",
                   entry.first.c_str(), entry.second.c_str());
    } else {
      std::fprintf(stderr,
                   "revise_lint: stale allowlist entry: %s %s (no such "
                   "finding; remove it)\n",
                   entry.first.c_str(), entry.second.c_str());
    }
    ++stale;
  }

  if (hard == 0 && stale == 0) {
    std::printf("revise_lint: %zu files, %zu findings (%zu allowlisted)\n",
                files.size(), findings.size(), findings.size());
    return 0;
  }
  std::fprintf(stderr,
               "revise_lint: %zu files, %zu non-allowlisted findings, %zu "
               "stale allowlist entries\n",
               files.size(), hard, stale);
  return 1;
}
