# Self-test for revise_lint, run as a ctest (see tools/CMakeLists.txt):
#   1. the known-good fixture tree lints clean;
#   2. the known-bad tree fails and reports every rule id;
#   3. the bad tree passes under an allowlist covering all findings;
#   4. a stale allowlist entry fails a clean tree, and an entry naming a
#      file that no longer exists gets the sharper missing-file message.
#
# Invoked as:
#   cmake -DLINT=<binary> -DFIXTURES=<dir> -P lint_selftest.cmake

function(expect_exit code description)
  if(NOT RUN_RESULT EQUAL ${code})
    message(FATAL_ERROR
            "${description}: expected exit ${code}, got ${RUN_RESULT}\n"
            "output:\n${RUN_OUTPUT}")
  endif()
endfunction()

function(expect_output needle description)
  string(FIND "${RUN_OUTPUT}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "${description}: expected output to mention '${needle}'\n"
            "output:\n${RUN_OUTPUT}")
  endif()
endfunction()

macro(run_lint)
  execute_process(COMMAND ${LINT} ${ARGN}
                  RESULT_VARIABLE RUN_RESULT
                  OUTPUT_VARIABLE RUN_OUTPUT
                  ERROR_VARIABLE RUN_OUTPUT)
endmacro()

# 1. Good tree is clean.
run_lint(--root=${FIXTURES}/tree_good)
expect_exit(0 "good tree")

# 2. Bad tree fails and every rule fires.
run_lint(--root=${FIXTURES}/tree_bad)
expect_exit(1 "bad tree")
foreach(rule unlimited-enumerate raw-thread raw-mutex include-guard
        check-side-effect bench-json-meta obs-name hot-kernel fuzz-corpus)
  expect_output("[${rule}]" "bad tree rule coverage")
endforeach()
# The obs-name rule also covers flight-recorder event names and profile
# counter keys, and rejects names that would not survive OpenMetrics
# sanitization.
expect_output("CacheEvict" "flight event name coverage")
expect_output("sat.Solves" "profile key coverage")
expect_output("9lives.retries" "openmetrics sanitization coverage")
expect_output("_sat.solves" "openmetrics leading underscore coverage")

# 3. Bad tree passes with a full allowlist.
run_lint(--root=${FIXTURES}/tree_bad
         --allowlist=${FIXTURES}/tree_bad_allowlist.txt)
expect_exit(0 "allowlisted bad tree")

# 4. A stale allowlist entry on a clean tree fails the run; an entry for
#    a file that does not exist is called out as missing, not just stale.
run_lint(--root=${FIXTURES}/tree_good
         --allowlist=${FIXTURES}/tree_good_stale_allowlist.txt)
expect_exit(1 "stale allowlist")
expect_output("stale allowlist entry" "stale allowlist message")
expect_output("references a missing file" "missing-file allowlist message")

message(STATUS "revise_lint self-test passed")
