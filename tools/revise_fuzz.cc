// revise_fuzz: differential fuzzing of the revision pipelines.
//
// Usage:
//   revise_fuzz [--seed=N] [--runs=N] [--time-budget-s=S] [--max-vars=N]
//               [--oracle=NAME] [--no-shrink] [--replay=DIR] [--save=DIR]
//               [--json] [--list-oracles] [--force-mismatch]
//
// Default mode generates `runs` seeded scenarios and checks each against
// every oracle (see src/fuzz/oracles.h).  On a mismatch the scenario is
// shrunk to a local minimum and printed as a ready-to-commit corpus
// entry; --save=DIR additionally writes it to DIR/<name>.corpus.
// --replay=DIR re-checks a committed corpus instead of generating.
//
// Any mismatch additionally dumps the observability flight recorder
// (recent oracle verdicts, cache evictions, deadline hits) to stderr and
// writes crash_<pid>.json, so a repro is self-describing.
// --force-mismatch injects a synthetic mismatch after the run — a
// test-only flag that lets CI assert the crash-dump plumbing works.
//
// Exit codes: 0 all checks agreed, 1 at least one mismatch, 2 usage or
// I/O error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>

#include "fuzz/fuzzer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace {

using revise::fuzz::AllOracles;
using revise::fuzz::FindOracle;
using revise::fuzz::FuzzFailure;
using revise::fuzz::FuzzOptions;
using revise::fuzz::FuzzReport;
using revise::fuzz::Oracle;

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

int Usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "revise_fuzz: %s\n", error);
  std::fprintf(
      stderr,
      "usage: revise_fuzz [--seed=N] [--runs=N] [--time-budget-s=S]\n"
      "                   [--max-vars=N] [--oracle=NAME] [--no-shrink]\n"
      "                   [--replay=DIR] [--save=DIR] [--json]\n"
      "                   [--list-oracles] [--force-mismatch]\n");
  return 2;
}

void PrintFailure(const FuzzFailure& failure) {
  std::fprintf(stderr,
               "\nMISMATCH (oracle %s, seed %llu, %d shrink steps)\n"
               "  %s\n"
               "repro corpus entry:\n%s",
               failure.oracle.c_str(),
               static_cast<unsigned long long>(failure.seed),
               failure.shrink_steps, failure.detail.c_str(),
               FormatEntry(failure.repro).c_str());
}

bool SaveFailure(const FuzzFailure& failure, const std::string& dir) {
  const std::string path =
      dir + "/" + failure.repro.name + revise::fuzz::kCorpusExtension;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "revise_fuzz: cannot write %s\n", path.c_str());
    return false;
  }
  out << FormatEntry(failure.repro);
  std::fprintf(stderr, "saved repro: %s\n", path.c_str());
  return true;
}

uint64_t CounterValue(const char* name) {
  return revise::obs::Registry::Global().GetCounter(name)->Value();
}

void PrintSummary(const FuzzReport& report, bool json) {
  if (json) {
    std::printf(
        "{\"fuzz\": {\"executions\": %llu, \"mismatches\": %llu, "
        "\"shrink_steps\": %llu}}\n",
        static_cast<unsigned long long>(CounterValue("fuzz.executions")),
        static_cast<unsigned long long>(CounterValue("fuzz.mismatches")),
        static_cast<unsigned long long>(
            CounterValue("fuzz.shrink_steps")));
    return;
  }
  std::printf("revise_fuzz: %llu scenarios, %llu mismatches\n",
              static_cast<unsigned long long>(report.executions),
              static_cast<unsigned long long>(report.mismatches));
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  std::string replay_dir;
  std::string save_dir;
  bool json = false;
  bool force_mismatch = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](size_t prefix) {
      return std::string(arg.substr(prefix));
    };
    if (StartsWith(arg, "--seed=")) {
      options.seed = std::strtoull(value(7).c_str(), nullptr, 10);
    } else if (StartsWith(arg, "--runs=")) {
      options.runs = std::strtoull(value(7).c_str(), nullptr, 10);
    } else if (StartsWith(arg, "--time-budget-s=")) {
      options.time_budget_s = std::strtod(value(16).c_str(), nullptr);
    } else if (StartsWith(arg, "--max-vars=")) {
      const int max_vars = std::atoi(value(11).c_str());
      if (max_vars < 1) return Usage("--max-vars must be >= 1");
      options.generator.max_vars = max_vars;
    } else if (StartsWith(arg, "--oracle=")) {
      options.oracle = value(9);
      if (FindOracle(options.oracle) == nullptr) {
        return Usage("unknown oracle (see --list-oracles)");
      }
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (StartsWith(arg, "--replay=")) {
      replay_dir = value(9);
    } else if (StartsWith(arg, "--save=")) {
      save_dir = value(7);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--force-mismatch") {
      force_mismatch = true;
    } else if (arg == "--list-oracles") {
      for (const Oracle& oracle : AllOracles()) {
        std::printf("%-22s %s\n", oracle.name, oracle.description);
      }
      return 0;
    } else if (arg == "--help") {
      Usage(nullptr);
      return 0;
    } else {
      return Usage("unknown flag (see --help)");
    }
  }

  FuzzReport report;
  if (!replay_dir.empty()) {
    revise::StatusOr<FuzzReport> replayed =
        revise::fuzz::ReplayCorpus(replay_dir);
    if (!replayed.ok()) {
      std::fprintf(stderr, "revise_fuzz: %s\n",
                   replayed.status().ToString().c_str());
      return 2;
    }
    report = *std::move(replayed);
  } else {
    report = revise::fuzz::Fuzz(options);
  }

  if (force_mismatch) {
    // Synthetic verdict so the crash dump exercises the same path a real
    // oracle disagreement takes.
    REVISE_FLIGHT_EVENT("fuzz.oracle_mismatch",
                        "injected by --force-mismatch");
    ++report.mismatches;
  }
  for (const FuzzFailure& failure : report.failures) {
    PrintFailure(failure);
    if (!save_dir.empty() && !SaveFailure(failure, save_dir)) return 2;
  }
  if (report.mismatches != 0) {
    revise::obs::DumpFlightRecorder(stderr, "fuzzer mismatch");
    const std::string dump =
        revise::obs::WriteCrashDump("fuzzer mismatch");
    if (!dump.empty()) {
      std::fprintf(stderr, "revise_fuzz: crash dump written to %s\n",
                   dump.c_str());
    }
  }
  PrintSummary(report, json);
  return report.mismatches == 0 ? 0 : 1;
}
