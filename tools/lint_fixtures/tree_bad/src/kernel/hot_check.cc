// Known-bad fixture: always-on checks inside the kernel layer.

#include "util/check.h"

namespace revise::kernel {

size_t Offender(size_t rows, size_t stride) {
  REVISE_CHECK_EQ(stride % 4, 0u);  // finding: hot-kernel (always-on)
  REVISE_CHECK(rows > 0);           // finding: hot-kernel (always-on)
  REVISE_DCHECK_LE(rows, stride);   // allowed: compiled out of Release
  return rows * stride;
}

}  // namespace revise::kernel
