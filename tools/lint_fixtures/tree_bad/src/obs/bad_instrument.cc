// Known-bad fixture: instrument names off the subsystem.metric
// convention.

#define REVISE_OBS_COUNTER(name) DummyCounter(name)
#define REVISE_OBS_HISTOGRAM(name) DummyCounter(name)

namespace revise {

struct Instrument {
  void Increment();
  void Record(int);
};

Instrument& DummyCounter(const char*);

void Offenders() {
  REVISE_OBS_COUNTER("SatConflicts").Increment();    // finding: no dot
  REVISE_OBS_COUNTER("sat.Conflicts").Increment();   // finding: uppercase
  REVISE_OBS_HISTOGRAM("sat..decisions").Record(1);  // finding: empty segment
}

}  // namespace revise
