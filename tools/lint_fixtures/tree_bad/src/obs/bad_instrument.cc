// Known-bad fixture: instrument names off the subsystem.metric
// convention.

#define REVISE_OBS_COUNTER(name) DummyCounter(name)
#define REVISE_OBS_HISTOGRAM(name) DummyCounter(name)
#define REVISE_FLIGHT_EVENT(name, detail) DummyEvent(name, detail)
#define REVISE_PROFILE_KEY(name) name

namespace revise {

struct Instrument {
  void Increment();
  void Record(int);
};

Instrument& DummyCounter(const char*);
void DummyEvent(const char*, const char*);

void Offenders() {
  REVISE_OBS_COUNTER("SatConflicts").Increment();    // finding: no dot
  REVISE_OBS_COUNTER("sat.Conflicts").Increment();   // finding: uppercase
  REVISE_OBS_COUNTER("9lives.retries").Increment();  // finding: leading digit
  REVISE_OBS_COUNTER("_sat.solves").Increment();     // finding: leading '_'
  REVISE_OBS_HISTOGRAM("sat..decisions").Record(1);  // finding: empty segment
  REVISE_FLIGHT_EVENT("CacheEvict", "x");            // finding: no dot
  REVISE_FLIGHT_EVENT("solve.Deadline", "x");        // finding: uppercase
  const char* key = REVISE_PROFILE_KEY("sat.Solves");  // finding: uppercase
  (void)key;
}

}  // namespace revise
