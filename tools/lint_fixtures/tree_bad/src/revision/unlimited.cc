// Known-bad fixture: unlimited EnumerateModels outside src/solve/.

namespace revise {

struct ModelSet {};
struct Formula {};
struct Alphabet {};

ModelSet EnumerateModels(const Formula& f, const Alphabet& alphabet,
                         unsigned limit = 0);

ModelSet Offender(const Formula& f, const Alphabet& alphabet) {
  return EnumerateModels(f, alphabet);  // finding: unlimited-enumerate
}

}  // namespace revise
