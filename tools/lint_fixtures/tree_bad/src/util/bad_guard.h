// Known-bad fixture: guard does not match REVISE_UTIL_BAD_GUARD_H_.

#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace revise {}

#endif  // WRONG_GUARD_H
