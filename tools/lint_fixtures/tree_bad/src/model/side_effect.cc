// Known-bad fixture: CHECK/DCHECK arguments that mutate state.

#define REVISE_CHECK(c) (void)(c)
#define REVISE_CHECK_GT(a, b) (void)((a) > (b))
#define REVISE_DCHECK(c) (void)(c)

namespace revise {

struct Sink {
  void push_back(int);
  int size() const;
};

void Offenders(int x, Sink* sink) {
  REVISE_CHECK(x++ < 10);             // finding: increment
  REVISE_CHECK_GT(x -= 1, 0);         // finding: compound assignment
  REVISE_DCHECK((sink->push_back(1), sink->size() > 0));  // finding: mutator
}

}  // namespace revise
