// Known-bad fixture: raw std::thread outside util/parallel.

#include <thread>

namespace revise {

void Offender() {
  std::thread worker([] {});  // finding: raw-thread
  worker.join();
  const unsigned n = std::thread::hardware_concurrency();  // allowed
  (void)n;
}

}  // namespace revise
