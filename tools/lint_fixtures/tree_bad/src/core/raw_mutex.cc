// Fixture for the raw-mutex rule: locking outside src/util/mutex.h must
// go through util::Mutex / util::MutexLock, never the std vocabulary.
#include <condition_variable>
#include <mutex>

namespace fixture {

std::mutex g_mu;
std::condition_variable g_cv;
int g_value = 0;

int Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ++g_value;
}

}  // namespace fixture
