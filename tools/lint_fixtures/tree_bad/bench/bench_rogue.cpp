// Known-bad fixture: hand-rolled --json output without JsonReporter, so
// the report lacks the shared execution metadata.

#include <cstring>
#include <fstream>

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      std::ofstream out(argv[i] + 7);  // finding: bench-json-meta
      out << "{}\n";
    }
  }
  return 0;
}
