// Fixture: locking through the util::Mutex wrapper is raw-mutex clean.
#include "util/mutex.h"

namespace fixture {

revise::util::Mutex g_mu;
int g_value = 0;

int Bump() {
  revise::util::MutexLock lock(g_mu);
  return ++g_value;
}

}  // namespace fixture
