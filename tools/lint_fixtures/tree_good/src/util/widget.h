// Known-good fixture: guard matches REVISE_UTIL_WIDGET_H_ (leading src/
// is dropped), checks are pure, parallelism goes through util/parallel.

#ifndef REVISE_UTIL_WIDGET_H_
#define REVISE_UTIL_WIDGET_H_

#include <cstddef>

namespace revise {

inline size_t WidgetCount(size_t n) {
  // A qualified std::thread::hardware_concurrency() style mention in a
  // comment must not trip the raw-thread rule.
  return n + 1;
}

}  // namespace revise

#endif  // REVISE_UTIL_WIDGET_H_
