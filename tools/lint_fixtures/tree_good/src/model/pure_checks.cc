// Known-good fixture: CHECK arguments that compare, call const members,
// and mention strings containing "++" stay clean.

#define REVISE_CHECK(c) (void)(c)
#define REVISE_CHECK_EQ(a, b) (void)((a) == (b))
#define REVISE_DCHECK_LE(a, b) (void)((a) <= (b))

namespace revise {

int Size();

void PureChecks(int x, int y) {
  REVISE_CHECK(x <= y);
  REVISE_CHECK_EQ(x + 1, y - 1);
  REVISE_DCHECK_LE(Size(), y);
  REVISE_CHECK(x == y || x < y);
  const char* message = "operator++ in a string literal is fine";
  REVISE_CHECK(message != nullptr);
}

}  // namespace revise
