// Known-good fixture: the kernel layer validates with debug-only checks.

#include "util/check.h"

namespace revise::kernel {

size_t TileSweep(size_t rows, size_t stride) {
  REVISE_DCHECK_EQ(stride % 4, 0u);
  REVISE_DCHECK(rows > 0);
  return rows * stride;
}

}  // namespace revise::kernel
