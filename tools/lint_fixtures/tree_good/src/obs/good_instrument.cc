// Known-good fixture: conforming instrument names, plus the shapes the
// rule must skip (macro definitions, forwarded identifiers).

#define REVISE_OBS_COUNTER(name) DummyCounter(name)
#define REVISE_OBS_GAUGE(name) DummyCounter(name)
#define REVISE_FLIGHT_EVENT(name, detail) DummyEvent(name, detail)
#define REVISE_PROFILE_KEY(name) name

namespace revise {

struct Instrument {
  void Increment();
  void Set(int);
};

Instrument& DummyCounter(const char*);
void DummyEvent(const char*, const char*);

void Conforming(const char* runtime_name) {
  REVISE_OBS_COUNTER("sat.conflicts").Increment();
  REVISE_OBS_COUNTER("solve.model_cache.hits").Increment();
  REVISE_OBS_GAUGE("mem.bdd_unique_bytes").Set(0);
  REVISE_OBS_COUNTER(runtime_name).Increment();  // non-literal: skipped
  REVISE_FLIGHT_EVENT("solve.model_cache.evict", "1024 entries");
  REVISE_FLIGHT_EVENT(runtime_name, "forwarded identifier: skipped");
  const char* key = REVISE_PROFILE_KEY("sat.solves");
  (void)key;
}

}  // namespace revise
