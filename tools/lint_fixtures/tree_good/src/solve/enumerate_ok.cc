// Known-good fixture: unlimited EnumerateModels is fine inside src/solve/,
// and bounded calls are fine anywhere.

namespace revise {

struct ModelSet {};
struct Formula {};
struct Alphabet {};

ModelSet EnumerateModels(const Formula& f, const Alphabet& alphabet,
                         unsigned limit = 0);

ModelSet InsideSolveLayer(const Formula& f, const Alphabet& alphabet) {
  return EnumerateModels(f, alphabet);  // unlimited, but inside solve/
}

ModelSet BoundedAnywhere(const Formula& f, const Alphabet& alphabet) {
  return EnumerateModels(f, alphabet, 16);  // explicit limit
}

}  // namespace revise
