// Known-good fixture: a bench that writes JSON through the shared
// JsonReporter (which stamps the execution metadata).

namespace revise::bench {

struct JsonReporter {
  JsonReporter(const char* name, const char* path, int* argc, char** argv);
  bool WriteIfRequested();
};

}  // namespace revise::bench

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_sample", "BENCH_sample.json",
                                       &argc, argv);
  return reporter.WriteIfRequested() ? 0 : 1;
}
