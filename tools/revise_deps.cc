// revise_deps: include-graph architecture checks for the revise tree.
//
// Parses every `#include "..."` edge under src/, bench/, tests/, tools/
// and examples/, resolves the quoted path against the project include
// roots, and enforces four invariants:
//
//   include-cycle    the file-level include graph must be acyclic; a
//                    violation is reported with the full cycle path.
//   forbidden-edge   every directory-level edge (module of includer ->
//                    module of includee) must appear in the committed
//                    allowed-edges manifest (tools/revise_deps_layers.txt).
//                    Modules are src/<dir> (named <dir>) plus the
//                    top-level bench/tests/tools/examples trees.
//   stale-edge       a manifest edge no observed include uses fails the
//                    run, so the manifest only shrinks (same policy as
//                    the revise_lint allowlist); the manifest itself must
//                    also be a DAG.
//   unused-include   IWYU-lite: a quoted include none of whose declared
//                    symbols (types, functions, macros, aliases) appear
//                    in the including file.  A file's primary header
//                    (foo.cc -> foo.h) is exempt, and `// keep` or an
//                    IWYU pragma on the include line suppresses the
//                    check for deliberate re-exports (umbrella headers).
//
// System includes (<...>) are outside the graph.  The symbol scan
// over-approximates on purpose: it only has to prove an include *can* be
// load-bearing, so a false "used" is cheap while a false "unused" would
// make the checker unusable.
//
// Usage:
//   revise_deps --root=DIR [--layers=FILE] [--dot=PATH] [--json=PATH]
//
// --dot / --json dump the directory-level graph (Graphviz / JSON) for
// docs; the committed rendering lives at tools/revise_deps_graph.dot.
// Exit status: 0 clean, 1 findings, 2 bad usage.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Include {
  std::string target;  // the quoted path as written
  size_t line = 0;
  bool keep = false;  // `// keep` / IWYU pragma on the line
};

struct File {
  std::string rel;  // '/'-separated path relative to the root
  std::string module;
  std::vector<Include> includes;
  std::vector<size_t> resolved;       // indices into the file table
  std::vector<size_t> resolved_line;  // line of the matching include
  std::vector<bool> resolved_keep;
  std::set<std::string> identifiers;  // every identifier token
  std::set<std::string> symbols;      // declared / defined names
};

struct Finding {
  std::string message;
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// Replaces comments and string/character literals with spaces, preserving
// newlines (the same scanner revise_lint uses; kept independent so the
// two tools stay link-free).
std::string StripCommentsAndLiterals(const std::string& text) {
  std::string out(text.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delimiter;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(text[i - 1]))) {
          size_t open = text.find('(', i + 2);
          if (open == std::string::npos) break;
          raw_delimiter = ")" + text.substr(i + 2, open - (i + 2)) + "\"";
          state = State::kRawString;
          i = open;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && !(i > 0 && IsIdentChar(text[i - 1]))) {
          state = State::kChar;
        } else {
          out[i] = c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (next == '\n') out[i] = '\n';
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          i += raw_delimiter.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// --- include extraction -------------------------------------------------

std::vector<Include> ParseIncludes(const std::string& raw) {
  std::vector<Include> includes;
  std::istringstream in(raw);
  std::string line;
  size_t line_number = 0;
  bool export_block = false;  // between IWYU begin_exports / end_exports
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find("IWYU pragma: begin_exports") != std::string::npos) {
      export_block = true;
      continue;
    }
    if (line.find("IWYU pragma: end_exports") != std::string::npos) {
      export_block = false;
      continue;
    }
    size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (line.compare(i, 7, "include") != 0) continue;
    i += 7;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] != '"') continue;  // <...> is external
    const size_t close = line.find('"', i + 1);
    if (close == std::string::npos) continue;
    Include include;
    include.target = line.substr(i + 1, close - i - 1);
    include.line = line_number;
    include.keep = export_block ||
                   line.find("keep", close) != std::string::npos ||
                   line.find("IWYU", close) != std::string::npos;
    includes.push_back(std::move(include));
  }
  return includes;
}

// --- symbol extraction --------------------------------------------------

// Declared names of a header: #define names, class/struct/enum/union
// names, using/typedef aliases, every identifier directly followed by
// '(' (function declarations; also calls, which only widens the set) and
// every identifier directly followed by '=' (constants).
void ExtractSymbols(const std::string& code, std::set<std::string>* out) {
  const size_t n = code.size();
  size_t i = 0;
  std::string prev_token;
  while (i < n) {
    const char c = code[i];
    if (c == '#') {
      // Only #define exports a name; other directives declare nothing.
      size_t j = i + 1;
      while (j < n && std::isspace(static_cast<unsigned char>(code[j])) &&
             code[j] != '\n') {
        ++j;
      }
      if (code.compare(j, 6, "define") == 0) {
        j += 6;
        while (j < n && std::isspace(static_cast<unsigned char>(code[j])) &&
               code[j] != '\n') {
          ++j;
        }
        size_t end = j;
        while (end < n && IsIdentChar(code[end])) ++end;
        if (end > j) out->insert(code.substr(j, end - j));
        i = end;
      } else {
        while (i < n && code[i] != '\n') ++i;
      }
      continue;
    }
    if (!IsIdentChar(c)) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < n && IsIdentChar(code[end])) ++end;
    const std::string token = code.substr(i, end - i);
    size_t after = end;
    while (after < n &&
           std::isspace(static_cast<unsigned char>(code[after]))) {
      ++after;
    }
    const char next = after < n ? code[after] : '\0';
    const char next2 = after + 1 < n ? code[after + 1] : '\0';
    if (token == "class" || token == "struct" || token == "enum" ||
        token == "union") {
      // Take the last identifier before '{', ';' or a single ':' — that
      // skips `enum class`, attribute macros between keyword and name,
      // and base-class lists.  `template <class T>` is excluded by the
      // '<'/',' look-behind.
      size_t back = i;
      while (back > 0 &&
             std::isspace(static_cast<unsigned char>(code[back - 1]))) {
        --back;
      }
      const char before = back > 0 ? code[back - 1] : '\0';
      if (before != '<' && before != ',') {
        std::string last;
        size_t j = end;
        while (j < n) {
          const char d = code[j];
          if (d == '{' || d == ';') break;
          if (d == ':' && (j + 1 >= n || code[j + 1] != ':') &&
              (j == 0 || code[j - 1] != ':')) {
            break;
          }
          if (IsIdentChar(d)) {
            size_t k = j;
            while (k < n && IsIdentChar(code[k])) ++k;
            last = code.substr(j, k - j);
            j = k;
          } else {
            ++j;
          }
        }
        if (!last.empty()) out->insert(last);
      }
    } else if (token == "using") {
      // `using X = ...` exports X; `using namespace` / `using ns::X`
      // re-export nothing new worth tracking.
      size_t j = after;
      size_t k = j;
      while (k < n && IsIdentChar(code[k])) ++k;
      if (k > j) {
        size_t eq = k;
        while (eq < n &&
               std::isspace(static_cast<unsigned char>(code[eq]))) {
          ++eq;
        }
        if (eq < n && code[eq] == '=') out->insert(code.substr(j, k - j));
      }
    } else if (token == "typedef") {
      std::string last;
      size_t j = end;
      while (j < n && code[j] != ';') {
        if (IsIdentChar(code[j])) {
          size_t k = j;
          while (k < n && IsIdentChar(code[k])) ++k;
          last = code.substr(j, k - j);
          j = k;
        } else {
          ++j;
        }
      }
      if (!last.empty()) out->insert(last);
    } else if (next == '(' ||
               (next == '=' && next2 != '=') ||
               (next == '{' && prev_token != "return")) {
      out->insert(token);
    }
    prev_token = token;
    i = end;
  }
}

void ExtractIdentifiers(const std::string& code, std::set<std::string>* out) {
  size_t i = 0;
  while (i < code.size()) {
    if (!IsIdentChar(code[i])) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    out->insert(code.substr(i, end - i));
    i = end;
  }
}

// --- file collection ----------------------------------------------------

bool ShouldScan(const fs::path& path) {
  const fs::path ext = path.extension();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* files) {
  constexpr std::string_view kTopDirs[] = {"src", "bench", "tests", "tools",
                                           "examples"};
  for (const std::string_view top : kTopDirs) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          ((name.size() > 9 &&
            name.compare(name.size() - 9, 9, "_fixtures") == 0) ||
           name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.'))) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && ShouldScan(it->path())) {
        files->push_back(it->path());
      }
    }
  }
  std::sort(files->begin(), files->end());
}

std::string ModuleOf(const std::string& rel) {
  std::string_view path = rel;
  if (StartsWith(path, "src/")) {
    path.remove_prefix(4);
    const size_t slash = path.find('/');
    return std::string(slash == std::string_view::npos
                           ? path
                           : path.substr(0, slash));
  }
  const size_t slash = path.find('/');
  return std::string(slash == std::string_view::npos ? path
                                                     : path.substr(0, slash));
}

// foo.cc / foo.cpp pairs with foo.h in the same directory.
bool IsPrimaryHeader(const std::string& source_rel,
                     const std::string& header_rel) {
  const fs::path source(source_rel);
  const fs::path header(header_rel);
  return source.parent_path() == header.parent_path() &&
         source.stem() == header.stem() && header.extension() == ".h";
}

// --- cycle detection ----------------------------------------------------

void FindCycles(const std::vector<File>& files,
                std::vector<Finding>* findings) {
  // Iterative three-color DFS; reports the first back edge per start
  // node with the full cycle path.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::vector<size_t> stack;
  std::set<std::string> reported;

  // Recursive lambda via explicit stack of (node, next-edge) frames.
  struct Frame {
    size_t node;
    size_t edge = 0;
  };
  for (size_t start = 0; start < files.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> frames{{start}};
    color[start] = Color::kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.edge < files[frame.node].resolved.size()) {
        const size_t next = files[frame.node].resolved[frame.edge++];
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back(next);
          frames.push_back({next});
        } else if (color[next] == Color::kGray) {
          std::string path;
          bool in_cycle = false;
          for (const size_t node : stack) {
            if (node == next) in_cycle = true;
            if (!in_cycle) continue;
            path += files[node].rel;
            path += " -> ";
          }
          path += files[next].rel;
          if (reported.insert(path).second) {
            findings->push_back({"include cycle: " + path});
          }
        }
      } else {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

// --- manifest -----------------------------------------------------------

struct Manifest {
  std::set<std::pair<std::string, std::string>> edges;
  bool ok = false;
};

Manifest LoadManifest(const fs::path& path) {
  Manifest manifest;
  std::ifstream in(path);
  if (!in) return manifest;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string from, arrow, to;
    if (!(tokens >> from)) continue;
    if (!(tokens >> arrow >> to) || arrow != "->") {
      manifest.ok = false;
      manifest.edges.clear();
      return manifest;
    }
    manifest.edges.insert({from, to});
  }
  manifest.ok = true;
  return manifest;
}

void CheckManifestAcyclic(const Manifest& manifest,
                          std::vector<Finding>* findings) {
  std::set<std::string> nodes;
  for (const auto& [from, to] : manifest.edges) {
    nodes.insert(from);
    nodes.insert(to);
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  // DFS with an explicit path stack; one report is enough (a manifest
  // cycle is a manifest bug, not a per-edge finding).
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    stack.push_back(node);
    for (const auto& [from, to] : manifest.edges) {
      if (from != node) continue;
      if (color[to] == 1) {
        std::string path;
        bool in_cycle = false;
        for (const std::string& n : stack) {
          if (n == to) in_cycle = true;
          if (in_cycle) {
            path += n;
            path += " -> ";
          }
        }
        path += to;
        findings->push_back({"layer manifest cycle: " + path});
        return true;
      }
      if (color[to] == 0 && visit(to)) return true;
    }
    stack.pop_back();
    color[node] = 2;
    return false;
  };
  for (const std::string& node : nodes) {
    if (color[node] == 0 && visit(node)) return;
  }
}

// --- output dumps -------------------------------------------------------

struct ModuleEdge {
  std::string from;
  std::string to;
  size_t count = 0;
};

std::string DotDump(const std::vector<std::string>& modules,
                    const std::vector<ModuleEdge>& edges) {
  std::string out = "// Generated by tools/revise_deps --dot; the layer\n";
  out += "// DAG of the revise tree (modules are src/ subdirectories\n";
  out += "// plus the bench/tests/tools/examples trees).\n";
  out += "digraph revise_deps {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const std::string& module : modules) {
    out += "  \"" + module + "\";\n";
  }
  for (const ModuleEdge& edge : edges) {
    out += "  \"" + edge.from + "\" -> \"" + edge.to + "\" [label=\"" +
           std::to_string(edge.count) + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string JsonDump(const std::vector<std::string>& modules,
                     const std::vector<ModuleEdge>& edges, size_t files,
                     size_t includes) {
  std::string out = "{\n  \"files\": " + std::to_string(files) +
                    ",\n  \"internal_includes\": " +
                    std::to_string(includes) + ",\n  \"modules\": [";
  for (size_t i = 0; i < modules.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += "\"" + modules[i] + "\"";
  }
  out += "],\n  \"edges\": [\n";
  for (size_t i = 0; i < edges.size(); ++i) {
    out += "    {\"from\": \"" + edges[i].from + "\", \"to\": \"" +
           edges[i].to + "\", \"count\": " + std::to_string(edges[i].count) +
           "}";
    out += i + 1 < edges.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool WriteFile(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

int Fail(const char* message) {
  std::fprintf(stderr, "revise_deps: %s\n", message);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path layers;
  fs::path dot_path;
  fs::path json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (StartsWith(arg, "--root=")) {
      root = std::string(arg.substr(7));
    } else if (StartsWith(arg, "--layers=")) {
      layers = std::string(arg.substr(9));
    } else if (StartsWith(arg, "--dot=")) {
      dot_path = std::string(arg.substr(6));
    } else if (StartsWith(arg, "--json=")) {
      json_path = std::string(arg.substr(7));
    } else if (arg == "--help") {
      std::printf(
          "usage: revise_deps --root=DIR [--layers=FILE] [--dot=PATH] "
          "[--json=PATH]\n");
      return 0;
    } else {
      return Fail("unknown argument (see --help)");
    }
  }
  if (root.empty()) return Fail("--root=DIR is required");
  if (!fs::is_directory(root)) return Fail("--root is not a directory");

  std::vector<fs::path> paths;
  CollectFiles(root, &paths);
  std::vector<File> files(paths.size());
  std::map<std::string, size_t> by_rel;
  for (size_t i = 0; i < paths.size(); ++i) {
    files[i].rel = fs::relative(fs::absolute(paths[i]), fs::absolute(root))
                       .generic_string();
    files[i].module = ModuleOf(files[i].rel);
    by_rel[files[i].rel] = i;
  }

  for (size_t i = 0; i < paths.size(); ++i) {
    std::ifstream in(paths[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "revise_deps: cannot read %s\n",
                   paths[i].string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    const std::string code = StripCommentsAndLiterals(raw);
    files[i].includes = ParseIncludes(raw);
    ExtractIdentifiers(code, &files[i].identifiers);
    ExtractSymbols(code, &files[i].symbols);

    // Resolution order mirrors the build's -I flags: src/ (the project
    // include root), then the including file's directory, then the
    // repository root (tests/ includes "tests/test_util.h").
    const fs::path parent = fs::path(files[i].rel).parent_path();
    for (const Include& include : files[i].includes) {
      const std::string candidates[] = {
          (fs::path("src") / include.target).lexically_normal()
              .generic_string(),
          (parent / include.target).lexically_normal().generic_string(),
          fs::path(include.target).lexically_normal().generic_string(),
      };
      for (const std::string& candidate : candidates) {
        const auto it = by_rel.find(candidate);
        if (it != by_rel.end()) {
          files[i].resolved.push_back(it->second);
          files[i].resolved_line.push_back(include.line);
          files[i].resolved_keep.push_back(include.keep);
          break;
        }
      }
    }
  }

  // A `// keep` include is a re-export: the includer offers the target's
  // symbols to its own includers (the umbrella-header case —
  // core/librevise.h exists so consumers can include one file).  Fold
  // the keep-closure into each file's exported symbol set, memoized;
  // the in-progress mark makes a keep cycle terminate (it is still
  // reported by the cycle check).
  std::vector<int> export_state(files.size(), 0);  // 0 new, 1 busy, 2 done
  std::function<void(size_t)> fold_exports = [&](size_t i) {
    if (export_state[i] != 0) return;
    export_state[i] = 1;
    for (size_t e = 0; e < files[i].resolved.size(); ++e) {
      if (!files[i].resolved_keep[e]) continue;
      const size_t target = files[i].resolved[e];
      if (export_state[target] == 0) fold_exports(target);
      if (export_state[target] != 1) {
        files[i].symbols.insert(files[target].symbols.begin(),
                                files[target].symbols.end());
      }
    }
    export_state[i] = 2;
  };
  for (size_t i = 0; i < files.size(); ++i) fold_exports(i);

  std::vector<Finding> findings;

  // 1. File-level include cycles.
  FindCycles(files, &findings);

  // 2. Directory-level edges vs the manifest.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, size_t>>
      observed;  // edge -> first example (file, line)
  size_t internal_includes = 0;
  for (const File& file : files) {
    for (size_t e = 0; e < file.resolved.size(); ++e) {
      ++internal_includes;
      const File& target = files[file.resolved[e]];
      if (target.module == file.module) continue;
      observed.emplace(std::make_pair(file.module, target.module),
                       std::make_pair(file.rel, file.resolved_line[e]));
    }
  }
  if (!layers.empty()) {
    const Manifest manifest = LoadManifest(layers);
    if (!manifest.ok) return Fail("cannot parse layers manifest");
    CheckManifestAcyclic(manifest, &findings);
    for (const auto& [edge, example] : observed) {
      if (manifest.edges.count(edge) == 0) {
        findings.push_back(
            {"forbidden edge " + edge.first + " -> " + edge.second + " (" +
             example.first + ":" + std::to_string(example.second) +
             "); allowed edges are committed in the layers manifest"});
      }
    }
    for (const auto& edge : manifest.edges) {
      if (observed.count(edge) == 0) {
        findings.push_back({"stale layer edge " + edge.first + " -> " +
                            edge.second +
                            " (no include uses it; remove it from the "
                            "manifest)"});
      }
    }
  }

  // 3. IWYU-lite: includes none of whose declared symbols appear.
  for (const File& file : files) {
    for (size_t e = 0; e < file.resolved.size(); ++e) {
      const File& target = files[file.resolved[e]];
      if (file.resolved_keep[e]) continue;
      if (IsPrimaryHeader(file.rel, target.rel)) continue;
      if (target.symbols.empty()) continue;
      bool used = false;
      for (const std::string& symbol : target.symbols) {
        if (file.identifiers.count(symbol) != 0) {
          used = true;
          break;
        }
      }
      if (!used) {
        findings.push_back(
            {file.rel + ":" + std::to_string(file.resolved_line[e]) +
             ": unused include \"" + target.rel +
             "\" (none of its declared symbols appear; delete it or mark "
             "the line // keep)"});
      }
    }
  }

  // 4. Graph dumps.
  std::map<std::pair<std::string, std::string>, size_t> edge_counts;
  std::set<std::string> module_set;
  for (const File& file : files) {
    module_set.insert(file.module);
    for (const size_t target : file.resolved) {
      if (files[target].module == file.module) continue;
      ++edge_counts[{file.module, files[target].module}];
    }
  }
  std::vector<std::string> modules(module_set.begin(), module_set.end());
  std::vector<ModuleEdge> edges;
  for (const auto& [edge, count] : edge_counts) {
    edges.push_back({edge.first, edge.second, count});
  }
  if (!dot_path.empty() && !WriteFile(dot_path, DotDump(modules, edges))) {
    return Fail("cannot write --dot output");
  }
  if (!json_path.empty() &&
      !WriteFile(json_path,
                 JsonDump(modules, edges, files.size(), internal_includes))) {
    return Fail("cannot write --json output");
  }

  for (const Finding& finding : findings) {
    std::fprintf(stderr, "revise_deps: %s\n", finding.message.c_str());
  }
  if (findings.empty()) {
    std::printf(
        "revise_deps: %zu files, %zu internal includes, %zu modules, "
        "%zu cross-module edges, 0 findings\n",
        files.size(), internal_includes, modules.size(), edges.size());
    return 0;
  }
  std::fprintf(stderr, "revise_deps: %zu findings\n", findings.size());
  return 1;
}
