// revise_om_check: validate an OpenMetrics exposition produced by the
// statsz /metrics endpoint or the periodic metrics dumper.
//
// Reads the exposition from a file (or stdin with "-"), runs it through
// the strict round-trip parser (obs/openmetrics.h — cumulative-bucket
// monotonicity, +Inf == _count, single trailing # EOF), and optionally
// asserts that specific metrics are present.  The CI statsz smoke job
// scrapes a live bench and pipes the body through this tool, so a
// malformed exposition fails the build, not the Prometheus deployment
// that first ingests it.
//
// Usage:
//   revise_om_check <file|-> [--require=<metric-name>]...
//
// Exit status: 0 when the document parses and every required metric is
// present; 1 otherwise (details on stderr).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/openmetrics.h"

namespace {

std::string ReadAll(std::FILE* file) {
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  const char* input = nullptr;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--require=", 10) == 0) {
      required.emplace_back(argv[i] + 10);
    } else if (input == nullptr) {
      input = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: revise_om_check <file|-> [--require=<name>]...\n");
      return 1;
    }
  }
  if (input == nullptr) {
    std::fprintf(stderr,
                 "usage: revise_om_check <file|-> [--require=<name>]...\n");
    return 1;
  }

  std::string text;
  if (std::strcmp(input, "-") == 0) {
    text = ReadAll(stdin);
  } else {
    std::FILE* file = std::fopen(input, "r");
    if (file == nullptr) {
      std::fprintf(stderr, "revise_om_check: cannot open %s\n", input);
      return 1;
    }
    text = ReadAll(file);
    std::fclose(file);
  }

  const revise::StatusOr<revise::obs::ParsedMetrics> parsed =
      revise::obs::ParseOpenMetrics(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "revise_om_check: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  int missing = 0;
  for (const std::string& name : required) {
    const bool found = parsed->counters.count(name) != 0 ||
                       parsed->gauges.count(name) != 0 ||
                       parsed->histograms.count(name) != 0 ||
                       parsed->infos.count(name) != 0;
    if (!found) {
      std::fprintf(stderr, "revise_om_check: required metric '%s' missing\n",
                   name.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;

  std::printf("revise_om_check: OK — %zu counters, %zu gauges, "
              "%zu histograms, %zu info families\n",
              parsed->counters.size(), parsed->gauges.size(),
              parsed->histograms.size(), parsed->infos.size());
  return 0;
}
