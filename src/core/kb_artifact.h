// Save / load a KnowledgeBase as a compiled .rkb artifact.
//
// Saving compiles the knowledge base's current state — theory, update
// sequence, folded representation (under kCompact that is the paper's
// precomputed compact revision, fresh letters included), the canonical
// model set and its ROBDD — into the checksummed container of
// src/artifact/.  Loading validates every checksum, reconstructs the
// formulas over the caller's vocabulary, seeds the Models() memo from
// the packed rows, and primes the global model cache, so the first query
// after a cold start costs a file read instead of an AllSAT sweep.

#ifndef REVISE_CORE_KB_ARTIFACT_H_
#define REVISE_CORE_KB_ARTIFACT_H_

#include <string>

#include "core/knowledge_base.h"
#include "logic/vocabulary.h"
#include "util/status.h"

namespace revise {

// Compiles `kb` into a .rkb file at `path` (overwriting).  Computes the
// model set if the KB has not materialized it yet.
Status SaveKnowledgeBaseArtifact(const KnowledgeBase& kb,
                                 const std::string& path);

// Loads a .rkb file, interning its names into `*vocabulary` (which need
// not be empty; variable ids are remapped).  `vocabulary` must outlive
// the returned knowledge base.
StatusOr<KnowledgeBase> LoadKnowledgeBaseArtifact(const std::string& path,
                                                  Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_CORE_KB_ARTIFACT_H_
