#include "core/advice_oracle.h"

#include "revision/formula_based.h"
#include "solve/services.h"

namespace revise {

AdviceOracle::AdviceOracle(int n, Vocabulary* vocabulary)
    : family_(n, vocabulary),
      advice_(GfuvFormula(family_.t, family_.p)) {}

bool AdviceOracle::IsSatisfiable(const std::vector<size_t>& pi) const {
  return Entails(advice_, family_.Query(pi));
}

}  // namespace revise
