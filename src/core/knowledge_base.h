// KnowledgeBase: the top-level API a downstream user programs against.
//
// A knowledge base holds a theory, receives a stream of revisions under a
// chosen operator, and answers queries.  Three storage strategies realize
// the computational alternatives the paper discusses:
//
//  * kDelayed  — store T and the sequence P^1..P^m; compute the revision
//                on demand at query time.  Always available; this is the
//                strategy Section 8 recommends, and polynomial space is
//                guaranteed (Table 2's caveat: keep the P^i around).
//  * kExplicit — eagerly fold every revision into an explicit equivalent
//                formula.  Sizes can explode exactly where Tables 1-2 say
//                NO; ExplicitSize() exposes the growth.
//  * kCompact  — eagerly fold using the paper's query-equivalent compact
//                constructions (Theorem 5.1 for Dalal, Corollary 5.2 for
//                Weber, the Section 6 schemes for Winslett / Borgida /
//                Satoh / Forbus — these require each P to have a small
//                alphabet — and the trivial construction for WIDTIO).
//                Queries over the original letters are answered on the
//                compact formula by ordinary entailment.

#ifndef REVISE_CORE_KNOWLEDGE_BASE_H_
#define REVISE_CORE_KNOWLEDGE_BASE_H_

#include <optional>
#include <vector>

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "model/model_set.h"
#include "revision/operator.h"
#include "util/status.h"

namespace revise {

enum class RevisionStrategy { kDelayed, kExplicit, kCompact };

class KnowledgeBase {
 public:
  // `vocabulary` must outlive the knowledge base (fresh letters are minted
  // by the compact strategy).
  KnowledgeBase(Theory initial, const RevisionOperator* op,
                RevisionStrategy strategy, Vocabulary* vocabulary);

  // Unsupported combinations (kCompact with GFUV or Nebel, whose very
  // point in the paper is that no compact representation exists) yield an
  // error.
  static StatusOr<KnowledgeBase> Create(Theory initial,
                                        const RevisionOperator* op,
                                        RevisionStrategy strategy,
                                        Vocabulary* vocabulary);

  // Resumes from a saved snapshot (core/kb_artifact.h): the stored state
  // is adopted verbatim and `models`, when present, seeds the Models()
  // memo so the first query after a cold start skips enumeration.
  // Rejects the same operator/strategy combinations as Create.
  static StatusOr<KnowledgeBase> FromSnapshot(
      Theory initial, std::vector<Formula> updates, Formula folded,
      Theory folded_theory, std::optional<ModelSet> models,
      const RevisionOperator* op, RevisionStrategy strategy,
      Vocabulary* vocabulary);

  const RevisionOperator& op() const { return *op_; }
  RevisionStrategy strategy() const { return strategy_; }
  const Vocabulary& vocabulary() const { return *vocabulary_; }

  // Incorporates the new information P.
  void Revise(const Formula& p);

  // Does the (iterated-)revised knowledge base entail `query`?
  [[nodiscard]] bool Ask(const Formula& query) const;

  // Is `m` (over `alphabet` ⊇ the KB's letters) a model of the revised
  // knowledge base?  Note: under kCompact this requires recomputing the
  // projection — the compact representation is only QUERY-equivalent, the
  // paper's criterion (1); cheap model checking is exactly what it gives
  // up (Section 1).
  [[nodiscard]] bool IsModel(const Interpretation& m,
                             const Alphabet& alphabet) const;

  // The models of the current knowledge base over its letters.
  [[nodiscard]] ModelSet Models() const;

  // The letters of the original theory and all revisions so far.
  [[nodiscard]] Alphabet CurrentAlphabet() const;

  // Size (paper's |.| measure) of the stored representation: the explicit
  // or compact formula, or |T| + sum |P^i| for the delayed strategy.
  uint64_t StoredSize() const;

  size_t num_revisions() const { return updates_.size(); }

  // Stored state, exposed for serialization (core/kb_artifact.h).
  const Theory& initial() const { return initial_; }
  const std::vector<Formula>& updates() const { return updates_; }
  const Formula& folded() const { return folded_; }
  const Theory& folded_theory() const { return folded_theory_; }

 private:
  ModelSet ComputeModels() const;

  const RevisionOperator* op_;
  RevisionStrategy strategy_;
  Vocabulary* vocabulary_;

  Theory initial_;
  std::vector<Formula> updates_;  // kept for kDelayed and for IsModel

  // kExplicit / kCompact: the folded representation (initially /\ T).
  Formula folded_;
  // WIDTIO folds theories, not formulas.
  Theory folded_theory_;

  // Memo for Models(): filled on first computation (or seeded from a
  // loaded artifact), invalidated by Revise.  KnowledgeBase is a
  // single-threaded object, as before — concurrent const access is not
  // synchronized.
  mutable std::optional<ModelSet> models_memo_;
};

}  // namespace revise

#endif  // REVISE_CORE_KNOWLEDGE_BASE_H_
