#include "core/io.h"

#include <fstream>
#include <sstream>

#include "logic/parser.h"
#include "logic/printer.h"

namespace revise {

StatusOr<Theory> TheoryFromText(const std::string& text,
                                Vocabulary* vocabulary) {
  Theory theory;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (const char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    StatusOr<Formula> f = Parse(line, vocabulary);
    if (!f.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_number) +
                                  ": " + f.status().message());
    }
    theory.Add(std::move(f).value());
  }
  return theory;
}

std::string TheoryToText(const Theory& theory,
                         const Vocabulary& vocabulary) {
  std::string out;
  for (const Formula& f : theory) {
    out += ToString(f, vocabulary);
    out += "\n";
  }
  return out;
}

StatusOr<Theory> LoadTheoryFromFile(const std::string& path,
                                    Vocabulary* vocabulary) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TheoryFromText(buffer.str(), vocabulary);
}

Status SaveTheoryToFile(const Theory& theory, const Vocabulary& vocabulary,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return InternalError("cannot write " + path);
  }
  out << "# librevise theory file\n" << TheoryToText(theory, vocabulary);
  // An ofstream buffers: without an explicit flush the data may still be
  // in memory here, and a short write (e.g. a full disk) would only
  // surface at destruction — after Ok was already returned.
  out.flush();
  if (!out.good()) {
    return InternalError("short write to " + path);
  }
  out.close();
  if (out.fail()) {
    return InternalError("close of " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace revise
