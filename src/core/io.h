// Plain-text persistence for theories and update logs.
//
// Format: one formula per line in the parser's concrete syntax; blank
// lines and lines starting with '#' are ignored.  The delayed-strategy
// workflow the paper recommends (keep T and the whole update sequence
// P^1..P^m around, Section 8) needs exactly this: durable storage of the
// base and the log.

#ifndef REVISE_CORE_IO_H_
#define REVISE_CORE_IO_H_

#include <string>

#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "util/status.h"

namespace revise {

// Parses a theory from the line-oriented text format.
StatusOr<Theory> TheoryFromText(const std::string& text,
                                Vocabulary* vocabulary);
// Renders a theory to the same format (one formula per line).
std::string TheoryToText(const Theory& theory,
                         const Vocabulary& vocabulary);

StatusOr<Theory> LoadTheoryFromFile(const std::string& path,
                                    Vocabulary* vocabulary);
Status SaveTheoryToFile(const Theory& theory, const Vocabulary& vocabulary,
                        const std::string& path);

}  // namespace revise

#endif  // REVISE_CORE_IO_H_
