// The advice-taking machine of Theorems 2.2/2.3, packaged.
//
// For a fixed size n, an AdviceOracle materializes the advice string —
// the revised knowledge base T_n * P_n of the Theorem 3.1 family — once,
// and then decides the satisfiability of ANY 3-SAT_n instance with a
// single entailment query against it.  This is the object whose
// polynomial-size inexistence the paper proves; building it makes the
// exponential cost tangible (see AdviceSize()).

#ifndef REVISE_CORE_ADVICE_ORACLE_H_
#define REVISE_CORE_ADVICE_ORACLE_H_

#include <vector>

#include "hardness/families.h"
#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace revise {

class AdviceOracle {
 public:
  // Builds the family and computes the advice (T_n *_GFUV P_n).  The
  // construction cost grows exponentially with n — n = 3 is instant,
  // n = 4 is already heavy.
  AdviceOracle(int n, Vocabulary* vocabulary);

  // Decides satisfiability of the instance (clause indices into
  // tau_n^max) through the revision query T_n * P_n |= Q_pi.
  bool IsSatisfiable(const std::vector<size_t>& pi) const;

  // Size of the materialized advice, in variable occurrences.
  uint64_t AdviceSize() const { return advice_.VarOccurrences(); }

  const TauMax& tau() const { return family_.tau; }

 private:
  Theorem31Family family_;
  Formula advice_;
};

}  // namespace revise

#endif  // REVISE_CORE_ADVICE_ORACLE_H_
