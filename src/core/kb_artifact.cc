#include "core/kb_artifact.h"

#include <chrono>
#include <optional>
#include <utility>

#include "artifact/kb_image.h"
#include "obs/metrics.h"
#include "solve/model_cache.h"

namespace revise {
namespace {

uint32_t StrategyToWire(RevisionStrategy strategy) {
  switch (strategy) {
    case RevisionStrategy::kDelayed:
      return artifact::kStrategyDelayed;
    case RevisionStrategy::kExplicit:
      return artifact::kStrategyExplicit;
    case RevisionStrategy::kCompact:
      return artifact::kStrategyCompact;
  }
  return artifact::kStrategyDelayed;
}

StatusOr<RevisionStrategy> StrategyFromWire(uint32_t strategy) {
  switch (strategy) {
    case artifact::kStrategyDelayed:
      return RevisionStrategy::kDelayed;
    case artifact::kStrategyExplicit:
      return RevisionStrategy::kExplicit;
    case artifact::kStrategyCompact:
      return RevisionStrategy::kCompact;
  }
  return InvalidArgumentError("artifact strategy " +
                              std::to_string(strategy) + " unknown");
}

}  // namespace

Status SaveKnowledgeBaseArtifact(const KnowledgeBase& kb,
                                 const std::string& path) {
  artifact::KbImage image;
  image.operator_id = kb.op().id();
  image.strategy = StrategyToWire(kb.strategy());
  image.initial = kb.initial();
  image.updates = kb.updates();
  image.folded = kb.folded();
  image.folded_theory = kb.folded_theory();
  image.models = kb.Models();
  return artifact::WriteKbArtifact(image, kb.vocabulary(), path);
}

StatusOr<KnowledgeBase> LoadKnowledgeBaseArtifact(const std::string& path,
                                                  Vocabulary* vocabulary) {
  const auto start = std::chrono::steady_clock::now();
  StatusOr<artifact::KbArtifact> opened = artifact::KbArtifact::Open(path);
  if (!opened.ok()) return opened.status();
  StatusOr<artifact::KbImage> image = opened->Materialize(vocabulary);
  if (!image.ok()) return image.status();

  const RevisionOperator* op = OperatorById(image->operator_id);
  StatusOr<RevisionStrategy> strategy = StrategyFromWire(image->strategy);
  if (!strategy.ok()) return strategy.status();

  // Prime the process-wide enumeration cache: queries on other handles
  // to the same folded formula hit instead of re-sweeping.  The delayed
  // strategy never enumerates the folded formula, so there is nothing to
  // prime there — its fast path is the Models() memo seeded below.
  if (*strategy != RevisionStrategy::kDelayed) {
    ModelCache::Global().Insert(image->folded, image->models.alphabet(),
                                image->models);
    REVISE_OBS_COUNTER("artifact.cache_primes").Increment();
  }

  StatusOr<KnowledgeBase> kb = KnowledgeBase::FromSnapshot(
      std::move(image->initial), std::move(image->updates),
      std::move(image->folded), std::move(image->folded_theory),
      std::make_optional(std::move(image->models)), op, *strategy,
      vocabulary);
  if (kb.ok()) {
    REVISE_OBS_COUNTER("artifact.loads").Increment();
    REVISE_OBS_HISTOGRAM("artifact.load_ms")
        .Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  }
  return kb;
}

}  // namespace revise
