#include "core/knowledge_base.h"

#include "compact/iterated_revision.h"
#include "logic/evaluate.h"
#include "model/canonical.h"
#include "revision/formula_based.h"
#include "revision/iterated.h"
#include "solve/services.h"
#include "util/check.h"

namespace revise {

KnowledgeBase::KnowledgeBase(Theory initial, const RevisionOperator* op,
                             RevisionStrategy strategy,
                             Vocabulary* vocabulary)
    : op_(op),
      strategy_(strategy),
      vocabulary_(vocabulary),
      initial_(std::move(initial)),
      folded_(initial_.AsFormula()),
      folded_theory_(initial_) {
  REVISE_CHECK(op != nullptr);
  REVISE_CHECK(vocabulary != nullptr);
}

StatusOr<KnowledgeBase> KnowledgeBase::Create(Theory initial,
                                              const RevisionOperator* op,
                                              RevisionStrategy strategy,
                                              Vocabulary* vocabulary) {
  if (op == nullptr) return InvalidArgumentError("null operator");
  if (strategy == RevisionStrategy::kCompact &&
      (op->id() == OperatorId::kGfuv || op->id() == OperatorId::kNebel)) {
    return InvalidArgumentError(
        std::string(op->name()) +
        " admits no compact representation (Theorems 3.1 / 4.1); use the "
        "delayed strategy");
  }
  return KnowledgeBase(std::move(initial), op, strategy, vocabulary);
}

StatusOr<KnowledgeBase> KnowledgeBase::FromSnapshot(
    Theory initial, std::vector<Formula> updates, Formula folded,
    Theory folded_theory, std::optional<ModelSet> models,
    const RevisionOperator* op, RevisionStrategy strategy,
    Vocabulary* vocabulary) {
  StatusOr<KnowledgeBase> kb =
      Create(std::move(initial), op, strategy, vocabulary);
  if (!kb.ok()) return kb;
  kb->updates_ = std::move(updates);
  kb->folded_ = std::move(folded);
  kb->folded_theory_ = std::move(folded_theory);
  kb->models_memo_ = std::move(models);
  return kb;
}

void KnowledgeBase::Revise(const Formula& p) {
  updates_.push_back(p);
  models_memo_.reset();
  switch (strategy_) {
    case RevisionStrategy::kDelayed:
      return;  // nothing to fold
    case RevisionStrategy::kExplicit: {
      if (op_->id() == OperatorId::kWidtio) {
        folded_theory_ = WidtioTheory(folded_theory_, p);
        folded_ = folded_theory_.AsFormula();
        return;
      }
      // Fold through the single-step operator API.  The first revision
      // sees the original theory structure (formula-based operators are
      // sensitive to it); later ones the folded singleton.
      folded_ = op_->ReviseFormula(folded_theory_, p);
      folded_theory_ = Theory({folded_});
      return;
    }
    case RevisionStrategy::kCompact: {
      switch (op_->id()) {
        case OperatorId::kDalal:
          folded_ = DalalCompactStep(folded_, p, CurrentAlphabet().vars(),
                                     vocabulary_);
          return;
        case OperatorId::kWeber:
          folded_ = WeberCompactStep(folded_, p, CurrentAlphabet().vars(),
                                     vocabulary_);
          return;
        case OperatorId::kWinslett:
          folded_ = WinslettCompactStep(folded_, p, vocabulary_);
          return;
        case OperatorId::kBorgida:
          folded_ = BorgidaCompactStep(folded_, p, vocabulary_);
          return;
        case OperatorId::kSatoh:
          folded_ = SatohCompactStep(folded_, p, vocabulary_);
          return;
        case OperatorId::kForbus:
          folded_ = ForbusCompactStep(folded_, p, vocabulary_);
          return;
        case OperatorId::kWidtio:
          folded_theory_ = WidtioTheory(folded_theory_, p);
          folded_ = folded_theory_.AsFormula();
          return;
        case OperatorId::kGfuv:
        case OperatorId::kNebel:
          REVISE_CHECK(false);  // rejected by Create
          return;
      }
      return;
    }
  }
}

Alphabet KnowledgeBase::CurrentAlphabet() const {
  return IteratedAlphabet(initial_, updates_);
}

ModelSet KnowledgeBase::Models() const {
  if (!models_memo_.has_value()) {
    models_memo_ = ComputeModels();
  }
  return *models_memo_;
}

ModelSet KnowledgeBase::ComputeModels() const {
  const Alphabet alphabet = CurrentAlphabet();
  if (strategy_ == RevisionStrategy::kDelayed) {
    return IteratedReviseModels(*op_, initial_, updates_, alphabet);
  }
  return EnumerateModels(folded_, alphabet);
}

bool KnowledgeBase::Ask(const Formula& query) const {
  if (strategy_ == RevisionStrategy::kDelayed) {
    // Compute the revision on demand (the paper's recommended strategy):
    // materialize the iterated model set, then test entailment.  Letters
    // of the query outside the knowledge base are unconstrained, which
    // Entails handles through the canonical representation.
    return Entails(CanonicalDnf(Models()), query);
  }
  // Explicit / compact: plain entailment on the stored formula.  Under
  // kCompact this is sound for queries over the original letters by
  // query equivalence (criterion (1)).
  return Entails(folded_, query);
}

bool KnowledgeBase::IsModel(const Interpretation& m,
                            const Alphabet& alphabet) const {
  const Alphabet own = CurrentAlphabet();
  return Models().Contains(Reinterpret(m, alphabet, own));
}

uint64_t KnowledgeBase::StoredSize() const {
  if (strategy_ == RevisionStrategy::kDelayed) {
    uint64_t size = initial_.VarOccurrences();
    for (const Formula& p : updates_) size += p.VarOccurrences();
    return size;
  }
  return folded_.VarOccurrences();
}

}  // namespace revise
