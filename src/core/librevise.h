// Umbrella header: the public API of librevise.
//
// Most programs only need this header.  See README.md for a quickstart and
// DESIGN.md for the module map.

#ifndef REVISE_CORE_LIBREVISE_H_
#define REVISE_CORE_LIBREVISE_H_

// IWYU pragma: begin_exports
#include "bdd/bdd.h"                      // Section 7: ROBDDs with ASK
#include "compact/bounded_revision.h"     // formulas (5)-(9), Section 4
#include "compact/circuits.h"             // EXA and counting circuits
#include "compact/iterated_revision.h"    // Phi_m, formula (10), (12)-(16)
#include "compact/query.h"                // Delta_2^p[log n] query pipeline
#include "compact/single_revision.h"      // Theorems 3.4 / 3.5
#include "core/advice_oracle.h"           // Theorems 2.2/2.3, runnable
#include "core/io.h"                      // theory file I/O
#include "core/kb_artifact.h"             // compiled .rkb save / load
#include "core/knowledge_base.h"          // KnowledgeBase facade
#include "logic/cnf_transform.h"
#include "logic/evaluate.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/substitute.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "model/canonical.h"
#include "model/model_set.h"
#include "revision/explain.h"             // EXPLAIN cost attribution
#include "revision/formula_based.h"       // W(T,P), GFUV, WIDTIO, Nebel
#include "revision/iterated.h"
#include "revision/model_based.h"
#include "revision/operator.h"            // the nine operators
#include "revision/postulates.h"          // KM postulate checker
#include "solve/distance.h"               // k_{T,P}, delta(T,P), Omega
#include "solve/services.h"               // SAT-backed semantic services
// IWYU pragma: end_exports

#endif  // REVISE_CORE_LIBREVISE_H_
