// Alphabets and interpretations.
//
// Following the paper's preliminaries, an interpretation is a truth
// assignment to the letters of an alphabet; it is identified with the set of
// letters mapped to true.  Symmetric difference (Delta), Hamming distance
// and subset tests between interpretations over the *same* alphabet are the
// basic ingredients of every model-based revision operator.
//
// Both interpretations and "difference sets" (sets of letters) are
// represented by the same bit-vector type, exactly as in the paper where
// both are sets of letters.

#ifndef REVISE_LOGIC_INTERPRETATION_H_
#define REVISE_LOGIC_INTERPRETATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logic/vocabulary.h"

namespace revise {

// An immutable, sorted, duplicate-free set of variables: the alphabet over
// which interpretations are defined.
class Alphabet {
 public:
  Alphabet() = default;
  // Sorts and removes duplicates.
  explicit Alphabet(std::vector<Var> vars);

  size_t size() const { return vars_.size(); }
  Var var(size_t index) const { return vars_[index]; }
  const std::vector<Var>& vars() const { return vars_; }

  // Position of `var` within the alphabet, or nullopt if absent.
  std::optional<size_t> IndexOf(Var var) const;
  bool Contains(Var var) const { return IndexOf(var).has_value(); }

  // Set-union of two alphabets.
  static Alphabet Union(const Alphabet& a, const Alphabet& b);

  bool operator==(const Alphabet& other) const {
    return vars_ == other.vars_;
  }

 private:
  std::vector<Var> vars_;
};

// A truth assignment to the letters of an alphabet, stored positionally:
// bit i is the value of alphabet.var(i).  The Interpretation itself does
// not hold a reference to the alphabet; callers pair the two.
class Interpretation {
 public:
  Interpretation() = default;
  // All-false interpretation over `size` letters (the empty set).
  explicit Interpretation(size_t size);

  size_t size() const { return size_; }

  bool Get(size_t index) const {
    return (words_[index >> 6] >> (index & 63)) & 1;
  }
  void Set(size_t index, bool value) {
    uint64_t mask = uint64_t{1} << (index & 63);
    if (value) {
      words_[index >> 6] |= mask;
    } else {
      words_[index >> 6] &= ~mask;
    }
  }

  // Number of letters mapped to true (|M| as a set).
  size_t Cardinality() const;
  bool Empty() const { return Cardinality() == 0; }

  // Symmetric difference M Delta N (requires same size).
  Interpretation SymmetricDifference(const Interpretation& other) const;
  // |M Delta N|.
  size_t HammingDistance(const Interpretation& other) const;
  // |M Delta N| if it is <= cap, otherwise cap + 1 — the inner loops of
  // the distance-based kernels only care whether a pair beats the current
  // bound, so the word-at-a-time count exits as soon as it exceeds `cap`.
  size_t HammingDistanceCapped(const Interpretation& other, size_t cap) const;
  // Set containment of the true-letters: this subseteq other.
  bool IsSubsetOf(const Interpretation& other) const;
  // Strict containment.
  bool IsProperSubsetOf(const Interpretation& other) const;
  // True iff (this Delta other) is NOT a subset of mask, i.e. the two
  // interpretations differ on some letter outside `mask`.  Equivalent to
  // !SymmetricDifference(other).IsSubsetOf(mask) without materializing the
  // difference, exiting at the first offending word (Weber's kernel test).
  bool DiffersOutside(const Interpretation& other,
                      const Interpretation& mask) const;

  // Set union / intersection of the true-letters.
  Interpretation Union(const Interpretation& other) const;
  Interpretation Intersection(const Interpretation& other) const;
  // Letters true in this but not in other.
  Interpretation Minus(const Interpretation& other) const;

  // The packed 64-bit words, bit i of word i/64 being letter i; tail bits
  // beyond size() are zero by construction.  The packed kernel layer
  // (src/kernel/) copies these into its row-major matrices.
  const std::vector<uint64_t>& words() const { return words_; }
  // Builds an interpretation over `size` letters from ceil(size / 64)
  // packed words.  Tail bits of the last word beyond `size` must be zero.
  static Interpretation FromWords(size_t size, const uint64_t* words);

  // The i-th of the 2^n interpretations over n letters, bit j of `index`
  // giving the value of letter j.  Requires n <= 63.
  static Interpretation FromIndex(size_t n, uint64_t index);
  // Inverse of FromIndex.  Requires size() <= 63.
  uint64_t ToIndex() const;

  // Renders as a set of letter names, e.g. "{a, c}".
  std::string ToString(const Alphabet& alphabet,
                       const Vocabulary& vocabulary) const;

  bool operator==(const Interpretation& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  // Lexicographic order, giving ModelSet a canonical ordering.
  bool operator<(const Interpretation& other) const;

  // Hash usable with unordered containers.
  size_t Hash() const;

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

struct InterpretationHash {
  size_t operator()(const Interpretation& m) const { return m.Hash(); }
};

// Re-expresses an interpretation `m` over `from` as one over `to`.
// Letters of `to` absent from `from` become false; letters of `from` absent
// from `to` are dropped (projection).
Interpretation Reinterpret(const Interpretation& m, const Alphabet& from,
                           const Alphabet& to);

}  // namespace revise

#endif  // REVISE_LOGIC_INTERPRETATION_H_
