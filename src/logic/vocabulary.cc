#include "logic/vocabulary.h"

#include <string>

#include "util/check.h"

namespace revise {

Var Vocabulary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  Var var = static_cast<Var>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), var);
  return var;
}

Var Vocabulary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidVar : it->second;
}

Var Vocabulary::Fresh(std::string_view prefix) {
  for (;;) {
    std::string candidate =
        std::string(prefix) + "#" + std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

std::vector<Var> Vocabulary::FreshBlock(std::string_view prefix,
                                        size_t count) {
  std::vector<Var> vars;
  vars.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    vars.push_back(Fresh(prefix));
  }
  return vars;
}

const std::string& Vocabulary::Name(Var var) const {
  REVISE_CHECK_LT(var, names_.size());
  return names_[var];
}

}  // namespace revise
