// Substitution of letters in formulas.
//
// The paper's notation P[x/F] (replace every occurrence of letter x by
// formula F) and its simultaneous generalization P[X/Y], plus the two
// special cases used throughout Sections 3-6: renaming a block of letters
// to a fresh copy (T[X/Y] with Y letters), and flipping a subset of letters
// to their negations (T[S/neg S], Proposition 4.2).

#ifndef REVISE_LOGIC_SUBSTITUTE_H_
#define REVISE_LOGIC_SUBSTITUTE_H_

#include <unordered_map>
#include <vector>

#include "logic/formula.h"

namespace revise {

// Simultaneous substitution: each occurrence of a key variable is replaced
// by the mapped formula.  All replacements happen at once (the paper's
// "simultaneously replaced").
Formula Substitute(const Formula& f,
                   const std::unordered_map<Var, Formula>& map);

// P[x/g].
Formula Substitute(const Formula& f, Var x, const Formula& g);

// P[X/Y] where X and Y are parallel ordered sets of letters (renaming).
Formula RenameVars(const Formula& f, const std::vector<Var>& from,
                   const std::vector<Var>& to);

// T[S/neg S]: every occurrence of a letter in `s` is replaced by its
// negation (Proposition 4.2's F[H/bar H]).
Formula FlipVars(const Formula& f, const std::vector<Var>& s);

}  // namespace revise

#endif  // REVISE_LOGIC_SUBSTITUTE_H_
