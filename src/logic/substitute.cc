#include "logic/substitute.h"

#include <utility>

#include "util/check.h"

namespace revise {

namespace {

Formula SubstituteRec(const Formula& f,
                      const std::unordered_map<Var, Formula>& map,
                      std::unordered_map<const void*, Formula>* memo) {
  auto it = memo->find(f.id());
  if (it != memo->end()) return it->second;
  Formula result;
  switch (f.kind()) {
    case Connective::kConst:
      result = f;
      break;
    case Connective::kVar: {
      auto entry = map.find(f.var());
      result = entry == map.end() ? f : entry->second;
      break;
    }
    case Connective::kNot:
      result = Formula::Not(SubstituteRec(f.child(0), map, memo));
      break;
    case Connective::kAnd:
    case Connective::kOr: {
      std::vector<Formula> children;
      children.reserve(f.arity());
      for (size_t i = 0; i < f.arity(); ++i) {
        children.push_back(SubstituteRec(f.child(i), map, memo));
      }
      result = f.kind() == Connective::kAnd
                   ? Formula::And(std::span<const Formula>(children))
                   : Formula::Or(std::span<const Formula>(children));
      break;
    }
    case Connective::kImplies:
      result = Formula::Implies(SubstituteRec(f.child(0), map, memo),
                                SubstituteRec(f.child(1), map, memo));
      break;
    case Connective::kIff:
      result = Formula::Iff(SubstituteRec(f.child(0), map, memo),
                            SubstituteRec(f.child(1), map, memo));
      break;
    case Connective::kXor:
      result = Formula::Xor(SubstituteRec(f.child(0), map, memo),
                            SubstituteRec(f.child(1), map, memo));
      break;
  }
  memo->emplace(f.id(), result);
  return result;
}

}  // namespace

Formula Substitute(const Formula& f,
                   const std::unordered_map<Var, Formula>& map) {
  std::unordered_map<const void*, Formula> memo;
  return SubstituteRec(f, map, &memo);
}

Formula Substitute(const Formula& f, Var x, const Formula& g) {
  std::unordered_map<Var, Formula> map;
  map.emplace(x, g);
  return Substitute(f, map);
}

Formula RenameVars(const Formula& f, const std::vector<Var>& from,
                   const std::vector<Var>& to) {
  REVISE_CHECK_EQ(from.size(), to.size());
  std::unordered_map<Var, Formula> map;
  for (size_t i = 0; i < from.size(); ++i) {
    map.emplace(from[i], Formula::Variable(to[i]));
  }
  return Substitute(f, map);
}

Formula FlipVars(const Formula& f, const std::vector<Var>& s) {
  std::unordered_map<Var, Formula> map;
  for (Var v : s) {
    map.emplace(v, Formula::Not(Formula::Variable(v)));
  }
  return Substitute(f, map);
}

}  // namespace revise
