// Formula-level CNF conversions.
//
// The introduction of the paper observes that an agent unable to store a
// revised base compactly "would either need an unreasonable amount of
// storing space, or change the format it uses to represent knowledge".
// These helpers make the format changes concrete:
//
//   * NaiveCnf  — distribution-based CNF: logically equivalent (criterion
//     (2)) but possibly exponentially larger;
//   * TseitinCnf — definitional CNF with fresh letters: linear size and
//     QUERY-equivalent (criterion (1)) to the input — structurally the
//     same trade-off the compactability results are about.

#ifndef REVISE_LOGIC_CNF_TRANSFORM_H_
#define REVISE_LOGIC_CNF_TRANSFORM_H_

#include <cstdint>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"

namespace revise {

// True iff f is a conjunction of clauses (clause = disjunction of
// literals; single literals and constants count).
bool IsCnf(const Formula& f);

// Number of clauses of a CNF formula (0 for true; 1 for a single clause).
size_t CnfClauseCount(const Formula& f);

// Distribution-based CNF, logically equivalent to f.  Aborts with an
// error if the result would exceed `max_size` variable occurrences
// (the explosion the paper warns about, surfaced as a Status).
StatusOr<Formula> NaiveCnf(const Formula& f, uint64_t max_size);

// Definitional (Tseitin) CNF: one fresh letter per internal connective,
// size linear in |f|.  The result is query-equivalent to f with respect
// to V(f) (every model of f extends uniquely to the fresh letters), but
// NOT logically equivalent.
Formula TseitinCnf(const Formula& f, Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_LOGIC_CNF_TRANSFORM_H_
