#include "logic/cnf_transform.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "logic/transform.h"
#include "util/check.h"

namespace revise {

namespace {

bool IsLiteral(const Formula& f) {
  return f.kind() == Connective::kVar ||
         (f.kind() == Connective::kNot &&
          f.child(0).kind() == Connective::kVar);
}

bool IsClause(const Formula& f) {
  if (f.IsConst() || IsLiteral(f)) return true;
  if (f.kind() != Connective::kOr) return false;
  for (size_t i = 0; i < f.arity(); ++i) {
    if (!IsLiteral(f.child(i))) return false;
  }
  return true;
}

}  // namespace

bool IsCnf(const Formula& f) {
  if (IsClause(f)) return true;
  if (f.kind() != Connective::kAnd) return false;
  for (size_t i = 0; i < f.arity(); ++i) {
    if (!IsClause(f.child(i))) return false;
  }
  return true;
}

size_t CnfClauseCount(const Formula& f) {
  REVISE_CHECK(IsCnf(f));
  if (f.IsTrue()) return 0;
  if (f.kind() != Connective::kAnd) return 1;
  return f.arity();
}

namespace {

// Clause set representation during distribution: each clause is a vector
// of literal formulas.
using ClauseSet = std::vector<std::vector<Formula>>;

uint64_t ClauseSetSize(const ClauseSet& clauses) {
  uint64_t size = 0;
  for (const auto& clause : clauses) size += clause.size();
  return size;
}

// Distributes in NNF.  Returns false on budget exhaustion.
bool ToClauses(const Formula& f, uint64_t max_size, ClauseSet* out) {
  switch (f.kind()) {
    case Connective::kConst:
      if (!f.const_value()) out->push_back({});  // empty clause == false
      return true;
    case Connective::kVar:
    case Connective::kNot:
      out->push_back({f});
      return true;
    case Connective::kAnd: {
      for (size_t i = 0; i < f.arity(); ++i) {
        if (!ToClauses(f.child(i), max_size, out)) return false;
        if (ClauseSetSize(*out) > max_size) return false;
      }
      return true;
    }
    case Connective::kOr: {
      // Cross product of the children's clause sets.
      ClauseSet product = {{}};
      for (size_t i = 0; i < f.arity(); ++i) {
        ClauseSet child;
        if (!ToClauses(f.child(i), max_size, &child)) return false;
        ClauseSet next;
        for (const auto& left : product) {
          for (const auto& right : child) {
            std::vector<Formula> merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
          }
          if (ClauseSetSize(next) > max_size) return false;
        }
        product = std::move(next);
      }
      out->insert(out->end(), product.begin(), product.end());
      return ClauseSetSize(*out) <= max_size;
    }
    default:
      REVISE_CHECK(false);  // NNF has no other connectives
      return false;
  }
}

}  // namespace

StatusOr<Formula> NaiveCnf(const Formula& f, uint64_t max_size) {
  ClauseSet clauses;
  if (!ToClauses(ToNnf(f), max_size, &clauses)) {
    return ResourceExhaustedError(
        "naive CNF exceeds " + std::to_string(max_size) +
        " variable occurrences");
  }
  std::vector<Formula> rendered;
  rendered.reserve(clauses.size());
  for (const auto& clause : clauses) {
    rendered.push_back(
        DisjoinAll(std::vector<Formula>(clause.begin(), clause.end())));
  }
  return ConjoinAll(rendered);
}

namespace {

// Tseitin encoding over the ORIGINAL connectives (not NNF, which would
// duplicate both polarities of nested <-> / ^ and explode).  Returns the
// literal standing for `f`, appends the defining clauses, and memoizes on
// DAG nodes so shared subformulas get one gate.
class TseitinEncoder {
 public:
  TseitinEncoder(Vocabulary* vocabulary, std::vector<Formula>* clauses)
      : vocabulary_(vocabulary), clauses_(clauses) {}

  Formula Encode(const Formula& f) {
    auto it = memo_.find(f.id());
    if (it != memo_.end()) return it->second;
    const Formula result = EncodeImpl(f);
    memo_.emplace(f.id(), result);
    return result;
  }

 private:
  Formula Gate() { return Formula::Variable(vocabulary_->Fresh("t")); }

  Formula EncodeImpl(const Formula& f) {
    if (f.IsConst() || IsLiteral(f)) return f;
    if (f.kind() == Connective::kNot) {
      return Formula::Not(Encode(f.child(0)));
    }
    std::vector<Formula> children;
    children.reserve(f.arity());
    for (size_t i = 0; i < f.arity(); ++i) {
      children.push_back(Encode(f.child(i)));
    }
    const Formula g = Gate();
    const Formula ng = Formula::Not(g);
    switch (f.kind()) {
      case Connective::kAnd: {
        std::vector<Formula> big = {g};
        for (const Formula& c : children) {
          clauses_->push_back(Formula::Or(ng, c));
          big.push_back(Formula::Not(c));
        }
        clauses_->push_back(DisjoinAll(big));
        break;
      }
      case Connective::kOr: {
        std::vector<Formula> big = {ng};
        for (const Formula& c : children) {
          clauses_->push_back(Formula::Or(g, Formula::Not(c)));
          big.push_back(c);
        }
        clauses_->push_back(DisjoinAll(big));
        break;
      }
      case Connective::kImplies: {
        const Formula a = children[0];
        const Formula b = children[1];
        clauses_->push_back(
            Formula::Or({ng, Formula::Not(a), b}));
        clauses_->push_back(Formula::Or(g, a));
        clauses_->push_back(Formula::Or(g, Formula::Not(b)));
        break;
      }
      case Connective::kIff:
      case Connective::kXor: {
        const Formula a = children[0];
        // For xor, g <-> (a <-> !b).
        const Formula b = f.kind() == Connective::kIff
                              ? children[1]
                              : Formula::Not(children[1]);
        clauses_->push_back(Formula::Or({ng, Formula::Not(a), b}));
        clauses_->push_back(Formula::Or({ng, a, Formula::Not(b)}));
        clauses_->push_back(Formula::Or({g, a, b}));
        clauses_->push_back(
            Formula::Or({g, Formula::Not(a), Formula::Not(b)}));
        break;
      }
      default:
        REVISE_CHECK(false);
    }
    return g;
  }

  Vocabulary* vocabulary_;
  std::vector<Formula>* clauses_;
  std::unordered_map<const void*, Formula> memo_;
};

}  // namespace

Formula TseitinCnf(const Formula& f, Vocabulary* vocabulary) {
  std::vector<Formula> clauses;
  TseitinEncoder encoder(vocabulary, &clauses);
  const Formula root = encoder.Encode(f);
  clauses.push_back(root);
  return ConjoinAll(clauses);
}

}  // namespace revise
