#include "logic/printer.h"

namespace revise {

namespace {

// Binding strength; higher binds tighter.  kImplies is right-associative,
// the associative connectives chain without parentheses at equal level.
int Precedence(Connective kind) {
  switch (kind) {
    case Connective::kConst:
    case Connective::kVar:
      return 6;
    case Connective::kNot:
      return 5;
    case Connective::kAnd:
      return 4;
    case Connective::kOr:
      return 3;
    case Connective::kXor:
      return 2;
    case Connective::kImplies:
      return 1;
    case Connective::kIff:
      return 0;
  }
  return 0;
}

void Print(const Formula& f, const Vocabulary& vocabulary, int parent_level,
           std::string* out) {
  const int level = Precedence(f.kind());
  const bool parens = level < parent_level;
  if (parens) out->push_back('(');
  switch (f.kind()) {
    case Connective::kConst:
      *out += f.const_value() ? "true" : "false";
      break;
    case Connective::kVar:
      *out += vocabulary.Name(f.var());
      break;
    case Connective::kNot:
      out->push_back('!');
      Print(f.child(0), vocabulary, level + 1, out);
      break;
    case Connective::kAnd:
    case Connective::kOr: {
      // n-ary and flattened by the factories, so printing children at the
      // same level round-trips structurally.
      const char* op = f.kind() == Connective::kAnd ? " & " : " | ";
      for (size_t i = 0; i < f.arity(); ++i) {
        if (i > 0) *out += op;
        Print(f.child(i), vocabulary, level, out);
      }
      break;
    }
    case Connective::kXor:
      // Binary; the parser is left-associative, so a nested xor on the
      // right needs parentheses to round-trip structurally.
      Print(f.child(0), vocabulary, level, out);
      *out += " ^ ";
      Print(f.child(1), vocabulary, level + 1, out);
      break;
    case Connective::kImplies:
      // Right-associative: parenthesize a nested implication on the left.
      Print(f.child(0), vocabulary, level + 1, out);
      *out += " -> ";
      Print(f.child(1), vocabulary, level, out);
      break;
    case Connective::kIff:
      // Left-associative in the parser.
      Print(f.child(0), vocabulary, level, out);
      *out += " <-> ";
      Print(f.child(1), vocabulary, level + 1, out);
      break;
  }
  if (parens) out->push_back(')');
}

}  // namespace

std::string ToString(const Formula& f, const Vocabulary& vocabulary) {
  std::string out;
  Print(f, vocabulary, 0, &out);
  return out;
}

}  // namespace revise
