#include "logic/evaluate.h"

#include <unordered_map>

#include "util/check.h"

namespace revise {

namespace {

bool EvaluateRec(const Formula& f, const Alphabet& alphabet,
                 const Interpretation& m,
                 std::unordered_map<const void*, bool>* memo) {
  auto it = memo->find(f.id());
  if (it != memo->end()) return it->second;
  bool result = false;
  switch (f.kind()) {
    case Connective::kConst:
      result = f.const_value();
      break;
    case Connective::kVar: {
      std::optional<size_t> index = alphabet.IndexOf(f.var());
      result = index.has_value() && m.Get(*index);
      break;
    }
    case Connective::kNot:
      result = !EvaluateRec(f.child(0), alphabet, m, memo);
      break;
    case Connective::kAnd: {
      result = true;
      for (size_t i = 0; i < f.arity(); ++i) {
        if (!EvaluateRec(f.child(i), alphabet, m, memo)) {
          result = false;
          break;
        }
      }
      break;
    }
    case Connective::kOr: {
      result = false;
      for (size_t i = 0; i < f.arity(); ++i) {
        if (EvaluateRec(f.child(i), alphabet, m, memo)) {
          result = true;
          break;
        }
      }
      break;
    }
    case Connective::kImplies:
      result = !EvaluateRec(f.child(0), alphabet, m, memo) ||
               EvaluateRec(f.child(1), alphabet, m, memo);
      break;
    case Connective::kIff:
      result = EvaluateRec(f.child(0), alphabet, m, memo) ==
               EvaluateRec(f.child(1), alphabet, m, memo);
      break;
    case Connective::kXor:
      result = EvaluateRec(f.child(0), alphabet, m, memo) !=
               EvaluateRec(f.child(1), alphabet, m, memo);
      break;
  }
  memo->emplace(f.id(), result);
  return result;
}

}  // namespace

bool Evaluate(const Formula& f, const Alphabet& alphabet,
              const Interpretation& m) {
  REVISE_CHECK_EQ(alphabet.size(), m.size());
  std::unordered_map<const void*, bool> memo;
  return EvaluateRec(f, alphabet, m, &memo);
}

}  // namespace revise
