#include "logic/formula.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace revise {

struct Formula::Node {
  Connective kind;
  bool value = false;       // kConst only
  Var var = kInvalidVar;    // kVar only
  std::vector<Formula> children;
  uint64_t var_occurrences = 0;
  uint64_t tree_size = 1;
};

namespace {

std::shared_ptr<const Formula::Node> MakeLeafConst(bool value);

}  // namespace

Formula::Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

namespace {

using NodePtr = std::shared_ptr<const Formula::Node>;

NodePtr MakeNode(Connective kind, std::vector<Formula> children) {
  auto node = std::make_shared<Formula::Node>();
  node->kind = kind;
  uint64_t occurrences = 0;
  uint64_t tree = 1;
  for (const Formula& child : children) {
    occurrences += child.VarOccurrences();
    tree += child.TreeSize();
  }
  node->var_occurrences = occurrences;
  node->tree_size = tree;
  node->children = std::move(children);
  return node;
}

NodePtr MakeLeafConst(bool value) {
  auto node = std::make_shared<Formula::Node>();
  node->kind = Connective::kConst;
  node->value = value;
  node->var_occurrences = 0;
  node->tree_size = 1;
  return node;
}

// Shared singletons for the two constants.  Plain pointers that are never
// deleted, per the style guide's rule on static storage duration objects.
const NodePtr& TrueNode() {
  static const NodePtr& node = *new NodePtr(MakeLeafConst(true));
  return node;
}

const NodePtr& FalseNode() {
  static const NodePtr& node = *new NodePtr(MakeLeafConst(false));
  return node;
}

}  // namespace

Formula::Formula() : node_(TrueNode()) {}

Formula Formula::True() { return Formula(TrueNode()); }

Formula Formula::False() { return Formula(FalseNode()); }

Formula Formula::Constant(bool value) { return value ? True() : False(); }

Formula Formula::Variable(Var var) {
  REVISE_CHECK_NE(var, kInvalidVar);
  auto node = std::make_shared<Node>();
  node->kind = Connective::kVar;
  node->var = var;
  node->var_occurrences = 1;
  node->tree_size = 1;
  return Formula(std::move(node));
}

Formula Formula::Literal(Var var, bool positive) {
  Formula v = Variable(var);
  return positive ? v : Not(v);
}

Formula Formula::Not(const Formula& f) {
  if (f.IsTrue()) return False();
  if (f.IsFalse()) return True();
  if (f.kind() == Connective::kNot) return f.child(0);
  return Formula(MakeNode(Connective::kNot, {f}));
}

Formula Formula::And(const Formula& a, const Formula& b) {
  const Formula fs[] = {a, b};
  return And(std::span<const Formula>(fs));
}

Formula Formula::And(std::initializer_list<Formula> fs) {
  return And(std::span<const Formula>(fs.begin(), fs.size()));
}

Formula Formula::And(std::span<const Formula> fs) {
  std::vector<Formula> children;
  children.reserve(fs.size());
  for (const Formula& f : fs) {
    if (f.IsTrue()) continue;
    if (f.IsFalse()) return False();
    if (f.kind() == Connective::kAnd) {
      for (size_t i = 0; i < f.arity(); ++i) children.push_back(f.child(i));
    } else {
      children.push_back(f);
    }
  }
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  return Formula(MakeNode(Connective::kAnd, std::move(children)));
}

Formula Formula::Or(const Formula& a, const Formula& b) {
  const Formula fs[] = {a, b};
  return Or(std::span<const Formula>(fs));
}

Formula Formula::Or(std::initializer_list<Formula> fs) {
  return Or(std::span<const Formula>(fs.begin(), fs.size()));
}

Formula Formula::Or(std::span<const Formula> fs) {
  std::vector<Formula> children;
  children.reserve(fs.size());
  for (const Formula& f : fs) {
    if (f.IsFalse()) continue;
    if (f.IsTrue()) return True();
    if (f.kind() == Connective::kOr) {
      for (size_t i = 0; i < f.arity(); ++i) children.push_back(f.child(i));
    } else {
      children.push_back(f);
    }
  }
  if (children.empty()) return False();
  if (children.size() == 1) return children[0];
  return Formula(MakeNode(Connective::kOr, std::move(children)));
}

Formula Formula::Implies(const Formula& a, const Formula& b) {
  if (a.IsTrue()) return b;
  if (a.IsFalse()) return True();
  if (b.IsTrue()) return True();
  if (b.IsFalse()) return Not(a);
  return Formula(MakeNode(Connective::kImplies, {a, b}));
}

Formula Formula::Iff(const Formula& a, const Formula& b) {
  if (a.IsTrue()) return b;
  if (b.IsTrue()) return a;
  if (a.IsFalse()) return Not(b);
  if (b.IsFalse()) return Not(a);
  return Formula(MakeNode(Connective::kIff, {a, b}));
}

Formula Formula::Xor(const Formula& a, const Formula& b) {
  if (a.IsFalse()) return b;
  if (b.IsFalse()) return a;
  if (a.IsTrue()) return Not(b);
  if (b.IsTrue()) return Not(a);
  return Formula(MakeNode(Connective::kXor, {a, b}));
}

Connective Formula::kind() const { return node().kind; }

bool Formula::IsTrue() const { return IsConst() && node().value; }

bool Formula::IsFalse() const { return IsConst() && !node().value; }

bool Formula::const_value() const {
  REVISE_CHECK(IsConst());
  return node().value;
}

Var Formula::var() const {
  REVISE_CHECK(kind() == Connective::kVar);
  return node().var;
}

size_t Formula::arity() const { return node().children.size(); }

const Formula& Formula::child(size_t i) const {
  REVISE_CHECK_LT(i, node().children.size());
  return node().children[i];
}

std::span<const Formula> Formula::children() const {
  return node().children;
}

uint64_t Formula::VarOccurrences() const { return node().var_occurrences; }

uint64_t Formula::TreeSize() const { return node().tree_size; }

size_t Formula::DagSize() const {
  std::unordered_set<const void*> seen;
  std::vector<const Formula*> stack = {this};
  size_t count = 0;
  while (!stack.empty()) {
    const Formula* f = stack.back();
    stack.pop_back();
    if (!seen.insert(f->id()).second) continue;
    ++count;
    for (size_t i = 0; i < f->arity(); ++i) stack.push_back(&f->child(i));
  }
  return count;
}

std::vector<Var> Formula::Vars() const {
  std::unordered_set<const void*> seen;
  std::unordered_set<Var> vars;
  std::vector<const Formula*> stack = {this};
  while (!stack.empty()) {
    const Formula* f = stack.back();
    stack.pop_back();
    if (!seen.insert(f->id()).second) continue;
    if (f->kind() == Connective::kVar) vars.insert(f->var());
    for (size_t i = 0; i < f->arity(); ++i) stack.push_back(&f->child(i));
  }
  std::vector<Var> result(vars.begin(), vars.end());
  std::sort(result.begin(), result.end());
  return result;
}

bool Formula::StructurallyEqual(const Formula& other) const {
  if (node_.get() == other.node_.get()) return true;
  if (kind() != other.kind()) return false;
  switch (kind()) {
    case Connective::kConst:
      return const_value() == other.const_value();
    case Connective::kVar:
      return var() == other.var();
    default:
      break;
  }
  if (arity() != other.arity()) return false;
  for (size_t i = 0; i < arity(); ++i) {
    if (!child(i).StructurallyEqual(other.child(i))) return false;
  }
  return true;
}

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t StructuralHashRec(
    const Formula& f, std::unordered_map<const void*, uint64_t>* memo) {
  const auto it = memo->find(f.id());
  if (it != memo->end()) return it->second;
  uint64_t h = MixHash(0x243f6a8885a308d3ULL,
                       static_cast<uint64_t>(f.kind()));
  switch (f.kind()) {
    case Connective::kConst:
      h = MixHash(h, f.const_value() ? 1 : 0);
      break;
    case Connective::kVar:
      h = MixHash(h, static_cast<uint64_t>(f.var()));
      break;
    default:
      h = MixHash(h, f.arity());
      for (size_t i = 0; i < f.arity(); ++i) {
        h = MixHash(h, StructuralHashRec(f.child(i), memo));
      }
      break;
  }
  memo->emplace(f.id(), h);
  return h;
}

}  // namespace

uint64_t Formula::StructuralHash() const {
  std::unordered_map<const void*, uint64_t> memo;
  return StructuralHashRec(*this, &memo);
}

Formula ConjoinAll(const std::vector<Formula>& fs) {
  return Formula::And(std::span<const Formula>(fs));
}

Formula DisjoinAll(const std::vector<Formula>& fs) {
  return Formula::Or(std::span<const Formula>(fs));
}

std::vector<Var> UnionOfVars(std::span<const Formula> fs) {
  std::unordered_set<Var> vars;
  for (const Formula& f : fs) {
    for (Var v : f.Vars()) vars.insert(v);
  }
  std::vector<Var> result(vars.begin(), vars.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace revise
