// Formula parsing.
//
// Concrete syntax (precedence from loosest to tightest):
//   f <-> g      equivalence        (left-associative)
//   f -> g       implication        (right-associative)
//   f ^ g        xor / non-equivalence
//   f | g        disjunction
//   f & g        conjunction
//   !f           negation
//   true, false, identifiers, parentheses
//
// Identifiers match [A-Za-z_][A-Za-z0-9_']* and are interned into the given
// vocabulary.  "true" and "false" are reserved.

#ifndef REVISE_LOGIC_PARSER_H_
#define REVISE_LOGIC_PARSER_H_

#include <string_view>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"

namespace revise {

// Maximum nesting depth the parser accepts.  Nesting is what recurses
// (parentheses, '!' chains and the right-recursive '->'), so the limit
// bounds the parser's stack growth; input beyond it gets a
// kResourceExhausted parse Status instead of a stack overflow.  The
// value is far above anything a human writes and low enough that the
// deepest accepted input stays within a default thread stack even under
// sanitizers.
inline constexpr int kMaxParseDepth = 256;

// Parses `text`, interning variables into `*vocabulary`.
StatusOr<Formula> Parse(std::string_view text, Vocabulary* vocabulary);

// Parse helper for tests and examples: aborts on syntax errors.
Formula ParseOrDie(std::string_view text, Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_LOGIC_PARSER_H_
