// Formula parsing.
//
// Concrete syntax (precedence from loosest to tightest):
//   f <-> g      equivalence        (left-associative)
//   f -> g       implication        (right-associative)
//   f ^ g        xor / non-equivalence
//   f | g        disjunction
//   f & g        conjunction
//   !f           negation
//   true, false, identifiers, parentheses
//
// Identifiers match [A-Za-z_][A-Za-z0-9_']* and are interned into the given
// vocabulary.  "true" and "false" are reserved.

#ifndef REVISE_LOGIC_PARSER_H_
#define REVISE_LOGIC_PARSER_H_

#include <string_view>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"

namespace revise {

// Parses `text`, interning variables into `*vocabulary`.
StatusOr<Formula> Parse(std::string_view text, Vocabulary* vocabulary);

// Parse helper for tests and examples: aborts on syntax errors.
Formula ParseOrDie(std::string_view text, Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_LOGIC_PARSER_H_
