// Formula pretty-printing.

#ifndef REVISE_LOGIC_PRINTER_H_
#define REVISE_LOGIC_PRINTER_H_

#include <string>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace revise {

// Renders a formula in the concrete syntax accepted by logic/parser.h:
//   true false  x  !f  f & g  f | g  f -> g  f <-> g  f ^ g
// Parentheses are inserted only where precedence requires them.
std::string ToString(const Formula& f, const Vocabulary& vocabulary);

}  // namespace revise

#endif  // REVISE_LOGIC_PRINTER_H_
