#include "logic/parser.h"

#include <cctype>
#include <string>

#include "util/check.h"

namespace revise {

namespace {

enum class TokenKind {
  kEnd,
  kIdent,
  kTrue,
  kFalse,
  kNot,
  kAnd,
  kOr,
  kXor,
  kImplies,
  kIff,
  kLParen,
  kRParen,
};

struct Token {
  TokenKind kind;
  std::string_view text;
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<Token> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const size_t start = pos_;
    if (pos_ >= text_.size()) return Token{TokenKind::kEnd, {}, start};
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      std::string_view word = text_.substr(start, pos_ - start);
      if (word == "true") return Token{TokenKind::kTrue, word, start};
      if (word == "false") return Token{TokenKind::kFalse, word, start};
      return Token{TokenKind::kIdent, word, start};
    }
    ++pos_;
    switch (c) {
      case '!':
      case '~':
        return Token{TokenKind::kNot, text_.substr(start, 1), start};
      case '&':
        return Token{TokenKind::kAnd, text_.substr(start, 1), start};
      case '|':
        return Token{TokenKind::kOr, text_.substr(start, 1), start};
      case '^':
        return Token{TokenKind::kXor, text_.substr(start, 1), start};
      case '(':
        return Token{TokenKind::kLParen, text_.substr(start, 1), start};
      case ')':
        return Token{TokenKind::kRParen, text_.substr(start, 1), start};
      case '-':
        if (pos_ < text_.size() && text_[pos_] == '>') {
          ++pos_;
          return Token{TokenKind::kImplies, text_.substr(start, 2), start};
        }
        return SyntaxError(start, "expected '>' after '-'");
      case '<':
        if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
            text_[pos_ + 1] == '>') {
          pos_ += 2;
          return Token{TokenKind::kIff, text_.substr(start, 3), start};
        }
        return SyntaxError(start, "expected '->' after '<'");
      default:
        return SyntaxError(start, std::string("unexpected character '") +
                                      c + "'");
    }
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '\'' || c == '#';
  }

  Status SyntaxError(size_t position, std::string message) {
    return InvalidArgumentError("syntax error at offset " +
                                std::to_string(position) + ": " +
                                std::move(message));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, Vocabulary* vocabulary)
      : lexer_(text), vocabulary_(vocabulary) {}

  StatusOr<Formula> Run() {
    REVISE_RETURN_IF_ERROR(Advance());
    REVISE_ASSIGN_OR_RETURN(Formula result, ParseIff());
    if (current_.kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return result;
  }

 private:
  Status Advance() {
    REVISE_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::Ok();
  }

  Status Error(std::string message) const {
    return InvalidArgumentError("syntax error at offset " +
                                std::to_string(current_.position) + ": " +
                                std::move(message));
  }

  // Called at every recursion point (parenthesis, negation, right-hand
  // side of '->').  Pair with --depth_ on the non-error path.
  Status EnterNested() {
    if (++depth_ > kMaxParseDepth) {
      return ResourceExhaustedError(
          "syntax error at offset " + std::to_string(current_.position) +
          ": nesting exceeds the depth limit of " +
          std::to_string(kMaxParseDepth));
    }
    return Status::Ok();
  }

  StatusOr<Formula> ParseIff() {
    REVISE_ASSIGN_OR_RETURN(Formula left, ParseImplies());
    while (current_.kind == TokenKind::kIff) {
      REVISE_RETURN_IF_ERROR(Advance());
      REVISE_ASSIGN_OR_RETURN(Formula right, ParseImplies());
      left = Formula::Iff(left, right);
    }
    return left;
  }

  StatusOr<Formula> ParseImplies() {
    REVISE_ASSIGN_OR_RETURN(Formula left, ParseXor());
    if (current_.kind == TokenKind::kImplies) {
      REVISE_RETURN_IF_ERROR(EnterNested());
      REVISE_RETURN_IF_ERROR(Advance());
      REVISE_ASSIGN_OR_RETURN(Formula right, ParseImplies());
      --depth_;
      return Formula::Implies(left, right);
    }
    return left;
  }

  StatusOr<Formula> ParseXor() {
    REVISE_ASSIGN_OR_RETURN(Formula left, ParseOr());
    while (current_.kind == TokenKind::kXor) {
      REVISE_RETURN_IF_ERROR(Advance());
      REVISE_ASSIGN_OR_RETURN(Formula right, ParseOr());
      left = Formula::Xor(left, right);
    }
    return left;
  }

  StatusOr<Formula> ParseOr() {
    REVISE_ASSIGN_OR_RETURN(Formula left, ParseAnd());
    while (current_.kind == TokenKind::kOr) {
      REVISE_RETURN_IF_ERROR(Advance());
      REVISE_ASSIGN_OR_RETURN(Formula right, ParseAnd());
      left = Formula::Or(left, right);
    }
    return left;
  }

  StatusOr<Formula> ParseAnd() {
    REVISE_ASSIGN_OR_RETURN(Formula left, ParseUnary());
    while (current_.kind == TokenKind::kAnd) {
      REVISE_RETURN_IF_ERROR(Advance());
      REVISE_ASSIGN_OR_RETURN(Formula right, ParseUnary());
      left = Formula::And(left, right);
    }
    return left;
  }

  StatusOr<Formula> ParseUnary() {
    if (current_.kind == TokenKind::kNot) {
      REVISE_RETURN_IF_ERROR(EnterNested());
      REVISE_RETURN_IF_ERROR(Advance());
      REVISE_ASSIGN_OR_RETURN(Formula inner, ParseUnary());
      --depth_;
      return Formula::Not(inner);
    }
    return ParseAtom();
  }

  StatusOr<Formula> ParseAtom() {
    switch (current_.kind) {
      case TokenKind::kTrue: {
        REVISE_RETURN_IF_ERROR(Advance());
        return Formula::True();
      }
      case TokenKind::kFalse: {
        REVISE_RETURN_IF_ERROR(Advance());
        return Formula::False();
      }
      case TokenKind::kIdent: {
        Var var = vocabulary_->Intern(current_.text);
        REVISE_RETURN_IF_ERROR(Advance());
        return Formula::Variable(var);
      }
      case TokenKind::kLParen: {
        REVISE_RETURN_IF_ERROR(EnterNested());
        REVISE_RETURN_IF_ERROR(Advance());
        REVISE_ASSIGN_OR_RETURN(Formula inner, ParseIff());
        if (current_.kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        REVISE_RETURN_IF_ERROR(Advance());
        --depth_;
        return inner;
      }
      default:
        return Error("expected a formula");
    }
  }

  Lexer lexer_;
  Vocabulary* vocabulary_;
  Token current_{TokenKind::kEnd, {}, 0};
  int depth_ = 0;
};

}  // namespace

StatusOr<Formula> Parse(std::string_view text, Vocabulary* vocabulary) {
  Parser parser(text, vocabulary);
  return parser.Run();
}

Formula ParseOrDie(std::string_view text, Vocabulary* vocabulary) {
  StatusOr<Formula> result = Parse(text, vocabulary);
  REVISE_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace revise
