// Propositional formulas.
//
// A Formula is an immutable handle to a node in a shared formula DAG.  The
// connectives are those used by the paper: constants, variables, negation,
// (n-ary) conjunction and disjunction, implication, equivalence (the paper's
// x = y) and non-equivalence / xor (the paper's x != y).
//
// Factory functions perform light constant folding and flattening of nested
// conjunctions/disjunctions; they never change the logical meaning.  The
// size measure VarOccurrences() matches the paper's |W|: "the number of
// distinct occurrences of propositional variables in W" counted over the
// formula written out as a tree (shared subformulas count each time they
// occur, exactly as if written on paper).

#ifndef REVISE_LOGIC_FORMULA_H_
#define REVISE_LOGIC_FORMULA_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "logic/vocabulary.h"

namespace revise {

enum class Connective : uint8_t {
  kConst,
  kVar,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kXor,
};

class Formula {
 public:
  // Default-constructed formula is the constant true (the neutral element
  // of conjunction), so value-initialized containers are well-formed.
  Formula();

  static Formula True();
  static Formula False();
  static Formula Constant(bool value);
  static Formula Variable(Var var);
  // A positive or negative literal.
  static Formula Literal(Var var, bool positive);

  static Formula Not(const Formula& f);
  static Formula And(const Formula& a, const Formula& b);
  static Formula And(std::span<const Formula> fs);
  static Formula And(std::initializer_list<Formula> fs);
  static Formula Or(const Formula& a, const Formula& b);
  static Formula Or(std::span<const Formula> fs);
  static Formula Or(std::initializer_list<Formula> fs);
  static Formula Implies(const Formula& a, const Formula& b);
  static Formula Iff(const Formula& a, const Formula& b);
  static Formula Xor(const Formula& a, const Formula& b);

  Connective kind() const;
  bool IsConst() const { return kind() == Connective::kConst; }
  bool IsTrue() const;
  bool IsFalse() const;
  // Requires kind() == kConst.
  bool const_value() const;
  // Requires kind() == kVar.
  Var var() const;

  size_t arity() const;
  const Formula& child(size_t i) const;
  std::span<const Formula> children() const;

  // The paper's |W|: variable occurrences in the formula as written.
  uint64_t VarOccurrences() const;
  // Connective + leaf count of the formula as written (tree size).
  uint64_t TreeSize() const;
  // Number of distinct DAG nodes actually allocated.
  size_t DagSize() const;

  // The alphabet V(f): sorted, distinct variables occurring in f.
  std::vector<Var> Vars() const;

  // Structural equality (not logical equivalence).
  bool StructurallyEqual(const Formula& other) const;

  // A hash consistent with StructurallyEqual: structurally equal formulas
  // hash alike even when their DAG nodes differ.  Computed over the DAG
  // (shared nodes hashed once), so it is cheap on heavily shared formulas.
  // Used with the alphabet as the model-cache key (solve/model_cache.h).
  uint64_t StructuralHash() const;

  // Stable pointer identity, usable as a hash/map key for DAG traversals.
  const void* id() const { return node_.get(); }

  // Implementation detail, public only so the factory helpers in
  // formula.cc can allocate nodes; not part of the API.
  struct Node;

 private:
  explicit Formula(std::shared_ptr<const Node> node);

  const Node& node() const { return *node_; }

  std::shared_ptr<const Node> node_;
};

// Convenience: conjunction/disjunction over a vector, mirroring the paper's
// use of a theory T as the formula "/\ T".
Formula ConjoinAll(const std::vector<Formula>& fs);
Formula DisjoinAll(const std::vector<Formula>& fs);

// V(f1) union V(f2) ... as a sorted distinct list.
std::vector<Var> UnionOfVars(std::span<const Formula> fs);

}  // namespace revise

#endif  // REVISE_LOGIC_FORMULA_H_
