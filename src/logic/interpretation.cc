#include "logic/interpretation.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace revise {

Alphabet::Alphabet(std::vector<Var> vars) : vars_(std::move(vars)) {
  std::sort(vars_.begin(), vars_.end());
  vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
}

std::optional<size_t> Alphabet::IndexOf(Var var) const {
  auto it = std::lower_bound(vars_.begin(), vars_.end(), var);
  if (it == vars_.end() || *it != var) return std::nullopt;
  return static_cast<size_t>(it - vars_.begin());
}

Alphabet Alphabet::Union(const Alphabet& a, const Alphabet& b) {
  std::vector<Var> merged = a.vars_;
  merged.insert(merged.end(), b.vars_.begin(), b.vars_.end());
  return Alphabet(std::move(merged));
}

Interpretation::Interpretation(size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

size_t Interpretation::Cardinality() const {
  size_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

Interpretation Interpretation::SymmetricDifference(
    const Interpretation& other) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  Interpretation result(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] ^ other.words_[i];
  }
  return result;
}

size_t Interpretation::HammingDistance(const Interpretation& other) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] ^ other.words_[i]);
  }
  return count;
}

size_t Interpretation::HammingDistanceCapped(const Interpretation& other,
                                             size_t cap) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] ^ other.words_[i]);
    if (count > cap) return cap + 1;
  }
  return count;
}

bool Interpretation::DiffersOutside(const Interpretation& other,
                                    const Interpretation& mask) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  REVISE_DCHECK_EQ(size_, mask.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (((words_[i] ^ other.words_[i]) & ~mask.words_[i]) != 0) return true;
  }
  return false;
}

bool Interpretation::IsSubsetOf(const Interpretation& other) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Interpretation::IsProperSubsetOf(const Interpretation& other) const {
  return IsSubsetOf(other) && !(*this == other);
}

Interpretation Interpretation::Union(const Interpretation& other) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  Interpretation result(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] | other.words_[i];
  }
  return result;
}

Interpretation Interpretation::Intersection(
    const Interpretation& other) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  Interpretation result(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & other.words_[i];
  }
  return result;
}

Interpretation Interpretation::Minus(const Interpretation& other) const {
  REVISE_DCHECK_EQ(size_, other.size_);
  Interpretation result(size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & ~other.words_[i];
  }
  return result;
}

Interpretation Interpretation::FromWords(size_t size, const uint64_t* words) {
  Interpretation result(size);
  std::copy(words, words + result.words_.size(), result.words_.begin());
  if (size % 64 != 0 && !result.words_.empty()) {
    REVISE_DCHECK_EQ(result.words_.back() >> (size % 64), 0u);
  }
  return result;
}

Interpretation Interpretation::FromIndex(size_t n, uint64_t index) {
  REVISE_CHECK_LE(n, 63u);
  Interpretation result(n);
  if (n > 0) result.words_[0] = index & ((uint64_t{1} << n) - 1);
  return result;
}

uint64_t Interpretation::ToIndex() const {
  REVISE_CHECK_LE(size_, 63u);
  return words_.empty() ? 0 : words_[0];
}

std::string Interpretation::ToString(const Alphabet& alphabet,
                                     const Vocabulary& vocabulary) const {
  REVISE_CHECK_EQ(size_, alphabet.size());
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < size_; ++i) {
    if (!Get(i)) continue;
    if (!first) out += ", ";
    first = false;
    out += vocabulary.Name(alphabet.var(i));
  }
  out += "}";
  return out;
}

bool Interpretation::operator<(const Interpretation& other) const {
  if (size_ != other.size_) return size_ < other.size_;
  // Compare from the most significant word down so that the order matches
  // numeric order of the bit pattern.
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) return words_[i] < other.words_[i];
  }
  return false;
}

size_t Interpretation::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ size_;
  for (uint64_t w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<size_t>(h);
}

Interpretation Reinterpret(const Interpretation& m, const Alphabet& from,
                           const Alphabet& to) {
  REVISE_CHECK_EQ(m.size(), from.size());
  Interpretation result(to.size());
  for (size_t i = 0; i < to.size(); ++i) {
    std::optional<size_t> j = from.IndexOf(to.var(i));
    if (j.has_value() && m.Get(*j)) result.Set(i, true);
  }
  return result;
}

}  // namespace revise
