#include "logic/theory.h"

#include <string>
#include <unordered_set>

#include "util/check.h"

namespace revise {

StatusOr<Theory> Theory::Parse(std::string_view text,
                               Vocabulary* vocabulary) {
  Theory theory;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view piece = text.substr(start, end - start);
    // Skip pieces that are entirely whitespace (allows trailing ';').
    bool blank = true;
    for (char c : piece) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) {
      REVISE_ASSIGN_OR_RETURN(Formula f, ::revise::Parse(piece, vocabulary));
      theory.Add(std::move(f));
    }
    start = end + 1;
  }
  return theory;
}

Theory Theory::ParseOrDie(std::string_view text, Vocabulary* vocabulary) {
  StatusOr<Theory> result = Parse(text, vocabulary);
  REVISE_CHECK(result.ok());
  return std::move(result).value();
}

std::vector<Var> Theory::Vars() const {
  return UnionOfVars(std::span<const Formula>(formulas_));
}

uint64_t Theory::VarOccurrences() const {
  uint64_t total = 0;
  for (const Formula& f : formulas_) total += f.VarOccurrences();
  return total;
}

Theory Theory::Subset(uint64_t mask) const {
  REVISE_CHECK_LE(formulas_.size(), 63u);
  Theory result;
  for (size_t i = 0; i < formulas_.size(); ++i) {
    if ((mask >> i) & 1) result.Add(formulas_[i]);
  }
  return result;
}

}  // namespace revise
