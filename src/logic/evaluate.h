// Formula evaluation under an interpretation.

#ifndef REVISE_LOGIC_EVALUATE_H_
#define REVISE_LOGIC_EVALUATE_H_

#include "logic/formula.h"
#include "logic/interpretation.h"

namespace revise {

// Evaluates `f` under interpretation `m` over `alphabet`.  Variables of `f`
// absent from the alphabet evaluate to false (interpretations are identified
// with the set of letters mapped to true, so unmentioned letters are false,
// matching the paper's convention for L-interpretations extended to larger
// alphabets).
bool Evaluate(const Formula& f, const Alphabet& alphabet,
              const Interpretation& m);

}  // namespace revise

#endif  // REVISE_LOGIC_EVALUATE_H_
