// Vocabulary: interning of propositional variable names.
//
// Formulas store compact integer variable ids (Var); a Vocabulary maps ids
// to names and back.  It also mints fresh variables, which the compact
// representation constructions (EXA auxiliary letters W, copies Y/Z of the
// alphabet, Tseitin variables) rely on heavily.

#ifndef REVISE_LOGIC_VOCABULARY_H_
#define REVISE_LOGIC_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace revise {

// A propositional variable.  Ids are dense, starting at 0, scoped to one
// Vocabulary.
using Var = uint32_t;

inline constexpr Var kInvalidVar = static_cast<Var>(-1);

class Vocabulary {
 public:
  Vocabulary() = default;

  // Vocabularies are identity objects shared by reference; copying one by
  // accident would silently fork the id space.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  // Returns the variable named `name`, creating it if needed.
  Var Intern(std::string_view name);

  // Returns the variable named `name`, or kInvalidVar if absent.
  Var Find(std::string_view name) const;

  // Mints a variable with a new, unused name derived from `prefix`
  // (e.g. Fresh("w") -> "w#0", "w#1", ...).  '#' never appears in parsed
  // names, so fresh variables cannot collide with user variables.
  Var Fresh(std::string_view prefix);

  // Mints `count` fresh variables with a shared prefix.
  std::vector<Var> FreshBlock(std::string_view prefix, size_t count);

  const std::string& Name(Var var) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Var> index_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace revise

#endif  // REVISE_LOGIC_VOCABULARY_H_
