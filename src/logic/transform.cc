#include "logic/transform.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "logic/substitute.h"

namespace revise {

namespace {

// Memoized NNF over (node, polarity) pairs.
class NnfConverter {
 public:
  Formula Convert(const Formula& f, bool negated) {
    const auto key = std::make_pair(f.id(), negated);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Formula result = ConvertImpl(f, negated);
    memo_.emplace(key, result);
    return result;
  }

 private:
  struct KeyHash {
    size_t operator()(const std::pair<const void*, bool>& key) const {
      return std::hash<const void*>()(key.first) * 2 +
             (key.second ? 1 : 0);
    }
  };

  Formula ConvertImpl(const Formula& f, bool negated) {
    switch (f.kind()) {
      case Connective::kConst:
        return Formula::Constant(f.const_value() != negated);
      case Connective::kVar:
        return Formula::Literal(f.var(), !negated);
      case Connective::kNot:
        return Convert(f.child(0), !negated);
      case Connective::kAnd:
      case Connective::kOr: {
        std::vector<Formula> children;
        children.reserve(f.arity());
        for (size_t i = 0; i < f.arity(); ++i) {
          children.push_back(Convert(f.child(i), negated));
        }
        const bool and_like = (f.kind() == Connective::kAnd) != negated;
        return and_like ? Formula::And(std::span<const Formula>(children))
                        : Formula::Or(std::span<const Formula>(children));
      }
      case Connective::kImplies: {
        // a -> b  ==  !a | b;  !(a -> b)  ==  a & !b.
        if (!negated) {
          return Formula::Or(Convert(f.child(0), true),
                             Convert(f.child(1), false));
        }
        return Formula::And(Convert(f.child(0), false),
                            Convert(f.child(1), true));
      }
      case Connective::kIff:
      case Connective::kXor: {
        // a <-> b == (a&b) | (!a&!b);  a ^ b == (a&!b) | (!a&b).
        const bool as_iff = (f.kind() == Connective::kIff) != negated;
        Formula pp = Formula::And(Convert(f.child(0), false),
                                  Convert(f.child(1), false));
        Formula nn = Formula::And(Convert(f.child(0), true),
                                  Convert(f.child(1), true));
        Formula pn = Formula::And(Convert(f.child(0), false),
                                  Convert(f.child(1), true));
        Formula np = Formula::And(Convert(f.child(0), true),
                                  Convert(f.child(1), false));
        return as_iff ? Formula::Or(pp, nn) : Formula::Or(pn, np);
      }
    }
    return Formula::True();
  }

  std::unordered_map<std::pair<const void*, bool>, Formula, KeyHash> memo_;
};

Formula EliminateRec(const Formula& f,
                     std::unordered_map<const void*, Formula>* memo) {
  auto it = memo->find(f.id());
  if (it != memo->end()) return it->second;
  Formula result;
  switch (f.kind()) {
    case Connective::kConst:
    case Connective::kVar:
      result = f;
      break;
    case Connective::kNot:
      result = Formula::Not(EliminateRec(f.child(0), memo));
      break;
    case Connective::kAnd:
    case Connective::kOr: {
      std::vector<Formula> children;
      children.reserve(f.arity());
      for (size_t i = 0; i < f.arity(); ++i) {
        children.push_back(EliminateRec(f.child(i), memo));
      }
      result = f.kind() == Connective::kAnd
                   ? Formula::And(std::span<const Formula>(children))
                   : Formula::Or(std::span<const Formula>(children));
      break;
    }
    case Connective::kImplies: {
      Formula a = EliminateRec(f.child(0), memo);
      Formula b = EliminateRec(f.child(1), memo);
      result = Formula::Or(Formula::Not(a), b);
      break;
    }
    case Connective::kIff: {
      Formula a = EliminateRec(f.child(0), memo);
      Formula b = EliminateRec(f.child(1), memo);
      result = Formula::Or(Formula::And(a, b),
                           Formula::And(Formula::Not(a), Formula::Not(b)));
      break;
    }
    case Connective::kXor: {
      Formula a = EliminateRec(f.child(0), memo);
      Formula b = EliminateRec(f.child(1), memo);
      result = Formula::Or(Formula::And(a, Formula::Not(b)),
                           Formula::And(Formula::Not(a), b));
      break;
    }
  }
  memo->emplace(f.id(), result);
  return result;
}

}  // namespace

Formula ToNnf(const Formula& f) {
  NnfConverter converter;
  return converter.Convert(f, /*negated=*/false);
}

Formula EliminateDerivedConnectives(const Formula& f) {
  std::unordered_map<const void*, Formula> memo;
  return EliminateRec(f, &memo);
}

Formula Restrict(const Formula& f, Var var, bool value) {
  return Substitute(f, var, Formula::Constant(value));
}

}  // namespace revise
