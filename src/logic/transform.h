// Structural formula transformations.

#ifndef REVISE_LOGIC_TRANSFORM_H_
#define REVISE_LOGIC_TRANSFORM_H_

#include "logic/formula.h"

namespace revise {

// Negation normal form: eliminates ->, <->, ^ and pushes negation to the
// literals.  The result uses only {const, var, not-over-var, and, or}.
Formula ToNnf(const Formula& f);

// Rewrites ->, <->, ^ in terms of {not, and, or} without pushing negations.
Formula EliminateDerivedConnectives(const Formula& f);

// Condition/cofactor: the formula with `var` fixed to `value`, constants
// propagated (Shannon restriction f|_{var=value}).
Formula Restrict(const Formula& f, Var var, bool value);

}  // namespace revise

#endif  // REVISE_LOGIC_TRANSFORM_H_
