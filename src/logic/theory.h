// Theories: finite sets of propositional formulas.
//
// Formula-based revision operators (GFUV, Nebel, WIDTIO) are sensitive to
// the syntactic presentation of the knowledge base: revising logically
// equivalent theories {a, b} and {a, a -> b} can give different results.
// Theory preserves that structure; AsFormula() is the paper's "/\ T".

#ifndef REVISE_LOGIC_THEORY_H_
#define REVISE_LOGIC_THEORY_H_

#include <initializer_list>
#include <vector>

#include "logic/formula.h"
#include "logic/parser.h"
#include "util/status.h"

namespace revise {

class Theory {
 public:
  Theory() = default;
  explicit Theory(std::vector<Formula> formulas)
      : formulas_(std::move(formulas)) {}
  Theory(std::initializer_list<Formula> formulas) : formulas_(formulas) {}

  // Parses each ';'-separated element of `text` as one formula of the
  // theory, e.g. "a; b; z1 <-> (!x1 | !y1)".
  static StatusOr<Theory> Parse(std::string_view text,
                                Vocabulary* vocabulary);
  static Theory ParseOrDie(std::string_view text, Vocabulary* vocabulary);

  size_t size() const { return formulas_.size(); }
  bool empty() const { return formulas_.empty(); }
  const Formula& operator[](size_t i) const { return formulas_[i]; }
  const std::vector<Formula>& formulas() const { return formulas_; }

  void Add(Formula f) { formulas_.push_back(std::move(f)); }

  // The conjunction /\ T (true for the empty theory).
  Formula AsFormula() const { return ConjoinAll(formulas_); }

  // V(T): sorted distinct variables over all elements.
  std::vector<Var> Vars() const;

  // Sum of the paper's |.| sizes of the elements.
  uint64_t VarOccurrences() const;

  // The sub-theory containing the elements selected by `mask` (bit i set
  // selects formulas_[i]).  Requires size() <= 63.
  Theory Subset(uint64_t mask) const;

  auto begin() const { return formulas_.begin(); }
  auto end() const { return formulas_.end(); }

 private:
  std::vector<Formula> formulas_;
};

}  // namespace revise

#endif  // REVISE_LOGIC_THEORY_H_
