#include "bdd/bdd.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/check.h"

namespace revise {

BddManager::BddManager(const std::vector<Var>& order) {
  for (const Var v : order) {
    LevelForVar(v);
  }
}

uint32_t BddManager::LevelForVar(Var var) {
  auto it = level_of_var_.find(var);
  if (it != level_of_var_.end()) return it->second;
  const uint32_t level = static_cast<uint32_t>(order_.size());
  order_.push_back(var);
  level_of_var_.emplace(var, level);
  return level;
}

BddManager::NodeRef BddManager::MakeNode(uint32_t level, NodeRef low,
                                         NodeRef high) {
  if (low == high) return low;
  const NodeKey key{level, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) {
    REVISE_OBS_COUNTER("bdd.unique_hits").Increment();
    return it->second;
  }
  const NodeRef ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(Node{level, low, high});
  unique_.emplace(key, ref);
  REVISE_OBS_COUNTER("bdd.nodes_created").Increment();
  obs::Registry::Global()
      .GetGauge("bdd.nodes")
      ->UpdateMax(static_cast<int64_t>(nodes_.size()));
  // High-water estimate of the unique table: node storage plus the hash
  // map entry (key, value, and two pointers of bucket overhead).
  obs::Registry::Global()
      .GetGauge("mem.bdd_unique_bytes")
      ->UpdateMax(static_cast<int64_t>(
          nodes_.size() * (sizeof(Node) + sizeof(NodeKey) +
                           sizeof(NodeRef) + 2 * sizeof(void*))));
  return ref;
}

BddManager::NodeRef BddManager::VarNode(Var var) {
  return MakeNode(LevelForVar(var), kFalse, kTrue);
}

BddManager::NodeRef BddManager::Ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  REVISE_OBS_COUNTER("bdd.ite_calls").Increment();
  const IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) {
    REVISE_OBS_COUNTER("bdd.cache_hits").Increment();
    return it->second;
  }
  const uint32_t level =
      std::min({LevelOf(f), LevelOf(g), LevelOf(h)});
  const NodeRef low = Ite(CofactorLow(f, level), CofactorLow(g, level),
                          CofactorLow(h, level));
  const NodeRef high = Ite(CofactorHigh(f, level), CofactorHigh(g, level),
                           CofactorHigh(h, level));
  const NodeRef result = MakeNode(level, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

BddManager::NodeRef BddManager::Restrict(NodeRef f, Var var, bool value) {
  auto it = level_of_var_.find(var);
  if (it == level_of_var_.end()) return f;
  const uint32_t target = it->second;
  std::unordered_map<NodeRef, NodeRef> memo;
  // Iterative-friendly recursion via lambda.
  std::function<NodeRef(NodeRef)> rec = [&](NodeRef node) -> NodeRef {
    if (node <= kTrue || LevelOf(node) > target) return node;
    auto found = memo.find(node);
    if (found != memo.end()) return found->second;
    NodeRef result;
    if (LevelOf(node) == target) {
      result = value ? nodes_[node].high : nodes_[node].low;
    } else {
      result = MakeNode(nodes_[node].level, rec(nodes_[node].low),
                        rec(nodes_[node].high));
    }
    memo.emplace(node, result);
    return result;
  };
  return rec(f);
}

BddManager::NodeRef BddManager::Exists(NodeRef f,
                                       const std::vector<Var>& vars) {
  NodeRef result = f;
  for (const Var v : vars) {
    result = Or(Restrict(result, v, false), Restrict(result, v, true));
  }
  return result;
}

BddManager::NodeRef BddManager::FromFormula(const Formula& formula) {
  std::unordered_map<const void*, NodeRef> memo;
  std::function<NodeRef(const Formula&)> rec =
      [&](const Formula& f) -> NodeRef {
    auto it = memo.find(f.id());
    if (it != memo.end()) return it->second;
    NodeRef result = kFalse;
    switch (f.kind()) {
      case Connective::kConst:
        result = f.const_value() ? kTrue : kFalse;
        break;
      case Connective::kVar:
        result = VarNode(f.var());
        break;
      case Connective::kNot:
        result = Not(rec(f.child(0)));
        break;
      case Connective::kAnd: {
        result = kTrue;
        for (size_t i = 0; i < f.arity(); ++i) {
          result = And(result, rec(f.child(i)));
          if (result == kFalse) break;
        }
        break;
      }
      case Connective::kOr: {
        result = kFalse;
        for (size_t i = 0; i < f.arity(); ++i) {
          result = Or(result, rec(f.child(i)));
          if (result == kTrue) break;
        }
        break;
      }
      case Connective::kImplies:
        result = Implies(rec(f.child(0)), rec(f.child(1)));
        break;
      case Connective::kIff:
        result = Iff(rec(f.child(0)), rec(f.child(1)));
        break;
      case Connective::kXor:
        result = Xor(rec(f.child(0)), rec(f.child(1)));
        break;
    }
    memo.emplace(f.id(), result);
    return result;
  };
  return rec(formula);
}

bool BddManager::Evaluate(NodeRef f, const Interpretation& m,
                          const Alphabet& alphabet) const {
  NodeRef node = f;
  while (node > kTrue) {
    const Var var = order_[nodes_[node].level];
    const auto index = alphabet.IndexOf(var);
    const bool value = index.has_value() && m.Get(*index);
    node = value ? nodes_[node].high : nodes_[node].low;
  }
  return node == kTrue;
}

size_t BddManager::NodeCount(NodeRef f) const {
  if (f <= kTrue) return 0;
  std::unordered_set<NodeRef> seen;
  std::vector<NodeRef> stack = {f};
  while (!stack.empty()) {
    const NodeRef node = stack.back();
    stack.pop_back();
    if (node <= kTrue || !seen.insert(node).second) continue;
    stack.push_back(nodes_[node].low);
    stack.push_back(nodes_[node].high);
  }
  return seen.size();
}

uint64_t BddManager::CountModels(NodeRef f) const {
  const uint64_t n = order_.size();
  REVISE_CHECK_LE(n, 63u);
  std::unordered_map<NodeRef, uint64_t> memo;  // models below node level
  std::function<uint64_t(NodeRef)> rec = [&](NodeRef node) -> uint64_t {
    // Returns the number of models over the variables strictly below
    // (deeper than or at) the node's level.
    if (node == kFalse) return 0;
    if (node == kTrue) return 1;  // scaled by caller
    auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const uint64_t level = nodes_[node].level;
    auto child_count = [&](NodeRef child) -> uint64_t {
      const uint64_t child_level =
          child <= kTrue ? n : nodes_[child].level;
      return rec(child) << (child_level - level - 1);
    };
    const uint64_t result =
        child_count(nodes_[node].low) + child_count(nodes_[node].high);
    memo.emplace(node, result);
    return result;
  };
  if (f == kFalse) return 0;
  if (f == kTrue) return uint64_t{1} << n;
  return rec(f) << nodes_[f].level;
}

}  // namespace revise
