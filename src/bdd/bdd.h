// Reduced Ordered Binary Decision Diagrams.
//
// Section 7 of the paper generalizes the (non-)compactability results
// from propositional formulas to ANY data structure D with a polynomial
// ASK(D, M) model-checking algorithm (Definition 7.1 / Theorem 7.1).
// ROBDDs are the canonical such structure: Evaluate() walks one path in
// O(#variables).  This package is used to measure the size of the revised
// knowledge base under a genuinely different representation — canonicity
// means the measured node counts are representation-minimal for the
// chosen variable order — and it doubles as an independent cross-check of
// the SAT-based equivalence machinery (equivalent formulas build the
// identical node).
//
// Implementation: hash-consed unique table, ITE with memoization,
// restrict / existential quantification, exact model counting.  No
// garbage collection (managers are short-lived analysis objects).

#ifndef REVISE_BDD_BDD_H_
#define REVISE_BDD_BDD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/formula.h"
#include "logic/interpretation.h"

namespace revise {

class BddManager {
 public:
  // A node reference; 0 is the false terminal, 1 the true terminal.
  using NodeRef = uint32_t;
  static constexpr NodeRef kFalse = 0;
  static constexpr NodeRef kTrue = 1;

  // Variables are ordered by first appearance unless an explicit order is
  // given up front.
  BddManager() = default;
  explicit BddManager(const std::vector<Var>& order);

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  NodeRef VarNode(Var var);

  NodeRef Not(NodeRef f) { return Ite(f, kFalse, kTrue); }
  NodeRef And(NodeRef f, NodeRef g) { return Ite(f, g, kFalse); }
  NodeRef Or(NodeRef f, NodeRef g) { return Ite(f, kTrue, g); }
  NodeRef Xor(NodeRef f, NodeRef g) { return Ite(f, Not(g), g); }
  NodeRef Iff(NodeRef f, NodeRef g) { return Ite(f, g, Not(g)); }
  NodeRef Implies(NodeRef f, NodeRef g) { return Ite(f, g, kTrue); }
  NodeRef Ite(NodeRef f, NodeRef g, NodeRef h);

  // f with `var` fixed to `value`.
  NodeRef Restrict(NodeRef f, Var var, bool value);
  // Existential quantification over a set of variables.
  NodeRef Exists(NodeRef f, const std::vector<Var>& vars);

  // Compiles a Formula (introducing any new variables in first-appearance
  // order).
  NodeRef FromFormula(const Formula& formula);

  // The ASK algorithm of Definition 7.1: one root-to-terminal walk.
  // Letters absent from the manager are irrelevant; letters of the
  // manager absent from `alphabet` read as false.
  bool Evaluate(NodeRef f, const Interpretation& m,
                const Alphabet& alphabet) const;

  // Number of reachable internal nodes (the |D| size measure).
  size_t NodeCount(NodeRef f) const;

  // Exact number of models over the manager's full variable set.
  uint64_t CountModels(NodeRef f) const;

  // The manager's variables in order.
  const std::vector<Var>& order() const { return order_; }
  size_t num_vars() const { return order_.size(); }

  // Raw node-table access for serialization (the artifact layer persists
  // the reachable subgraph as Definition 7.1's data structure D).  `f`
  // must be an internal node: 2 <= f < num_nodes().
  size_t num_nodes() const { return nodes_.size(); }
  uint32_t NodeLevel(NodeRef f) const { return nodes_[f].level; }
  NodeRef NodeLow(NodeRef f) const { return nodes_[f].low; }
  NodeRef NodeHigh(NodeRef f) const { return nodes_[f].high; }

 private:
  struct Node {
    uint32_t level;
    NodeRef low;
    NodeRef high;
  };
  struct NodeKey {
    uint32_t level;
    NodeRef low;
    NodeRef high;
    bool operator==(const NodeKey& other) const {
      return level == other.level && low == other.low &&
             high == other.high;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& key) const {
      uint64_t h = key.level;
      h = h * 0x9e3779b97f4a7c15ULL + key.low;
      h = h * 0x9e3779b97f4a7c15ULL + key.high;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  struct IteKey {
    NodeRef f;
    NodeRef g;
    NodeRef h;
    bool operator==(const IteKey& other) const {
      return f == other.f && g == other.g && h == other.h;
    }
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& key) const {
      uint64_t v = key.f;
      v = v * 0x9e3779b97f4a7c15ULL + key.g;
      v = v * 0x9e3779b97f4a7c15ULL + key.h;
      return static_cast<size_t>(v ^ (v >> 32));
    }
  };

  static constexpr uint32_t kTerminalLevel = 0xffffffff;

  uint32_t LevelOf(NodeRef f) const {
    return f <= kTrue ? kTerminalLevel : nodes_[f].level;
  }
  NodeRef MakeNode(uint32_t level, NodeRef low, NodeRef high);
  NodeRef CofactorLow(NodeRef f, uint32_t level) const {
    return LevelOf(f) == level ? nodes_[f].low : f;
  }
  NodeRef CofactorHigh(NodeRef f, uint32_t level) const {
    return LevelOf(f) == level ? nodes_[f].high : f;
  }
  uint32_t LevelForVar(Var var);

  std::vector<Var> order_;
  std::unordered_map<Var, uint32_t> level_of_var_;
  std::vector<Node> nodes_{{kTerminalLevel, 0, 0},
                           {kTerminalLevel, 1, 1}};
  std::unordered_map<NodeKey, NodeRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, NodeRef, IteKeyHash> ite_cache_;
};

}  // namespace revise

#endif  // REVISE_BDD_BDD_H_
