#include "hardness/tau.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace revise {

TauMax::TauMax(int n, Vocabulary* vocabulary) : n_(n) {
  REVISE_CHECK_GE(n, 3);
  atoms_.reserve(n);
  for (int i = 1; i <= n; ++i) {
    atoms_.push_back(vocabulary->Intern("b" + std::to_string(i)));
  }
  // All C(n,3) variable triples, all 8 sign patterns.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      for (int k = j + 1; k < n; ++k) {
        for (int signs = 0; signs < 8; ++signs) {
          TauClause clause;
          clause.var_index = {i, j, k};
          clause.negated = {(signs & 1) != 0, (signs & 2) != 0,
                            (signs & 4) != 0};
          clauses_.push_back(clause);
        }
      }
    }
  }
}

Formula TauMax::ClauseFormula(size_t j) const {
  REVISE_CHECK_LT(j, clauses_.size());
  const TauClause& clause = clauses_[j];
  std::vector<Formula> lits;
  lits.reserve(3);
  for (int k = 0; k < 3; ++k) {
    lits.push_back(Formula::Literal(atoms_[clause.var_index[k]],
                                    /*positive=*/!clause.negated[k]));
  }
  return DisjoinAll(lits);
}

Formula TauMax::InstanceFormula(const std::vector<size_t>& pi) const {
  std::vector<Formula> clauses;
  clauses.reserve(pi.size());
  for (const size_t j : pi) clauses.push_back(ClauseFormula(j));
  return ConjoinAll(clauses);
}

Theory TauMax::InstanceTheory(const std::vector<size_t>& pi) const {
  Theory theory;
  for (const size_t j : pi) theory.Add(ClauseFormula(j));
  return theory;
}

size_t TauMax::IndexOf(const TauClause& clause) const {
  for (size_t j = 0; j < clauses_.size(); ++j) {
    if (clauses_[j].var_index == clause.var_index &&
        clauses_[j].negated == clause.negated) {
      return j;
    }
  }
  REVISE_CHECK(false);
  return 0;
}

std::vector<size_t> TauMax::RandomInstance(size_t num_clauses,
                                           Rng* rng) const {
  REVISE_CHECK_LE(num_clauses, clauses_.size());
  // Partial Fisher-Yates over clause indices.
  std::vector<size_t> indices(clauses_.size());
  for (size_t j = 0; j < indices.size(); ++j) indices[j] = j;
  std::vector<size_t> pi;
  pi.reserve(num_clauses);
  for (size_t i = 0; i < num_clauses; ++i) {
    const size_t j = i + rng->Below(indices.size() - i);
    std::swap(indices[i], indices[j]);
    pi.push_back(indices[i]);
  }
  std::sort(pi.begin(), pi.end());
  return pi;
}

}  // namespace revise
