#include "hardness/families.h"

#include <string>

#include "util/check.h"

namespace revise {

namespace {

// Membership vector: in_pi[j] iff clause j belongs to pi.
std::vector<bool> Membership(size_t num_clauses,
                             const std::vector<size_t>& pi) {
  std::vector<bool> in_pi(num_clauses, false);
  for (const size_t j : pi) {
    REVISE_CHECK_LT(j, num_clauses);
    in_pi[j] = true;
  }
  return in_pi;
}

}  // namespace

// ---- Theorem 3.1 -----------------------------------------------------

Theorem31Family::Theorem31Family(int n, Vocabulary* vocabulary)
    : tau(n, vocabulary) {
  const size_t m = tau.num_clauses();
  for (size_t j = 0; j < m; ++j) {
    c.push_back(vocabulary->Intern("thm31_c" + std::to_string(j)));
    d.push_back(vocabulary->Intern("thm31_d" + std::to_string(j)));
  }
  r = vocabulary->Intern("thm31_r");

  // T_n: the set of atoms C ∪ D ∪ B_n ∪ {r}.
  for (size_t j = 0; j < m; ++j) t.Add(Formula::Variable(c[j]));
  for (size_t j = 0; j < m; ++j) t.Add(Formula::Variable(d[j]));
  for (const Var b : tau.atoms()) t.Add(Formula::Variable(b));
  t.Add(Formula::Variable(r));

  // P_n = ((/\ !b_i & !r) \/ /\_j (c_j -> gamma_j)) & /\_j (c_j ^ d_j).
  std::vector<Formula> all_b_false;
  for (const Var b : tau.atoms()) {
    all_b_false.push_back(Formula::Literal(b, false));
  }
  all_b_false.push_back(Formula::Literal(r, false));
  std::vector<Formula> guards;
  for (size_t j = 0; j < m; ++j) {
    guards.push_back(
        Formula::Implies(Formula::Variable(c[j]), tau.ClauseFormula(j)));
  }
  std::vector<Formula> xor_cd;
  for (size_t j = 0; j < m; ++j) {
    xor_cd.push_back(
        Formula::Xor(Formula::Variable(c[j]), Formula::Variable(d[j])));
  }
  p = Formula::And(
      Formula::Or(ConjoinAll(all_b_false), ConjoinAll(guards)),
      ConjoinAll(xor_cd));
}

Formula Theorem31Family::WFormula(const std::vector<size_t>& pi) const {
  const std::vector<bool> in_pi = Membership(tau.num_clauses(), pi);
  std::vector<Formula> lits;
  for (size_t j = 0; j < tau.num_clauses(); ++j) {
    lits.push_back(Formula::Variable(in_pi[j] ? c[j] : d[j]));
  }
  return ConjoinAll(lits);
}

Formula Theorem31Family::Query(const std::vector<size_t>& pi) const {
  return Formula::Implies(WFormula(pi), Formula::Variable(r));
}

// ---- Theorem 3.3 -----------------------------------------------------

Theorem33Family::Theorem33Family(int n, Vocabulary* vocabulary)
    : tau(n, vocabulary) {
  const size_t m = tau.num_clauses();
  const size_t rows = static_cast<size_t>(n) + 2;
  c.resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < m; ++j) {
      c[i].push_back(vocabulary->Intern("thm33_c" + std::to_string(i) +
                                        "_" + std::to_string(j)));
    }
  }
  r = vocabulary->Intern("thm33_r");

  // U: all rows of the guard matrix are equal (row 0 is the reference).
  std::vector<Formula> equalities;
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 1; i < rows; ++i) {
      equalities.push_back(Formula::Iff(Formula::Variable(c[0][j]),
                                        Formula::Variable(c[i][j])));
    }
  }
  u = ConjoinAll(equalities);

  // T_n = {U} ∪ B_n ∪ {r}.
  t.Add(u);
  for (const Var b : tau.atoms()) t.Add(Formula::Variable(b));
  t.Add(Formula::Variable(r));

  // P_n = ((/\ !b_i & !r) \/ /\_j (c_1j -> gamma_j)) & U.
  std::vector<Formula> all_b_false;
  for (const Var b : tau.atoms()) {
    all_b_false.push_back(Formula::Literal(b, false));
  }
  all_b_false.push_back(Formula::Literal(r, false));
  std::vector<Formula> guards;
  for (size_t j = 0; j < m; ++j) {
    guards.push_back(Formula::Implies(Formula::Variable(c[0][j]),
                                      tau.ClauseFormula(j)));
  }
  p = Formula::And(
      Formula::Or(ConjoinAll(all_b_false), ConjoinAll(guards)), u);
}

Interpretation Theorem33Family::MPi(const std::vector<size_t>& pi,
                                    const Alphabet& alphabet) const {
  Interpretation m_pi(alphabet.size());
  for (const size_t j : pi) {
    for (const auto& row : c) {
      m_pi.Set(*alphabet.IndexOf(row[j]), true);
    }
  }
  return m_pi;
}

Formula Theorem33Family::Query(const std::vector<size_t>& pi) const {
  const std::vector<bool> in_pi = Membership(tau.num_clauses(), pi);
  std::vector<Formula> disjuncts;
  for (size_t j = 0; j < tau.num_clauses(); ++j) {
    for (const auto& row : c) {
      disjuncts.push_back(
          Formula::Literal(row[j], /*positive=*/!in_pi[j]));
    }
  }
  for (const Var b : tau.atoms()) {
    disjuncts.push_back(Formula::Variable(b));
  }
  disjuncts.push_back(Formula::Variable(r));
  return DisjoinAll(disjuncts);
}

Alphabet Theorem33Family::FullAlphabet() const {
  std::vector<Var> vars = tau.atoms();
  for (const auto& row : c) {
    vars.insert(vars.end(), row.begin(), row.end());
  }
  vars.push_back(r);
  return Alphabet(std::move(vars));
}

// ---- Theorems 3.6 / 6.5 ------------------------------------------------

Theorem36Family::Theorem36Family(int n, Vocabulary* vocabulary)
    : tau(n, vocabulary) {
  const size_t m = tau.num_clauses();
  for (int i = 1; i <= n; ++i) {
    y.push_back(vocabulary->Intern("thm36_y" + std::to_string(i)));
  }
  for (size_t j = 0; j < m; ++j) {
    c.push_back(vocabulary->Intern("thm36_c" + std::to_string(j)));
  }

  std::vector<Formula> xors;
  for (int i = 0; i < n; ++i) {
    xors.push_back(Formula::Xor(Formula::Variable(tau.atoms()[i]),
                                Formula::Variable(y[i])));
  }
  phi = ConjoinAll(xors);

  std::vector<Formula> guards;
  for (size_t j = 0; j < m; ++j) {
    guards.push_back(
        Formula::Implies(Formula::Variable(c[j]), tau.ClauseFormula(j)));
  }
  gamma = ConjoinAll(guards);

  t.Add(Formula::And(phi, gamma));

  std::vector<Formula> p_parts;
  for (int i = 0; i < n; ++i) {
    const Formula step = Formula::And(
        Formula::Literal(tau.atoms()[i], false),
        Formula::Literal(y[i], false));
    updates.push_back(step);
    p_parts.push_back(step);
  }
  p = ConjoinAll(p_parts);
}

Interpretation Theorem36Family::CPi(const std::vector<size_t>& pi,
                                    const Alphabet& alphabet) const {
  Interpretation c_pi(alphabet.size());
  for (const size_t j : pi) {
    c_pi.Set(*alphabet.IndexOf(c[j]), true);
  }
  return c_pi;
}

Alphabet Theorem36Family::FullAlphabet() const {
  std::vector<Var> vars = tau.atoms();
  vars.insert(vars.end(), y.begin(), y.end());
  vars.insert(vars.end(), c.begin(), c.end());
  return Alphabet(std::move(vars));
}

// ---- Theorem 4.1 -----------------------------------------------------

Theorem41Family::Theorem41Family(int n, Vocabulary* vocabulary)
    : base(n, vocabulary) {
  s = vocabulary->Intern("thm41_s");
  const Formula not_s = Formula::Literal(s, false);
  for (const Formula& f : base.t) {
    t_prime.Add(Formula::And(f, Formula::Or(not_s, base.p)));
  }
  t_prime.Add(not_s);
  p_prime = Formula::Variable(s);
}

// ---- Explosion examples ------------------------------------------------

NebelExplosionFamily::NebelExplosionFamily(int m, Vocabulary* vocabulary) {
  std::vector<Formula> xors;
  for (int i = 1; i <= m; ++i) {
    x.push_back(vocabulary->Intern("neb_x" + std::to_string(i)));
    y.push_back(vocabulary->Intern("neb_y" + std::to_string(i)));
    t.Add(Formula::Variable(x.back()));
    t.Add(Formula::Variable(y.back()));
    xors.push_back(Formula::Xor(Formula::Variable(x.back()),
                                Formula::Variable(y.back())));
  }
  p = ConjoinAll(xors);
}

WinslettChainFamily::WinslettChainFamily(int m, Vocabulary* vocabulary) {
  REVISE_CHECK_GE(m, 1);
  for (int i = 1; i <= m; ++i) {
    x.push_back(vocabulary->Intern("win_x" + std::to_string(i)));
    y.push_back(vocabulary->Intern("win_y" + std::to_string(i)));
    z.push_back(vocabulary->Intern("win_z" + std::to_string(i)));
  }
  for (int i = 0; i < m; ++i) {
    t.Add(Formula::Variable(x[i]));
    t.Add(Formula::Variable(y[i]));
    const Formula not_both = Formula::Or(
        Formula::Literal(x[i], false), Formula::Literal(y[i], false));
    const Formula rhs =
        i == 0 ? not_both
               : Formula::And(Formula::Variable(z[i - 1]), not_both);
    t.Add(Formula::Iff(Formula::Variable(z[i]), rhs));
  }
  p = Formula::Variable(z.back());
}

}  // namespace revise
