#include "hardness/random_instances.h"

#include <algorithm>

#include "util/check.h"

namespace revise {

namespace {

Formula RandomClause(const std::vector<Var>& vars, size_t clause_len,
                     Rng* rng) {
  REVISE_CHECK_GE(vars.size(), clause_len);
  // Sample `clause_len` distinct variables.
  std::vector<Var> pool = vars;
  std::vector<Formula> lits;
  lits.reserve(clause_len);
  for (size_t i = 0; i < clause_len; ++i) {
    const size_t j = i + rng->Below(pool.size() - i);
    std::swap(pool[i], pool[j]);
    lits.push_back(Formula::Literal(pool[i], rng->Chance(0.5)));
  }
  return DisjoinAll(lits);
}

}  // namespace

Theory Random3Cnf(const std::vector<Var>& vars, size_t num_clauses,
                  Rng* rng) {
  Theory theory;
  for (size_t i = 0; i < num_clauses; ++i) {
    theory.Add(RandomClause(vars, 3, rng));
  }
  return theory;
}

Formula RandomClauses(const std::vector<Var>& vars, size_t num_clauses,
                      size_t clause_len, Rng* rng) {
  std::vector<Formula> clauses;
  clauses.reserve(num_clauses);
  for (size_t i = 0; i < num_clauses; ++i) {
    clauses.push_back(RandomClause(vars, clause_len, rng));
  }
  return ConjoinAll(clauses);
}

Formula RandomFormula(const std::vector<Var>& vars, int max_depth,
                      Rng* rng) {
  REVISE_CHECK(!vars.empty());
  if (max_depth <= 0 || rng->Chance(0.2)) {
    return Formula::Literal(vars[rng->Below(vars.size())],
                            rng->Chance(0.5));
  }
  switch (rng->Below(6)) {
    case 0:
      return Formula::Not(RandomFormula(vars, max_depth - 1, rng));
    case 1:
      return Formula::And(RandomFormula(vars, max_depth - 1, rng),
                          RandomFormula(vars, max_depth - 1, rng));
    case 2:
      return Formula::Or(RandomFormula(vars, max_depth - 1, rng),
                         RandomFormula(vars, max_depth - 1, rng));
    case 3:
      return Formula::Implies(RandomFormula(vars, max_depth - 1, rng),
                              RandomFormula(vars, max_depth - 1, rng));
    case 4:
      return Formula::Iff(RandomFormula(vars, max_depth - 1, rng),
                          RandomFormula(vars, max_depth - 1, rng));
    default:
      return Formula::Xor(RandomFormula(vars, max_depth - 1, rng),
                          RandomFormula(vars, max_depth - 1, rng));
  }
}

}  // namespace revise
