// The 3-SAT_n partition machinery of Definition 2.5.
//
// For each n, tau_n^max is the set of ALL three-literal clauses over the
// atoms B_n = {b_1, ..., b_n} (distinct variables, any signs): Theta(n^3)
// clauses.  Every instance pi of 3-SAT_n is a subset of tau_n^max,
// identified here by the sorted list of clause indices it contains.  The
// non-compactability theorems build, for each n, a single (T_n, P_n) pair
// from tau_n^max such that EVERY pi of size n can be decided through the
// revised knowledge base — the "advice" of Theorems 2.2/2.3, materialized.

#ifndef REVISE_HARDNESS_TAU_H_
#define REVISE_HARDNESS_TAU_H_

#include <array>
#include <vector>

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "util/random.h"

namespace revise {

// One three-literal clause: variable positions within B_n plus signs.
struct TauClause {
  std::array<int, 3> var_index;  // strictly increasing positions in B_n
  std::array<bool, 3> negated;
};

class TauMax {
 public:
  // Builds tau_n^max over fresh atoms b1..bn (interned as "b1".."bn").
  TauMax(int n, Vocabulary* vocabulary);

  int n() const { return n_; }
  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Var>& atoms() const { return atoms_; }
  const TauClause& clause(size_t j) const { return clauses_[j]; }

  // The clause gamma_j as a formula (disjunction of three literals).
  Formula ClauseFormula(size_t j) const;

  // The instance pi (clause indices) as a conjunction of clauses.
  Formula InstanceFormula(const std::vector<size_t>& pi) const;
  // ... and as a theory with one clause per element.
  Theory InstanceTheory(const std::vector<size_t>& pi) const;

  // Index of the clause with the given shape, for building instances by
  // hand.  Aborts if the shape is malformed.
  size_t IndexOf(const TauClause& clause) const;

  // A random instance with `num_clauses` distinct clauses.
  std::vector<size_t> RandomInstance(size_t num_clauses, Rng* rng) const;

 private:
  int n_;
  std::vector<Var> atoms_;
  std::vector<TauClause> clauses_;
};

}  // namespace revise

#endif  // REVISE_HARDNESS_TAU_H_
