// Random workload generators: random k-CNF instances and random formula
// trees.  Used by the test suites (cross-validation against brute force)
// and by the benchmark harnesses.

#ifndef REVISE_HARDNESS_RANDOM_INSTANCES_H_
#define REVISE_HARDNESS_RANDOM_INSTANCES_H_

#include <vector>

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "util/random.h"

namespace revise {

// A random 3-CNF over `vars` with `num_clauses` clauses; clauses have three
// distinct variables with random signs (the classic fixed-clause-length
// model used for phase-transition workloads).
Theory Random3Cnf(const std::vector<Var>& vars, size_t num_clauses,
                  Rng* rng);

// A random formula tree of depth <= max_depth over `vars`, drawing all
// connectives (including ->, <->, ^).
Formula RandomFormula(const std::vector<Var>& vars, int max_depth, Rng* rng);

// A random satisfiable formula obtained by conjoining `num_clauses` random
// clauses of length `clause_len` and, if unsatisfiable, dropping clauses
// until satisfiable is NOT done here; callers requiring satisfiability
// should test and retry with the next seed.
Formula RandomClauses(const std::vector<Var>& vars, size_t num_clauses,
                      size_t clause_len, Rng* rng);

}  // namespace revise

#endif  // REVISE_HARDNESS_RANDOM_INSTANCES_H_
