// The hard-instance families from the paper's non-compactability proofs.
//
// Each family materializes, for a given n, the pair (T_n, P_n) — the
// would-be "advice" of Theorems 2.2/2.3 — together with the per-instance
// artifacts (query Q_pi or interpretation M_pi) that decide satisfiability
// of any pi in 3-SAT_n through the revised knowledge base.  The test suite
// and the Table 1/2 benches validate the reductions exhaustively on small
// n: pi is satisfiable iff the stated revision query/model-check holds.
//
//   * Theorem 3.1  — GFUV, query equivalence (and via Theorem 3.2 also
//                    Satoh, Borgida, Winslett).
//   * Theorem 3.3  — Forbus, query equivalence.
//   * Theorem 3.6  — Dalal and Weber, LOGICAL equivalence (model check).
//   * Theorem 4.1  — GFUV with |P| bounded by a constant.
//   * Theorem 6.5  — all model-based operators, iterated bounded
//                    revisions, logical equivalence (model check).
//
// Also the two explicit-representation explosion examples of Section 3.1:
// Nebel's family (2^m possible worlds) and Winslett's chain family
// (exponentially many worlds with a constant-size P).

#ifndef REVISE_HARDNESS_FAMILIES_H_
#define REVISE_HARDNESS_FAMILIES_H_

#include <vector>

#include "hardness/tau.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"

namespace revise {

// ---- Theorem 3.1 -----------------------------------------------------

struct Theorem31Family {
  TauMax tau;
  std::vector<Var> c;  // one guard per clause of tau_n^max
  std::vector<Var> d;  // anti-guards, one per clause
  Var r;
  Theory t;   // T_n: the atoms C ∪ D ∪ B_n ∪ {r}
  Formula p;  // P_n

  Theorem31Family(int n, Vocabulary* vocabulary);

  // W_pi: the guard literals describing pi (c_j for clauses in pi, d_j
  // for the others), as a conjunction.
  Formula WFormula(const std::vector<size_t>& pi) const;
  // Q_pi = (/\ W_pi) -> r.  pi satisfiable iff T_n *_GFUV P_n |= Q_pi.
  Formula Query(const std::vector<size_t>& pi) const;
};

// ---- Theorem 3.3 -----------------------------------------------------

struct Theorem33Family {
  TauMax tau;
  // Guard matrix: c[i][j] for row i in 0..n+1, clause j.
  std::vector<std::vector<Var>> c;
  Var r;
  Formula u;  // U: all rows of the matrix equal
  Theory t;   // T_n = {U} ∪ B_n ∪ {r}
  Formula p;  // P_n

  Theorem33Family(int n, Vocabulary* vocabulary);

  // M_pi: all guard columns of pi's clauses true (every row), everything
  // else false — over `alphabet` (which must be the family's alphabet).
  Interpretation MPi(const std::vector<size_t>& pi,
                     const Alphabet& alphabet) const;
  // Q_pi: satisfied by every interpretation except M_pi.
  // pi satisfiable iff T_n *_F P_n |= Q_pi iff M_pi not a model.
  Formula Query(const std::vector<size_t>& pi) const;

  // The full alphabet L = B_n ∪ C ∪ {r}.
  Alphabet FullAlphabet() const;
};

// ---- Theorem 3.6 (single) and Theorem 6.5 (iterated) ------------------

struct Theorem36Family {
  TauMax tau;
  std::vector<Var> y;  // copies of the b atoms
  std::vector<Var> c;  // one guard per clause
  Formula phi;    // /\ (b_i ^ y_i)
  Formula gamma;  // /\ (c_j -> gamma_j)
  Theory t;       // T_n = {phi & gamma}
  Formula p;      // Theorem 3.6's single P_n = /\ (!b_i & !y_i)
  // Theorem 6.5's sequence P^i = !b_i & !y_i, i = 1..n.
  std::vector<Formula> updates;

  Theorem36Family(int n, Vocabulary* vocabulary);

  // C_pi: guards of pi's clauses true, all else false.
  // pi satisfiable iff C_pi |= T_n *_D P_n iff C_pi |= T_n *_Web P_n
  // (Thm 3.6), and iff C_pi |= T_n * P^1 * ... * P^n for every model-based
  // operator (Thm 6.5).
  Interpretation CPi(const std::vector<size_t>& pi,
                     const Alphabet& alphabet) const;

  Alphabet FullAlphabet() const;
};

// Theorem 6.5 reuses the Theorem 3.6 gadget with the update sequence
// P^i = !b_i & !y_i in place of the single conjunction.
using Theorem65Family = Theorem36Family;

// ---- Theorem 4.1 -----------------------------------------------------

// The bounded-P reduction for GFUV: T'_n = {f & (!s | P_n) : f in T_n}
// ∪ {!s} and P' = s, built on top of a Theorem 3.1 family.
struct Theorem41Family {
  Theorem31Family base;
  Var s;
  Theory t_prime;
  Formula p_prime;  // the single letter s: |P'| = 1

  Theorem41Family(int n, Vocabulary* vocabulary);

  // Same queries as the base family: pi satisfiable iff
  // T'_n *_GFUV s |= Q_pi.
  Formula Query(const std::vector<size_t>& pi) const {
    return base.Query(pi);
  }
};

// ---- Explosion examples (Section 3.1) ---------------------------------

// Nebel's family: T = {x_1..x_m, y_1..y_m}, P = /\ (x_i ^ y_i).
// |W(T,P)| = 2^m while T *_GFUV P is logically equivalent to P.
struct NebelExplosionFamily {
  std::vector<Var> x;
  std::vector<Var> y;
  Theory t;
  Formula p;

  NebelExplosionFamily(int m, Vocabulary* vocabulary);
};

// Winslett's chain family: T = {x_i, y_i, z_i <-> (z_{i-1} & (!x_i|!y_i))}
// with z_1 <-> (!x_1 | !y_1), P = z_m.  |P| is constant yet |W(T,P)| is
// exponential in m.
struct WinslettChainFamily {
  std::vector<Var> x;
  std::vector<Var> y;
  std::vector<Var> z;
  Theory t;
  Formula p;

  WinslettChainFamily(int m, Vocabulary* vocabulary);
};

}  // namespace revise

#endif  // REVISE_HARDNESS_FAMILIES_H_
