// An annotated mutex, RAII lock, and condition variable over the std
// primitives.
//
// `util::Mutex` is a std::mutex that clang Thread Safety Analysis can
// see: it is declared a capability, Lock/Unlock acquire and release it,
// and members guarded with REVISE_GUARDED_BY(mu_) become compile errors
// when touched without the lock (see util/thread_annotations.h and the
// -Wthread-safety CI job).  `MutexLock` is the scoped form — the project
// analogue of std::lock_guard.  `CondVar` pairs with Mutex the way
// std::condition_variable pairs with std::unique_lock; Wait() declares
// REVISE_REQUIRES(mu), so a wait outside the lock is a build error too.
//
// This header is the only place raw std::mutex / std::lock_guard /
// std::condition_variable may appear (enforced by the raw-mutex rule in
// tools/revise_lint; the wrapper itself is allowlisted).  Everything
// else locks through these types so the whole tree stays analyzable.
//
// The wrappers add no state and no indirection: Mutex is exactly a
// std::mutex, MutexLock is exactly a lock_guard, and CondVar waits on
// the underlying std::mutex directly (condition_variable_any over the
// raw mutex — one virtual-free template instantiation, no shared_ptr
// machinery).

#ifndef REVISE_UTIL_MUTEX_H_
#define REVISE_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace revise::util {

class REVISE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() REVISE_ACQUIRE() { mu_.lock(); }
  void Unlock() REVISE_RELEASE() { mu_.unlock(); }
  bool TryLock() REVISE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped acquisition: locks at construction, unlocks at destruction.
class REVISE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) REVISE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() REVISE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// A condition variable bound to util::Mutex.  Wait() requires the mutex
// held (the analysis checks it) and may wake spuriously, so callers
// re-test their predicate in an explicit `while` loop — deliberately:
// a lambda predicate would read guarded members from a context the
// analysis cannot annotate, while a `while (!ready_) cv_.Wait(mu_);`
// loop is checked like any other guarded access.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REVISE_REQUIRES(mu) { cv_.wait(mu.mu_); }

  // Timed wait for the service loops (statsz accept queue, the metrics
  // dumper, the stall watchdog): returns false on timeout, true when
  // notified (or woken spuriously — callers re-test their predicate in
  // a `while` loop either way, exactly as with Wait).
  bool WaitFor(Mutex& mu, int64_t timeout_ms) REVISE_REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // _any because it waits on the raw std::mutex rather than a
  // std::unique_lock; the analysis never sees the raw mutex move.
  std::condition_variable_any cv_;
};

}  // namespace revise::util

#endif  // REVISE_UTIL_MUTEX_H_
