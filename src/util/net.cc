#include "util/net.h"

#if defined(__unix__) || defined(__APPLE__)
#define REVISE_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace revise::util {

#if defined(REVISE_HAVE_SOCKETS)

namespace {

Status ErrnoError(const char* what) {
  return InternalError(std::string(what) + ": " + std::strerror(errno));
}

// Milliseconds left until `deadline`, clamped at 0; -1 for "no deadline"
// (the poll(2) convention).  Computing the remainder from a fixed
// deadline — instead of re-arming the full timeout on every poll — is
// what makes the read bounds below *overall* bounds.
int RemainingMs(bool has_deadline,
                std::chrono::steady_clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

}  // namespace

StatusOr<TcpListener> ListenTcpLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = ErrnoError("bind");
    CloseSocket(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    const Status status = ErrnoError("listen");
    CloseSocket(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const Status status = ErrnoError("getsockname");
    CloseSocket(fd);
    return status;
  }
  TcpListener listener;
  listener.fd = fd;
  listener.port = ntohs(bound.sin_port);
  return listener;
}

StatusOr<int> AcceptConnection(int listen_fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return DeadlineExceededError("accept timeout");
  if (ready < 0) {
    if (errno == EINTR) return DeadlineExceededError("accept interrupted");
    return ErrnoError("poll");
  }
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return InternalError("listener closed");
  }
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return ErrnoError("accept");
  return fd;
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadHttpRequestHead(int fd, size_t max_bytes,
                                          int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(has_deadline ? timeout_ms
                                                               : 0);
  std::string head;
  char buffer[512];
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  while (head.size() < max_bytes) {
    // Wait for readability under the overall deadline: a client that
    // connects and then goes silent (or drips one byte per poll) gets
    // kDeadlineExceeded instead of pinning this worker forever.
    const int ready = ::poll(&pfd, 1, RemainingMs(has_deadline, deadline));
    if (ready == 0) {
      return DeadlineExceededError("http request head timeout");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("poll");
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv");
    }
    if (n == 0) break;  // EOF: whatever arrived is the head
    head.append(buffer, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return head;
    }
  }
  if (head.size() >= max_bytes) {
    return ResourceExhaustedError("http request head exceeds limit");
  }
  return head;
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

StatusOr<std::string> HttpGet(uint16_t port, std::string_view path,
                              int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = ErrnoError("connect");
    CloseSocket(fd);
    return status;
  }
  std::string request = "GET ";
  request += path;
  request += " HTTP/1.0\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  if (const Status status = SendAll(fd, request); !status.ok()) {
    CloseSocket(fd);
    return status;
  }
  std::string response;
  char buffer[4096];
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  // One overall deadline for the whole response: re-arming `timeout_ms`
  // per poll would let a responder that drips a byte every few hundred
  // milliseconds extend the call indefinitely.
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(has_deadline ? timeout_ms
                                                               : 0);
  for (;;) {
    const int ready = ::poll(&pfd, 1, RemainingMs(has_deadline, deadline));
    if (ready <= 0) {
      CloseSocket(fd);
      if (ready == 0) return DeadlineExceededError("http response timeout");
      if (errno == EINTR) continue;
      return ErrnoError("poll");
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoError("recv");
      CloseSocket(fd);
      return status;
    }
    if (n == 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  CloseSocket(fd);
  return response;
}

#else  // !defined(REVISE_HAVE_SOCKETS)

StatusOr<TcpListener> ListenTcpLoopback(uint16_t, int) {
  return UnimplementedError("sockets unavailable on this platform");
}
StatusOr<int> AcceptConnection(int, int) {
  return UnimplementedError("sockets unavailable on this platform");
}
Status SendAll(int, std::string_view) {
  return UnimplementedError("sockets unavailable on this platform");
}
StatusOr<std::string> ReadHttpRequestHead(int, size_t, int) {
  return UnimplementedError("sockets unavailable on this platform");
}
void CloseSocket(int) {}
StatusOr<std::string> HttpGet(uint16_t, std::string_view, int) {
  return UnimplementedError("sockets unavailable on this platform");
}

#endif  // REVISE_HAVE_SOCKETS

}  // namespace revise::util
