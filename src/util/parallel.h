// A minimal process-wide thread pool and a deterministic parallel-for.
//
// Design (see DESIGN.md "Performance"):
//   * no external dependencies: std::thread, one mutex, two condition
//     variables;
//   * the worker count comes from the REVISE_THREADS environment variable
//     (falling back to std::thread::hardware_concurrency), and can be
//     overridden in-process with SetParallelThreadsOverride — tests run
//     the same kernels at 1, 2 and 8 threads from a single binary;
//   * determinism: ParallelMapRanges splits [0, n) into contiguous shards
//     whose boundaries depend only on n and the thread count, and returns
//     the per-shard results indexed by shard.  Callers merge in shard
//     order, so a result is bit-identical across runs and across worker
//     interleavings.  The revision kernels additionally merge through
//     canonicalizing reducers (MinimalUnderInclusion / ModelSet), which
//     makes their outputs identical across *thread counts* as well;
//   * re-entrancy: a parallel region entered from inside another parallel
//     region (or from a pool worker) runs inline on the calling thread.
//     Nothing deadlocks, nested parallelism just serializes.

#ifndef REVISE_UTIL_PARALLEL_H_
#define REVISE_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace revise {

// The configured parallelism level, always >= 1.  Priority: the in-process
// override, then REVISE_THREADS, then hardware_concurrency.
size_t ParallelThreads();

// Overrides ParallelThreads() for this process (0 restores the
// environment/hardware default).  Intended for tests and benches.
void SetParallelThreadsOverride(size_t threads);

// Per-batch caller context carried from the submitting thread to every
// thread that executes tasks of the batch.  util/ does not interpret the
// fields; the observability layer registers hooks (SetPoolContextHooks)
// that fill and install them, so spans and profiles opened inside pool
// tasks attach to the operation that spawned the batch instead of
// starting a fresh root on the worker thread.
struct PoolTaskContext {
  uint64_t trace_span_id = 0;   // innermost open span on the submitter
  int trace_depth = 0;          // its nesting depth
  void* profile_node = nullptr; // current cost-attribution node
};

// `capture` reads the submitting thread's context into *out at batch
// submission.  `swap` installs `incoming` on the executing thread and
// saves the previous context into *previous (callers restore by swapping
// back).  Registered once, by obs/trace.cc; both hooks must be
// thread-safe and cheap.
using PoolContextCaptureFn = void (*)(PoolTaskContext* out);
using PoolContextSwapFn = void (*)(const PoolTaskContext& incoming,
                                   PoolTaskContext* previous);
void SetPoolContextHooks(PoolContextCaptureFn capture,
                         PoolContextSwapFn swap);

// A lazily created, process-wide pool of parked worker threads.  Work is
// submitted as a batch of `count` tasks; workers (and the calling thread)
// claim task indices under a mutex — tasks are coarse shards, so the
// per-claim lock is noise.  Run blocks until every task has finished.
class ThreadPool {
 public:
  static ThreadPool& Global();

  // Calls fn(0) .. fn(count - 1), each exactly once, from the calling
  // thread and the pool workers.  Returns when all calls have completed.
  // Runs inline when count <= 1, ParallelThreads() == 1, or the calling
  // thread is already inside a Run (nested regions serialize).
  void Run(size_t count, const std::function<void(size_t)>& fn)
      REVISE_EXCLUDES(run_mu_, mu_);

  // Workers currently parked in the pool (grows on demand, never shrinks).
  size_t worker_count() const REVISE_EXCLUDES(mu_);

 private:
  ThreadPool() = default;

  void EnsureWorkers(size_t target) REVISE_EXCLUDES(mu_);
  void WorkerLoop() REVISE_EXCLUDES(mu_);
  // Claims one task of generation `generation` into *fn / *index (and the
  // batch's caller context into *context); returns false when that batch
  // is exhausted or superseded.
  bool Claim(uint64_t generation, const std::function<void(size_t)>** fn,
             size_t* index, PoolTaskContext* context) REVISE_EXCLUDES(mu_);
  void FinishOne() REVISE_EXCLUDES(mu_);
  void RunBatch(uint64_t generation) REVISE_EXCLUDES(mu_);

  // run_mu_ serializes whole batches and is always taken before the
  // state mutex; mu_ guards every piece of batch state below.
  mutable util::Mutex mu_;
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  util::Mutex run_mu_ REVISE_ACQUIRED_BEFORE(mu_);
  std::vector<std::thread> workers_ REVISE_GUARDED_BY(mu_);
  const std::function<void(size_t)>* task_ REVISE_GUARDED_BY(mu_) = nullptr;
  PoolTaskContext task_context_ REVISE_GUARDED_BY(mu_);
  size_t task_count_ REVISE_GUARDED_BY(mu_) = 0;
  size_t next_ REVISE_GUARDED_BY(mu_) = 0;
  size_t completed_ REVISE_GUARDED_BY(mu_) = 0;
  uint64_t generation_ REVISE_GUARDED_BY(mu_) = 0;
  bool stop_ REVISE_GUARDED_BY(mu_) = false;
};

// A named, joinable thread for long-lived service loops — the statsz
// accept/worker threads, the periodic metrics dumper, the stall
// watchdog.  The deterministic ThreadPool above is for bounded compute
// batches that a caller blocks on; BackgroundThread is the sanctioned
// home for work that outlives a call (the raw-thread lint rule forbids
// std::thread anywhere else).  Join() blocks until the function
// returns; the destructor joins too, so the owner's teardown must first
// make the loop exit (close a socket, set a stop flag).
class BackgroundThread {
 public:
  BackgroundThread() = default;
  explicit BackgroundThread(std::function<void()> fn)
      : thread_(std::move(fn)) {}
  ~BackgroundThread() { Join(); }

  BackgroundThread(BackgroundThread&&) = default;
  BackgroundThread& operator=(BackgroundThread&& other) {
    Join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  BackgroundThread(const BackgroundThread&) = delete;
  BackgroundThread& operator=(const BackgroundThread&) = delete;

  bool joinable() const { return thread_.joinable(); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

// A contiguous index shard [begin, end).
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
};

// Splits [0, n) into at most `shards` contiguous, near-equal ranges (the
// first n % shards ranges are one longer).  Returns min(shards, n) ranges;
// empty for n == 0.  Boundaries depend only on n and `shards`.
std::vector<ShardRange> ShardRanges(size_t n, size_t shards);

// Deterministic parallel map over [0, n): evaluates fn(begin, end) for
// contiguous shard ranges and returns the results indexed by shard.
// `min_grain` bounds the smallest shard (at least that many indices per
// shard), so tiny inputs never pay for thread handoff.  The shard
// decomposition depends only on n, min_grain and ParallelThreads().
template <typename R, typename F>
std::vector<R> ParallelMapRanges(size_t n, size_t min_grain, F&& fn) {
  if (n == 0) return {};
  const size_t grain = min_grain == 0 ? 1 : min_grain;
  const size_t want = std::min(ParallelThreads(), std::max<size_t>(1, n / grain));
  const std::vector<ShardRange> ranges = ShardRanges(n, want);
  std::vector<R> results(ranges.size());
  if (ranges.size() == 1) {
    results[0] = fn(size_t{0}, n);
    return results;
  }
  ThreadPool::Global().Run(ranges.size(), [&](size_t shard) {
    results[shard] = fn(ranges[shard].begin, ranges[shard].end);
  });
  return results;
}

}  // namespace revise

#endif  // REVISE_UTIL_PARALLEL_H_
