// Lightweight Status / StatusOr error-handling primitives.
//
// librevise does not use exceptions (see DESIGN.md).  Fallible operations
// return Status or StatusOr<T>; hot-path invariants use the CHECK macros in
// util/check.h.  The interface is a small subset of absl::Status, kept
// intentionally tiny so the library has no third-party dependencies.

#ifndef REVISE_UTIL_STATUS_H_
#define REVISE_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace revise {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result.  Cheap to copy in the OK case.  The class is
// [[nodiscard]]: a fallible call whose Status is silently dropped is a
// correctness bug (see DESIGN.md "Static analysis & contracts"), so every
// ignored Status fails the -Werror CI builds.
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);

// A value-or-error result.  Accessing value() on an error aborts, so callers
// must test ok() (or use the REVISE_ASSIGN_OR_RETURN macro) first.
// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return value;` and `return SomeError();` from the same function.
  StatusOr(const T& value) : rep_(value) {}          // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}    // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status ok_status;
    if (ok()) return ok_status;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!ok()) {
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace revise

// Propagates an error status from `expr` out of the current function.
#define REVISE_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::revise::Status revise_status_tmp_ = (expr);   \
    if (!revise_status_tmp_.ok()) {                 \
      return revise_status_tmp_;                    \
    }                                               \
  } while (false)

#define REVISE_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define REVISE_STATUS_MACROS_CONCAT_(x, y) \
  REVISE_STATUS_MACROS_CONCAT_INNER_(x, y)

// Evaluates `rexpr` (a StatusOr<T>); on error returns the status, otherwise
// move-assigns the value into `lhs`.
#define REVISE_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  REVISE_ASSIGN_OR_RETURN_IMPL_(                                             \
      REVISE_STATUS_MACROS_CONCAT_(revise_statusor_, __LINE__), lhs, rexpr)

#define REVISE_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                  \
  if (!statusor.ok()) {                                     \
    return statusor.status();                               \
  }                                                         \
  lhs = std::move(statusor).value()

#endif  // REVISE_UTIL_STATUS_H_
