// Deterministic pseudo-random number generation.
//
// All randomized workloads in tests and benches use this generator so runs
// are reproducible from a seed.  The implementation is xoroshiro128++ with a
// SplitMix64 seeding stage (public-domain algorithms by Blackman & Vigna).

#ifndef REVISE_UTIL_RANDOM_H_
#define REVISE_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace revise {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 128-bit state; this avoids
    // the all-zero state and decorrelates nearby seeds.
    uint64_t x = seed;
    state_[0] = SplitMix64(&x);
    state_[1] = SplitMix64(&x);
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t s0 = state_[0];
    uint64_t s1 = state_[1];
    const uint64_t result = Rotl(s0 + s1, 17) + s0;
    s1 ^= s0;
    state_[0] = Rotl(s0, 49) ^ s1 ^ (s1 << 21);
    state_[1] = Rotl(s1, 28);
    return result;
  }

  // Uniform value in [0, bound).  bound must be positive.
  uint64_t Below(uint64_t bound) {
    REVISE_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    REVISE_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Bernoulli draw with probability p of returning true.
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[2];
};

}  // namespace revise

#endif  // REVISE_UTIL_RANDOM_H_
