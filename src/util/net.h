// Dependency-free POSIX TCP helpers for the in-process statsz listener
// (obs/statsz.h) and its tests.
//
// Scope is deliberately tiny: loopback-only listeners, a poll-based
// accept with timeout (so service loops can re-check a stop flag without
// platform-specific socket shutdown races), full-buffer send, and a
// bounded read of an HTTP request head.  Everything returns Status; on
// platforms without BSD sockets every call reports kUnimplemented and
// the statsz server simply never starts.
//
// None of this is a general networking layer — it exists so the
// observability endpoints (and, later, the `revised` front-end skeleton)
// need no third-party HTTP dependency.

#ifndef REVISE_UTIL_NET_H_
#define REVISE_UTIL_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace revise::util {

// A bound, listening TCP socket on 127.0.0.1.  `port` is the actual
// bound port — pass 0 to ListenTcpLoopback for an ephemeral one.
struct TcpListener {
  int fd = -1;
  uint16_t port = 0;
};

// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
// port, reported back in the result).  The socket is SO_REUSEADDR.
StatusOr<TcpListener> ListenTcpLoopback(uint16_t port, int backlog = 16);

// Waits up to `timeout_ms` for a connection on `listen_fd` and accepts
// it.  Returns the connected fd; kDeadlineExceeded on timeout (the
// normal idle path — callers re-check their stop flag and poll again);
// kInternal on a closed or failed listener.
StatusOr<int> AcceptConnection(int listen_fd, int timeout_ms);

// Writes all of `data`, looping over short writes.
Status SendAll(int fd, std::string_view data);

// Reads until a blank line ("\r\n\r\n" or "\n\n") terminates the HTTP
// request head, EOF, or `max_bytes`.  Returns the raw head (request
// line + headers); kResourceExhausted when the head exceeds the bound;
// kDeadlineExceeded when the whole head has not arrived within
// `timeout_ms` (an overall deadline, so an idle or drip-feeding client
// cannot pin the calling worker; timeout_ms < 0 waits forever).
StatusOr<std::string> ReadHttpRequestHead(int fd, size_t max_bytes = 8192,
                                          int timeout_ms = 5000);

// Closes a socket fd (no-op for fd < 0).
void CloseSocket(int fd);

// A minimal blocking HTTP/1.0 client: connects to 127.0.0.1:`port`,
// sends `GET <path>`, and returns the full response (status line,
// headers, body).  `timeout_ms` bounds the whole response read, not each
// chunk — a slow-drip responder cannot stretch the call past the
// deadline.  Used by tests and the statsz CI smoke tooling; not a
// general client.
StatusOr<std::string> HttpGet(uint16_t port, std::string_view path,
                              int timeout_ms = 5000);

}  // namespace revise::util

#endif  // REVISE_UTIL_NET_H_
