// CHECK-style invariant macros.
//
// These are for programmer errors (violated invariants), not for recoverable
// conditions; recoverable conditions use Status (util/status.h).  A failed
// check prints the condition and location to stderr and aborts.

#ifndef REVISE_UTIL_CHECK_H_
#define REVISE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace revise::internal_check {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", condition, file, line);
  std::abort();
}

}  // namespace revise::internal_check

#define REVISE_CHECK(condition)                                            \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::revise::internal_check::CheckFailed(#condition, __FILE__,          \
                                            __LINE__);                     \
    }                                                                      \
  } while (false)

#define REVISE_CHECK_EQ(a, b) REVISE_CHECK((a) == (b))
#define REVISE_CHECK_NE(a, b) REVISE_CHECK((a) != (b))
#define REVISE_CHECK_LT(a, b) REVISE_CHECK((a) < (b))
#define REVISE_CHECK_LE(a, b) REVISE_CHECK((a) <= (b))
#define REVISE_CHECK_GT(a, b) REVISE_CHECK((a) > (b))
#define REVISE_CHECK_GE(a, b) REVISE_CHECK((a) >= (b))

#endif  // REVISE_UTIL_CHECK_H_
