// CHECK-style invariant macros.
//
// These are for programmer errors (violated invariants), not for recoverable
// conditions; recoverable conditions use Status (util/status.h).  A failed
// check prints the condition and location to stderr and aborts; the binary
// comparison forms (REVISE_CHECK_EQ etc.) additionally print both operand
// values.
//
// Three families (see DESIGN.md "Static analysis & contracts"):
//   * REVISE_CHECK*    — always on, in every build type.  Use at API
//     boundaries and for invariants whose violation would corrupt results.
//   * REVISE_DCHECK*   — compiled out when NDEBUG is defined (Release /
//     RelWithDebInfo) unless REVISE_DCHECK_ALWAYS_ON is defined.  Use in
//     hot kernels where the check is too expensive to keep in Release.
//     Arguments are NOT evaluated when compiled out, so they must be free
//     of side effects (enforced by tools/revise_lint).
//   * REVISE_CHECK_OK  — asserts a Status (or StatusOr) is OK, printing the
//     full status on failure.  For call sites where an error is impossible
//     by construction.
//
// Every macro evaluates each argument exactly once.

#ifndef REVISE_UTIL_CHECK_H_
#define REVISE_UTIL_CHECK_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace revise::internal_check {

// A process-wide hook invoked (once) with the failure message before a
// failed check aborts.  The observability layer installs one that dumps
// the flight recorder (obs/flight_recorder.h) to stderr and a
// crash_<pid>.json file, so every CHECK failure carries the recent event
// history.  The hook is cleared before it runs: a hook that itself fails
// a check cannot recurse.
using CrashReportHook = void (*)(const char* message);

inline std::atomic<CrashReportHook>& CrashReportHookSlot() {
  static std::atomic<CrashReportHook> slot{nullptr};
  return slot;
}

inline void SetCrashReportHook(CrashReportHook hook) {
  CrashReportHookSlot().store(hook, std::memory_order_release);
}

inline void InvokeCrashReportHook(const char* message) {
  if (const CrashReportHook hook =
          CrashReportHookSlot().exchange(nullptr, std::memory_order_acq_rel)) {
    hook(message);
  }
}

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", condition, file, line);
  InvokeCrashReportHook(condition);
  std::abort();
}

// Renders a value for a failure message.  Streamable types go through
// operator<<; anything else degrades to a placeholder rather than failing
// to compile.
template <typename T>
std::string Repr(const T& value) {
  if constexpr (requires(std::ostream& os, const T& t) { os << t; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

[[noreturn]] inline void CheckOpFailed(const char* expression,
                                       const std::string& lhs,
                                       const std::string& rhs,
                                       const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s (%s vs. %s) at %s:%d\n", expression,
               lhs.c_str(), rhs.c_str(), file, line);
  InvokeCrashReportHook(expression);
  std::abort();
}

[[noreturn]] inline void CheckOkFailed(const char* expression,
                                       const std::string& status,
                                       const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s is OK (got %s) at %s:%d\n",
               expression, status.c_str(), file, line);
  InvokeCrashReportHook(expression);
  std::abort();
}

// Extracts the Status from either a Status or a StatusOr<T> without
// naming those types (util/status.h includes are up to the caller).
template <typename T>
decltype(auto) StatusOf(const T& value) {
  if constexpr (requires { value.status(); }) {
    return value.status();
  } else {
    return (value);
  }
}

}  // namespace revise::internal_check

#define REVISE_CHECK(condition)                                            \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::revise::internal_check::CheckFailed(#condition, __FILE__,          \
                                            __LINE__);                     \
    }                                                                      \
  } while (false)

// Binary comparison with operand capture: each side is evaluated exactly
// once and both values are printed on failure.
#define REVISE_CHECK_OP_(op, a, b)                                         \
  do {                                                                     \
    auto&& revise_check_lhs_ = (a);                                        \
    auto&& revise_check_rhs_ = (b);                                        \
    if (!(revise_check_lhs_ op revise_check_rhs_)) {                       \
      ::revise::internal_check::CheckOpFailed(                             \
          #a " " #op " " #b,                                               \
          ::revise::internal_check::Repr(revise_check_lhs_),               \
          ::revise::internal_check::Repr(revise_check_rhs_), __FILE__,     \
          __LINE__);                                                       \
    }                                                                      \
  } while (false)

#define REVISE_CHECK_EQ(a, b) REVISE_CHECK_OP_(==, a, b)
#define REVISE_CHECK_NE(a, b) REVISE_CHECK_OP_(!=, a, b)
#define REVISE_CHECK_LT(a, b) REVISE_CHECK_OP_(<, a, b)
#define REVISE_CHECK_LE(a, b) REVISE_CHECK_OP_(<=, a, b)
#define REVISE_CHECK_GT(a, b) REVISE_CHECK_OP_(>, a, b)
#define REVISE_CHECK_GE(a, b) REVISE_CHECK_OP_(>=, a, b)

// Asserts that a Status (or StatusOr<T>) is OK, printing the code and
// message on failure.
#define REVISE_CHECK_OK(expr)                                              \
  do {                                                                     \
    auto&& revise_check_status_ = (expr);                                  \
    if (!revise_check_status_.ok()) {                                      \
      ::revise::internal_check::CheckOkFailed(                             \
          #expr,                                                           \
          ::revise::internal_check::StatusOf(revise_check_status_)         \
              .ToString(),                                                 \
          __FILE__, __LINE__);                                             \
    }                                                                      \
  } while (false)

// Debug-only checks: full CHECK semantics when on; when off the argument
// expressions are type-checked but never evaluated.
#if !defined(NDEBUG) || defined(REVISE_DCHECK_ALWAYS_ON)
#define REVISE_DCHECK_IS_ON() 1
#else
#define REVISE_DCHECK_IS_ON() 0
#endif

#if REVISE_DCHECK_IS_ON()

#define REVISE_DCHECK(condition) REVISE_CHECK(condition)
#define REVISE_DCHECK_EQ(a, b) REVISE_CHECK_EQ(a, b)
#define REVISE_DCHECK_NE(a, b) REVISE_CHECK_NE(a, b)
#define REVISE_DCHECK_LT(a, b) REVISE_CHECK_LT(a, b)
#define REVISE_DCHECK_LE(a, b) REVISE_CHECK_LE(a, b)
#define REVISE_DCHECK_GT(a, b) REVISE_CHECK_GT(a, b)
#define REVISE_DCHECK_GE(a, b) REVISE_CHECK_GE(a, b)

#else  // REVISE_DCHECK_IS_ON()

#define REVISE_DCHECK_NOP_1_(a)          \
  do {                                   \
    if (false) {                         \
      static_cast<void>(a);              \
    }                                    \
  } while (false)
#define REVISE_DCHECK_NOP_2_(a, b)       \
  do {                                   \
    if (false) {                         \
      static_cast<void>(a);              \
      static_cast<void>(b);              \
    }                                    \
  } while (false)

#define REVISE_DCHECK(condition) REVISE_DCHECK_NOP_1_(condition)
#define REVISE_DCHECK_EQ(a, b) REVISE_DCHECK_NOP_2_(a, b)
#define REVISE_DCHECK_NE(a, b) REVISE_DCHECK_NOP_2_(a, b)
#define REVISE_DCHECK_LT(a, b) REVISE_DCHECK_NOP_2_(a, b)
#define REVISE_DCHECK_LE(a, b) REVISE_DCHECK_NOP_2_(a, b)
#define REVISE_DCHECK_GT(a, b) REVISE_DCHECK_NOP_2_(a, b)
#define REVISE_DCHECK_GE(a, b) REVISE_DCHECK_NOP_2_(a, b)

#endif  // REVISE_DCHECK_IS_ON()

#endif  // REVISE_UTIL_CHECK_H_
