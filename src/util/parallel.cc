#include "util/parallel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace revise {

namespace {

// Hard ceiling on configured parallelism; a typo in REVISE_THREADS should
// not fork thousands of threads.
constexpr size_t kMaxThreads = 128;

std::atomic<size_t> g_threads_override{0};

// True while the current thread is executing inside a ThreadPool batch
// (as a worker or as the submitting thread); nested Run calls then run
// inline instead of deadlocking on the batch lock.
thread_local bool t_inside_pool = false;

std::atomic<PoolContextCaptureFn> g_context_capture{nullptr};
std::atomic<PoolContextSwapFn> g_context_swap{nullptr};

size_t ThreadsFromEnvironment() {
  if (const char* value = std::getenv("REVISE_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && parsed > 0) {
      return std::min<size_t>(static_cast<size_t>(parsed), kMaxThreads);
    }
    if (*value != '\0') {
      std::fprintf(stderr,
                   "revise: ignoring invalid REVISE_THREADS value '%s' "
                   "(expected a positive integer)\n",
                   value);
    }
  }
  const size_t hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : std::min(hardware, kMaxThreads);
}

}  // namespace

size_t ParallelThreads() {
  const size_t override = g_threads_override.load(std::memory_order_relaxed);
  if (override != 0) return std::min(override, kMaxThreads);
  static const size_t from_environment = ThreadsFromEnvironment();
  return from_environment;
}

void SetParallelThreadsOverride(size_t threads) {
  g_threads_override.store(threads, std::memory_order_relaxed);
}

void SetPoolContextHooks(PoolContextCaptureFn capture,
                         PoolContextSwapFn swap) {
  g_context_capture.store(capture, std::memory_order_release);
  g_context_swap.store(swap, std::memory_order_release);
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally (the workers park forever); reachable through the
  // static pointer, so leak checkers stay quiet and no destructor races
  // static teardown.
  static ThreadPool* const pool = new ThreadPool();
  return *pool;
}

size_t ThreadPool::worker_count() const {
  util::MutexLock lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(size_t target) {
  util::MutexLock lock(mu_);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::Claim(uint64_t generation,
                       const std::function<void(size_t)>** fn,
                       size_t* index, PoolTaskContext* context) {
  util::MutexLock lock(mu_);
  if (generation_ != generation || task_ == nullptr || next_ >= task_count_) {
    return false;
  }
  *fn = task_;
  *index = next_++;
  *context = task_context_;
  return true;
}

void ThreadPool::FinishOne() {
  util::MutexLock lock(mu_);
  if (++completed_ == task_count_) done_cv_.NotifyAll();
}

void ThreadPool::RunBatch(uint64_t generation) {
  t_inside_pool = true;
  const std::function<void(size_t)>* fn = nullptr;
  size_t index = 0;
  PoolTaskContext incoming;
  PoolTaskContext saved;
  bool context_installed = false;
  const PoolContextSwapFn swap =
      g_context_swap.load(std::memory_order_acquire);
  while (Claim(generation, &fn, &index, &incoming)) {
    // All tasks of a batch share one caller context, so install it once
    // on the first claim and restore after the batch drains.
    if (!context_installed && swap != nullptr) {
      swap(incoming, &saved);
      context_installed = true;
    }
    (*fn)(index);
    FinishOne();
  }
  if (context_installed) {
    PoolTaskContext ignored;
    swap(saved, &ignored);
  }
  t_inside_pool = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      // Explicit wait loop (not a lambda predicate) so the guarded reads
      // stay visible to the thread-safety analysis.
      util::MutexLock lock(mu_);
      while (!stop_ &&
             (generation_ == seen_generation || task_ == nullptr)) {
        work_cv_.Wait(mu_);
      }
      if (stop_) return;
      seen_generation = generation_;
    }
    RunBatch(seen_generation);
  }
}

void ThreadPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || ParallelThreads() <= 1 || t_inside_pool) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  util::MutexLock batch_lock(run_mu_);
  EnsureWorkers(std::min(count - 1, ParallelThreads() - 1));
  PoolTaskContext context;
  if (const PoolContextCaptureFn capture =
          g_context_capture.load(std::memory_order_acquire)) {
    capture(&context);
  }
  uint64_t generation;
  {
    util::MutexLock lock(mu_);
    task_ = &fn;
    task_context_ = context;
    task_count_ = count;
    next_ = 0;
    completed_ = 0;
    generation = ++generation_;
  }
  work_cv_.NotifyAll();
  RunBatch(generation);
  {
    util::MutexLock lock(mu_);
    while (completed_ != task_count_) done_cv_.Wait(mu_);
    task_ = nullptr;
  }
}

std::vector<ShardRange> ShardRanges(size_t n, size_t shards) {
  if (n == 0) return {};
  const size_t count = std::max<size_t>(1, std::min(shards, n));
  std::vector<ShardRange> ranges(count);
  const size_t base = n / count;
  const size_t extra = n % count;
  size_t begin = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t length = base + (i < extra ? 1 : 0);
    ranges[i] = ShardRange{begin, begin + length};
    begin += length;
  }
  // Shards must tile [0, n) contiguously and be non-empty: every parallel
  // kernel indexes its slice directly off these bounds, so a gap or overlap
  // here corrupts results silently rather than crashing.
  REVISE_DCHECK_EQ(begin, n);
  for (const ShardRange& range : ranges) {
    REVISE_DCHECK_LT(range.begin, range.end);
  }
  return ranges;
}

}  // namespace revise
