// Clang Thread Safety Analysis annotations (no-ops everywhere else).
//
// These macros let the locking discipline be machine-checked at compile
// time: a member declared REVISE_GUARDED_BY(mu_) can only be touched
// while mu_ is held, a function declared REVISE_REQUIRES(mu_) can only
// be called with mu_ held, and clang's -Wthread-safety (a CI job, see
// .github/workflows/ci.yml) turns every violation into a build error.
// GCC and MSVC do not implement the analysis; there the macros expand to
// nothing and the annotated code compiles unchanged.
//
// Use them through util/mutex.h (`util::Mutex` / `util::MutexLock`),
// which is the only place raw std::mutex is allowed (the raw-mutex lint
// rule enforces this).  Conventions:
//
//   * every mutex-protected member:  T x_ REVISE_GUARDED_BY(mu_);
//   * every *Locked() helper:        void FooLocked() REVISE_REQUIRES(mu_);
//   * pointer whose pointee is protected: REVISE_PT_GUARDED_BY(mu_)
//   * a function that must NOT hold the lock: REVISE_EXCLUDES(mu_)
//   * escape hatch (rare, justify in a comment):
//     REVISE_NO_THREAD_SAFETY_ANALYSIS
//
// The negative-compile probe cmake/thread_safety_probe.cc proves the
// analysis stays armed: an unguarded access must fail to build on clang.

#ifndef REVISE_UTIL_THREAD_ANNOTATIONS_H_
#define REVISE_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define REVISE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define REVISE_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// A type that represents a lock (util::Mutex).
#define REVISE_CAPABILITY(x) REVISE_THREAD_ANNOTATION(capability(x))

// A RAII type that acquires in its constructor and releases in its
// destructor (util::MutexLock).
#define REVISE_SCOPED_CAPABILITY REVISE_THREAD_ANNOTATION(scoped_lockable)

// Data members protected by a mutex (directly, or through a pointer).
#define REVISE_GUARDED_BY(x) REVISE_THREAD_ANNOTATION(guarded_by(x))
#define REVISE_PT_GUARDED_BY(x) REVISE_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions that require / acquire / release / must-not-hold a mutex.
#define REVISE_REQUIRES(...) \
  REVISE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REVISE_ACQUIRE(...) \
  REVISE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define REVISE_RELEASE(...) \
  REVISE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define REVISE_TRY_ACQUIRE(...) \
  REVISE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define REVISE_EXCLUDES(...) \
  REVISE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Lock-ordering declarations.
#define REVISE_ACQUIRED_BEFORE(...) \
  REVISE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define REVISE_ACQUIRED_AFTER(...) \
  REVISE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function return values that carry the capability.
#define REVISE_RETURN_CAPABILITY(x) \
  REVISE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function.  Every use needs
// a comment explaining why the discipline cannot be expressed.
#define REVISE_NO_THREAD_SAFETY_ANALYSIS \
  REVISE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // REVISE_UTIL_THREAD_ANNOTATIONS_H_
