// The committed regression corpus: shrunk repros as small text files.
//
// Every failure the fuzzer has ever found (and every hand-written
// regression scenario) lives under tests/corpus/ as one `.corpus` file in
// a line-oriented format the concrete parser syntax makes diff-friendly:
//
//   # revise_fuzz corpus v1
//   name: weber-omega-projection
//   oracle: operator-reference
//   expect: ok
//   seed: 12345
//   theory: a -> b; !c
//   p: a & c
//   q: b
//
// The first line is a mandatory header (versioned so the format can
// evolve without silently mis-reading old entries); later '#' lines are
// comments.  `oracle` names one oracle id or `all`; `expect` is `ok` (the
// scenario must pass, the usual regression direction) or `parse-error`
// (the text itself must be rejected by the parser with a non-OK Status —
// used for parser-robustness repros such as over-deep nesting).  `theory`
// is ';'-separated as in Theory::Parse; `q` defaults to `true`.
//
// CI and ctest replay the whole directory on every run, so a repro that
// regresses fails the build.

#ifndef REVISE_FUZZ_CORPUS_H_
#define REVISE_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.h"
#include "util/status.h"

namespace revise::fuzz {

inline constexpr const char kCorpusHeader[] = "# revise_fuzz corpus v1";
inline constexpr const char kCorpusExtension[] = ".corpus";

struct CorpusEntry {
  std::string name;           // slug, doubles as the file stem
  std::string oracle = "all"; // oracle id or "all"
  std::string expect = "ok";  // "ok" | "parse-error"
  uint64_t seed = 0;          // originating fuzz seed (0 = hand-written)
  std::string theory;         // ';'-separated, may be empty
  std::string p;
  std::string q = "true";
};

// Serializes an entry in the canonical format (header, fixed key order).
std::string FormatEntry(const CorpusEntry& entry);

// Parses one entry from file contents.  Fails on a missing/mismatched
// header, unknown keys, duplicate keys, or missing required fields.
StatusOr<CorpusEntry> ParseEntry(const std::string& text);

// Reads and parses the file at `path`.
StatusOr<CorpusEntry> LoadEntry(const std::string& path);

// The `.corpus` files directly under `dir`, sorted by name.
StatusOr<std::vector<std::string>> ListCorpusFiles(const std::string& dir);

// Re-parses the entry's formulas into a fresh vocabulary.  For
// expect == "parse-error" entries this is the call that must fail.
StatusOr<Scenario> ScenarioFromEntry(const CorpusEntry& entry);

// Renders a (typically shrunk) scenario as a corpus entry.
CorpusEntry EntryFromScenario(const Scenario& scenario, std::string name,
                              std::string oracle);

}  // namespace revise::fuzz

#endif  // REVISE_FUZZ_CORPUS_H_
