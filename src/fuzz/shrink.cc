#include "fuzz/shrink.h"

#include <utility>

#include "fuzz/oracles.h"
#include "obs/metrics.h"

namespace revise::fuzz {

namespace {

Formula ReplaceChild(const Formula& f, size_t index,
                     const Formula& replacement) {
  std::vector<Formula> children(f.children().begin(), f.children().end());
  children[index] = replacement;
  switch (f.kind()) {
    case Connective::kNot:
      return Formula::Not(children[0]);
    case Connective::kAnd:
      return Formula::And(children);
    case Connective::kOr:
      return Formula::Or(children);
    case Connective::kImplies:
      return Formula::Implies(children[0], children[1]);
    case Connective::kIff:
      return Formula::Iff(children[0], children[1]);
    case Connective::kXor:
      return Formula::Xor(children[0], children[1]);
    default:
      return f;
  }
}

Formula DropOperand(const Formula& f, size_t index) {
  std::vector<Formula> children;
  children.reserve(f.arity() - 1);
  for (size_t i = 0; i < f.arity(); ++i) {
    if (i != index) children.push_back(f.child(i));
  }
  return f.kind() == Connective::kAnd ? Formula::And(children)
                                      : Formula::Or(children);
}

}  // namespace

std::vector<Formula> FormulaReductions(const Formula& f) {
  std::vector<Formula> out;
  if (f.IsConst()) return out;
  out.push_back(Formula::True());
  out.push_back(Formula::False());
  for (size_t i = 0; i < f.arity(); ++i) {
    out.push_back(f.child(i));
  }
  if ((f.kind() == Connective::kAnd || f.kind() == Connective::kOr) &&
      f.arity() > 2) {
    for (size_t i = 0; i < f.arity(); ++i) {
      out.push_back(DropOperand(f, i));
    }
  }
  for (size_t i = 0; i < f.arity(); ++i) {
    for (const Formula& reduced : FormulaReductions(f.child(i))) {
      out.push_back(ReplaceChild(f, i, reduced));
    }
  }
  return out;
}

ShrinkResult ShrinkScenario(const Scenario& failing,
                            const FailurePredicate& still_fails,
                            int max_steps) {
  ShrinkResult result{failing, 0};
  if (!still_fails(failing)) return result;
  bool improved = true;
  while (improved && result.steps < max_steps) {
    improved = false;
    const Scenario& current = result.scenario;
    const uint64_t size = current.TotalTreeSize();

    std::vector<Scenario> candidates;
    for (size_t i = 0; i < current.t.size(); ++i) {
      Scenario candidate = current;
      std::vector<Formula> formulas = current.t.formulas();
      formulas.erase(formulas.begin() + static_cast<ptrdiff_t>(i));
      candidate.t = Theory(std::move(formulas));
      candidates.push_back(std::move(candidate));
    }
    for (size_t i = 0; i < current.t.size(); ++i) {
      for (const Formula& reduced : FormulaReductions(current.t[i])) {
        Scenario candidate = current;
        std::vector<Formula> formulas = current.t.formulas();
        formulas[i] = reduced;
        candidate.t = Theory(std::move(formulas));
        candidates.push_back(std::move(candidate));
      }
    }
    for (const Formula& reduced : FormulaReductions(current.p)) {
      Scenario candidate = current;
      candidate.p = reduced;
      candidates.push_back(std::move(candidate));
    }
    for (const Formula& reduced : FormulaReductions(current.q)) {
      Scenario candidate = current;
      candidate.q = reduced;
      candidates.push_back(std::move(candidate));
    }

    for (Scenario& candidate : candidates) {
      if (candidate.TotalTreeSize() >= size) continue;
      if (still_fails(candidate)) {
        result.scenario = std::move(candidate);
        ++result.steps;
        REVISE_OBS_COUNTER("fuzz.shrink_steps").Increment();
        improved = true;
        break;
      }
    }
  }
  return result;
}

ShrinkResult ShrinkScenario(const Scenario& failing,
                            std::string_view oracle_name, int max_steps) {
  return ShrinkScenario(
      failing,
      [oracle_name](const Scenario& candidate) {
        return CheckScenario(candidate, oracle_name).has_value();
      },
      max_steps);
}

}  // namespace revise::fuzz
