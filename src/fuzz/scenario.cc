#include "fuzz/scenario.h"

#include <string>
#include <vector>

#include "hardness/random_instances.h"
#include "logic/printer.h"
#include "util/random.h"

namespace revise::fuzz {

namespace {

// A random literal over `vars`.
Formula RandomLiteral(const std::vector<Var>& vars, Rng* rng) {
  const Var v = vars[rng->Below(vars.size())];
  return Formula::Literal(v, rng->Chance(0.5));
}

// A conjunction of 1..max random literals (a partial assignment).
Formula RandomCube(const std::vector<Var>& vars, int max, Rng* rng) {
  std::vector<Formula> literals;
  const int count = static_cast<int>(rng->Range(1, max));
  literals.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) literals.push_back(RandomLiteral(vars, rng));
  return ConjoinAll(literals);
}

// A Horn clause: (a1 & ... & ak) -> h with k in [0, 2] and h a positive
// atom or false (a goal clause).
Formula RandomHornClause(const std::vector<Var>& vars, Rng* rng) {
  std::vector<Formula> body;
  const int k = static_cast<int>(rng->Range(0, 2));
  for (int i = 0; i < k; ++i) {
    body.push_back(Formula::Variable(vars[rng->Below(vars.size())]));
  }
  const Formula head = rng->Chance(0.85)
                           ? Formula::Variable(vars[rng->Below(vars.size())])
                           : Formula::False();
  if (body.empty()) return head;
  return Formula::Implies(ConjoinAll(body), head);
}

// A chain of depth unary/binary connectives: the nesting stress shape.
Formula DeepChain(const std::vector<Var>& vars, int depth, Rng* rng) {
  Formula f = RandomLiteral(vars, rng);
  for (int i = 0; i < depth; ++i) {
    switch (rng->Below(5)) {
      case 0:
        f = Formula::Not(f);
        break;
      case 1:
        f = Formula::Implies(RandomLiteral(vars, rng), f);
        break;
      case 2:
        f = Formula::Implies(f, RandomLiteral(vars, rng));
        break;
      case 3:
        f = Formula::Iff(f, RandomLiteral(vars, rng));
        break;
      default:
        f = Formula::Xor(RandomLiteral(vars, rng), f);
        break;
    }
  }
  return f;
}

std::vector<Var> MakeVars(Vocabulary* vocabulary, int count) {
  std::vector<Var> vars;
  vars.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    vars.push_back(vocabulary->Intern("v" + std::to_string(i)));
  }
  return vars;
}

}  // namespace

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kGeneral:
      return "general";
    case Shape::kHorn:
      return "horn";
    case Shape::kNearUnsat:
      return "near-unsat";
    case Shape::kDeepNesting:
      return "deep-nesting";
    case Shape::kDegenerate:
      return "degenerate";
    case Shape::kBoundedP:
      return "bounded-p";
  }
  return "unknown";
}

uint64_t Scenario::TotalTreeSize() const {
  uint64_t total = p.TreeSize() + q.TreeSize();
  for (const Formula& f : t) total += f.TreeSize();
  return total;
}

std::string Scenario::ToString() const {
  std::string out = "shape: ";
  out += ShapeName(shape);
  out += "\nseed: " + std::to_string(seed);
  out += "\ntheory:";
  for (const Formula& f : t) {
    out += "\n  " + revise::ToString(f, *vocabulary);
  }
  out += "\np: " + revise::ToString(p, *vocabulary);
  out += "\nq: " + revise::ToString(q, *vocabulary);
  return out;
}

Scenario GenerateScenario(uint64_t seed, const GeneratorOptions& options) {
  Rng rng(seed);
  Scenario s;
  s.vocabulary = std::make_shared<Vocabulary>();
  s.seed = seed;

  // Weighted shape draw: the general shape dominates, the stress shapes
  // share the rest.
  switch (rng.Below(8)) {
    case 0:
    case 1:
    case 2:
      s.shape = Shape::kGeneral;
      break;
    case 3:
      s.shape = Shape::kHorn;
      break;
    case 4:
      s.shape = Shape::kNearUnsat;
      break;
    case 5:
      s.shape = Shape::kDeepNesting;
      break;
    case 6:
      s.shape = Shape::kDegenerate;
      break;
    default:
      s.shape = Shape::kBoundedP;
      break;
  }

  Vocabulary* vocabulary = s.vocabulary.get();
  switch (s.shape) {
    case Shape::kGeneral: {
      const int n = static_cast<int>(rng.Range(2, options.max_vars));
      const std::vector<Var> vars = MakeVars(vocabulary, n);
      const int elements =
          static_cast<int>(rng.Range(1, options.max_theory_elements));
      for (int i = 0; i < elements; ++i) {
        s.t.Add(RandomFormula(vars, options.max_depth, &rng));
      }
      s.p = RandomFormula(vars, options.max_depth, &rng);
      s.q = RandomFormula(vars, 2, &rng);
      break;
    }
    case Shape::kHorn: {
      const int n = static_cast<int>(rng.Range(2, options.max_vars));
      const std::vector<Var> vars = MakeVars(vocabulary, n);
      const int elements =
          static_cast<int>(rng.Range(1, options.max_theory_elements));
      for (int i = 0; i < elements; ++i) {
        s.t.Add(RandomHornClause(vars, &rng));
      }
      s.p = rng.Chance(0.5) ? RandomHornClause(vars, &rng)
                            : RandomCube(vars, 2, &rng);
      s.q = RandomFormula(vars, 2, &rng);
      break;
    }
    case Shape::kNearUnsat: {
      // Clause/variable ratio near the 3-SAT phase transition (~4.27), so
      // T is frequently unsatisfiable and P often conflicts with it —
      // exactly where the degenerate-case conventions matter.
      const int n = static_cast<int>(rng.Range(3, options.max_vars));
      const std::vector<Var> vars = MakeVars(vocabulary, n);
      const size_t clauses = static_cast<size_t>(n * 4 + 1);
      const Theory cnf = Random3Cnf(vars, clauses, &rng);
      // Group the clauses into a few theory elements.
      const int elements =
          static_cast<int>(rng.Range(1, options.max_theory_elements));
      std::vector<std::vector<Formula>> groups(
          static_cast<size_t>(elements));
      for (size_t i = 0; i < cnf.size(); ++i) {
        groups[i % groups.size()].push_back(cnf[i]);
      }
      for (const auto& group : groups) s.t.Add(ConjoinAll(group));
      s.p = rng.Chance(0.3) ? Formula::Not(s.t.AsFormula())
                            : RandomCube(vars, 3, &rng);
      s.q = RandomLiteral(vars, &rng);
      break;
    }
    case Shape::kDeepNesting: {
      const int n = static_cast<int>(rng.Range(1, 3));
      const std::vector<Var> vars = MakeVars(vocabulary, n);
      const int depth = static_cast<int>(rng.Range(16, 48));
      s.t.Add(DeepChain(vars, depth, &rng));
      s.p = DeepChain(vars, depth / 2, &rng);
      s.q = RandomLiteral(vars, &rng);
      break;
    }
    case Shape::kDegenerate: {
      const int n = static_cast<int>(rng.Range(1, 2));
      const std::vector<Var> vars = MakeVars(vocabulary, n);
      if (rng.Chance(0.6)) s.t.Add(RandomLiteral(vars, &rng));
      if (rng.Chance(0.3)) s.t.Add(Formula::Constant(rng.Chance(0.5)));
      switch (rng.Below(4)) {
        case 0:
          s.p = Formula::True();
          break;
        case 1:
          s.p = Formula::False();
          break;
        case 2:
          // P over a letter T never mentions.
          s.p = Formula::Literal(vocabulary->Intern("w0"), rng.Chance(0.5));
          break;
        default:
          s.p = RandomLiteral(vars, &rng);
          break;
      }
      // Q may mention a letter outside V(T) and V(P).
      s.q = rng.Chance(0.5)
                ? Formula::Variable(vocabulary->Intern("z0"))
                : RandomFormula(vars, 2, &rng);
      break;
    }
    case Shape::kBoundedP: {
      const int n = static_cast<int>(rng.Range(3, options.max_vars));
      const std::vector<Var> vars = MakeVars(vocabulary, n);
      const int elements =
          static_cast<int>(rng.Range(1, options.max_theory_elements));
      for (int i = 0; i < elements; ++i) {
        s.t.Add(RandomFormula(vars, options.max_depth, &rng));
      }
      // P touches at most two letters (the paper's bounded-|P| regime).
      const std::vector<Var> p_vars(vars.begin(),
                                    vars.begin() + rng.Range(1, 2));
      s.p = RandomFormula(p_vars, 2, &rng);
      s.q = RandomFormula(vars, 2, &rng);
      break;
    }
  }
  return s;
}

}  // namespace revise::fuzz
