// Random revision scenarios for differential fuzzing.
//
// A Scenario is one complete revision instance — a theory T, a revision
// formula P and a query Q over a shared vocabulary — generated
// deterministically from a 64-bit seed.  The generator is biased toward
// the regions where revision implementations historically disagree:
// Horn-shaped theories (the paper's Section 5 restriction), bounded-|P|
// revisions (Section 4), near-unsatisfiable clause densities (where the
// degenerate-case conventions kick in), deeply nested formulas (parser
// and printer stress) and degenerate alphabets (one letter, letters of P
// disjoint from T, constant formulas).
//
// Everything downstream (oracles, shrinker, corpus) treats a Scenario as
// a value: the vocabulary is shared by reference so copies stay cheap and
// shrunk variants keep interning into the same id space.

#ifndef REVISE_FUZZ_SCENARIO_H_
#define REVISE_FUZZ_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"

namespace revise::fuzz {

// The generator's structural bias, recorded on the scenario for triage.
enum class Shape {
  kGeneral,      // uniform random formula trees
  kHorn,         // T and P are conjunctions of Horn clauses
  kNearUnsat,    // 3-CNF near the satisfiability phase transition
  kDeepNesting,  // long unary/binary chains (parser & printer stress)
  kDegenerate,   // tiny or skewed alphabets, constants, empty theory
  kBoundedP,     // |V(P)| small relative to V(T) (the paper's Section 4)
};

const char* ShapeName(Shape shape);

struct Scenario {
  // Shared so Scenario stays copyable (Vocabulary itself is identity-only)
  // and shrunk variants intern into the same id space.
  std::shared_ptr<Vocabulary> vocabulary;
  Theory t;
  Formula p;
  Formula q;
  Shape shape = Shape::kGeneral;
  uint64_t seed = 0;

  // Sum of the tree sizes of every element of T plus P and Q: the measure
  // the shrinker drives downward.
  [[nodiscard]] uint64_t TotalTreeSize() const;

  // Multi-line human-readable rendering (concrete parser syntax).
  [[nodiscard]] std::string ToString() const;
};

struct GeneratorOptions {
  int max_vars = 6;             // alphabet bound for non-degenerate shapes
  int max_theory_elements = 3;  // |T| upper bound
  int max_depth = 4;            // formula-tree depth for general shapes
};

// Deterministic: the same (seed, options) pair always yields the same
// scenario, including variable names.
Scenario GenerateScenario(uint64_t seed, const GeneratorOptions& options = {});

}  // namespace revise::fuzz

#endif  // REVISE_FUZZ_SCENARIO_H_
