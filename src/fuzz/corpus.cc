#include "fuzz/corpus.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "logic/printer.h"

namespace revise::fuzz {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

std::string FormatEntry(const CorpusEntry& entry) {
  std::string out = kCorpusHeader;
  out += "\nname: " + entry.name;
  out += "\noracle: " + entry.oracle;
  out += "\nexpect: " + entry.expect;
  out += "\nseed: " + std::to_string(entry.seed);
  out += "\ntheory: " + entry.theory;
  out += "\np: " + entry.p;
  out += "\nq: " + entry.q;
  out += "\n";
  return out;
}

StatusOr<CorpusEntry> ParseEntry(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != kCorpusHeader) {
    return InvalidArgumentError(
        std::string("corpus entry must start with \"") + kCorpusHeader +
        "\"");
  }
  CorpusEntry entry;
  std::set<std::string> seen;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const size_t colon = trimmed.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("corpus line " +
                                  std::to_string(line_number) +
                                  ": expected \"key: value\"");
    }
    const std::string key = Trim(trimmed.substr(0, colon));
    const std::string value = Trim(trimmed.substr(colon + 1));
    if (!seen.insert(key).second) {
      return InvalidArgumentError("corpus line " +
                                  std::to_string(line_number) +
                                  ": duplicate key \"" + key + "\"");
    }
    if (key == "name") {
      entry.name = value;
    } else if (key == "oracle") {
      entry.oracle = value;
    } else if (key == "expect") {
      if (value != "ok" && value != "parse-error") {
        return InvalidArgumentError(
            "corpus line " + std::to_string(line_number) +
            ": expect must be \"ok\" or \"parse-error\"");
      }
      entry.expect = value;
    } else if (key == "seed") {
      char* end = nullptr;
      entry.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("corpus line " +
                                    std::to_string(line_number) +
                                    ": seed is not a number");
      }
    } else if (key == "theory") {
      entry.theory = value;
    } else if (key == "p") {
      entry.p = value;
    } else if (key == "q") {
      entry.q = value;
    } else {
      return InvalidArgumentError("corpus line " +
                                  std::to_string(line_number) +
                                  ": unknown key \"" + key + "\"");
    }
  }
  if (entry.name.empty()) {
    return InvalidArgumentError("corpus entry is missing \"name:\"");
  }
  if (entry.p.empty()) {
    return InvalidArgumentError("corpus entry is missing \"p:\"");
  }
  return entry;
}

StatusOr<CorpusEntry> LoadEntry(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot read corpus file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<CorpusEntry> entry = ParseEntry(buffer.str());
  if (!entry.ok()) {
    return Status(entry.status().code(),
                  path + ": " + entry.status().message());
  }
  return entry;
}

StatusOr<std::vector<std::string>> ListCorpusFiles(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    return NotFoundError("corpus directory not found: " + dir);
  }
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().extension() == kCorpusExtension) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

StatusOr<Scenario> ScenarioFromEntry(const CorpusEntry& entry) {
  Scenario scenario;
  scenario.vocabulary = std::make_shared<Vocabulary>();
  scenario.seed = entry.seed;
  scenario.shape = Shape::kGeneral;
  if (!entry.theory.empty()) {
    REVISE_ASSIGN_OR_RETURN(
        scenario.t, Theory::Parse(entry.theory, scenario.vocabulary.get()));
  }
  REVISE_ASSIGN_OR_RETURN(scenario.p,
                          Parse(entry.p, scenario.vocabulary.get()));
  const std::string q = entry.q.empty() ? "true" : entry.q;
  REVISE_ASSIGN_OR_RETURN(scenario.q, Parse(q, scenario.vocabulary.get()));
  return scenario;
}

CorpusEntry EntryFromScenario(const Scenario& scenario, std::string name,
                              std::string oracle) {
  CorpusEntry entry;
  entry.name = std::move(name);
  entry.oracle = std::move(oracle);
  entry.seed = scenario.seed;
  const Vocabulary& vocabulary = *scenario.vocabulary;
  for (size_t i = 0; i < scenario.t.size(); ++i) {
    if (i > 0) entry.theory += "; ";
    entry.theory += ToString(scenario.t[i], vocabulary);
  }
  entry.p = ToString(scenario.p, vocabulary);
  entry.q = ToString(scenario.q, vocabulary);
  return entry;
}

}  // namespace revise::fuzz
