// Delta-debugging shrinker for failing scenarios.
//
// Given a scenario on which an oracle reports a mismatch, greedily apply
// size-reducing edits — drop a theory element, replace a subformula by a
// constant or one of its children, drop one operand of an n-ary
// conjunction/disjunction — keeping an edit only when the oracle still
// fails and the total tree size strictly decreased.  Strict decrease
// makes termination a counting argument; greedy first-improvement keeps
// the oracle-evaluation count linear in the number of accepted steps.
//
// Each accepted reduction increments the fuzz.shrink_steps counter.

#ifndef REVISE_FUZZ_SHRINK_H_
#define REVISE_FUZZ_SHRINK_H_

#include <functional>
#include <string_view>
#include <vector>

#include "fuzz/scenario.h"

namespace revise::fuzz {

struct ShrinkResult {
  Scenario scenario;  // the reduced repro (still failing)
  int steps = 0;      // accepted reductions
};

// True when the scenario still exhibits the failure being minimized.
using FailurePredicate = std::function<bool(const Scenario&)>;

// All one-edit size-reducing variants of `f` (constants, child promotion,
// n-ary operand dropping, and the same recursively at every position).
// Exposed for tests.
std::vector<Formula> FormulaReductions(const Formula& f);

// Shrinks `failing` while `still_fails` holds.  The input must currently
// satisfy the predicate; the result is a local minimum — no single edit
// both shrinks it and preserves the failure.  `max_steps` bounds the
// accepted-reduction count as a safety stop.
ShrinkResult ShrinkScenario(const Scenario& failing,
                            const FailurePredicate& still_fails,
                            int max_steps = 500);

// Convenience: shrink against the named oracle (empty = all oracles).
ShrinkResult ShrinkScenario(const Scenario& failing,
                            std::string_view oracle_name,
                            int max_steps = 500);

}  // namespace revise::fuzz

#endif  // REVISE_FUZZ_SHRINK_H_
