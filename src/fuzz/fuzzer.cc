#include "fuzz/fuzzer.h"

#include <chrono>
#include <string_view>
#include <utility>

#include "fuzz/shrink.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace revise::fuzz {

namespace {

FuzzFailure MakeFailure(uint64_t seed, OracleFailure found,
                        const Scenario& scenario, bool shrink,
                        int max_shrink_steps) {
  FuzzFailure failure;
  failure.seed = seed;
  failure.oracle = std::move(found.oracle);
  failure.detail = std::move(found.detail);
  if (shrink) {
    ShrinkResult reduced =
        ShrinkScenario(scenario, failure.oracle, max_shrink_steps);
    failure.scenario = std::move(reduced.scenario);
    failure.shrink_steps = reduced.steps;
  } else {
    failure.scenario = scenario;
  }
  failure.repro =
      EntryFromScenario(failure.scenario,
                        failure.oracle + "-seed" + std::to_string(seed),
                        failure.oracle);
  return failure;
}

}  // namespace

FuzzReport Fuzz(const FuzzOptions& options) {
  FuzzReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (options.time_budget_s <= 0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= options.time_budget_s;
  };
  for (uint64_t i = 0; options.runs == 0 || i < options.runs; ++i) {
    if (out_of_time()) break;
    if (report.failures.size() >=
        static_cast<size_t>(options.max_failures)) {
      break;
    }
    const uint64_t seed = options.seed + i;
    const Scenario scenario = GenerateScenario(seed, options.generator);
    ++report.executions;
    REVISE_OBS_COUNTER("fuzz.executions").Increment();
    if (std::optional<OracleFailure> found =
            CheckScenario(scenario, options.oracle)) {
      ++report.mismatches;
      REVISE_OBS_COUNTER("fuzz.mismatches").Increment();
      REVISE_FLIGHT_EVENT("fuzz.oracle_mismatch",
                          found->oracle + " seed " + std::to_string(seed));
      report.failures.push_back(MakeFailure(seed, *std::move(found),
                                            scenario, options.shrink,
                                            options.max_shrink_steps));
    } else {
      REVISE_FLIGHT_EVENT("fuzz.oracle_agree",
                          "seed " + std::to_string(seed));
    }
  }
  return report;
}

StatusOr<FuzzReport> ReplayCorpus(const std::string& dir) {
  REVISE_ASSIGN_OR_RETURN(std::vector<std::string> files,
                          ListCorpusFiles(dir));
  FuzzReport report;
  for (const std::string& path : files) {
    REVISE_ASSIGN_OR_RETURN(CorpusEntry entry, LoadEntry(path));
    StatusOr<Scenario> scenario = ScenarioFromEntry(entry);
    ++report.executions;
    REVISE_OBS_COUNTER("fuzz.executions").Increment();
    if (entry.expect == "parse-error") {
      if (scenario.ok()) {
        ++report.mismatches;
        REVISE_OBS_COUNTER("fuzz.mismatches").Increment();
        FuzzFailure failure;
        failure.seed = entry.seed;
        failure.oracle = "parse";
        failure.detail = entry.name +
                         ": expected a parse error, but the entry parsed "
                         "cleanly";
        failure.scenario = *std::move(scenario);
        failure.repro = entry;
        report.failures.push_back(std::move(failure));
      }
      continue;
    }
    if (!scenario.ok()) {
      return Status(scenario.status().code(),
                    path + ": " + scenario.status().message());
    }
    const std::string_view oracle =
        entry.oracle == "all" ? std::string_view{} : entry.oracle;
    if (!oracle.empty() && FindOracle(oracle) == nullptr) {
      return InvalidArgumentError(path + ": unknown oracle \"" +
                                  entry.oracle + "\"");
    }
    if (std::optional<OracleFailure> found =
            CheckScenario(*scenario, oracle)) {
      ++report.mismatches;
      REVISE_OBS_COUNTER("fuzz.mismatches").Increment();
      REVISE_FLIGHT_EVENT("fuzz.oracle_mismatch", found->oracle + ": " + entry.name);
      FuzzFailure failure;
      failure.seed = entry.seed;
      failure.oracle = std::move(found->oracle);
      failure.detail = entry.name + ": " + found->detail;
      failure.scenario = *std::move(scenario);
      failure.repro = entry;
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

}  // namespace revise::fuzz
