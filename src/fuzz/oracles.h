// Differential and property oracles over revision scenarios.
//
// Each oracle checks one scenario against an independent source of truth
// and returns a failure description when the two disagree:
//
//   brute-force-models    EnumerateModels (CDCL AllSAT + projection +
//                         model cache) vs a truth-table sweep of Evaluate.
//   operator-reference    each of the six model-based operators vs a
//                         deliberately naive O(|M(T)| * |M(P)|) re-
//                         implementation of the Section 2.2.2 definitions
//                         (no parallelism, no shared set primitives).
//   thread-count          ReviseModelSets at 1 thread vs several; the
//                         deterministic-merge contract says results are
//                         bit-identical.
//   model-cache           enumeration with the global cache cold, warm and
//                         disabled; results must be identical and the
//                         hit/miss counters must move per the
//                         disable-vs-evict contract (solve/model_cache.h).
//   bdd-vs-enumeration    model count via hash-consed ROBDD vs AllSAT, and
//                         the canonicity check: compiling the canonical
//                         DNF of the enumerated models must reproduce the
//                         identical BDD node.
//   compact-vs-direct     the Theorem 3.4/3.5 compact constructions vs
//                         direct revision, under query equivalence over
//                         X = V(T) ∪ V(P), plus *EntailsCompact vs the
//                         operator's Entails.
//   postulates            the KM laws every one of the six operators must
//                         satisfy (success, consistency, update vacuity,
//                         idempotence) and revision vacuity for the four
//                         revision operators.
//   figure1-containment   the paper's Figure 1 edges, e.g. Dalal ⊆ Satoh
//                         ⊆ Winslett, as model-set inclusions.
//   parser-roundtrip      print → parse → structural equality.
//
// Oracles with exponential references skip scenarios whose revision
// alphabet exceeds kMaxOracleAlphabet instead of failing.

#ifndef REVISE_FUZZ_ORACLES_H_
#define REVISE_FUZZ_ORACLES_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/scenario.h"

namespace revise::fuzz {

// Exponential reference oracles skip scenarios with more letters.
inline constexpr size_t kMaxOracleAlphabet = 12;

struct Oracle {
  const char* name;         // stable kebab-case id, keys corpus entries
  const char* description;  // one line, for --list and diagnostics
  std::optional<std::string> (*run)(const Scenario& scenario);
};

// All oracles in a stable order.
const std::vector<Oracle>& AllOracles();

// Lookup by name; nullptr when unknown.
const Oracle* FindOracle(std::string_view name);

// One oracle's verdict on one scenario (nullopt = agreement).
std::optional<std::string> RunOracle(const Oracle& oracle,
                                     const Scenario& scenario);

struct OracleFailure {
  std::string oracle;
  std::string detail;
};

// Runs `only_oracle` (or, when empty, every oracle in order) against the
// scenario and reports the first disagreement.
std::optional<OracleFailure> CheckScenario(const Scenario& scenario,
                                           std::string_view only_oracle = {});

}  // namespace revise::fuzz

#endif  // REVISE_FUZZ_ORACLES_H_
