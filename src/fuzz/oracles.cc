#include "fuzz/oracles.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "artifact/artifact.h"
#include "bdd/bdd.h"
#include "compact/query.h"
#include "compact/single_revision.h"
#include "core/kb_artifact.h"
#include "core/knowledge_base.h"
#include "kernel/kernels.h"
#include "logic/evaluate.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "model/canonical.h"
#include "model/model_set.h"
#include "obs/metrics.h"
#include "revision/model_based.h"
#include "revision/operator.h"
#include "solve/model_cache.h"
#include "solve/services.h"
#include "util/parallel.h"

namespace revise::fuzz {

namespace {

// ---- shared scaffolding --------------------------------------------------

// Distinguishes temp files of concurrently fuzzing processes.
uint64_t ProcessTag() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<uint64_t>(::getpid());
#else
  return 0;
#endif
}

std::string SetSizes(const ModelSet& got, const ModelSet& want) {
  return "got " + std::to_string(got.size()) + " models, expected " +
         std::to_string(want.size());
}

// The degenerate-case conventions shared by all six operators
// (model_based.h): P unsatisfiable -> empty; T unsatisfiable -> M(P).
// Returns true when a convention applied and *out is final.
bool RefDegenerate(const ModelSet& mt, const ModelSet& mp, ModelSet* out) {
  if (mp.empty()) {
    *out = ModelSet(mp.alphabet(), {});
    return true;
  }
  if (mt.empty()) {
    *out = mp;
    return true;
  }
  return false;
}

// Quadratic inclusion-minimal filter — deliberately independent of
// MinimalUnderInclusion's bucketed sweep.
std::vector<Interpretation> NaiveMinimal(
    const std::vector<Interpretation>& sets) {
  std::vector<Interpretation> out;
  for (const Interpretation& candidate : sets) {
    bool dominated = false;
    for (const Interpretation& other : sets) {
      if (other.IsProperSubsetOf(candidate)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(candidate);
    }
  }
  return out;
}

bool ContainsSet(const std::vector<Interpretation>& sets,
                 const Interpretation& m) {
  return std::find(sets.begin(), sets.end(), m) != sets.end();
}

ModelSet RefWinslett(const ModelSet& mt, const ModelSet& mp) {
  ModelSet out;
  if (RefDegenerate(mt, mp, &out)) return out;
  std::vector<Interpretation> selected;
  for (const Interpretation& m : mt) {
    std::vector<Interpretation> diffs;
    diffs.reserve(mp.size());
    for (const Interpretation& n : mp) {
      diffs.push_back(m.SymmetricDifference(n));
    }
    const std::vector<Interpretation> minimal = NaiveMinimal(diffs);
    for (const Interpretation& n : mp) {
      if (ContainsSet(minimal, m.SymmetricDifference(n))) {
        selected.push_back(n);
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet RefForbus(const ModelSet& mt, const ModelSet& mp) {
  ModelSet out;
  if (RefDegenerate(mt, mp, &out)) return out;
  std::vector<Interpretation> selected;
  for (const Interpretation& m : mt) {
    size_t best = static_cast<size_t>(-1);
    for (const Interpretation& n : mp) {
      best = std::min(best, m.HammingDistance(n));
    }
    for (const Interpretation& n : mp) {
      if (m.HammingDistance(n) == best) selected.push_back(n);
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet RefBorgida(const ModelSet& mt, const ModelSet& mp) {
  ModelSet out;
  if (RefDegenerate(mt, mp, &out)) return out;
  const ModelSet both = ModelSet::Intersection(mt, mp);
  if (!both.empty()) return both;
  return RefWinslett(mt, mp);
}

// delta(T, P): the globally inclusion-minimal pairwise differences.
std::vector<Interpretation> RefGlobalDiffs(const ModelSet& mt,
                                           const ModelSet& mp) {
  std::vector<Interpretation> diffs;
  for (const Interpretation& m : mt) {
    for (const Interpretation& n : mp) {
      diffs.push_back(m.SymmetricDifference(n));
    }
  }
  return NaiveMinimal(diffs);
}

ModelSet RefSatoh(const ModelSet& mt, const ModelSet& mp) {
  ModelSet out;
  if (RefDegenerate(mt, mp, &out)) return out;
  const std::vector<Interpretation> delta = RefGlobalDiffs(mt, mp);
  std::vector<Interpretation> selected;
  for (const Interpretation& n : mp) {
    for (const Interpretation& m : mt) {
      if (ContainsSet(delta, m.SymmetricDifference(n))) {
        selected.push_back(n);
        break;
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet RefDalal(const ModelSet& mt, const ModelSet& mp) {
  ModelSet out;
  if (RefDegenerate(mt, mp, &out)) return out;
  size_t k = static_cast<size_t>(-1);
  for (const Interpretation& m : mt) {
    for (const Interpretation& n : mp) {
      k = std::min(k, m.HammingDistance(n));
    }
  }
  std::vector<Interpretation> selected;
  for (const Interpretation& n : mp) {
    for (const Interpretation& m : mt) {
      if (m.HammingDistance(n) == k) {
        selected.push_back(n);
        break;
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet RefWeber(const ModelSet& mt, const ModelSet& mp) {
  ModelSet out;
  if (RefDegenerate(mt, mp, &out)) return out;
  Interpretation omega(mp.alphabet().size());
  for (const Interpretation& d : RefGlobalDiffs(mt, mp)) {
    omega = omega.Union(d);
  }
  std::vector<Interpretation> selected;
  for (const Interpretation& n : mp) {
    for (const Interpretation& m : mt) {
      if (m.SymmetricDifference(n).IsSubsetOf(omega)) {
        selected.push_back(n);
        break;
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet RefModels(OperatorId id, const ModelSet& mt, const ModelSet& mp) {
  switch (id) {
    case OperatorId::kWinslett:
      return RefWinslett(mt, mp);
    case OperatorId::kBorgida:
      return RefBorgida(mt, mp);
    case OperatorId::kForbus:
      return RefForbus(mt, mp);
    case OperatorId::kSatoh:
      return RefSatoh(mt, mp);
    case OperatorId::kDalal:
      return RefDalal(mt, mp);
    case OperatorId::kWeber:
      return RefWeber(mt, mp);
    default:
      return ModelSet(mp.alphabet(), {});
  }
}

// ---- oracles -------------------------------------------------------------

std::optional<std::string> BruteForceModelsOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const size_t n = x.size();
  const struct {
    const char* label;
    Formula formula;
  } sides[] = {{"theory", s.t.AsFormula()}, {"p", s.p}};
  for (const auto& side : sides) {
    std::vector<Interpretation> expected;
    for (uint64_t index = 0; index < (uint64_t{1} << n); ++index) {
      Interpretation m = Interpretation::FromIndex(n, index);
      if (Evaluate(side.formula, x, m)) expected.push_back(std::move(m));
    }
    const ModelSet want(x, std::move(expected));
    const ModelSet got = EnumerateModels(side.formula, x, 0);
    if (!(got == want)) {
      return std::string(side.label) + ": AllSAT disagrees with the " +
             "truth table (" + SetSizes(got, want) + ")";
    }
  }
  return std::nullopt;
}

std::optional<std::string> OperatorReferenceOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const ModelSet mt = EnumerateModels(s.t.AsFormula(), x, 0);
  const ModelSet mp = EnumerateModels(s.p, x, 0);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    const ModelSet got = op->ReviseModelSets(mt, mp);
    const ModelSet want = RefModels(op->id(), mt, mp);
    if (!(got == want)) {
      return std::string(op->name()) +
             ": kernel disagrees with the naive reference (" +
             SetSizes(got, want) + ")";
    }
    const ModelSet via_formulas = op->ReviseModels(s.t, s.p, x);
    if (!(via_formulas == want)) {
      return std::string(op->name()) +
             ": ReviseModels(T, P) disagrees with ReviseModelSets on the "
             "enumerated sets";
    }
  }
  return std::nullopt;
}

class ScopedThreadOverride {
 public:
  explicit ScopedThreadOverride(size_t threads) {
    SetParallelThreadsOverride(threads);
  }
  ~ScopedThreadOverride() { SetParallelThreadsOverride(0); }
  ScopedThreadOverride(const ScopedThreadOverride&) = delete;
  ScopedThreadOverride& operator=(const ScopedThreadOverride&) = delete;
};

std::optional<std::string> ThreadCountOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const ModelSet mt = EnumerateModels(s.t.AsFormula(), x, 0);
  const ModelSet mp = EnumerateModels(s.p, x, 0);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    ModelSet sequential;
    ModelSet parallel;
    {
      ScopedThreadOverride one(1);
      sequential = op->ReviseModelSets(mt, mp);
    }
    {
      ScopedThreadOverride three(3);
      parallel = op->ReviseModelSets(mt, mp);
    }
    if (!(sequential == parallel)) {
      return std::string(op->name()) +
             ": 1-thread and 3-thread results differ (" +
             SetSizes(parallel, sequential) +
             "); a merge is not canonicalizing";
    }
  }
  return std::nullopt;
}

// Flips the packed-kernel routing switch for a scope, restoring the
// previous state on exit.
class ScopedPackedKernels {
 public:
  explicit ScopedPackedKernels(bool enabled)
      : saved_(kernel::PackedKernelsEnabled()) {
    kernel::SetPackedKernelsEnabled(enabled);
  }
  ~ScopedPackedKernels() { kernel::SetPackedKernelsEnabled(saved_); }
  ScopedPackedKernels(const ScopedPackedKernels&) = delete;
  ScopedPackedKernels& operator=(const ScopedPackedKernels&) = delete;

 private:
  const bool saved_;
};

std::optional<std::string> PackedKernelsOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const ModelSet mt = EnumerateModels(s.t.AsFormula(), x, 0);
  const ModelSet mp = EnumerateModels(s.p, x, 0);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    // Model-set path: packed bit-matrix sweeps (at a parallel thread
    // count, so tile sharding is exercised) vs the scalar loops.
    ModelSet scalar;
    ModelSet packed;
    {
      ScopedPackedKernels off(false);
      scalar = op->ReviseModelSets(mt, mp);
    }
    {
      ScopedPackedKernels on(true);
      ScopedThreadOverride three(3);
      packed = op->ReviseModelSets(mt, mp);
    }
    if (!(scalar == packed)) {
      return std::string(op->name()) +
             ": packed kernels disagree with the scalar loops (" +
             SetSizes(packed, scalar) + ")";
    }
    // Formula path: the mask kernels in the candidate enumeration.
    ModelSet scalar_masks;
    ModelSet packed_masks;
    {
      ScopedPackedKernels off(false);
      scalar_masks = op->ReviseModels(s.t, s.p, x);
    }
    {
      ScopedPackedKernels on(true);
      packed_masks = op->ReviseModels(s.t, s.p, x);
    }
    if (!(scalar_masks == packed_masks)) {
      return std::string(op->name()) +
             ": packed mask kernels disagree with the scalar candidate "
             "loops (" +
             SetSizes(packed_masks, scalar_masks) + ")";
    }
  }
  return std::nullopt;
}

std::optional<std::string> ModelCacheOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const Formula ft = s.t.AsFormula();
  obs::Registry& registry = obs::Registry::Global();
  ModelCache& cache = ModelCache::Global();
  const size_t saved_capacity = cache.capacity();

  cache.set_capacity(64);
  cache.Clear();
  const ModelSet cold = EnumerateModels(ft, x, 0);
  const uint64_t hits_before =
      registry.GetCounter("solve.model_cache.hits")->Value();
  const ModelSet warm = EnumerateModels(ft, x, 0);
  const uint64_t hits_after =
      registry.GetCounter("solve.model_cache.hits")->Value();

  cache.set_capacity(0);
  const uint64_t misses_before =
      registry.GetCounter("solve.model_cache.misses")->Value();
  const ModelSet disabled = EnumerateModels(ft, x, 0);
  const uint64_t misses_after =
      registry.GetCounter("solve.model_cache.misses")->Value();
  const size_t disabled_size = cache.size();

  cache.set_capacity(saved_capacity);
  cache.Clear();

  if (!(cold == warm)) {
    return "warm cache result differs from the cold enumeration (" +
           SetSizes(warm, cold) + ")";
  }
  if (!(cold == disabled)) {
    return "disabled-cache result differs from the cached enumeration (" +
           SetSizes(disabled, cold) + ")";
  }
  if (hits_after <= hits_before) {
    return "re-enumerating a cached formula did not count a cache hit";
  }
  if (misses_after <= misses_before) {
    return "a disabled cache must still count lookups as misses "
           "(hits + misses == unlimited enumerations)";
  }
  if (disabled_size != 0) {
    return "a disabled cache reported " + std::to_string(disabled_size) +
           " resident entries";
  }
  return std::nullopt;
}

std::optional<std::string> BddVsEnumerationOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet || x.size() == 0) return std::nullopt;
  const Formula f = Formula::And(s.t.AsFormula(), s.p);
  BddManager bdd(x.vars());
  const BddManager::NodeRef root = bdd.FromFormula(f);
  const ModelSet models = EnumerateModels(f, x, 0);
  const uint64_t bdd_count = bdd.CountModels(root);
  if (bdd_count != models.size()) {
    return "BDD counts " + std::to_string(bdd_count) +
           " models, AllSAT enumerates " + std::to_string(models.size());
  }
  // Canonicity: the canonical DNF of the enumerated models is equivalent
  // to f, so a hash-consed manager must rebuild the identical node.
  const BddManager::NodeRef rebuilt = bdd.FromFormula(CanonicalDnf(models));
  if (rebuilt != root) {
    return "canonical DNF of the enumerated models compiled to a "
           "different BDD node than the formula itself";
  }
  return std::nullopt;
}

std::optional<std::string> CompactVsDirectOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  Vocabulary* vocabulary = s.vocabulary.get();
  const Formula ft = s.t.AsFormula();
  const ModelSet mt = EnumerateModels(ft, x, 0);
  const ModelSet mp = EnumerateModels(s.p, x, 0);

  const Formula dalal_compact = DalalCompact(ft, s.p, vocabulary);
  if (!QueryEquivalent(dalal_compact, CanonicalDnf(DalalModels(mt, mp)),
                       x)) {
    return "DalalCompact (Thm 3.4) is not query-equivalent to the direct "
           "Dalal revision over X";
  }
  const Formula weber_compact = WeberCompact(ft, s.p, vocabulary);
  if (!QueryEquivalent(weber_compact, CanonicalDnf(WeberModels(mt, mp)),
                       x)) {
    return "WeberCompact (Thm 3.5) is not query-equivalent to the direct "
           "Weber revision over X";
  }
  const Formula widtio_compact = WidtioCompact(s.t, s.p);
  const ModelSet widtio =
      OperatorById(OperatorId::kWidtio)->ReviseModels(s.t, s.p, x);
  if (!QueryEquivalent(widtio_compact, CanonicalDnf(widtio), x)) {
    return "WidtioCompact is not query-equivalent to the direct WIDTIO "
           "revision over X";
  }

  const bool dalal_compact_entails =
      DalalEntailsCompact(ft, s.p, s.q, vocabulary);
  if (dalal_compact_entails !=
      OperatorById(OperatorId::kDalal)->Entails(s.t, s.p, s.q)) {
    return "DalalEntailsCompact and the direct Dalal entailment disagree "
           "on Q";
  }
  const bool weber_compact_entails =
      WeberEntailsCompact(ft, s.p, s.q, vocabulary);
  if (weber_compact_entails !=
      OperatorById(OperatorId::kWeber)->Entails(s.t, s.p, s.q)) {
    return "WeberEntailsCompact and the direct Weber entailment disagree "
           "on Q";
  }
  return std::nullopt;
}

std::optional<std::string> PostulatesOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const ModelSet mt = EnumerateModels(s.t.AsFormula(), x, 0);
  const ModelSet mp = EnumerateModels(s.p, x, 0);
  const ModelSet both = ModelSet::Intersection(mt, mp);
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    const std::string name(op->name());
    const ModelSet r = op->ReviseModelSets(mt, mp);
    if (!r.IsSubsetOf(mp)) {
      return name + ": success (R1) violated — a selected model does not "
                    "satisfy P";
    }
    if (!mp.empty() && r.empty()) {
      return name + ": consistency (R3) violated — P is satisfiable but "
                    "T * P is not";
    }
    // Revision vacuity (R2) holds for the four revision operators;
    // Winslett and Forbus are update operators and legitimately break it.
    const bool is_update = op->id() == OperatorId::kWinslett ||
                           op->id() == OperatorId::kForbus;
    if (!is_update && !mt.empty() && !both.empty() && !(r == both)) {
      return name + ": vacuity (R2) violated — T & P is consistent but "
                    "T * P != T & P";
    }
    // Update vacuity (U2): T |= P leaves T untouched; holds for all six.
    if (!mt.empty() && mt.IsSubsetOf(mp) && !(r == mt)) {
      return name + ": update vacuity (U2) violated — T |= P but "
                    "T * P != T";
    }
    // Idempotence: revising the result by the same P is a fixpoint.
    const ModelSet again = op->ReviseModelSets(r, mp);
    if (!(again == r)) {
      return name + ": idempotence violated — (T * P) * P != T * P";
    }
  }
  return std::nullopt;
}

std::optional<std::string> Figure1ContainmentOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const ModelSet mt = EnumerateModels(s.t.AsFormula(), x, 0);
  const ModelSet mp = EnumerateModels(s.p, x, 0);
  const ModelSet winslett = WinslettModels(mt, mp);
  const ModelSet borgida = BorgidaModels(mt, mp);
  const ModelSet forbus = ForbusModels(mt, mp);
  const ModelSet satoh = SatohModels(mt, mp);
  const ModelSet dalal = DalalModels(mt, mp);
  const ModelSet weber = WeberModels(mt, mp);
  const struct {
    const char* from;
    const char* to;
    const ModelSet& small;
    const ModelSet& big;
  } edges[] = {
      {"Dalal", "Forbus", dalal, forbus},
      {"Dalal", "Satoh", dalal, satoh},
      {"Dalal", "Borgida", dalal, borgida},
      {"Forbus", "Winslett", forbus, winslett},
      {"Satoh", "Winslett", satoh, winslett},
      {"Satoh", "Weber", satoh, weber},
      {"Borgida", "Winslett", borgida, winslett},
  };
  for (const auto& edge : edges) {
    if (!edge.small.IsSubsetOf(edge.big)) {
      return std::string("Figure 1 arrow broken: ") + edge.from +
             " is not contained in " + edge.to;
    }
  }
  return std::nullopt;
}

std::optional<std::string> ParserRoundtripOracle(const Scenario& s) {
  Vocabulary* vocabulary = s.vocabulary.get();
  std::vector<Formula> formulas(s.t.begin(), s.t.end());
  formulas.push_back(s.p);
  formulas.push_back(s.q);
  for (const Formula& f : formulas) {
    const std::string text = revise::ToString(f, *vocabulary);
    StatusOr<Formula> parsed = Parse(text, vocabulary);
    if (!parsed.ok()) {
      return "printed formula no longer parses: " +
             parsed.status().ToString() + " in \"" + text + "\"";
    }
    if (!parsed.value().StructurallyEqual(f)) {
      return "print -> parse changed the formula's structure: \"" + text +
             "\"";
    }
  }
  return std::nullopt;
}

// compile -> save -> load -> query must be indistinguishable from direct
// evaluation, and any single corrupted byte must be a load error, never a
// silently different knowledge base (src/artifact/).
std::optional<std::string> ArtifactRoundtripOracle(const Scenario& s) {
  const Alphabet x = RevisionAlphabet(s.t, s.p);
  if (x.size() > kMaxOracleAlphabet) return std::nullopt;
  const struct {
    OperatorId op;
    RevisionStrategy strategy;
    const char* label;
  } configs[] = {
      {OperatorId::kDalal, RevisionStrategy::kDelayed, "Dalal/delayed"},
      {OperatorId::kWinslett, RevisionStrategy::kExplicit,
       "Winslett/explicit"},
  };
  static std::atomic<uint64_t> counter{0};
  for (const auto& config : configs) {
    const std::string name = std::string("artifact ") + config.label;
    StatusOr<KnowledgeBase> kb =
        KnowledgeBase::Create(s.t, OperatorById(config.op), config.strategy,
                              s.vocabulary.get());
    if (!kb.ok()) {
      return name + ": Create failed: " + kb.status().ToString();
    }
    kb->Revise(s.p);
    const ModelSet direct = kb->Models();
    const bool direct_ask = kb->Ask(s.q);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("revise_fuzz_" + std::to_string(ProcessTag()) + "_" +
          std::to_string(s.seed) + "_" +
          std::to_string(counter.fetch_add(1)) + ".rkb"))
            .string();
    if (const Status saved = SaveKnowledgeBaseArtifact(*kb, path);
        !saved.ok()) {
      return name + ": save failed: " + saved.ToString();
    }
    std::vector<uint8_t> bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    std::filesystem::remove(path);
    if (bytes.empty()) {
      return name + ": artifact file came back empty";
    }

    // Round trip: the loaded knowledge base answers exactly like the one
    // that was saved.  Loading into the shared vocabulary keeps s.q's
    // letters meaningful on the loaded side.
    {
      const std::string reload = path + ".copy";
      {
        std::ofstream out(reload, std::ios::binary);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
      }
      StatusOr<KnowledgeBase> loaded =
          LoadKnowledgeBaseArtifact(reload, s.vocabulary.get());
      std::filesystem::remove(reload);
      if (!loaded.ok()) {
        return name + ": load failed: " + loaded.status().ToString();
      }
      if (!(loaded->Models() == direct)) {
        return name + ": loaded models differ from direct evaluation (" +
               SetSizes(loaded->Models(), direct) + ")";
      }
      if (loaded->Ask(s.q) != direct_ask) {
        return name + ": loaded Ask(Q) differs from direct evaluation";
      }
    }

    // A corrupted byte (position and flipped bit both scenario-derived)
    // must be rejected by the checksum layer.
    {
      std::vector<uint8_t> corrupt = bytes;
      const size_t position = s.seed % corrupt.size();
      corrupt[position] ^= static_cast<uint8_t>(1u << (s.seed / 7 % 8));
      StatusOr<artifact::ArtifactFile> opened =
          artifact::ArtifactFile::FromBytes(std::move(corrupt));
      if (opened.ok()) {
        return name + ": a flipped bit at offset " +
               std::to_string(position) + " loaded without error";
      }
    }

    // Truncation (text-mode transports, partial writes) must be rejected.
    {
      std::vector<uint8_t> truncated(bytes.begin(),
                                     bytes.end() - 1);
      StatusOr<artifact::ArtifactFile> opened =
          artifact::ArtifactFile::FromBytes(std::move(truncated));
      if (opened.ok()) {
        return name + ": a truncated artifact loaded without error";
      }
    }
  }
  return std::nullopt;
}

const std::vector<Oracle> kOracles = {
    {"brute-force-models",
     "AllSAT enumeration vs a truth-table sweep of Evaluate",
     BruteForceModelsOracle},
    {"operator-reference",
     "the six operator kernels vs naive reference semantics",
     OperatorReferenceOracle},
    {"thread-count", "ReviseModelSets at 1 thread vs 3 threads",
     ThreadCountOracle},
    {"packed-kernels",
     "packed bit-matrix kernels vs the scalar Interpretation loops",
     PackedKernelsOracle},
    {"model-cache", "enumeration with the global cache cold/warm/disabled",
     ModelCacheOracle},
    {"bdd-vs-enumeration", "ROBDD model count and canonicity vs AllSAT",
     BddVsEnumerationOracle},
    {"compact-vs-direct",
     "Theorem 3.4/3.5 compact constructions vs direct revision",
     CompactVsDirectOracle},
    {"postulates",
     "KM laws: success, consistency, vacuity, U2, idempotence",
     PostulatesOracle},
    {"figure1-containment", "the containment arrows of Figure 1",
     Figure1ContainmentOracle},
    {"parser-roundtrip", "print -> parse structural round-trip",
     ParserRoundtripOracle},
    {"artifact-roundtrip",
     "compile -> save -> load -> query vs direct, plus corrupted-byte "
     "rejection",
     ArtifactRoundtripOracle},
};

}  // namespace

const std::vector<Oracle>& AllOracles() { return kOracles; }

const Oracle* FindOracle(std::string_view name) {
  for (const Oracle& oracle : kOracles) {
    if (name == oracle.name) return &oracle;
  }
  return nullptr;
}

std::optional<std::string> RunOracle(const Oracle& oracle,
                                     const Scenario& scenario) {
  return oracle.run(scenario);
}

std::optional<OracleFailure> CheckScenario(const Scenario& scenario,
                                           std::string_view only_oracle) {
  for (const Oracle& oracle : kOracles) {
    if (!only_oracle.empty() && only_oracle != oracle.name) continue;
    if (std::optional<std::string> detail = oracle.run(scenario)) {
      return OracleFailure{oracle.name, *std::move(detail)};
    }
  }
  return std::nullopt;
}

}  // namespace revise::fuzz
