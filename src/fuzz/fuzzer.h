// The fuzzing driver: generate -> check -> shrink -> report.
//
// Fuzz() walks seeds sequentially from a base seed, generating one
// scenario per seed and running every oracle (or one, when restricted)
// against it.  A disagreement is shrunk to a local minimum and recorded
// as a FuzzFailure whose CorpusEntry is ready to commit under
// tests/corpus/.  ReplayCorpus() re-checks every committed repro, which
// is how the regression corpus is wired into ctest and CI.
//
// Observability: fuzz.executions counts scenarios checked,
// fuzz.mismatches counts failures found, fuzz.shrink_steps counts
// accepted shrink reductions (all through the process obs registry, so
// they appear in the standard JSON metrics reports).

#ifndef REVISE_FUZZ_FUZZER_H_
#define REVISE_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/oracles.h"
#include "fuzz/scenario.h"
#include "util/status.h"

namespace revise::fuzz {

struct FuzzOptions {
  uint64_t seed = 1;          // first seed; run i uses seed + i
  uint64_t runs = 1000;       // scenario count (0 = until the time budget)
  double time_budget_s = 0;   // wall-clock stop; 0 = none
  bool shrink = true;         // shrink failures to local minima
  int max_shrink_steps = 500;
  int max_failures = 10;      // stop after this many distinct failures
  std::string oracle;         // restrict to one oracle id; empty = all
  GeneratorOptions generator;
};

struct FuzzFailure {
  uint64_t seed = 0;       // the generating seed
  std::string oracle;      // the disagreeing oracle
  std::string detail;      // the oracle's message (pre-shrink)
  Scenario scenario;       // the shrunk (or original) repro
  int shrink_steps = 0;
  CorpusEntry repro;       // serializable form of `scenario`
};

struct FuzzReport {
  uint64_t executions = 0;
  uint64_t mismatches = 0;
  std::vector<FuzzFailure> failures;
};

// Deterministic for fixed options.  Mutates the global model cache and
// the thread override transiently (the model-cache and thread-count
// oracles restore what they found).
FuzzReport Fuzz(const FuzzOptions& options);

// Replays every `.corpus` entry under `dir`.  `expect: ok` entries must
// parse and pass their oracle(s); `expect: parse-error` entries must be
// rejected by the parser.  Failures are reported with the entry name as
// the seed-less repro.  Returns an error only when the directory or an
// entry file itself is unreadable/malformed.
StatusOr<FuzzReport> ReplayCorpus(const std::string& dir);

}  // namespace revise::fuzz

#endif  // REVISE_FUZZ_FUZZER_H_
