#include "compact/circuits.h"

#include <algorithm>

#include "util/check.h"

namespace revise {

Formula CounterCircuit::AtLeast(size_t k) const {
  if (k == 0) return Formula::True();
  if (k >= geq.size()) return Formula::False();
  return geq[k];
}

Formula CounterCircuit::Exactly(size_t k) const {
  return Formula::And(AtLeast(k), Formula::Not(AtLeast(k + 1)));
}

CounterCircuit BuildCounter(const std::vector<Formula>& inputs, size_t cap,
                            Vocabulary* vocabulary) {
  const size_t n = inputs.size();
  cap = std::min(cap, n);
  CounterCircuit circuit;
  std::vector<Formula> defs;
  // row[j] = "at least j of the first i inputs" after processing input i.
  std::vector<Formula> row(cap + 1);
  row[0] = Formula::True();
  for (size_t j = 1; j <= cap; ++j) row[j] = Formula::False();
  for (size_t i = 0; i < n; ++i) {
    std::vector<Formula> next(cap + 1);
    next[0] = Formula::True();
    for (size_t j = 1; j <= cap && j <= i + 1; ++j) {
      // at-least-j after i+1 inputs == at-least-j after i, or input i
      // pushes the count from j-1 to j.
      const Formula value = Formula::Or(
          row[j], Formula::And(row[j - 1], inputs[i]));
      if (value.IsConst()) {
        next[j] = value;
        continue;
      }
      const Var gate = vocabulary->Fresh("w");
      circuit.aux.push_back(gate);
      defs.push_back(Formula::Iff(Formula::Variable(gate), value));
      next[j] = Formula::Variable(gate);
    }
    for (size_t j = i + 2; j <= cap; ++j) next[j] = Formula::False();
    row = std::move(next);
  }
  circuit.definitions = ConjoinAll(defs);
  circuit.geq.assign(row.begin(), row.end());
  return circuit;
}

std::vector<Formula> DiffInputs(const std::vector<Var>& x,
                                const std::vector<Var>& y) {
  REVISE_CHECK_EQ(x.size(), y.size());
  std::vector<Formula> diffs;
  diffs.reserve(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    diffs.push_back(
        Formula::Xor(Formula::Variable(x[i]), Formula::Variable(y[i])));
  }
  return diffs;
}

Formula ExaFormula(size_t k, const std::vector<Var>& x,
                   const std::vector<Var>& y, Vocabulary* vocabulary) {
  const std::vector<Formula> diffs = DiffInputs(x, y);
  if (k > diffs.size()) return Formula::False();
  const CounterCircuit counter = BuildCounter(diffs, k + 1, vocabulary);
  return Formula::And(counter.definitions, counter.Exactly(k));
}

Formula CountLessThan(const std::vector<Formula>& lhs,
                      const std::vector<Formula>& rhs,
                      Vocabulary* vocabulary) {
  const CounterCircuit left = BuildCounter(lhs, lhs.size(), vocabulary);
  const CounterCircuit right = BuildCounter(rhs, rhs.size(), vocabulary);
  // popcount(lhs) < popcount(rhs) iff some threshold j is reached by rhs
  // but not by lhs.
  std::vector<Formula> witnesses;
  for (size_t j = 1; j <= rhs.size(); ++j) {
    witnesses.push_back(Formula::And(right.AtLeast(j),
                                     Formula::Not(left.AtLeast(j))));
  }
  return Formula::And(Formula::And(left.definitions, right.definitions),
                      DisjoinAll(witnesses));
}

}  // namespace revise
