// Compact representations for a single unbounded revision (Section 3).
//
//   * Dalal (Theorem 3.4):  T[X/Y] ∧ P ∧ EXA(k_{T,P}, X, Y, W)
//     — query-equivalent to T *_D P; size O(|T| + |P| + |X|^2).
//   * Weber (Theorem 3.5):  T[Omega/Z] ∧ P
//     — query-equivalent to T *_Web P; size |T| + |P|.
//   * WIDTIO: logically compactable outright, |T'| <= |T| + |P|.
//
// Both constructions introduce fresh letters, so they satisfy the paper's
// query-equivalence criterion (1) but not logical equivalence (2) — which
// is exactly the paper's point (Theorem 3.6 shows (2) is unattainable for
// these operators unless NP ⊆ P/poly).
//
// The parameters k_{T,P} and Omega are computed with the CDCL solver
// (src/solve/distance.h); this is the "off-line" step of the two-phase
// query answering scheme described in the introduction.

#ifndef REVISE_COMPACT_SINGLE_REVISION_H_
#define REVISE_COMPACT_SINGLE_REVISION_H_

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"

namespace revise {

// Theorem 3.4.  Query-equivalent to T *_D P over X = V(T) ∪ V(P).
// Degenerate cases: returns False when P is unsatisfiable and P when T is
// unsatisfiable (matching the operator conventions).
[[nodiscard]] Formula DalalCompact(const Formula& t, const Formula& p,
                                   Vocabulary* vocabulary);

// Theorem 3.5.  Query-equivalent to T *_Web P over X = V(T) ∪ V(P).
[[nodiscard]] Formula WeberCompact(const Formula& t, const Formula& p,
                                   Vocabulary* vocabulary);

// WIDTIO's trivially compact representation ((∩W) ∪ {P} as a formula).
[[nodiscard]] Formula WidtioCompact(const Theory& t, const Formula& p);

}  // namespace revise

#endif  // REVISE_COMPACT_SINGLE_REVISION_H_
