// Query answering through compact representations.
//
// The introduction of the paper proposes splitting T * P |= Q into
//   1. compute (off-line) a query-equivalent T',
//   2. decide T' |= Q with ordinary theorem proving,
// and its complexity discussion (Section 2.2.4) places Dalal's operator in
// Delta_2^p[log n]: a logarithmic number of NP-oracle calls to find
// k_{T,P}, then one more for the entailment.  These wrappers realize that
// pipeline for the two query-compactable operators.

#ifndef REVISE_COMPACT_QUERY_H_
#define REVISE_COMPACT_QUERY_H_

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace revise {

// T *_D P |= q via: binary-search k_{T,P} (O(log n) SAT calls), build the
// Theorem 3.4 representation, one entailment check.  q may use any
// letters; letters outside V(T) ∪ V(P) are unconstrained.
[[nodiscard]] bool DalalEntailsCompact(const Formula& t, const Formula& p,
                                       const Formula& q,
                                       Vocabulary* vocabulary);

// T *_Web P |= q via the Theorem 3.5 representation.  The off-line part
// computes Omega (minimal-diff enumeration).
[[nodiscard]] bool WeberEntailsCompact(const Formula& t, const Formula& p,
                                       const Formula& q,
                                       Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_COMPACT_QUERY_H_
