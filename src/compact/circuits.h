// Formula-level counting circuits.
//
// Section 3.1 of the paper represents a Hamming-distance-equals-k check as
// a polynomial-size circuit rendered as a propositional formula with
// auxiliary letters W for the internal gates.  We realize the circuit as a
// unary sequential counter: auxiliary letter ge[i][j] is defined (by a
// biconditional, so it is functionally determined) to mean "at least j of
// the first i inputs are true".  Sizes are O(n * cap) letters, polynomial
// as the paper requires.

#ifndef REVISE_COMPACT_CIRCUITS_H_
#define REVISE_COMPACT_CIRCUITS_H_

#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace revise {

// A unary counter over `inputs`, counting up to `cap`.
struct CounterCircuit {
  // Conjunction of the biconditional gate definitions.  Functionally
  // determined: every assignment of the inputs extends uniquely to the
  // auxiliary letters.
  Formula definitions;
  // geq[j] is a formula (over the auxiliary letters) true iff at least j
  // inputs are true, for j in 0..cap (geq[0] == true).
  std::vector<Formula> geq;
  // The auxiliary letters introduced.
  std::vector<Var> aux;

  // sum >= k (true for k == 0; false beyond cap).
  Formula AtLeast(size_t k) const;
  // sum == k; requires k < cap or k == cap == inputs-size... callers use
  // cap >= min(k+1, n).
  Formula Exactly(size_t k) const;
};

// Builds the counter.  `cap` is clamped to inputs.size().
CounterCircuit BuildCounter(const std::vector<Formula>& inputs, size_t cap,
                            Vocabulary* vocabulary);

// The difference indicators (x_i xor y_i) of two parallel letter blocks.
std::vector<Formula> DiffInputs(const std::vector<Var>& x,
                                const std::vector<Var>& y);

// The paper's EXA(k, X, Y, W): true iff the Hamming distance between the
// assignments to X and Y is exactly k.  Auxiliary letters are minted from
// `vocabulary`; the formula's size is O(|X| * k).
Formula ExaFormula(size_t k, const std::vector<Var>& x,
                   const std::vector<Var>& y, Vocabulary* vocabulary);

// A formula (with functionally-determined auxiliary letters) true iff
// popcount(lhs) < popcount(rhs).  Used by Forbus' DIST comparison in
// formula (14).
Formula CountLessThan(const std::vector<Formula>& lhs,
                      const std::vector<Formula>& rhs,
                      Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_COMPACT_CIRCUITS_H_
