// Compact representations for iterated revision (Sections 5 and 6).
//
// General case (Section 5), query equivalence:
//   * Dalal, Theorem 5.1:  Phi_m, built step by step as
//       Phi_i = Phi_{i-1}[X/Y_i] ∧ P^i ∧ EXA(k_i, Y_i, X, W_i)
//     where k_i is the minimum distance between the models of P^i and the
//     previous revision (computed through Phi_{i-1} itself, on the CDCL
//     solver).  Size is polynomial in |T| + Σ|P^i|.
//   * Weber, Corollary 5.2 (formula (10)):
//       Psi_i = Psi_{i-1}[Omega_i/Z_i] ∧ P^i.
//
// Bounded case (Section 6), query equivalence (Theorems 6.1-6.3,
// Corollary 6.4): the quantified schemes (12)-(16) for Winslett, Borgida,
// Satoh and Forbus.  Each step conjoins a universally quantified guard
// over a fresh copy Z of V(P^i); we expand ∀Z into a conjunction over the
// (constantly many, since |P^i| is bounded) assignments of Z, as
// Theorem 6.3 prescribes.  Assignments falsifying F_P(Z) simplify away
// during construction, so the per-step growth is linear in the number of
// models of P^i over V(P^i).

#ifndef REVISE_COMPACT_ITERATED_REVISION_H_
#define REVISE_COMPACT_ITERATED_REVISION_H_

#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace revise {

// One step of Theorem 5.1: the compact representation of (prior *_D p),
// where `prior` is a (possibly already compacted, query-equivalent)
// representation of the current knowledge and `x` is the query alphabet.
[[nodiscard]] Formula DalalCompactStep(const Formula& prior, const Formula& p,
                                       const std::vector<Var>& x,
                                       Vocabulary* vocabulary);

// Phi_m for the whole sequence.  Returns the per-step formulas
// (result[i] represents T *_D P^1 ... *_D P^{i+1}).
[[nodiscard]] std::vector<Formula> DalalCompactIterated(
    const Formula& t, const std::vector<Formula>& updates,
    const std::vector<Var>& x, Vocabulary* vocabulary);

// One step of Corollary 5.2 (formula (10)) and the whole sequence.
[[nodiscard]] Formula WeberCompactStep(const Formula& prior, const Formula& p,
                                       const std::vector<Var>& x,
                                       Vocabulary* vocabulary);
[[nodiscard]] std::vector<Formula> WeberCompactIterated(
    const Formula& t, const std::vector<Formula>& updates,
    const std::vector<Var>& x, Vocabulary* vocabulary);

// One step of the bounded-iterated schemes.  `prior` is the current
// (query-equivalent) representation; `p` the bounded-size new formula.
// Winslett: formula (12)/(15)/(16).
[[nodiscard]] Formula WinslettCompactStep(const Formula& prior,
                                          const Formula& p,
                                          Vocabulary* vocabulary);
// Borgida: prior ∧ p when consistent, else the Winslett step.
[[nodiscard]] Formula BorgidaCompactStep(const Formula& prior,
                                         const Formula& p,
                                         Vocabulary* vocabulary);
// Satoh: formula (13).
[[nodiscard]] Formula SatohCompactStep(const Formula& prior, const Formula& p,
                                       Vocabulary* vocabulary);
// Forbus: formula (14), with the DIST comparison realized by unary
// counter circuits.
[[nodiscard]] Formula ForbusCompactStep(const Formula& prior, const Formula& p,
                                        Vocabulary* vocabulary);

// Iterates any of the step functions over a sequence of updates,
// returning the per-step formulas.
using CompactStepFn = Formula (*)(const Formula&, const Formula&,
                                  Vocabulary*);
[[nodiscard]] std::vector<Formula> CompactIterated(
    CompactStepFn step, const Formula& t, const std::vector<Formula>& updates,
    Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_COMPACT_ITERATED_REVISION_H_
