#include "compact/bounded_revision.h"

#include <bit>

#include "logic/substitute.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/profile.h"
#include "solve/distance.h"
#include "solve/services.h"
#include "util/check.h"

namespace revise {

namespace {

// The subset of `vars` selected by `mask`.
std::vector<Var> SubsetByMask(const std::vector<Var>& vars, uint64_t mask) {
  std::vector<Var> subset;
  for (size_t i = 0; i < vars.size(); ++i) {
    if ((mask >> i) & 1) subset.push_back(vars[i]);
  }
  return subset;
}

// Shared degenerate handling per the operator conventions.
bool HandleDegenerate(const Formula& t, const Formula& p, Formula* out) {
  if (!IsSatisfiable(p)) {
    *out = Formula::False();
    return true;
  }
  if (!IsSatisfiable(t)) {
    *out = p;
    return true;
  }
  return false;
}

// Builds P ∧ ∨_S (T[S/¬S] ∧ ¬ ∨_{C in guard(S)} P[C/¬C]) where guard(S)
// enumerates the masks C for which a strictly preferred difference exists.
template <typename GuardPredicate>
Formula PointwiseBounded(const Formula& t, const Formula& p,
                         GuardPredicate&& strictly_better) {
  Formula degenerate;
  if (HandleDegenerate(t, p, &degenerate)) return degenerate;
  const std::vector<Var> vp = p.Vars();
  REVISE_CHECK_LE(vp.size(), 16u);
  const uint64_t subsets = uint64_t{1} << vp.size();
  std::vector<Formula> disjuncts;
  for (uint64_t s = 0; s < subsets; ++s) {
    const Formula t_flipped = FlipVars(t, SubsetByMask(vp, s));
    std::vector<Formula> guards;
    for (uint64_t c = 0; c < subsets; ++c) {
      if (!strictly_better(c, s)) continue;
      guards.push_back(FlipVars(p, SubsetByMask(vp, c)));
    }
    disjuncts.push_back(
        Formula::And(t_flipped, Formula::Not(DisjoinAll(guards))));
  }
  return Formula::And(p, DisjoinAll(disjuncts));
}

// Feeds the construction's output size (the paper's |W| measure) into
// the shared compact-size distribution; degenerate early-outs skip it.
Formula RecordCompactSize(Formula f) {
  REVISE_OBS_HISTOGRAM("compact.formula_size").Record(f.VarOccurrences());
  return f;
}

}  // namespace

Formula WinslettBounded(const Formula& t, const Formula& p) {
  obs::ProfileScope profile("compact.WinslettBounded");
  // C delta S ⊊ S  <=>  C != 0 and C ⊆ S.
  return RecordCompactSize(
      PointwiseBounded(t, p, [](uint64_t c, uint64_t s) {
        return c != 0 && (c & ~s) == 0;
      }));
}

Formula ForbusBounded(const Formula& t, const Formula& p) {
  obs::ProfileScope profile("compact.ForbusBounded");
  // |C delta S| < |S|.
  return RecordCompactSize(
      PointwiseBounded(t, p, [](uint64_t c, uint64_t s) {
        return std::popcount(c ^ s) < std::popcount(s);
      }));
}

Formula SatohBounded(const Formula& t, const Formula& p) {
  obs::ProfileScope profile("compact.SatohBounded");
  Formula degenerate;
  if (HandleDegenerate(t, p, &degenerate)) return degenerate;
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  std::vector<Formula> disjuncts;
  for (const Interpretation& diff : GlobalMinimalDiffs(t, p, alphabet)) {
    std::vector<Var> s;
    for (size_t i = 0; i < alphabet.size(); ++i) {
      if (diff.Get(i)) s.push_back(alphabet.var(i));
    }
    disjuncts.push_back(FlipVars(t, s));
  }
  return RecordCompactSize(Formula::And(p, DisjoinAll(disjuncts)));
}

Formula DalalBounded(const Formula& t, const Formula& p) {
  obs::ProfileScope profile("compact.DalalBounded");
  Formula degenerate;
  if (HandleDegenerate(t, p, &degenerate)) return degenerate;
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const size_t k = *MinHammingDistance(t, p, alphabet);
  const std::vector<Var> vp = p.Vars();
  REVISE_CHECK_LE(vp.size(), 16u);
  std::vector<Formula> disjuncts;
  for (uint64_t s = 0; s < (uint64_t{1} << vp.size()); ++s) {
    if (static_cast<size_t>(std::popcount(s)) != k) continue;
    disjuncts.push_back(FlipVars(t, SubsetByMask(vp, s)));
  }
  return RecordCompactSize(Formula::And(p, DisjoinAll(disjuncts)));
}

Formula WeberBounded(const Formula& t, const Formula& p) {
  obs::ProfileScope profile("compact.WeberBounded");
  Formula degenerate;
  if (HandleDegenerate(t, p, &degenerate)) return degenerate;
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const Interpretation omega = WeberOmega(t, p, alphabet);
  std::vector<Var> omega_vars;
  for (size_t i = 0; i < alphabet.size(); ++i) {
    if (omega.Get(i)) omega_vars.push_back(alphabet.var(i));
  }
  REVISE_CHECK_LE(omega_vars.size(), 16u);
  std::vector<Formula> disjuncts;
  for (uint64_t s = 0; s < (uint64_t{1} << omega_vars.size()); ++s) {
    disjuncts.push_back(FlipVars(t, SubsetByMask(omega_vars, s)));
  }
  return RecordCompactSize(Formula::And(p, DisjoinAll(disjuncts)));
}

Formula BorgidaBounded(const Formula& t, const Formula& p) {
  obs::ProfileScope profile("compact.BorgidaBounded");
  Formula degenerate;
  if (HandleDegenerate(t, p, &degenerate)) return degenerate;
  const Formula both = Formula::And(t, p);
  if (IsSatisfiable(both)) return RecordCompactSize(both);
  // Fallback delegates to WinslettBounded, which records its own size.
  return WinslettBounded(t, p);
}

}  // namespace revise
