#include "compact/single_revision.h"

#include "compact/circuits.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/profile.h"
#include "logic/substitute.h"
#include "revision/formula_based.h"
#include "solve/distance.h"
#include "solve/services.h"

namespace revise {

namespace {

// Feeds the construction's output size (the paper's |W| measure) into
// the shared compact-size distribution; degenerate early-outs skip it.
Formula RecordCompactSize(Formula f) {
  REVISE_OBS_HISTOGRAM("compact.formula_size").Record(f.VarOccurrences());
  return f;
}

}  // namespace

Formula DalalCompact(const Formula& t, const Formula& p,
                     Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.Dalal");
  if (!IsSatisfiable(p)) return Formula::False();
  if (!IsSatisfiable(t)) return p;
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const auto k = MinHammingDistance(t, p, alphabet);
  const std::vector<Var>& x = alphabet.vars();
  const std::vector<Var> y = vocabulary->FreshBlock("y", x.size());
  const Formula renamed_t = RenameVars(t, x, y);
  const Formula exa = ExaFormula(*k, x, y, vocabulary);
  return RecordCompactSize(Formula::And({renamed_t, p, exa}));
}

Formula WeberCompact(const Formula& t, const Formula& p,
                     Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.Weber");
  if (!IsSatisfiable(p)) return Formula::False();
  if (!IsSatisfiable(t)) return p;
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const Interpretation omega = WeberOmega(t, p, alphabet);
  std::vector<Var> omega_vars;
  for (size_t i = 0; i < alphabet.size(); ++i) {
    if (omega.Get(i)) omega_vars.push_back(alphabet.var(i));
  }
  const std::vector<Var> z = vocabulary->FreshBlock("z", omega_vars.size());
  return RecordCompactSize(Formula::And(RenameVars(t, omega_vars, z), p));
}

Formula WidtioCompact(const Theory& t, const Formula& p) {
  obs::ProfileScope profile("compact.WIDTIO");
  return RecordCompactSize(WidtioTheory(t, p).AsFormula());
}

}  // namespace revise
