#include "compact/query.h"

#include "compact/circuits.h"
#include "compact/single_revision.h"
#include "logic/substitute.h"
#include "solve/distance.h"
#include "solve/services.h"

namespace revise {

bool DalalEntailsCompact(const Formula& t, const Formula& p,
                         const Formula& q, Vocabulary* vocabulary) {
  if (!IsSatisfiable(p)) return true;  // empty result entails everything
  if (!IsSatisfiable(t)) return Entails(p, q);
  const Alphabet alphabet(UnionOfVars(std::vector<Formula>{t, p}));
  const auto k = MinHammingDistanceBinarySearch(t, p, alphabet);
  const std::vector<Var>& x = alphabet.vars();
  const std::vector<Var> y = vocabulary->FreshBlock("y", x.size());
  const Formula compact = Formula::And(
      {RenameVars(t, x, y), p, ExaFormula(*k, x, y, vocabulary)});
  return Entails(compact, q);
}

bool WeberEntailsCompact(const Formula& t, const Formula& p,
                         const Formula& q, Vocabulary* vocabulary) {
  return Entails(WeberCompact(t, p, vocabulary), q);
}

}  // namespace revise
