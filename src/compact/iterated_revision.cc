#include "compact/iterated_revision.h"

#include <unordered_map>

#include "compact/circuits.h"
#include "logic/substitute.h"
#include "obs/trace.h"
#include "obs/profile.h"
#include "solve/distance.h"
#include "solve/services.h"
#include "util/check.h"

namespace revise {

namespace {

// Degenerate-case conventions shared by every step: an unsatisfiable P
// empties the knowledge base; an unsatisfiable prior is revised to P.
bool HandleDegenerate(const Formula& prior, const Formula& p, Formula* out) {
  if (!IsSatisfiable(p)) {
    *out = Formula::False();
    return true;
  }
  if (!IsSatisfiable(prior)) {
    *out = p;
    return true;
  }
  return false;
}

// The paper's F_C(S1, S2, S3, S4) = /\_j ((s1_j != s2_j) -> (s3_j != s4_j)),
// i.e. diff(S1,S2) ⊆ diff(S3,S4).  Blocks are parallel vectors of
// formulas (letters or constants).
Formula FSubset(const std::vector<Formula>& s1,
                const std::vector<Formula>& s2,
                const std::vector<Formula>& s3,
                const std::vector<Formula>& s4) {
  REVISE_CHECK_EQ(s1.size(), s2.size());
  REVISE_CHECK_EQ(s3.size(), s4.size());
  REVISE_CHECK_EQ(s1.size(), s3.size());
  std::vector<Formula> conjuncts;
  conjuncts.reserve(s1.size());
  for (size_t j = 0; j < s1.size(); ++j) {
    conjuncts.push_back(Formula::Implies(Formula::Xor(s1[j], s2[j]),
                                         Formula::Xor(s3[j], s4[j])));
  }
  return ConjoinAll(conjuncts);
}

std::vector<Formula> VarBlock(const std::vector<Var>& vars) {
  std::vector<Formula> block;
  block.reserve(vars.size());
  for (const Var v : vars) block.push_back(Formula::Variable(v));
  return block;
}

std::vector<Formula> ConstBlock(size_t n, uint64_t mask) {
  std::vector<Formula> block;
  block.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    block.push_back(Formula::Constant((mask >> j) & 1));
  }
  return block;
}

// p with its variables (vp, in order) replaced by the constants of `mask`.
// Folds to a constant.
Formula RestrictToMask(const Formula& p, const std::vector<Var>& vp,
                       uint64_t mask) {
  std::unordered_map<Var, Formula> map;
  for (size_t j = 0; j < vp.size(); ++j) {
    map.emplace(vp[j], Formula::Constant((mask >> j) & 1));
  }
  return Substitute(p, map);
}

}  // namespace

Formula DalalCompactStep(const Formula& prior, const Formula& p,
                         const std::vector<Var>& x, Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.DalalStep");
  Formula degenerate;
  if (HandleDegenerate(prior, p, &degenerate)) return degenerate;
  const Alphabet alphabet(x);
  const auto k = MinHammingDistance(prior, p, alphabet);
  const std::vector<Var> y = vocabulary->FreshBlock("y", x.size());
  return Formula::And(
      {RenameVars(prior, x, y), p, ExaFormula(*k, y, x, vocabulary)});
}

std::vector<Formula> DalalCompactIterated(const Formula& t,
                                          const std::vector<Formula>& updates,
                                          const std::vector<Var>& x,
                                          Vocabulary* vocabulary) {
  std::vector<Formula> steps;
  steps.reserve(updates.size());
  Formula current = t;
  for (const Formula& p : updates) {
    current = DalalCompactStep(current, p, x, vocabulary);
    steps.push_back(current);
  }
  return steps;
}

Formula WeberCompactStep(const Formula& prior, const Formula& p,
                         const std::vector<Var>& x, Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.WeberStep");
  Formula degenerate;
  if (HandleDegenerate(prior, p, &degenerate)) return degenerate;
  const Alphabet alphabet(x);
  const Interpretation omega = WeberOmega(prior, p, alphabet);
  std::vector<Var> omega_vars;
  for (size_t i = 0; i < alphabet.size(); ++i) {
    if (omega.Get(i)) omega_vars.push_back(alphabet.var(i));
  }
  const std::vector<Var> z = vocabulary->FreshBlock("z", omega_vars.size());
  return Formula::And(RenameVars(prior, omega_vars, z), p);
}

std::vector<Formula> WeberCompactIterated(const Formula& t,
                                          const std::vector<Formula>& updates,
                                          const std::vector<Var>& x,
                                          Vocabulary* vocabulary) {
  std::vector<Formula> steps;
  steps.reserve(updates.size());
  Formula current = t;
  for (const Formula& p : updates) {
    current = WeberCompactStep(current, p, x, vocabulary);
    steps.push_back(current);
  }
  return steps;
}

Formula WinslettCompactStep(const Formula& prior, const Formula& p,
                            Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.WinslettStep");
  Formula degenerate;
  if (HandleDegenerate(prior, p, &degenerate)) return degenerate;
  const std::vector<Var> vp = p.Vars();
  REVISE_CHECK_LE(vp.size(), 16u);
  const std::vector<Var> y = vocabulary->FreshBlock("Y", vp.size());
  const std::vector<Formula> vp_block = VarBlock(vp);
  const std::vector<Formula> y_block = VarBlock(y);

  // ∀Z expanded: one conjunct per assignment ζ of Z; assignments with
  // ζ |/= P simplify to true and vanish in the And.
  std::vector<Formula> guard;
  for (uint64_t zeta = 0; zeta < (uint64_t{1} << vp.size()); ++zeta) {
    const Formula fp = RestrictToMask(p, vp, zeta);
    if (fp.IsFalse()) continue;
    const std::vector<Formula> z_block = ConstBlock(vp.size(), zeta);
    guard.push_back(Formula::Implies(
        Formula::And(fp, FSubset(z_block, y_block, y_block, vp_block)),
        FSubset(vp_block, y_block, y_block, z_block)));
  }
  return Formula::And(
      {RenameVars(prior, vp, y), p, ConjoinAll(guard)});
}

Formula BorgidaCompactStep(const Formula& prior, const Formula& p,
                           Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.BorgidaStep");
  Formula degenerate;
  if (HandleDegenerate(prior, p, &degenerate)) return degenerate;
  const Formula both = Formula::And(prior, p);
  if (IsSatisfiable(both)) return both;
  return WinslettCompactStep(prior, p, vocabulary);
}

Formula SatohCompactStep(const Formula& prior, const Formula& p,
                         Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.SatohStep");
  // The measure-based realization of formula (13): the measure of minimal
  // distance for Satoh is delta(T,P) itself (Section 4.3's summary).  We
  // compute delta off-line with the solver and require diff(V(P), Y) to be
  // one of its members; the per-step growth is |prior| + |P| + O(2^k * k)
  // instead of the multiplicative blow-up a verbatim expansion of (13)'s
  // T[V(P)/W] antecedent would cause.
  Formula degenerate;
  if (HandleDegenerate(prior, p, &degenerate)) return degenerate;
  const std::vector<Var> vp = p.Vars();
  REVISE_CHECK_LE(vp.size(), 16u);
  const Alphabet full(UnionOfVars(std::vector<Formula>{prior, p}));
  const std::vector<Interpretation> delta =
      GlobalMinimalDiffs(prior, p, full);
  const std::vector<Var> y = vocabulary->FreshBlock("Y", vp.size());

  // diff(V(P), Y) == D, for each minimal diff D (all D are within V(P)).
  std::vector<Formula> membership;
  for (const Interpretation& d : delta) {
    std::vector<Formula> conjuncts;
    bool in_vp = true;
    Interpretation d_on_vp(vp.size());
    for (size_t i = 0; i < full.size(); ++i) {
      if (!d.Get(i)) continue;
      bool found = false;
      for (size_t j = 0; j < vp.size(); ++j) {
        if (vp[j] == full.var(i)) {
          d_on_vp.Set(j, true);
          found = true;
          break;
        }
      }
      if (!found) in_vp = false;
    }
    REVISE_CHECK(in_vp);  // minimal global diffs are within V(P)
    for (size_t j = 0; j < vp.size(); ++j) {
      const Formula bit =
          Formula::Xor(Formula::Variable(vp[j]), Formula::Variable(y[j]));
      conjuncts.push_back(d_on_vp.Get(j) ? bit : Formula::Not(bit));
    }
    membership.push_back(ConjoinAll(conjuncts));
  }
  return Formula::And(
      {RenameVars(prior, vp, y), p, DisjoinAll(membership)});
}

Formula ForbusCompactStep(const Formula& prior, const Formula& p,
                          Vocabulary* vocabulary) {
  obs::ProfileScope profile("compact.ForbusStep");
  // Formula (14): prior[V(P)/Y] ∧ P ∧ ∀Z.(F_P(Z) ->
  //   !(DIST(Z,Y) < DIST(V(P),Y))), with the DIST comparison realized by
  // unary counter circuits whose gate letters are functionally determined.
  Formula degenerate;
  if (HandleDegenerate(prior, p, &degenerate)) return degenerate;
  const std::vector<Var> vp = p.Vars();
  REVISE_CHECK_LE(vp.size(), 16u);
  const std::vector<Var> y = vocabulary->FreshBlock("Y", vp.size());

  // Shared counter for DIST(V(P), Y).
  const CounterCircuit rhs = BuildCounter(DiffInputs(vp, y), vp.size(),
                                          vocabulary);
  std::vector<Formula> parts = {RenameVars(prior, vp, y), p,
                                rhs.definitions};
  for (uint64_t zeta = 0; zeta < (uint64_t{1} << vp.size()); ++zeta) {
    const Formula fp = RestrictToMask(p, vp, zeta);
    if (fp.IsFalse()) continue;
    // DIST(ζ, Y): inputs are Y-literals with polarity from ζ.
    std::vector<Formula> lhs_inputs;
    lhs_inputs.reserve(vp.size());
    for (size_t j = 0; j < vp.size(); ++j) {
      lhs_inputs.push_back(
          Formula::Literal(y[j], /*positive=*/!((zeta >> j) & 1)));
    }
    const CounterCircuit lhs =
        BuildCounter(lhs_inputs, vp.size(), vocabulary);
    parts.push_back(lhs.definitions);
    // !(DIST(ζ,Y) < DIST(V(P),Y)): every threshold reached by the right
    // count is reached by the left count.
    std::vector<Formula> not_less;
    for (size_t j = 1; j <= vp.size(); ++j) {
      not_less.push_back(
          Formula::Implies(rhs.AtLeast(j), lhs.AtLeast(j)));
    }
    parts.push_back(ConjoinAll(not_less));
  }
  return Formula::And(std::span<const Formula>(parts));
}

std::vector<Formula> CompactIterated(CompactStepFn step, const Formula& t,
                                     const std::vector<Formula>& updates,
                                     Vocabulary* vocabulary) {
  std::vector<Formula> steps;
  steps.reserve(updates.size());
  Formula current = t;
  for (const Formula& p : updates) {
    current = step(current, p, vocabulary);
    steps.push_back(current);
  }
  return steps;
}

}  // namespace revise
