// Compact representations for a single revision with bounded-size P
// (Section 4): formulas (5)-(9) and Corollary 4.4.
//
// All of these are LOGICALLY equivalent to T * P (criterion (2)) and use
// exactly the alphabet of T and P — no fresh letters.  Their size is
// linear in |T| for each fixed |V(P)| = key; the constant factor is
// exponential in k, which is the whole point of the bounded-P assumption.
//
//   (5) Winslett:  P ∧ ∨_{S ⊆ V(P)} (T[S/¬S] ∧ ¬∨_{∅≠C⊆S} P[C/¬C])
//   (6) Forbus:    P ∧ ∨_{S ⊆ V(P)} (T[S/¬S] ∧ ¬∨_{|CΔS|<|S|} P[C/¬C])
//   (7) Satoh:     P ∧ ∨_{S ∈ δ(T,P)} T[S/¬S]
//   (8) Dalal:     P ∧ ∨_{|S| = k_{T,P}} T[S/¬S]
//   (9) Weber:     P ∧ ∨_{S ⊆ Ω} T[S/¬S]
//   Borgida (Cor 4.4): T ∧ P when consistent, else (5).
//
// The parameters δ(T,P), k_{T,P} and Ω are computed with the CDCL solver.

#ifndef REVISE_COMPACT_BOUNDED_REVISION_H_
#define REVISE_COMPACT_BOUNDED_REVISION_H_

#include "logic/formula.h"

namespace revise {

[[nodiscard]] Formula WinslettBounded(const Formula& t, const Formula& p);
[[nodiscard]] Formula ForbusBounded(const Formula& t, const Formula& p);
[[nodiscard]] Formula SatohBounded(const Formula& t, const Formula& p);
[[nodiscard]] Formula DalalBounded(const Formula& t, const Formula& p);
[[nodiscard]] Formula WeberBounded(const Formula& t, const Formula& p);
[[nodiscard]] Formula BorgidaBounded(const Formula& t, const Formula& p);

}  // namespace revise

#endif  // REVISE_COMPACT_BOUNDED_REVISION_H_
