// A CDCL SAT solver built from scratch.
//
// Features: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimization, EVSIDS branching with phase saving,
// Luby restarts, learned-clause database reduction, incremental solving
// under assumptions (clauses may be added between Solve() calls).
//
// This is the workhorse behind every semantic operation in librevise:
// satisfiability, entailment, model enumeration, minimal-distance
// computation, and the reference semantics of every revision operator.

#ifndef REVISE_SAT_SOLVER_H_
#define REVISE_SAT_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sat/literal.h"

namespace revise::sat {

struct SolverStats {
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;
  uint64_t learned_clauses = 0;
  uint64_t deleted_clauses = 0;
};

class Solver {
 public:
  // kUnknown is only returned when an interrupt callback (SetInterrupt)
  // asked the search to stop — e.g. a soft deadline expired.
  enum class Result { kSat, kUnsat, kUnknown };

  Solver();
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // Creates a new variable and returns its index.
  int NewVar();
  // Ensures variables 0..n-1 exist.
  void EnsureVarCount(int n);
  int NumVars() const { return static_cast<int>(assigns_.size()); }

  // Adds a clause.  Returns false if the solver becomes trivially
  // unsatisfiable (empty clause at level 0).  May be called between
  // Solve() invocations.  Ignoring the result loses the only cheap signal
  // of top-level UNSAT, so it is [[nodiscard]]; callers that genuinely do
  // not care re-check Okay() instead.
  [[nodiscard]] bool AddClause(std::vector<Lit> lits);
  [[nodiscard]] bool AddUnit(Lit lit) { return AddClause({lit}); }
  [[nodiscard]] bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }

  // False once the clause set has been proven unsatisfiable outright.
  [[nodiscard]] bool Okay() const { return ok_; }

  // Consumes an Add{Clause,Unit,Binary} result at call sites where a
  // top-level conflict needs no special handling: the solver latches
  // !Okay() and the next Solve() reports UNSAT.  Using this helper (rather
  // than a bare void cast) marks the discard as a reviewed decision.
  static void LatchConflict(bool added) { static_cast<void>(added); }

  [[nodiscard]] Result Solve();
  // Solves under the given assumptions; the assumptions are not added as
  // clauses and do not persist.
  [[nodiscard]] Result SolveAssuming(const std::vector<Lit>& assumptions);

  // Value of a variable in the model found by the last kSat Solve.
  // Unassigned variables (eliminated by simplification) read as false.
  [[nodiscard]] bool ModelValue(int var) const;

  const SolverStats& stats() const { return stats_; }

  // Installs a callback polled roughly every 64 conflicts during search.
  // When it returns true the current Solve call stops and returns
  // kUnknown.  Pass nullptr to clear.
  void SetInterrupt(std::function<bool()> should_stop) {
    interrupt_ = std::move(should_stop);
  }

 private:
  struct Clause;

  struct Watcher {
    Clause* clause;
    Lit blocker;
  };

  // --- clause management ---
  Clause* AllocClause(const std::vector<Lit>& lits, bool learnt);
  void AttachClause(Clause* clause);
  void DetachClause(Clause* clause);
  void ReduceDb();

  // --- assignment / trail ---
  LBool ValueOfLit(Lit lit) const;
  LBool ValueOfVar(int var) const { return assigns_[var]; }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(trail_.size()); }
  void UncheckedEnqueue(Lit lit, Clause* reason);
  void CancelUntil(int level);

  // --- search ---
  Clause* Propagate();
  void Analyze(Clause* conflict, std::vector<Lit>* learnt,
               int* backtrack_level);
  bool LitRedundant(Lit lit, uint32_t abstract_levels);
  Lit PickBranchLit();

  // --- VSIDS heap ---
  void VarBumpActivity(int var);
  void VarDecayActivity();
  void HeapInsert(int var);
  void HeapUpdate(int var);
  int HeapPop();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapPercolateUp(int pos);
  void HeapPercolateDown(int pos);

  static int64_t Luby(int64_t x);

  bool ok_ = true;
  std::vector<LBool> assigns_;
  std::vector<bool> polarity_;  // saved phases (true = last value was true)
  std::vector<int> level_;
  std::vector<Clause*> reason_;
  std::vector<Lit> trail_;
  std::vector<size_t> trail_lim_;
  size_t qhead_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<Clause*> clauses_;               // problem clauses
  std::vector<Clause*> learnts_;

  // VSIDS.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<int> heap_;      // binary max-heap of variables
  std::vector<int> heap_pos_;  // var -> heap index, -1 if absent

  // Analyze scratch space.
  std::vector<uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_to_clear_;

  std::vector<bool> model_;

  double max_learnts_factor_ = 1.0 / 3.0;
  double learnt_growth_ = 1.1;
  double max_learnts_ = 0;

  SolverStats stats_;
  std::function<bool()> interrupt_;
};

}  // namespace revise::sat

#endif  // REVISE_SAT_SOLVER_H_
