// SAT-level literals.
//
// The SAT layer has its own dense variable space (int), independent of the
// logic layer's Vocabulary; the bridge in src/solve maps between the two.
// A literal packs a variable and a sign: positive literal of v is 2v,
// negative is 2v+1, so literals index watch lists directly.

#ifndef REVISE_SAT_LITERAL_H_
#define REVISE_SAT_LITERAL_H_

#include <cstdint>

namespace revise::sat {

using Lit = int32_t;

inline constexpr Lit kUndefLit = -1;

// sign=true yields the negative literal.
inline constexpr Lit MakeLit(int var, bool sign) {
  return (var << 1) | (sign ? 1 : 0);
}
inline constexpr Lit PosLit(int var) { return MakeLit(var, false); }
inline constexpr Lit NegLit(int var) { return MakeLit(var, true); }
inline constexpr int LitVar(Lit lit) { return lit >> 1; }
inline constexpr bool LitSign(Lit lit) { return lit & 1; }
inline constexpr Lit Negate(Lit lit) { return lit ^ 1; }

enum class LBool : int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline constexpr LBool BoolToLBool(bool b) {
  return b ? LBool::kTrue : LBool::kFalse;
}
inline constexpr LBool NegateLBool(LBool b) {
  switch (b) {
    case LBool::kFalse:
      return LBool::kTrue;
    case LBool::kTrue:
      return LBool::kFalse;
    case LBool::kUndef:
      return LBool::kUndef;
  }
  return LBool::kUndef;
}

}  // namespace revise::sat

#endif  // REVISE_SAT_LITERAL_H_
