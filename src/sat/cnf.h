// CNF formula container and DIMACS I/O.

#ifndef REVISE_SAT_CNF_H_
#define REVISE_SAT_CNF_H_

#include <string>
#include <vector>

#include "sat/literal.h"
#include "util/status.h"

namespace revise::sat {

class Cnf {
 public:
  Cnf() = default;

  int NewVar() { return num_vars_++; }
  void EnsureVarCount(int n) {
    if (n > num_vars_) num_vars_ = n;
  }
  int num_vars() const { return num_vars_; }

  void AddClause(std::vector<Lit> lits);
  void AddUnit(Lit lit) { AddClause({lit}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }

  // Appends all clauses of `other` (variable spaces must already agree).
  void Append(const Cnf& other);

  // DIMACS "p cnf" rendering/parsing (1-based signed literals).
  std::string ToDimacs() const;
  static StatusOr<Cnf> FromDimacs(const std::string& text);

 private:
  int num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
};

}  // namespace revise::sat

#endif  // REVISE_SAT_CNF_H_
