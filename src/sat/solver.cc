#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace revise::sat {

struct Solver::Clause {
  bool learnt;
  double activity = 0.0;
  std::vector<Lit> lits;
};

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseActivityBump = 1.0;
constexpr int64_t kRestartBase = 100;
}  // namespace

Solver::Solver() = default;

Solver::~Solver() {
  for (Clause* c : clauses_) delete c;
  for (Clause* c : learnts_) delete c;
}

int Solver::NewVar() {
  const int var = NumVars();
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(false);
  level_.push_back(0);
  reason_.push_back(nullptr);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  HeapInsert(var);
  return var;
}

void Solver::EnsureVarCount(int n) {
  while (NumVars() < n) NewVar();
}

LBool Solver::ValueOfLit(Lit lit) const {
  REVISE_DCHECK_GE(lit, 0);
  REVISE_DCHECK_LT(LitVar(lit), NumVars());
  LBool v = assigns_[LitVar(lit)];
  if (v == LBool::kUndef) return LBool::kUndef;
  return LitSign(lit) ? NegateLBool(v) : v;
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CancelUntil(0);
  // Normalize: sort, remove duplicates, detect tautologies, drop literals
  // already false at level 0, succeed trivially if already satisfied.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> cleaned;
  cleaned.reserve(lits.size());
  Lit prev = kUndefLit;
  for (Lit lit : lits) {
    REVISE_CHECK_GE(lit, 0);
    REVISE_CHECK_LT(LitVar(lit), NumVars());
    if (lit == prev) continue;
    if (prev != kUndefLit && lit == Negate(prev) &&
        LitVar(lit) == LitVar(prev)) {
      return true;  // tautology
    }
    LBool value = ValueOfLit(lit);
    if (value == LBool::kTrue) return true;  // satisfied at level 0
    if (value == LBool::kFalse) {
      prev = lit;
      continue;  // falsified at level 0: drop
    }
    cleaned.push_back(lit);
    prev = lit;
  }
  if (cleaned.empty()) {
    ok_ = false;
    return false;
  }
  if (cleaned.size() == 1) {
    UncheckedEnqueue(cleaned[0], nullptr);
    if (Propagate() != nullptr) {
      ok_ = false;
      return false;
    }
    return true;
  }
  Clause* clause = AllocClause(cleaned, /*learnt=*/false);
  clauses_.push_back(clause);
  AttachClause(clause);
  return true;
}

Solver::Clause* Solver::AllocClause(const std::vector<Lit>& lits,
                                    bool learnt) {
  Clause* clause = new Clause;
  clause->learnt = learnt;
  clause->lits = lits;
  return clause;
}

void Solver::AttachClause(Clause* clause) {
  REVISE_CHECK_GE(clause->lits.size(), 2u);
  const Lit l0 = clause->lits[0];
  const Lit l1 = clause->lits[1];
  watches_[Negate(l0)].push_back({clause, l1});
  watches_[Negate(l1)].push_back({clause, l0});
}

void Solver::DetachClause(Clause* clause) {
  for (int i = 0; i < 2; ++i) {
    std::vector<Watcher>& ws = watches_[Negate(clause->lits[i])];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == clause) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::UncheckedEnqueue(Lit lit, Clause* reason) {
  const int var = LitVar(lit);
  REVISE_DCHECK(assigns_[var] == LBool::kUndef);
  assigns_[var] = BoolToLBool(!LitSign(lit));
  level_[var] = DecisionLevel();
  reason_[var] = reason;
  trail_.push_back(lit);
}

void Solver::CancelUntil(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const size_t keep = trail_lim_[target_level];
  for (size_t i = trail_.size(); i-- > keep;) {
    const int var = LitVar(trail_[i]);
    polarity_[var] = assigns_[var] == LBool::kTrue;
    assigns_[var] = LBool::kUndef;
    reason_[var] = nullptr;
    if (heap_pos_[var] < 0) HeapInsert(var);
  }
  trail_.resize(keep);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

Solver::Clause* Solver::Propagate() {
  Clause* conflict = nullptr;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[p];
    size_t i = 0;
    size_t j = 0;
    while (i < ws.size()) {
      // Fast path: blocker already satisfied.
      const Lit blocker = ws[i].blocker;
      if (ValueOfLit(blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause* clause = ws[i].clause;
      std::vector<Lit>& lits = clause->lits;
      // Normalize so the false watched literal is lits[1].
      const Lit false_lit = Negate(p);
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      // lits[0] may satisfy the clause.
      const Lit first = lits[0];
      if (first != blocker && ValueOfLit(first) == LBool::kTrue) {
        ws[i].blocker = first;
        ws[j++] = ws[i++];
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (ValueOfLit(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[Negate(lits[1])].push_back({clause, first});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;  // watcher moved to another list; drop from this one
        continue;
      }
      // Clause is unit or conflicting.
      ws[i].blocker = first;
      if (ValueOfLit(first) == LBool::kFalse) {
        conflict = clause;
        qhead_ = trail_.size();
        // Copy the remaining watchers and stop.
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      UncheckedEnqueue(first, clause);
      ws[j++] = ws[i++];
    }
    ws.resize(j);
    if (conflict != nullptr) break;
  }
  return conflict;
}

void Solver::Analyze(Clause* conflict, std::vector<Lit>* learnt,
                     int* backtrack_level) {
  learnt->clear();
  learnt->push_back(kUndefLit);  // placeholder for the asserting literal
  int path_count = 0;
  Lit p = kUndefLit;
  size_t index = trail_.size();

  Clause* reason = conflict;
  do {
    REVISE_CHECK(reason != nullptr);
    reason->activity += kClauseActivityBump;
    // Skip lits[0] when it is the literal we are resolving on.
    for (size_t k = (p == kUndefLit ? 0 : 1); k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      const int var = LitVar(q);
      if (seen_[var] || level_[var] == 0) continue;
      seen_[var] = 1;
      VarBumpActivity(var);
      if (level_[var] >= DecisionLevel()) {
        ++path_count;
      } else {
        learnt->push_back(q);
      }
    }
    // Find the next literal on the trail to resolve.
    while (!seen_[LitVar(trail_[index - 1])]) --index;
    --index;
    p = trail_[index];
    reason = reason_[LitVar(p)];
    seen_[LitVar(p)] = 0;
    --path_count;
  } while (path_count > 0);
  (*learnt)[0] = Negate(p);

  // Conflict clause minimization: drop literals implied by the rest.
  analyze_to_clear_ = *learnt;
  for (const Lit lit : *learnt) seen_[LitVar(lit)] = 1;
  uint32_t abstract_levels = 0;
  for (size_t i = 1; i < learnt->size(); ++i) {
    abstract_levels |= 1u << (level_[LitVar((*learnt)[i])] & 31);
  }
  size_t keep = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    const Lit lit = (*learnt)[i];
    if (reason_[LitVar(lit)] == nullptr ||
        !LitRedundant(lit, abstract_levels)) {
      (*learnt)[keep++] = lit;
    }
  }
  learnt->resize(keep);

  // Compute the backtrack level and move the second-highest-level literal
  // into position 1 so it gets watched.
  if (learnt->size() == 1) {
    *backtrack_level = 0;
  } else {
    size_t max_index = 1;
    for (size_t i = 2; i < learnt->size(); ++i) {
      if (level_[LitVar((*learnt)[i])] >
          level_[LitVar((*learnt)[max_index])]) {
        max_index = i;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_index]);
    *backtrack_level = level_[LitVar((*learnt)[1])];
  }

  for (const Lit lit : analyze_to_clear_) seen_[LitVar(lit)] = 0;
  analyze_to_clear_.clear();
}

bool Solver::LitRedundant(Lit lit, uint32_t abstract_levels) {
  // Depth-first check that every path from `lit`'s reason terminates in
  // literals already present in the learnt clause (marked in seen_).
  analyze_stack_.clear();
  analyze_stack_.push_back(lit);
  std::vector<Lit> marked;  // marks added during this check
  while (!analyze_stack_.empty()) {
    const Lit current = analyze_stack_.back();
    analyze_stack_.pop_back();
    Clause* reason = reason_[LitVar(current)];
    REVISE_CHECK(reason != nullptr);
    for (size_t k = 1; k < reason->lits.size(); ++k) {
      const Lit q = reason->lits[k];
      const int var = LitVar(q);
      if (seen_[var] || level_[var] == 0) continue;
      if (reason_[var] == nullptr ||
          ((1u << (level_[var] & 31)) & abstract_levels) == 0) {
        // Cannot be resolved away: undo marks and fail.
        for (const Lit m : marked) seen_[LitVar(m)] = 0;
        return false;
      }
      seen_[var] = 1;
      marked.push_back(q);
      analyze_stack_.push_back(q);
    }
  }
  // Keep the marks (they witness redundancy for later literals in this
  // Analyze call); they are cleared with analyze_to_clear_ at the end.
  analyze_to_clear_.insert(analyze_to_clear_.end(), marked.begin(),
                           marked.end());
  return true;
}

void Solver::VarBumpActivity(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[var] >= 0) HeapUpdate(var);
}

void Solver::VarDecayActivity() { var_inc_ /= kVarDecay; }

void Solver::HeapInsert(int var) {
  heap_pos_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  HeapPercolateUp(heap_pos_[var]);
}

void Solver::HeapUpdate(int var) { HeapPercolateUp(heap_pos_[var]); }

int Solver::HeapPop() {
  const int top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    HeapPercolateDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::HeapPercolateUp(int pos) {
  const int var = heap_[pos];
  while (pos > 0) {
    const int parent = (pos - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[pos] = heap_[parent];
    heap_pos_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = var;
  heap_pos_[var] = pos;
}

void Solver::HeapPercolateDown(int pos) {
  const int var = heap_[pos];
  const int size = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[pos] = heap_[child];
    heap_pos_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = var;
  heap_pos_[var] = pos;
}

Lit Solver::PickBranchLit() {
  while (!HeapEmpty()) {
    const int var = heap_[0];
    if (assigns_[var] == LBool::kUndef) {
      HeapPop();
      return MakeLit(var, !polarity_[var]);
    }
    HeapPop();
  }
  return kUndefLit;
}

void Solver::ReduceDb() {
  std::sort(learnts_.begin(), learnts_.end(),
            [](const Clause* a, const Clause* b) {
              return a->activity < b->activity;
            });
  const size_t target = learnts_.size() / 2;
  size_t kept = 0;
  for (size_t i = 0; i < learnts_.size(); ++i) {
    Clause* clause = learnts_[i];
    const bool locked = reason_[LitVar(clause->lits[0])] == clause &&
                        ValueOfLit(clause->lits[0]) == LBool::kTrue;
    if (i < target && clause->lits.size() > 2 && !locked) {
      DetachClause(clause);
      delete clause;
      ++stats_.deleted_clauses;
    } else {
      learnts_[kept++] = clause;
    }
  }
  learnts_.resize(kept);
}

int64_t Solver::Luby(int64_t x) {
  // Finds the subsequence value of the Luby sequence at index x (1-based).
  int64_t size = 1;
  int64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x = x % size;
  }
  return int64_t{1} << seq;
}

Solver::Result Solver::Solve() { return SolveAssuming({}); }

Solver::Result Solver::SolveAssuming(const std::vector<Lit>& assumptions) {
  if (!ok_) return Result::kUnsat;
  obs::Span span("sat.solve");
  const SolverStats before = stats_;
  CancelUntil(0);
  max_learnts_ = std::max<double>(
      static_cast<double>(clauses_.size()) * max_learnts_factor_, 2000.0);
  int64_t restart_count = 0;
  Result result = Result::kUnknown;
  for (;;) {
    const int64_t budget = kRestartBase * Luby(restart_count + 1);
    const int outcome = [&] {
      // Search returns +1 SAT, 0 UNSAT (refutation at level 0), -1
      // restart, -2 interrupted, -3 UNSAT under the assumptions only.
      int64_t conflicts_left = budget;
      for (;;) {
        Clause* conflict = Propagate();
        if (conflict != nullptr) {
          ++stats_.conflicts;
          --conflicts_left;
          if (interrupt_ && stats_.conflicts % 64 == 0 && interrupt_()) {
            return -2;
          }
          if (DecisionLevel() == 0) return 0;
          std::vector<Lit> learnt;
          int backtrack_level = 0;
          Analyze(conflict, &learnt, &backtrack_level);
          CancelUntil(backtrack_level);
          if (learnt.size() == 1) {
            UncheckedEnqueue(learnt[0], nullptr);
          } else {
            Clause* clause = AllocClause(learnt, /*learnt=*/true);
            learnts_.push_back(clause);
            ++stats_.learned_clauses;
            AttachClause(clause);
            UncheckedEnqueue(learnt[0], clause);
          }
          VarDecayActivity();
          if (conflicts_left <= 0) return -1;
          continue;
        }
        if (static_cast<double>(learnts_.size()) >
            max_learnts_ + trail_.size()) {
          ReduceDb();
        }
        // Establish assumptions, one decision level each.
        Lit next = kUndefLit;
        while (DecisionLevel() < static_cast<int>(assumptions.size())) {
          const Lit assumption = assumptions[DecisionLevel()];
          const LBool value = ValueOfLit(assumption);
          if (value == LBool::kTrue) {
            NewDecisionLevel();  // dummy level keeps indices aligned
          } else if (value == LBool::kFalse) {
            return -3;  // assumptions conflict with the formula
          } else {
            next = assumption;
            break;
          }
        }
        if (next == kUndefLit) {
          next = PickBranchLit();
          if (next == kUndefLit) return 1;  // all variables assigned
          ++stats_.decisions;
        }
        NewDecisionLevel();
        UncheckedEnqueue(next, nullptr);
      }
    }();
    if (outcome == 1) {
      model_.assign(NumVars(), false);
      for (int v = 0; v < NumVars(); ++v) {
        model_[v] = assigns_[v] == LBool::kTrue;
      }
      CancelUntil(0);
      result = Result::kSat;
      break;
    }
    if (outcome == 0 || outcome == -3) {
      CancelUntil(0);
      // A refutation at level 0 holds regardless of assumptions: the
      // trail now contains a falsified clause that propagation has
      // already passed, so the solver must never search again.
      if (outcome == 0) ok_ = false;
      result = Result::kUnsat;
      break;
    }
    if (outcome == -2) {
      CancelUntil(0);
      REVISE_OBS_COUNTER("sat.interrupts").Increment();
      result = Result::kUnknown;
      break;
    }
    ++restart_count;
    ++stats_.restarts;
    max_learnts_ *= learnt_growth_;
    CancelUntil(0);
  }
  // Publish this call's deltas to the global registry in one batch so the
  // search loop itself never touches atomics.
  REVISE_OBS_COUNTER("sat.solves").Increment();
  REVISE_OBS_COUNTER("sat.conflicts")
      .Increment(stats_.conflicts - before.conflicts);
  REVISE_OBS_COUNTER("sat.decisions")
      .Increment(stats_.decisions - before.decisions);
  REVISE_OBS_HISTOGRAM("sat.decisions_per_solve")
      .Record(stats_.decisions - before.decisions);
  REVISE_OBS_COUNTER("sat.propagations")
      .Increment(stats_.propagations - before.propagations);
  REVISE_OBS_COUNTER("sat.restarts").Increment(stats_.restarts - before.restarts);
  REVISE_OBS_COUNTER("sat.learned_clauses")
      .Increment(stats_.learned_clauses - before.learned_clauses);
  REVISE_OBS_COUNTER("sat.deleted_clauses")
      .Increment(stats_.deleted_clauses - before.deleted_clauses);
  return result;
}

bool Solver::ModelValue(int var) const {
  if (var < 0 || static_cast<size_t>(var) >= model_.size()) return false;
  return model_[var];
}

}  // namespace revise::sat
