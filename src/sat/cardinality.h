// Cardinality constraints over SAT literals.
//
// Sequential-counter encodings (Sinz 2005) of sum(lits) <= k, >= k, == k.
// These are the SAT-level counterpart of the paper's EXA circuit (Section
// 3.1): polynomial-size counting circuits with auxiliary variables.  They
// power the computation of Dalal's minimum distance k_{T,P}.

#ifndef REVISE_SAT_CARDINALITY_H_
#define REVISE_SAT_CARDINALITY_H_

#include <vector>

#include "sat/cnf.h"
#include "sat/literal.h"

namespace revise::sat {

// Appends clauses to `*cnf` enforcing sum(lits) <= bound.  Fresh auxiliary
// variables are taken from cnf->NewVar().  bound >= lits.size() adds
// nothing; bound == 0 forces all literals false.
void EncodeAtMost(const std::vector<Lit>& lits, size_t bound, Cnf* cnf);

// Appends clauses enforcing sum(lits) >= bound (via <= on negations).
void EncodeAtLeast(const std::vector<Lit>& lits, size_t bound, Cnf* cnf);

// Appends clauses enforcing sum(lits) == bound.
void EncodeExactly(const std::vector<Lit>& lits, size_t bound, Cnf* cnf);

// Builds a unary counter: returns literals out[j] (j in 1..lits.size())
// such that out[j-1] is true iff sum(lits) >= j.  The returned vector is
// 0-indexed: result[j] <=> sum >= j+1.  Appends the defining clauses
// (full equivalence, both directions) to *cnf.
std::vector<Lit> EncodeTotalizer(const std::vector<Lit>& lits, Cnf* cnf);

}  // namespace revise::sat

#endif  // REVISE_SAT_CARDINALITY_H_
