#include "sat/cnf.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace revise::sat {

void Cnf::AddClause(std::vector<Lit> lits) {
  for (Lit lit : lits) {
    REVISE_CHECK_GE(lit, 0);
    EnsureVarCount(LitVar(lit) + 1);
  }
  clauses_.push_back(std::move(lits));
}

void Cnf::Append(const Cnf& other) {
  EnsureVarCount(other.num_vars());
  for (const auto& clause : other.clauses()) {
    clauses_.push_back(clause);
  }
}

std::string Cnf::ToDimacs() const {
  std::ostringstream out;
  out << "p cnf " << num_vars_ << " " << clauses_.size() << "\n";
  for (const auto& clause : clauses_) {
    for (Lit lit : clause) {
      const int v = LitVar(lit) + 1;
      out << (LitSign(lit) ? -v : v) << " ";
    }
    out << "0\n";
  }
  return out.str();
}

StatusOr<Cnf> Cnf::FromDimacs(const std::string& text) {
  std::istringstream in(text);
  std::string token;
  Cnf cnf;
  bool header_seen = false;
  std::vector<Lit> clause;
  while (in >> token) {
    if (token == "c") {
      std::string line;
      std::getline(in, line);
      continue;
    }
    if (token == "p") {
      std::string kind;
      int vars = 0;
      size_t clauses = 0;
      if (!(in >> kind >> vars >> clauses) || kind != "cnf") {
        return InvalidArgumentError("malformed DIMACS header");
      }
      cnf.EnsureVarCount(vars);
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      return InvalidArgumentError("literal before DIMACS header");
    }
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return InvalidArgumentError("bad DIMACS token: " + token);
    }
    if (value == 0) {
      cnf.AddClause(clause);
      clause.clear();
    } else {
      const int var = static_cast<int>(value > 0 ? value : -value) - 1;
      clause.push_back(MakeLit(var, value < 0));
    }
  }
  if (!clause.empty()) {
    return InvalidArgumentError("unterminated clause in DIMACS input");
  }
  return cnf;
}

}  // namespace revise::sat
