#include "sat/cardinality.h"

#include "util/check.h"

namespace revise::sat {

namespace {

// Totalizer merge of two unary counts (Bailleux & Boutonnet 2003), with
// clauses for both directions so the outputs are full equivalences:
// out[j] is true iff at least j+1 inputs are true.
std::vector<Lit> Merge(const std::vector<Lit>& a, const std::vector<Lit>& b,
                       Cnf* cnf) {
  const size_t p = a.size();
  const size_t q = b.size();
  std::vector<Lit> out(p + q);
  for (size_t i = 0; i < p + q; ++i) out[i] = PosLit(cnf->NewVar());
  for (size_t alpha = 0; alpha <= p; ++alpha) {
    for (size_t beta = 0; beta <= q; ++beta) {
      const size_t sigma = alpha + beta;
      // sum >= sigma: a_alpha & b_beta -> r_sigma.
      if (sigma >= 1 && sigma <= p + q) {
        std::vector<Lit> clause;
        if (alpha >= 1) clause.push_back(Negate(a[alpha - 1]));
        if (beta >= 1) clause.push_back(Negate(b[beta - 1]));
        clause.push_back(out[sigma - 1]);
        cnf->AddClause(std::move(clause));
      }
      // sum <= sigma: !a_{alpha+1} & !b_{beta+1} -> !r_{sigma+1}.
      if (sigma + 1 <= p + q) {
        std::vector<Lit> clause;
        if (alpha + 1 <= p) clause.push_back(a[alpha]);
        if (beta + 1 <= q) clause.push_back(b[beta]);
        clause.push_back(Negate(out[sigma]));
        cnf->AddClause(std::move(clause));
      }
    }
  }
  return out;
}

std::vector<Lit> BuildTotalizer(const std::vector<Lit>& lits, size_t lo,
                                size_t hi, Cnf* cnf) {
  REVISE_CHECK_LT(lo, hi);
  if (hi - lo == 1) return {lits[lo]};
  const size_t mid = lo + (hi - lo) / 2;
  std::vector<Lit> left = BuildTotalizer(lits, lo, mid, cnf);
  std::vector<Lit> right = BuildTotalizer(lits, mid, hi, cnf);
  return Merge(left, right, cnf);
}

}  // namespace

std::vector<Lit> EncodeTotalizer(const std::vector<Lit>& lits, Cnf* cnf) {
  if (lits.empty()) return {};
  return BuildTotalizer(lits, 0, lits.size(), cnf);
}

void EncodeAtMost(const std::vector<Lit>& lits, size_t bound, Cnf* cnf) {
  if (bound >= lits.size()) return;
  if (bound == 0) {
    for (Lit lit : lits) cnf->AddUnit(Negate(lit));
    return;
  }
  std::vector<Lit> counts = EncodeTotalizer(lits, cnf);
  cnf->AddUnit(Negate(counts[bound]));  // not (sum >= bound+1)
}

void EncodeAtLeast(const std::vector<Lit>& lits, size_t bound, Cnf* cnf) {
  if (bound == 0) return;
  if (bound > lits.size()) {
    cnf->AddClause({});  // unsatisfiable
    return;
  }
  if (bound == lits.size()) {
    for (Lit lit : lits) cnf->AddUnit(lit);
    return;
  }
  std::vector<Lit> counts = EncodeTotalizer(lits, cnf);
  cnf->AddUnit(counts[bound - 1]);  // sum >= bound
}

void EncodeExactly(const std::vector<Lit>& lits, size_t bound, Cnf* cnf) {
  if (bound > lits.size()) {
    cnf->AddClause({});
    return;
  }
  if (bound == 0) {
    for (Lit lit : lits) cnf->AddUnit(Negate(lit));
    return;
  }
  if (bound == lits.size()) {
    for (Lit lit : lits) cnf->AddUnit(lit);
    return;
  }
  std::vector<Lit> counts = EncodeTotalizer(lits, cnf);
  cnf->AddUnit(counts[bound - 1]);
  cnf->AddUnit(Negate(counts[bound]));
}

}  // namespace revise::sat
