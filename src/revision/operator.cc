#include "revision/operator.h"

#include "logic/evaluate.h"
#include "model/canonical.h"
#include "obs/metrics.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "revision/candidates.h"
#include "revision/formula_based.h"
#include "revision/model_based.h"
#include "solve/services.h"
#include "util/check.h"

namespace revise {

Alphabet RevisionAlphabet(const Theory& t, const Formula& p) {
  std::vector<Var> vars = t.Vars();
  for (const Var v : p.Vars()) vars.push_back(v);
  return Alphabet(std::move(vars));
}

Formula RevisionOperator::ReviseFormula(const Theory& t,
                                        const Formula& p) const {
  return CanonicalDnf(ReviseModels(t, p));
}

bool RevisionOperator::Entails(const Theory& t, const Formula& p,
                               const Formula& q) const {
  // Evaluate q on every model of T * P over V(T) ∪ V(P) ∪ V(q); letters
  // of q outside the revision alphabet are unconstrained, so q must hold
  // for all their values.
  std::vector<Var> vars = t.Vars();
  for (const Var v : p.Vars()) vars.push_back(v);
  const Alphabet revision_alphabet(vars);
  for (const Var v : q.Vars()) vars.push_back(v);
  const Alphabet query_alphabet(vars);

  const ModelSet revised = ReviseModels(t, p, revision_alphabet);
  const size_t extra = query_alphabet.size() - revision_alphabet.size();
  REVISE_CHECK_LE(extra, 20u);
  for (const Interpretation& m : revised) {
    // Extend m over the query alphabet in every possible way.
    const Interpretation base =
        Reinterpret(m, revision_alphabet, query_alphabet);
    // Positions of the extra letters within query_alphabet.
    std::vector<size_t> extra_positions;
    for (size_t i = 0; i < query_alphabet.size(); ++i) {
      if (!revision_alphabet.Contains(query_alphabet.var(i))) {
        extra_positions.push_back(i);
      }
    }
    for (uint64_t bits = 0; bits < (uint64_t{1} << extra_positions.size());
         ++bits) {
      Interpretation extended = base;
      for (size_t j = 0; j < extra_positions.size(); ++j) {
        extended.Set(extra_positions[j], (bits >> j) & 1);
      }
      if (!Evaluate(q, query_alphabet, extended)) return false;
    }
  }
  return true;
}

bool RevisionOperator::IsModel(const Theory& t, const Formula& p,
                               const Interpretation& m,
                               const Alphabet& alphabet) const {
  const ModelSet revised = ReviseModels(t, p, alphabet);
  return revised.Contains(m);
}

ModelSet ModelBasedOperator::ReviseModels(const Theory& t, const Formula& p,
                                          const Alphabet& alphabet) const {
  obs::ProfileScope profile("revise.", name());
  obs::FlightOpScope flight(name());
  REVISE_OBS_COUNTER("revise.operations").Increment();
  const ModelSet mt = EnumerateModels(t.AsFormula(), alphabet);
  return ReviseModelsAuto(id(), mt, p, alphabet);
}

ModelSet WinslettOperator::ReviseModelSets(const ModelSet& mt,
                                           const ModelSet& mp) const {
  return WinslettModels(mt, mp);
}

ModelSet BorgidaOperator::ReviseModelSets(const ModelSet& mt,
                                          const ModelSet& mp) const {
  return BorgidaModels(mt, mp);
}

ModelSet ForbusOperator::ReviseModelSets(const ModelSet& mt,
                                         const ModelSet& mp) const {
  return ForbusModels(mt, mp);
}

ModelSet SatohOperator::ReviseModelSets(const ModelSet& mt,
                                        const ModelSet& mp) const {
  return SatohModels(mt, mp);
}

ModelSet DalalOperator::ReviseModelSets(const ModelSet& mt,
                                        const ModelSet& mp) const {
  return DalalModels(mt, mp);
}

ModelSet WeberOperator::ReviseModelSets(const ModelSet& mt,
                                        const ModelSet& mp) const {
  return WeberModels(mt, mp);
}

namespace {

// Formula-based operators funnel their result cardinalities into the
// same distribution the model-based kernels feed (model_based.cc).
ModelSet RecordRevisionResult(ModelSet result) {
  REVISE_OBS_HISTOGRAM("revise.result_models")
      .Record(static_cast<uint64_t>(result.size()));
  return result;
}

}  // namespace

ModelSet GfuvOperator::ReviseModels(const Theory& t, const Formula& p,
                                    const Alphabet& alphabet) const {
  obs::ProfileScope profile("revise.", name());
  obs::FlightOpScope flight(name());
  REVISE_OBS_COUNTER("revise.operations").Increment();
  return RecordRevisionResult(EnumerateModels(ReviseFormula(t, p), alphabet));
}

Formula GfuvOperator::ReviseFormula(const Theory& t,
                                    const Formula& p) const {
  return GfuvFormula(t, p);
}

ModelSet WidtioOperator::ReviseModels(const Theory& t, const Formula& p,
                                      const Alphabet& alphabet) const {
  obs::ProfileScope profile("revise.", name());
  obs::FlightOpScope flight(name());
  REVISE_OBS_COUNTER("revise.operations").Increment();
  return RecordRevisionResult(EnumerateModels(ReviseFormula(t, p), alphabet));
}

Formula WidtioOperator::ReviseFormula(const Theory& t,
                                      const Formula& p) const {
  return WidtioTheory(t, p).AsFormula();
}

std::vector<Theory> NebelOperator::LinearClasses(const Theory& t) {
  std::vector<Theory> classes;
  classes.reserve(t.size());
  for (const Formula& f : t) {
    classes.push_back(Theory({f}));
  }
  return classes;
}

ModelSet NebelOperator::ReviseModels(const Theory& t, const Formula& p,
                                     const Alphabet& alphabet) const {
  return ReviseModels(LinearClasses(t), p, alphabet);
}

Formula NebelOperator::ReviseFormula(const Theory& t,
                                     const Formula& p) const {
  return ReviseFormula(LinearClasses(t), p);
}

ModelSet NebelOperator::ReviseModels(const std::vector<Theory>& classes,
                                     const Formula& p,
                                     const Alphabet& alphabet) const {
  obs::ProfileScope profile("revise.", name());
  obs::FlightOpScope flight(name());
  REVISE_OBS_COUNTER("revise.operations").Increment();
  return RecordRevisionResult(
      EnumerateModels(NebelFormula(classes, p), alphabet));
}

Formula NebelOperator::ReviseFormula(const std::vector<Theory>& classes,
                                     const Formula& p) const {
  return NebelFormula(classes, p);
}

namespace {

struct Registry {
  GfuvOperator gfuv;
  NebelOperator nebel;
  WidtioOperator widtio;
  WinslettOperator winslett;
  BorgidaOperator borgida;
  ForbusOperator forbus;
  SatohOperator satoh;
  DalalOperator dalal;
  WeberOperator weber;
};

const Registry& GlobalRegistry() {
  static const Registry& registry = *new Registry;
  return registry;
}

}  // namespace

const std::vector<const RevisionOperator*>& AllOperators() {
  static const std::vector<const RevisionOperator*>& all =
      *new std::vector<const RevisionOperator*>{
          &GlobalRegistry().gfuv,     &GlobalRegistry().nebel,
          &GlobalRegistry().widtio,   &GlobalRegistry().winslett,
          &GlobalRegistry().borgida,  &GlobalRegistry().forbus,
          &GlobalRegistry().satoh,    &GlobalRegistry().dalal,
          &GlobalRegistry().weber};
  return all;
}

const std::vector<const ModelBasedOperator*>& AllModelBasedOperators() {
  static const std::vector<const ModelBasedOperator*>& all =
      *new std::vector<const ModelBasedOperator*>{
          &GlobalRegistry().winslett, &GlobalRegistry().borgida,
          &GlobalRegistry().forbus,   &GlobalRegistry().satoh,
          &GlobalRegistry().dalal,    &GlobalRegistry().weber};
  return all;
}

const RevisionOperator* OperatorById(OperatorId id) {
  for (const RevisionOperator* op : AllOperators()) {
    if (op->id() == id) return op;
  }
  REVISE_CHECK(false);
  return nullptr;
}

}  // namespace revise
