// Candidate-based evaluation of the model-based operators.
//
// Computes the same model sets as revision/model_based.h without ever
// enumerating M(P) over the full alphabet.  Justified by Proposition 2.1
// (in the per-selected-model form validated in revision_test.cc): every
// selected model differs from its witness model of T only on V(P), and
// all the distance notions involved (mu, delta, k, Omega) only ever hold
// minimal differences within V(P).  It therefore suffices to consider,
// for each M |= T, the 2^|V(P)| candidates M delta S (S ⊆ V(P)) that
// satisfy P.
//
// Cost: O(|M(T)| * 2^|V(P)|) instead of O(|M(T)| * |M(P)|) where |M(P)|
// is exponential in the FULL alphabet — this is what makes the
// bounded-|P| database workloads of Section 4 practical on large T.

#ifndef REVISE_REVISION_CANDIDATES_H_
#define REVISE_REVISION_CANDIDATES_H_

#include "logic/formula.h"
#include "model/model_set.h"
#include "revision/operator.h"

namespace revise {

// `id` must be one of the six model-based operators; `mt` must be over an
// alphabet containing V(p).  Requires |V(p)| <= 20.  Degenerate cases
// follow the operator conventions (mt empty is NOT handled here — callers
// fall back to M(P); see ReviseModelsAuto).
ModelSet ReviseSetByFormula(OperatorId id, const ModelSet& mt,
                            const Formula& p);

// Chooses automatically between the candidate path (small V(p)) and the
// full-enumeration reference path, including the degenerate conventions.
ModelSet ReviseModelsAuto(OperatorId id, const ModelSet& mt,
                          const Formula& p, const Alphabet& alphabet);

}  // namespace revise

#endif  // REVISE_REVISION_CANDIDATES_H_
