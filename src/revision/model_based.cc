#include "revision/model_based.h"

#include <algorithm>

#include "util/check.h"

namespace revise {

namespace {

// Shared degenerate-case handling.  Returns true if the result is already
// decided and stored in *result.
bool HandleDegenerate(const ModelSet& mt, const ModelSet& mp,
                      ModelSet* result) {
  if (mp.empty()) {
    *result = ModelSet(mp.alphabet(), {});
    return true;
  }
  if (mt.empty()) {
    *result = mp;
    return true;
  }
  return false;
}

}  // namespace

std::vector<Interpretation> PointwiseMinimalDiffs(const Interpretation& m,
                                                  const ModelSet& mp) {
  std::vector<Interpretation> diffs;
  diffs.reserve(mp.size());
  for (const Interpretation& n : mp) {
    diffs.push_back(m.SymmetricDifference(n));
  }
  return MinimalUnderInclusion(std::move(diffs));
}

std::optional<size_t> PointwiseMinDistance(const Interpretation& m,
                                           const ModelSet& mp) {
  if (mp.empty()) return std::nullopt;
  size_t best = m.size() + 1;
  for (const Interpretation& n : mp) {
    best = std::min(best, m.HammingDistance(n));
  }
  return best;
}

std::vector<Interpretation> GlobalMinimalDiffsOfSets(const ModelSet& mt,
                                                     const ModelSet& mp) {
  std::vector<Interpretation> diffs;
  for (const Interpretation& m : mt) {
    for (const Interpretation& n : mp) {
      diffs.push_back(m.SymmetricDifference(n));
    }
  }
  return MinimalUnderInclusion(std::move(diffs));
}

std::optional<size_t> GlobalMinDistanceOfSets(const ModelSet& mt,
                                              const ModelSet& mp) {
  if (mt.empty() || mp.empty()) return std::nullopt;
  size_t best = mt.alphabet().size() + 1;
  for (const Interpretation& m : mt) {
    for (const Interpretation& n : mp) {
      best = std::min(best, m.HammingDistance(n));
    }
  }
  return best;
}

Interpretation WeberOmegaOfSets(const ModelSet& mt, const ModelSet& mp) {
  Interpretation omega(mt.alphabet().size());
  for (const Interpretation& diff : GlobalMinimalDiffsOfSets(mt, mp)) {
    omega = omega.Union(diff);
  }
  return omega;
}

ModelSet WinslettModels(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  std::vector<Interpretation> selected;
  for (const Interpretation& m : mt) {
    const std::vector<Interpretation> mu = PointwiseMinimalDiffs(m, mp);
    for (const Interpretation& n : mp) {
      const Interpretation diff = m.SymmetricDifference(n);
      if (std::find(mu.begin(), mu.end(), diff) != mu.end()) {
        selected.push_back(n);
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet BorgidaModels(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  const ModelSet both = ModelSet::Intersection(mt, mp);
  if (!both.empty()) return both;
  return WinslettModels(mt, mp);
}

ModelSet ForbusModels(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  std::vector<Interpretation> selected;
  for (const Interpretation& m : mt) {
    const std::optional<size_t> k = PointwiseMinDistance(m, mp);
    for (const Interpretation& n : mp) {
      if (m.HammingDistance(n) == *k) selected.push_back(n);
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet SatohModels(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  const std::vector<Interpretation> delta =
      GlobalMinimalDiffsOfSets(mt, mp);
  std::vector<Interpretation> selected;
  for (const Interpretation& n : mp) {
    for (const Interpretation& m : mt) {
      const Interpretation diff = n.SymmetricDifference(m);
      if (std::find(delta.begin(), delta.end(), diff) != delta.end()) {
        selected.push_back(n);
        break;
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet DalalModels(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  const size_t k = *GlobalMinDistanceOfSets(mt, mp);
  std::vector<Interpretation> selected;
  for (const Interpretation& n : mp) {
    for (const Interpretation& m : mt) {
      if (n.HammingDistance(m) == k) {
        selected.push_back(n);
        break;
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet WeberModels(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  const Interpretation omega = WeberOmegaOfSets(mt, mp);
  std::vector<Interpretation> selected;
  for (const Interpretation& n : mp) {
    for (const Interpretation& m : mt) {
      if (n.SymmetricDifference(m).IsSubsetOf(omega)) {
        selected.push_back(n);
        break;
      }
    }
  }
  return ModelSet(mp.alphabet(), std::move(selected));
}

}  // namespace revise
