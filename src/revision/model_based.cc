#include "revision/model_based.h"

#include <algorithm>
#include <atomic>

#include "kernel/kernels.h"
#include "kernel/packed_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/parallel.h"

namespace revise {

namespace {

// Shard grains: below these sizes the kernels run single-shard (inline).
// Selection loops do O(|other set|) work per element; the flattened
// pairwise sweeps do one popcount/xor per pair.
constexpr size_t kSelectionGrain = 8;
constexpr size_t kPairGrain = 2048;

// Shared degenerate-case handling.  Returns true if the result is already
// decided and stored in *result.
bool HandleDegenerate(const ModelSet& mt, const ModelSet& mp,
                      ModelSet* result) {
  if (mp.empty()) {
    *result = ModelSet(mp.alphabet(), {});
    return true;
  }
  if (mt.empty()) {
    *result = mp;
    return true;
  }
  return false;
}

// MinimalUnderInclusion returns the canonical (lexicographically sorted)
// order, so membership of a difference set is a binary search.
bool ContainsSorted(const std::vector<Interpretation>& sorted,
                    const Interpretation& m) {
  return std::binary_search(sorted.begin(), sorted.end(), m);
}

// Concatenates per-shard results in shard order (deterministic merge).
std::vector<Interpretation> ConcatShards(
    std::vector<std::vector<Interpretation>> shards) {
  std::vector<Interpretation> merged;
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  merged.reserve(total);
  for (auto& shard : shards) {
    merged.insert(merged.end(), std::make_move_iterator(shard.begin()),
                  std::make_move_iterator(shard.end()));
  }
  return merged;
}

// Parallel selection over M(P): keeps every n in mp with accept(n).  The
// per-shard hit lists are concatenated in shard order, so the output order
// (and after ModelSet canonicalization, the result) is independent of the
// thread count.
template <typename Accept>
std::vector<Interpretation> ParallelSelect(const ModelSet& mp,
                                           const Accept& accept) {
  return ConcatShards(ParallelMapRanges<std::vector<Interpretation>>(
      mp.size(), kSelectionGrain, [&](size_t begin, size_t end) {
        std::vector<Interpretation> selected;
        for (size_t i = begin; i < end; ++i) {
          if (accept(mp[i])) selected.push_back(mp[i]);
        }
        return selected;
      }));
}

// Re-lays a model set as a packed row matrix for the batch kernels.
kernel::PackedModelMatrix Pack(const ModelSet& s) {
  return kernel::PackedModelMatrix::FromModels(s.alphabet().size(),
                                               s.models());
}

// Materializes a kernel index list against the original model set (the
// packed rows are in the set's canonical order, so indices line up).
std::vector<Interpretation> GatherModels(const ModelSet& s,
                                         const std::vector<uint32_t>& idx) {
  std::vector<Interpretation> out;
  out.reserve(idx.size());
  for (const uint32_t j : idx) out.push_back(s[j]);
  return out;
}

}  // namespace

std::vector<Interpretation> PointwiseMinimalDiffs(const Interpretation& m,
                                                  const ModelSet& mp) {
  std::vector<Interpretation> diffs;
  diffs.reserve(mp.size());
  for (const Interpretation& n : mp) {
    diffs.push_back(m.SymmetricDifference(n));
  }
  return MinimalUnderInclusion(std::move(diffs));
}

std::optional<size_t> PointwiseMinDistance(const Interpretation& m,
                                           const ModelSet& mp) {
  if (mp.empty()) return std::nullopt;
  size_t best = m.size() + 1;
  for (const Interpretation& n : mp) {
    if (best == 0) break;
    best = std::min(best, m.HammingDistanceCapped(n, best - 1));
  }
  return best;
}

std::vector<Interpretation> GlobalMinimalDiffsOfSets(const ModelSet& mt,
                                                     const ModelSet& mp) {
  if (mt.empty() || mp.empty()) return {};
  if (kernel::PackedKernelsEnabled()) {
    return kernel::MinimalDiffsOfSets(Pack(mt), Pack(mp));
  }
  // Scalar reference: shard the flattened mt x mp pair space (robust when
  // either side is tiny, e.g. a complete theory with one model against
  // 2^m update models).  Each shard prunes locally, which keeps the final
  // merge small; pruning shard-local minima never loses a global minimum.
  const size_t pairs = mt.size() * mp.size();
  std::vector<std::vector<Interpretation>> shards =
      ParallelMapRanges<std::vector<Interpretation>>(
          pairs, kPairGrain, [&](size_t begin, size_t end) {
            std::vector<Interpretation> diffs;
            diffs.reserve(end - begin);
            for (size_t p = begin; p < end; ++p) {
              diffs.push_back(mt[p / mp.size()].SymmetricDifference(
                  mp[p % mp.size()]));
            }
            return MinimalUnderInclusion(std::move(diffs));
          });
  if (shards.size() == 1) return std::move(shards[0]);
  return MinimalUnderInclusion(ConcatShards(std::move(shards)));
}

std::optional<size_t> GlobalMinDistanceOfSets(const ModelSet& mt,
                                              const ModelSet& mp) {
  if (mt.empty() || mp.empty()) return std::nullopt;
  const size_t cap = mt.alphabet().size() + 1;
  if (kernel::PackedKernelsEnabled()) {
    return kernel::MinDistanceOfSets(Pack(mt), Pack(mp), cap);
  }
  // Scalar reference.  The best-so-far bound is a relaxed atomic shared
  // across shards: a shard that finds a small distance shrinks every other
  // shard's cap.  The min over a fixed pair set does not depend on who
  // finds it first, so the result stays bit-identical at any thread count
  // — the bound only prunes work.
  const size_t pairs = mt.size() * mp.size();
  std::atomic<size_t> best{cap};
  ParallelMapRanges<size_t>(
      pairs, kPairGrain, [&](size_t begin, size_t end) {
        for (size_t p = begin; p < end; ++p) {
          const size_t bound = best.load(std::memory_order_relaxed);
          if (bound == 0) break;
          const size_t d = mt[p / mp.size()].HammingDistanceCapped(
              mp[p % mp.size()], bound - 1);
          if (d >= bound) continue;
          size_t current = best.load(std::memory_order_relaxed);
          while (d < current &&
                 !best.compare_exchange_weak(current, d,
                                             std::memory_order_relaxed)) {
          }
        }
        return size_t{0};
      });
  return best.load(std::memory_order_relaxed);
}

Interpretation WeberOmegaOfSets(const ModelSet& mt, const ModelSet& mp) {
  Interpretation omega(mt.alphabet().size());
  for (const Interpretation& diff : GlobalMinimalDiffsOfSets(mt, mp)) {
    omega = omega.Union(diff);
  }
  return omega;
}

namespace {

// The revised set's cardinality is the paper's headline quantity — feed
// every kernel result into one distribution.
ModelSet RecordKernelResult(ModelSet result) {
  REVISE_OBS_HISTOGRAM("revise.result_models")
      .Record(static_cast<uint64_t>(result.size()));
  return result;
}

ModelSet WinslettModelsImpl(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  if (kernel::PackedKernelsEnabled()) {
    return ModelSet(mp.alphabet(),
                    GatherModels(mp, kernel::SelectPointwiseMinimalDiffs(
                                         Pack(mt), Pack(mp))));
  }
  // Scalar reference: partition M(T) across workers; each shard selects
  // independently and the shard hit lists are concatenated in shard order
  // before the canonicalizing ModelSet constructor.
  std::vector<Interpretation> selected =
      ConcatShards(ParallelMapRanges<std::vector<Interpretation>>(
          mt.size(), kSelectionGrain, [&](size_t begin, size_t end) {
            std::vector<Interpretation> shard;
            for (size_t i = begin; i < end; ++i) {
              const Interpretation& m = mt[i];
              const std::vector<Interpretation> mu =
                  PointwiseMinimalDiffs(m, mp);
              for (const Interpretation& n : mp) {
                if (ContainsSorted(mu, m.SymmetricDifference(n))) {
                  shard.push_back(n);
                }
              }
            }
            return shard;
          }));
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet BorgidaModelsImpl(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  const ModelSet both = ModelSet::Intersection(mt, mp);
  if (!both.empty()) return both;
  return WinslettModelsImpl(mt, mp);
}

ModelSet ForbusModelsImpl(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  if (kernel::PackedKernelsEnabled()) {
    return ModelSet(mp.alphabet(),
                    GatherModels(mp, kernel::SelectPointwiseMinDistance(
                                         Pack(mt), Pack(mp))));
  }
  std::vector<Interpretation> selected =
      ConcatShards(ParallelMapRanges<std::vector<Interpretation>>(
          mt.size(), kSelectionGrain, [&](size_t begin, size_t end) {
            std::vector<Interpretation> shard;
            for (size_t i = begin; i < end; ++i) {
              const Interpretation& m = mt[i];
              const size_t k = *PointwiseMinDistance(m, mp);
              for (const Interpretation& n : mp) {
                if (m.HammingDistanceCapped(n, k) == k) shard.push_back(n);
              }
            }
            return shard;
          }));
  return ModelSet(mp.alphabet(), std::move(selected));
}

ModelSet SatohModelsImpl(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  if (kernel::PackedKernelsEnabled()) {
    const kernel::PackedModelMatrix pt = Pack(mt);
    const kernel::PackedModelMatrix pp = Pack(mp);
    const kernel::PackedModelMatrix delta =
        kernel::PackedModelMatrix::FromModels(
            mp.alphabet().size(), kernel::MinimalDiffsOfSets(pt, pp));
    return ModelSet(mp.alphabet(),
                    GatherModels(
                        mp, kernel::SelectWithDiffInSorted(pp, pt, delta)));
  }
  const std::vector<Interpretation> delta =
      GlobalMinimalDiffsOfSets(mt, mp);
  return ModelSet(mp.alphabet(),
                  ParallelSelect(mp, [&](const Interpretation& n) {
                    for (const Interpretation& m : mt) {
                      if (ContainsSorted(delta, n.SymmetricDifference(m))) {
                        return true;
                      }
                    }
                    return false;
                  }));
}

ModelSet DalalModelsImpl(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  if (kernel::PackedKernelsEnabled()) {
    const kernel::PackedModelMatrix pt = Pack(mt);
    const kernel::PackedModelMatrix pp = Pack(mp);
    const size_t k =
        kernel::MinDistanceOfSets(pt, pp, mt.alphabet().size() + 1);
    return ModelSet(mp.alphabet(),
                    GatherModels(mp, kernel::SelectWithinDistance(pp, pt, k)));
  }
  const size_t k = *GlobalMinDistanceOfSets(mt, mp);
  return ModelSet(mp.alphabet(),
                  ParallelSelect(mp, [&](const Interpretation& n) {
                    for (const Interpretation& m : mt) {
                      if (n.HammingDistanceCapped(m, k) == k) return true;
                    }
                    return false;
                  }));
}

ModelSet WeberModelsImpl(const ModelSet& mt, const ModelSet& mp) {
  REVISE_CHECK(mt.alphabet() == mp.alphabet());
  ModelSet degenerate;
  if (HandleDegenerate(mt, mp, &degenerate)) return degenerate;
  if (kernel::PackedKernelsEnabled()) {
    const kernel::PackedModelMatrix pt = Pack(mt);
    const kernel::PackedModelMatrix pp = Pack(mp);
    Interpretation omega(mt.alphabet().size());
    for (const Interpretation& diff : kernel::MinimalDiffsOfSets(pt, pp)) {
      omega = omega.Union(diff);
    }
    return ModelSet(mp.alphabet(),
                    GatherModels(mp, kernel::SelectWithinMask(pp, pt, omega)));
  }
  const Interpretation omega = WeberOmegaOfSets(mt, mp);
  return ModelSet(mp.alphabet(),
                  ParallelSelect(mp, [&](const Interpretation& n) {
                    for (const Interpretation& m : mt) {
                      if (!n.DiffersOutside(m, omega)) return true;
                    }
                    return false;
                  }));
}

}  // namespace

// Public kernel entry points: a timed span per call (whose duration
// feeds the same-named histogram when tracing is active) around the
// untimed implementations above.

ModelSet WinslettModels(const ModelSet& mt, const ModelSet& mp) {
  obs::ProfileScope profile("revise.kernel.Winslett");
  return RecordKernelResult(WinslettModelsImpl(mt, mp));
}

ModelSet BorgidaModels(const ModelSet& mt, const ModelSet& mp) {
  obs::ProfileScope profile("revise.kernel.Borgida");
  return RecordKernelResult(BorgidaModelsImpl(mt, mp));
}

ModelSet ForbusModels(const ModelSet& mt, const ModelSet& mp) {
  obs::ProfileScope profile("revise.kernel.Forbus");
  return RecordKernelResult(ForbusModelsImpl(mt, mp));
}

ModelSet SatohModels(const ModelSet& mt, const ModelSet& mp) {
  obs::ProfileScope profile("revise.kernel.Satoh");
  return RecordKernelResult(SatohModelsImpl(mt, mp));
}

ModelSet DalalModels(const ModelSet& mt, const ModelSet& mp) {
  obs::ProfileScope profile("revise.kernel.Dalal");
  return RecordKernelResult(DalalModelsImpl(mt, mp));
}

ModelSet WeberModels(const ModelSet& mt, const ModelSet& mp) {
  obs::ProfileScope profile("revise.kernel.Weber");
  return RecordKernelResult(WeberModelsImpl(mt, mp));
}

}  // namespace revise
