#include "revision/explain.h"

#include <cstdio>
#include <utility>

#include "util/check.h"

namespace revise {

Explanation Explain(const RevisionOperator& op, const Theory& t,
                    const Formula& p) {
  return Explain(op, t, p, RevisionAlphabet(t, p));
}

Explanation Explain(const RevisionOperator& op, const Theory& t,
                    const Formula& p, const Alphabet& alphabet) {
  const bool was_profiling = obs::ProfilingEnabled();
  // Discard trees completed before the call so the drain below returns
  // exactly this revision's forest.
  obs::TakeProfiles();
  obs::SetProfilingEnabled(true);
  ModelSet result = [&] {
    obs::ProfileScope root("explain.", op.name());
    return op.ReviseModels(t, p, alphabet);
  }();
  obs::SetProfilingEnabled(was_profiling);
  std::vector<std::unique_ptr<obs::ProfileNode>> forest =
      obs::TakeProfiles();
  // The root scope closed last, so it is the final completed tree.
  REVISE_CHECK(!forest.empty());
  Explanation explanation{std::move(result), std::move(forest.back())};
  return explanation;
}

std::string RenderExplanation(const Explanation& explanation) {
  char header[64];
  std::snprintf(header, sizeof(header), "%zu model(s)\n",
                explanation.result.size());
  return header + obs::RenderProfileTree(*explanation.profile);
}

}  // namespace revise
