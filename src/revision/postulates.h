// Katsuno-Mendelzon postulate checking.
//
// The paper classifies its operators as belief revision (AGM/KM R1-R6)
// versus knowledge update (KM U1-U8); this header turns that backdrop
// into a runnable classifier: given an operator and a randomized sweep,
// report which postulates hold and produce concrete counterexamples for
// those that do not.  Downstream users adding their own operator get an
// instant semantic profile.

#ifndef REVISE_REVISION_POSTULATES_H_
#define REVISE_REVISION_POSTULATES_H_

#include <optional>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "revision/operator.h"
#include "util/random.h"

namespace revise {

enum class KmPostulate {
  kR1Success,        // T * P |= P
  kR2Vacuity,        // T & P consistent  =>  T * P == T & P
  kR3Consistency,    // P consistent  =>  T * P consistent
  kR4Syntax,         // semantic irrelevance of syntax
  kR5Conjunction,    // (T * P) & Q |= T * (P & Q)
  kR6Conjunction,    // (T*P) & Q consistent => T*(P&Q) |= (T*P) & Q
  kU2UpdateVacuity,  // T |= P  =>  T * P == T
  kU8Disjunction,    // (T1 | T2) * P == (T1 * P) | (T2 * P)
};

const char* KmPostulateName(KmPostulate postulate);

// A concrete failing instance.
struct PostulateViolation {
  KmPostulate postulate;
  Formula t;       // or T1 for U8
  Formula t2;      // U8 only
  Formula p;
  Formula q;       // R5/R6 only
  std::string description;
};

struct PostulateReport {
  // Parallel arrays: postulate, instances checked, violations found, and
  // the first violation witness (if any).
  std::vector<KmPostulate> postulates;
  std::vector<int> checked;
  std::vector<int> violated;
  std::vector<std::optional<PostulateViolation>> witnesses;

  bool Satisfies(KmPostulate postulate) const;
  std::string ToString(const Vocabulary& vocabulary) const;
};

struct PostulateSweepOptions {
  int num_vars = 4;
  int trials = 40;
  uint64_t seed = 1;
};

// Randomized sweep of all checkable postulates for a model-based
// operator.  Deterministic for a fixed seed.
PostulateReport CheckKmPostulates(const ModelBasedOperator& op,
                                  const PostulateSweepOptions& options,
                                  Vocabulary* vocabulary);

}  // namespace revise

#endif  // REVISE_REVISION_POSTULATES_H_
