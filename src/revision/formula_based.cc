#include "revision/formula_based.h"

#include "solve/sat_context.h"
#include "util/check.h"

namespace revise {

namespace {

using sat::Lit;
using sat::Negate;

uint64_t MaskOf(const std::vector<bool>& bits) {
  uint64_t mask = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) mask |= uint64_t{1} << i;
  }
  return mask;
}

}  // namespace

std::vector<uint64_t> MaximalConsistentSubsets(const Theory& t,
                                               const Formula& p,
                                               size_t limit) {
  REVISE_CHECK_LE(t.size(), 63u);
  SatContext context;
  context.Assert(p);
  std::vector<Lit> selectors(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    selectors[i] = context.FreshLit();
    // s_i -> f_i.
    sat::Solver::LatchConflict(context.solver().AddBinary(
        Negate(selectors[i]), context.Encode(t[i])));
  }
  std::vector<uint64_t> worlds;
  while (context.Solve()) {
    std::vector<bool> current(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      current[i] = context.ModelValueOfLit(selectors[i]);
    }
    // Grow to an inclusion-maximal selector set.
    for (;;) {
      std::vector<Lit> assumptions;
      std::vector<Lit> outside;
      for (size_t i = 0; i < t.size(); ++i) {
        if (current[i]) {
          assumptions.push_back(selectors[i]);
        } else {
          outside.push_back(selectors[i]);
        }
      }
      if (outside.empty()) break;  // already the full theory
      const Lit activation = context.FreshLit();
      std::vector<Lit> clause = {Negate(activation)};
      clause.insert(clause.end(), outside.begin(), outside.end());
      sat::Solver::LatchConflict(
          context.solver().AddClause(std::move(clause)));
      assumptions.push_back(activation);
      const bool grew = context.Solve(assumptions);
      sat::Solver::LatchConflict(
          context.solver().AddUnit(Negate(activation)));
      if (!grew) break;
      for (size_t i = 0; i < t.size(); ++i) {
        current[i] = context.ModelValueOfLit(selectors[i]);
      }
    }
    worlds.push_back(MaskOf(current));
    if (limit != 0 && worlds.size() >= limit) break;
    // Block this maximal set and all of its subsets: require a selector
    // outside it.
    std::vector<Lit> blocking;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!current[i]) blocking.push_back(selectors[i]);
    }
    if (blocking.empty()) break;  // the full theory is consistent with p
    if (!context.solver().AddClause(std::move(blocking))) break;
  }
  return worlds;
}

Formula GfuvFormula(const Theory& t, const Formula& p) {
  const std::vector<uint64_t> worlds = MaximalConsistentSubsets(t, p);
  std::vector<Formula> disjuncts;
  disjuncts.reserve(worlds.size());
  for (const uint64_t mask : worlds) {
    disjuncts.push_back(t.Subset(mask).AsFormula());
  }
  return Formula::And(DisjoinAll(disjuncts), p);
}

Theory WidtioTheory(const Theory& t, const Formula& p) {
  const std::vector<uint64_t> worlds = MaximalConsistentSubsets(t, p);
  Theory result;
  if (!worlds.empty()) {
    uint64_t intersection = worlds[0];
    for (const uint64_t mask : worlds) intersection &= mask;
    result = t.Subset(intersection);
  }
  result.Add(p);
  return result;
}

Theory ConcatenateClasses(const std::vector<Theory>& classes) {
  Theory flat;
  for (const Theory& cls : classes) {
    for (const Formula& f : cls) flat.Add(f);
  }
  return flat;
}

namespace {

void PrioritizedRecurse(const std::vector<Theory>& classes, size_t level,
                        size_t offset, uint64_t fixed_mask,
                        const Formula& context_formula,
                        std::vector<uint64_t>* out) {
  if (level == classes.size()) {
    out->push_back(fixed_mask);
    return;
  }
  const Theory& cls = classes[level];
  const std::vector<uint64_t> locals =
      MaximalConsistentSubsets(cls, context_formula);
  for (const uint64_t local : locals) {
    const Formula extended =
        Formula::And(context_formula, cls.Subset(local).AsFormula());
    PrioritizedRecurse(classes, level + 1, offset + cls.size(),
                       fixed_mask | (local << offset), extended, out);
  }
}

}  // namespace

std::vector<uint64_t> PrioritizedMaximalSubsets(
    const std::vector<Theory>& classes, const Formula& p) {
  size_t total = 0;
  for (const Theory& cls : classes) total += cls.size();
  REVISE_CHECK_LE(total, 63u);
  std::vector<uint64_t> out;
  PrioritizedRecurse(classes, 0, 0, 0, p, &out);
  return out;
}

Formula NebelFormula(const std::vector<Theory>& classes, const Formula& p) {
  const Theory flat = ConcatenateClasses(classes);
  const std::vector<uint64_t> worlds =
      PrioritizedMaximalSubsets(classes, p);
  std::vector<Formula> disjuncts;
  disjuncts.reserve(worlds.size());
  for (const uint64_t mask : worlds) {
    disjuncts.push_back(flat.Subset(mask).AsFormula());
  }
  return Formula::And(DisjoinAll(disjuncts), p);
}

}  // namespace revise
