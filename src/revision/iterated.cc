#include "revision/iterated.h"

#include "model/canonical.h"
#include "revision/candidates.h"
#include "revision/formula_based.h"
#include "solve/services.h"

namespace revise {

Alphabet IteratedAlphabet(const Theory& t,
                          const std::vector<Formula>& updates) {
  std::vector<Var> vars = t.Vars();
  for (const Formula& p : updates) {
    for (const Var v : p.Vars()) vars.push_back(v);
  }
  return Alphabet(std::move(vars));
}

ModelSet IteratedReviseModels(const RevisionOperator& op, const Theory& t,
                              const std::vector<Formula>& updates,
                              const Alphabet& alphabet) {
  if (dynamic_cast<const ModelBasedOperator*>(&op) != nullptr) {
    ModelSet current = EnumerateModels(t.AsFormula(), alphabet);
    for (const Formula& p : updates) {
      current = ReviseModelsAuto(op.id(), current, p, alphabet);
    }
    return current;
  }
  if (op.id() == OperatorId::kWidtio) {
    // WIDTIO's result is itself a theory; iterating must preserve that
    // structure (revising the conjunction instead would be a different,
    // much more drastic operator).
    Theory current = t;
    for (const Formula& p : updates) {
      current = WidtioTheory(current, p);
    }
    return EnumerateModels(current.AsFormula(), alphabet);
  }
  // Other formula-based operators: re-wrap each intermediate explicit
  // formula as a singleton theory (the standard convention).
  Theory current = t;
  for (const Formula& p : updates) {
    current = Theory({op.ReviseFormula(current, p)});
  }
  return EnumerateModels(current.AsFormula(), alphabet);
}

std::vector<Formula> IteratedReviseFormulas(
    const RevisionOperator& op, const Theory& t,
    const std::vector<Formula>& updates) {
  std::vector<Formula> steps;
  steps.reserve(updates.size());
  if (dynamic_cast<const ModelBasedOperator*>(&op) != nullptr) {
    const Alphabet alphabet = IteratedAlphabet(t, updates);
    ModelSet current = EnumerateModels(t.AsFormula(), alphabet);
    for (const Formula& p : updates) {
      current = ReviseModelsAuto(op.id(), current, p, alphabet);
      steps.push_back(CanonicalDnf(current));
    }
    return steps;
  }
  if (op.id() == OperatorId::kWidtio) {
    Theory current = t;
    for (const Formula& p : updates) {
      current = WidtioTheory(current, p);
      steps.push_back(current.AsFormula());
    }
    return steps;
  }
  Theory current = t;
  for (const Formula& p : updates) {
    const Formula revised = op.ReviseFormula(current, p);
    steps.push_back(revised);
    current = Theory({revised});
  }
  return steps;
}

}  // namespace revise
