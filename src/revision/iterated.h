// Iterated belief revision (Section 2.2.3): T * P^1 * ... * P^m with a
// left-associative operator.
//
// Two computational strategies from the paper:
//   * incorporate-eagerly: fold each revision into an explicit
//     representation one by one (sizes can explode; Tables 1-2);
//   * delayed incorporation: store T and the whole sequence P^1..P^m and
//     compute on demand (the strategy the paper recommends in Section 8).
// Both produce the same model sets; the benches compare representation
// sizes along the way.

#ifndef REVISE_REVISION_ITERATED_H_
#define REVISE_REVISION_ITERATED_H_

#include <vector>

#include "revision/operator.h"

namespace revise {

// Models of T * P^1 * ... * P^m over `alphabet` (must contain all letters
// involved).  Model-based operators iterate on model sets; formula-based
// operators re-wrap each intermediate result as a singleton theory, which
// is the standard convention for iterating them.
ModelSet IteratedReviseModels(const RevisionOperator& op, const Theory& t,
                              const std::vector<Formula>& updates,
                              const Alphabet& alphabet);

// The eager strategy, additionally reporting the explicit formula after
// every step (for size measurements).  result[i] is the formula after
// incorporating P^1..P^{i+1}.
std::vector<Formula> IteratedReviseFormulas(
    const RevisionOperator& op, const Theory& t,
    const std::vector<Formula>& updates);

// The alphabet V(T) ∪ V(P^1) ∪ ... ∪ V(P^m).
Alphabet IteratedAlphabet(const Theory& t,
                          const std::vector<Formula>& updates);

}  // namespace revise

#endif  // REVISE_REVISION_ITERATED_H_
