// The uniform revision-operator interface and the nine concrete operators
// analyzed by the paper.
//
// Every operator exposes:
//   * ReviseModels  — the model set of T * P over V(T) ∪ V(P) (reference
//                     semantics; the ground truth all other machinery is
//                     validated against),
//   * ReviseFormula — an explicit propositional representation of T * P
//                     (the "naive" representation whose size Tables 1-2
//                     reason about),
//   * Entails       — the inference problem T * P |= Q,
//   * IsModel       — the model-checking problem M |= T * P.

#ifndef REVISE_REVISION_OPERATOR_H_
#define REVISE_REVISION_OPERATOR_H_

#include <memory>
#include <string_view>
#include <vector>

#include "logic/formula.h"
#include "logic/interpretation.h"
#include "logic/theory.h"
#include "model/model_set.h"

namespace revise {

enum class OperatorId {
  kGfuv,
  kNebel,
  kWidtio,
  kWinslett,
  kBorgida,
  kForbus,
  kSatoh,
  kDalal,
  kWeber,
};

// The alphabet X = V(T) ∪ V(P) over which the revision is interpreted.
[[nodiscard]] Alphabet RevisionAlphabet(const Theory& t, const Formula& p);

class RevisionOperator {
 public:
  virtual ~RevisionOperator() = default;

  virtual OperatorId id() const = 0;
  virtual std::string_view name() const = 0;
  // Formula-based operators are sensitive to the syntactic form of T.
  virtual bool is_formula_based() const = 0;

  // Models of T * P over `alphabet`, which must contain V(T) ∪ V(P).
  [[nodiscard]] virtual ModelSet ReviseModels(
      const Theory& t, const Formula& p, const Alphabet& alphabet) const = 0;
  [[nodiscard]] ModelSet ReviseModels(const Theory& t, const Formula& p) const {
    return ReviseModels(t, p, RevisionAlphabet(t, p));
  }

  // An explicit formula logically equivalent to T * P.  The default
  // renders the canonical DNF of ReviseModels; formula-based operators
  // override it with their structural representation.
  [[nodiscard]] virtual Formula ReviseFormula(const Theory& t,
                                              const Formula& p) const;

  // T * P |= q.  q must use only letters of V(T) ∪ V(P) ∪ V(q); letters
  // outside V(T) ∪ V(P) are unconstrained in T * P.
  [[nodiscard]] bool Entails(const Theory& t, const Formula& p,
                             const Formula& q) const;

  // M |= T * P, with M given over `alphabet` ⊇ V(T) ∪ V(P).
  [[nodiscard]] bool IsModel(const Theory& t, const Formula& p,
                             const Interpretation& m,
                             const Alphabet& alphabet) const;
};

// A model-based operator: semantics depends only on M(T) and M(P).
class ModelBasedOperator : public RevisionOperator {
 public:
  bool is_formula_based() const override { return false; }

  // The pure set-level semantics (exposed so iterated revision can run on
  // model sets directly).
  [[nodiscard]] virtual ModelSet ReviseModelSets(const ModelSet& mt,
                                                 const ModelSet& mp) const = 0;

  ModelSet ReviseModels(const Theory& t, const Formula& p,
                        const Alphabet& alphabet) const override;
};

class WinslettOperator final : public ModelBasedOperator {
 public:
  OperatorId id() const override { return OperatorId::kWinslett; }
  std::string_view name() const override { return "Winslett"; }
  ModelSet ReviseModelSets(const ModelSet& mt,
                           const ModelSet& mp) const override;
};

class BorgidaOperator final : public ModelBasedOperator {
 public:
  OperatorId id() const override { return OperatorId::kBorgida; }
  std::string_view name() const override { return "Borgida"; }
  ModelSet ReviseModelSets(const ModelSet& mt,
                           const ModelSet& mp) const override;
};

class ForbusOperator final : public ModelBasedOperator {
 public:
  OperatorId id() const override { return OperatorId::kForbus; }
  std::string_view name() const override { return "Forbus"; }
  ModelSet ReviseModelSets(const ModelSet& mt,
                           const ModelSet& mp) const override;
};

class SatohOperator final : public ModelBasedOperator {
 public:
  OperatorId id() const override { return OperatorId::kSatoh; }
  std::string_view name() const override { return "Satoh"; }
  ModelSet ReviseModelSets(const ModelSet& mt,
                           const ModelSet& mp) const override;
};

class DalalOperator final : public ModelBasedOperator {
 public:
  OperatorId id() const override { return OperatorId::kDalal; }
  std::string_view name() const override { return "Dalal"; }
  ModelSet ReviseModelSets(const ModelSet& mt,
                           const ModelSet& mp) const override;
};

class WeberOperator final : public ModelBasedOperator {
 public:
  OperatorId id() const override { return OperatorId::kWeber; }
  std::string_view name() const override { return "Weber"; }
  ModelSet ReviseModelSets(const ModelSet& mt,
                           const ModelSet& mp) const override;
};

class GfuvOperator final : public RevisionOperator {
 public:
  OperatorId id() const override { return OperatorId::kGfuv; }
  std::string_view name() const override { return "GFUV"; }
  bool is_formula_based() const override { return true; }
  ModelSet ReviseModels(const Theory& t, const Formula& p,
                        const Alphabet& alphabet) const override;
  Formula ReviseFormula(const Theory& t, const Formula& p) const override;
};

class WidtioOperator final : public RevisionOperator {
 public:
  OperatorId id() const override { return OperatorId::kWidtio; }
  std::string_view name() const override { return "WIDTIO"; }
  bool is_formula_based() const override { return true; }
  ModelSet ReviseModels(const Theory& t, const Formula& p,
                        const Alphabet& alphabet) const override;
  Formula ReviseFormula(const Theory& t, const Formula& p) const override;
};

// Nebel's operator over a prioritized partition.  As a RevisionOperator
// (flat theory input) it treats each element of T as its own priority
// class in order (linear priority); the class-partition API is exposed
// separately for structured priorities.
class NebelOperator final : public RevisionOperator {
 public:
  OperatorId id() const override { return OperatorId::kNebel; }
  std::string_view name() const override { return "Nebel"; }
  bool is_formula_based() const override { return true; }
  ModelSet ReviseModels(const Theory& t, const Formula& p,
                        const Alphabet& alphabet) const override;
  Formula ReviseFormula(const Theory& t, const Formula& p) const override;

  // Structured-priority entry points.
  ModelSet ReviseModels(const std::vector<Theory>& classes, const Formula& p,
                        const Alphabet& alphabet) const;
  Formula ReviseFormula(const std::vector<Theory>& classes,
                        const Formula& p) const;

 private:
  static std::vector<Theory> LinearClasses(const Theory& t);
};

// All nine operators (stable order, formula-based first).  The registry
// owns the instances.
const std::vector<const RevisionOperator*>& AllOperators();
// The six model-based operators.
const std::vector<const ModelBasedOperator*>& AllModelBasedOperators();
// Lookup by id (never null).
const RevisionOperator* OperatorById(OperatorId id);

}  // namespace revise

#endif  // REVISE_REVISION_OPERATOR_H_
