// EXPLAIN: run one revision with cost attribution enabled and return the
// per-operation profile tree (obs/profile.h) next to the result.
//
// The tree's root is a synthetic `explain.<Operator>` scope wrapping the
// operator call; its children are the operations the revision actually
// performed (model enumeration, kernels, SAT services, ...), each with
// the counter deltas attributed to it.  With REVISE_THREADS=1 the
// exclusive per-node costs sum exactly to the global counter deltas of
// the call (the documented attribution rule — see obs/profile.h for the
// parallel caveat).
//
// Explain toggles process-wide profiling for the duration of the call
// and drains the completed-profile forest, so it is a diagnosis entry
// point (REPL `:explain`, tests), not something to call concurrently
// with an unrelated --explain bench run.

#ifndef REVISE_REVISION_EXPLAIN_H_
#define REVISE_REVISION_EXPLAIN_H_

#include <memory>
#include <string>

#include "obs/profile.h"
#include "revision/operator.h"

namespace revise {

struct Explanation {
  ModelSet result;                          // models of T * P
  std::unique_ptr<obs::ProfileNode> profile;  // root cost tree, never null
};

Explanation Explain(const RevisionOperator& op, const Theory& t,
                    const Formula& p);
Explanation Explain(const RevisionOperator& op, const Theory& t,
                    const Formula& p, const Alphabet& alphabet);

// The `:explain` rendering: the result cardinality followed by the
// indented cost tree (obs::RenderProfileTree).
std::string RenderExplanation(const Explanation& explanation);

}  // namespace revise

#endif  // REVISE_REVISION_EXPLAIN_H_
