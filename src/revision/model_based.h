// The six model-based revision/update semantics of Section 2.2.2, as pure
// computations on model sets.
//
// All functions take the models of T and the models of P over the *same*
// alphabet and return the models of T * P.  Degenerate cases follow the
// paper's conventions (Section 2.2.2 assumes both satisfiable; we define
// the edges the standard way): if P is unsatisfiable the result is empty;
// if T is unsatisfiable (and P is not) the result is M(P).
//
// Pointwise operators (proximity per model of T):
//   Winslett (PMA):  N in M(P) selected iff M delta N is minimal under set
//                    inclusion among {M delta N' : N' in M(P)} for some
//                    M |= T.
//   Borgida:         T & P if consistent, otherwise Winslett.
//   Forbus:          like Winslett with cardinality instead of inclusion.
//
// Global operators (proximity across all models of T):
//   Satoh:   N selected iff N delta M in delta(T,P) =
//            minc ∪_{M |= T} mu(M,P) for some M |= T.
//   Dalal:   N selected iff |N delta M| = k_{T,P} (global minimum) for
//            some M |= T.
//   Weber:   N selected iff N delta M ⊆ Omega = ∪ delta(T,P) for some
//            M |= T.
//
// Parallelism: the global sweeps (delta(T,P), k_{T,P}) shard the flattened
// M(T) x M(P) pair space and the per-model selection loops shard one model
// set across the process thread pool (util/parallel.h, REVISE_THREADS).
// Every merge is order-canonicalizing (MinimalUnderInclusion, min, or the
// sorting ModelSet constructor), so results are bit-identical to the
// sequential reference at any thread count.
//
// By default every operator routes its pair sweeps and selection loops
// through the packed bit-matrix kernels (src/kernel/kernels.h), which
// re-lay the model sets as contiguous rows and sweep cache-blocked tiles;
// kernel::SetPackedKernelsEnabled(false) restores the scalar
// Interpretation loops kept below as the reference oracle.  Both paths
// produce bit-identical ModelSets.

#ifndef REVISE_REVISION_MODEL_BASED_H_
#define REVISE_REVISION_MODEL_BASED_H_

#include <optional>
#include <vector>

#include "model/model_set.h"

namespace revise {

// mu(M, P): the inclusion-minimal symmetric differences between `m` and
// the models of P.
std::vector<Interpretation> PointwiseMinimalDiffs(const Interpretation& m,
                                                  const ModelSet& mp);

// k_{M,P}: minimum cardinality of differences between `m` and models of P.
std::optional<size_t> PointwiseMinDistance(const Interpretation& m,
                                           const ModelSet& mp);

// delta(T, P) = minc ∪_{M in mt} mu(M, P).
std::vector<Interpretation> GlobalMinimalDiffsOfSets(const ModelSet& mt,
                                                     const ModelSet& mp);

// k_{T,P}: global minimum Hamming distance.
std::optional<size_t> GlobalMinDistanceOfSets(const ModelSet& mt,
                                              const ModelSet& mp);

// Omega = union of all sets in delta(T, P), as a letter set.
Interpretation WeberOmegaOfSets(const ModelSet& mt, const ModelSet& mp);

ModelSet WinslettModels(const ModelSet& mt, const ModelSet& mp);
ModelSet BorgidaModels(const ModelSet& mt, const ModelSet& mp);
ModelSet ForbusModels(const ModelSet& mt, const ModelSet& mp);
ModelSet SatohModels(const ModelSet& mt, const ModelSet& mp);
ModelSet DalalModels(const ModelSet& mt, const ModelSet& mp);
ModelSet WeberModels(const ModelSet& mt, const ModelSet& mp);

}  // namespace revise

#endif  // REVISE_REVISION_MODEL_BASED_H_
