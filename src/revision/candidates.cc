#include "revision/candidates.h"

#include <algorithm>
#include <bit>

#include "kernel/kernels.h"
#include "logic/evaluate.h"
#include "revision/model_based.h"
#include "solve/services.h"
#include "util/check.h"

namespace revise {

namespace {

// Positions of V(p) within the alphabet.
std::vector<size_t> VpPositions(const Formula& p, const Alphabet& alphabet) {
  std::vector<size_t> positions;
  for (const Var v : p.Vars()) {
    const auto index = alphabet.IndexOf(v);
    REVISE_CHECK(index.has_value());
    positions.push_back(*index);
  }
  return positions;
}

Interpretation MaskToDiff(uint64_t mask,
                          const std::vector<size_t>& positions, size_t n) {
  Interpretation diff(n);
  for (size_t j = 0; j < positions.size(); ++j) {
    if ((mask >> j) & 1) diff.Set(positions[j], true);
  }
  return diff;
}

}  // namespace

ModelSet ReviseSetByFormula(OperatorId id, const ModelSet& mt,
                            const Formula& p) {
  const Alphabet& alphabet = mt.alphabet();
  const std::vector<size_t> vp = VpPositions(p, alphabet);
  REVISE_CHECK_LE(vp.size(), 20u);
  const uint64_t subsets = uint64_t{1} << vp.size();

  // cand[i] = sorted masks S such that (mt[i] delta S) |= p.  The truth
  // of p depends only on the V(p)-letters, so results are cached by the
  // projection of the model onto V(p).
  std::vector<std::vector<uint64_t>> cand(mt.size());
  std::unordered_map<uint64_t, std::vector<uint64_t>> cache;
  for (size_t i = 0; i < mt.size(); ++i) {
    uint64_t key = 0;
    for (size_t j = 0; j < vp.size(); ++j) {
      if (mt[i].Get(vp[j])) key |= uint64_t{1} << j;
    }
    auto it = cache.find(key);
    if (it != cache.end()) {
      cand[i] = it->second;
      continue;
    }
    std::vector<uint64_t> masks;
    for (uint64_t s = 0; s < subsets; ++s) {
      Interpretation candidate = mt[i];
      for (size_t j = 0; j < vp.size(); ++j) {
        if ((s >> j) & 1) candidate.Set(vp[j], !candidate.Get(vp[j]));
      }
      if (Evaluate(p, alphabet, candidate)) masks.push_back(s);
    }
    cache.emplace(key, masks);
    cand[i] = std::move(masks);
  }

  auto make_model = [&](size_t i, uint64_t s) {
    Interpretation candidate = mt[i];
    for (size_t j = 0; j < vp.size(); ++j) {
      if ((s >> j) & 1) candidate.Set(vp[j], !candidate.Get(vp[j]));
    }
    return candidate;
  };

  std::vector<Interpretation> selected;
  switch (id) {
    case OperatorId::kWinslett: {
      for (size_t i = 0; i < mt.size(); ++i) {
        // Inclusion-minimal masks of cand[i].
        if (kernel::PackedKernelsEnabled()) {
          const std::vector<uint64_t> mu = kernel::MinimalMasks(cand[i]);
          for (const uint64_t s : cand[i]) {
            if (std::binary_search(mu.begin(), mu.end(), s)) {
              selected.push_back(make_model(i, s));
            }
          }
          continue;
        }
        for (const uint64_t s : cand[i]) {
          bool minimal = true;
          for (const uint64_t s2 : cand[i]) {
            if (s2 != s && (s2 & ~s) == 0) {
              minimal = false;
              break;
            }
          }
          if (minimal) selected.push_back(make_model(i, s));
        }
      }
      break;
    }
    case OperatorId::kBorgida: {
      bool consistent = false;
      for (size_t i = 0; i < mt.size() && !consistent; ++i) {
        consistent = !cand[i].empty() && cand[i][0] == 0;
      }
      if (consistent) {
        for (size_t i = 0; i < mt.size(); ++i) {
          if (!cand[i].empty() && cand[i][0] == 0) {
            selected.push_back(mt[i]);
          }
        }
      } else {
        return ReviseSetByFormula(OperatorId::kWinslett, mt, p);
      }
      break;
    }
    case OperatorId::kForbus: {
      for (size_t i = 0; i < mt.size(); ++i) {
        if (cand[i].empty()) continue;
        size_t k_m = vp.size() + 1;
        if (kernel::PackedKernelsEnabled()) {
          k_m = kernel::MinPopcount(cand[i], k_m);
        } else {
          for (const uint64_t s : cand[i]) {
            k_m = std::min<size_t>(k_m, std::popcount(s));
          }
        }
        for (const uint64_t s : cand[i]) {
          if (static_cast<size_t>(std::popcount(s)) == k_m) {
            selected.push_back(make_model(i, s));
          }
        }
      }
      break;
    }
    case OperatorId::kDalal: {
      size_t k = vp.size() + 1;
      for (size_t i = 0; i < mt.size(); ++i) {
        if (kernel::PackedKernelsEnabled()) {
          k = kernel::MinPopcount(cand[i], k);
          continue;
        }
        for (const uint64_t s : cand[i]) {
          k = std::min<size_t>(k, std::popcount(s));
        }
      }
      for (size_t i = 0; i < mt.size(); ++i) {
        for (const uint64_t s : cand[i]) {
          if (static_cast<size_t>(std::popcount(s)) == k) {
            selected.push_back(make_model(i, s));
          }
        }
      }
      break;
    }
    case OperatorId::kSatoh:
    case OperatorId::kWeber: {
      // delta(T,P): inclusion-minimal masks across all models.
      // MaskToDiff is injective and preserves the subset order (mask bit j
      // maps to the fixed letter positions[j]), so minimality over the raw
      // masks equals minimality over the materialized difference sets —
      // the packed path never builds a per-pair Interpretation.
      if (kernel::PackedKernelsEnabled()) {
        std::vector<uint64_t> all_masks;
        for (size_t i = 0; i < mt.size(); ++i) {
          all_masks.insert(all_masks.end(), cand[i].begin(), cand[i].end());
        }
        const std::vector<uint64_t> delta =
            kernel::MinimalMasks(std::move(all_masks));
        if (id == OperatorId::kSatoh) {
          for (size_t i = 0; i < mt.size(); ++i) {
            for (const uint64_t s : cand[i]) {
              if (std::binary_search(delta.begin(), delta.end(), s)) {
                selected.push_back(make_model(i, s));
              }
            }
          }
        } else {
          uint64_t omega = 0;
          for (const uint64_t s : delta) omega |= s;
          for (size_t i = 0; i < mt.size(); ++i) {
            for (const uint64_t s : cand[i]) {
              if ((s & ~omega) == 0) selected.push_back(make_model(i, s));
            }
          }
        }
        break;
      }
      std::vector<Interpretation> all_diffs;
      for (size_t i = 0; i < mt.size(); ++i) {
        for (const uint64_t s : cand[i]) {
          all_diffs.push_back(MaskToDiff(s, vp, alphabet.size()));
        }
      }
      const std::vector<Interpretation> delta =
          MinimalUnderInclusion(std::move(all_diffs));
      if (id == OperatorId::kSatoh) {
        for (size_t i = 0; i < mt.size(); ++i) {
          for (const uint64_t s : cand[i]) {
            const Interpretation d = MaskToDiff(s, vp, alphabet.size());
            if (std::find(delta.begin(), delta.end(), d) != delta.end()) {
              selected.push_back(make_model(i, s));
            }
          }
        }
      } else {
        Interpretation omega(alphabet.size());
        for (const Interpretation& d : delta) omega = omega.Union(d);
        for (size_t i = 0; i < mt.size(); ++i) {
          for (const uint64_t s : cand[i]) {
            if (MaskToDiff(s, vp, alphabet.size()).IsSubsetOf(omega)) {
              selected.push_back(make_model(i, s));
            }
          }
        }
      }
      break;
    }
    default:
      REVISE_CHECK(false);  // not a model-based operator
  }
  return ModelSet(alphabet, std::move(selected));
}

ModelSet ReviseModelsAuto(OperatorId id, const ModelSet& mt,
                          const Formula& p, const Alphabet& alphabet) {
  if (mt.empty()) {
    // Unsatisfiable prior knowledge: the result is M(P).
    return EnumerateModels(p, alphabet);
  }
  if (p.Vars().size() <= 16) {
    return ReviseSetByFormula(id, mt, p);
  }
  return [&] {
    const ModelSet mp = EnumerateModels(p, alphabet);
    switch (id) {
      case OperatorId::kWinslett:
        return WinslettModels(mt, mp);
      case OperatorId::kBorgida:
        return BorgidaModels(mt, mp);
      case OperatorId::kForbus:
        return ForbusModels(mt, mp);
      case OperatorId::kSatoh:
        return SatohModels(mt, mp);
      case OperatorId::kDalal:
        return DalalModels(mt, mp);
      case OperatorId::kWeber:
        return WeberModels(mt, mp);
      default:
        REVISE_CHECK(false);
        return ModelSet();
    }
  }();
}

}  // namespace revise
