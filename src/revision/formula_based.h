// Formula-based revision semantics (Section 2.2.1): GFUV, WIDTIO, Nebel.
//
// The common ingredient is W(T,P), the set of maximal (under set inclusion)
// subsets of the theory T that are consistent with P.  We enumerate W(T,P)
// with the CDCL solver using one selector variable per theory element and a
// grow-then-block loop, so theories far beyond brute-force subset
// enumeration are handled.

#ifndef REVISE_REVISION_FORMULA_BASED_H_
#define REVISE_REVISION_FORMULA_BASED_H_

#include <vector>

#include "logic/formula.h"
#include "logic/theory.h"
#include "model/model_set.h"

namespace revise {

// W(T, P): each element is a bitmask over T's formulas (bit i set iff
// formulas()[i] belongs to the maximal subset).  If P is unsatisfiable the
// result is empty; if every element of T contradicts P on its own, the
// result is the single empty subset (mask 0), matching the definition.
// `limit` == 0 means no limit on the number of worlds returned.
std::vector<uint64_t> MaximalConsistentSubsets(const Theory& t,
                                               const Formula& p,
                                               size_t limit = 0);

// T *_GFUV P as a formula: (\/_{T' in W(T,P)} /\T') & P.  This is the
// naive explicit representation whose size Theorem 3.1 is about.
Formula GfuvFormula(const Theory& t, const Formula& p);

// T *_WIDTIO P: the theory (∩ W(T,P)) ∪ {P}.
Theory WidtioTheory(const Theory& t, const Formula& p);

// Nebel's prioritized base revision: the theory is partitioned into
// priority classes, highest priority first.  A prioritized-maximal subset
// maximizes its intersection with class 1, then with class 2 given class
// 1, and so on.  Returns one bitmask over the *concatenated* theory per
// possible world.
std::vector<uint64_t> PrioritizedMaximalSubsets(
    const std::vector<Theory>& classes, const Formula& p);

// The concatenation of the classes (the flat theory the masks refer to).
Theory ConcatenateClasses(const std::vector<Theory>& classes);

// T *_Nebel P as a formula, analogous to GfuvFormula.
Formula NebelFormula(const std::vector<Theory>& classes, const Formula& p);

}  // namespace revise

#endif  // REVISE_REVISION_FORMULA_BASED_H_
