#include "revision/postulates.h"

#include <sstream>

#include "hardness/random_instances.h"
#include "logic/printer.h"
#include "solve/services.h"
#include "util/check.h"

namespace revise {

const char* KmPostulateName(KmPostulate postulate) {
  switch (postulate) {
    case KmPostulate::kR1Success:
      return "R1 (success)";
    case KmPostulate::kR2Vacuity:
      return "R2 (vacuity)";
    case KmPostulate::kR3Consistency:
      return "R3 (consistency)";
    case KmPostulate::kR4Syntax:
      return "R4 (syntax irrelevance)";
    case KmPostulate::kR5Conjunction:
      return "R5 (conjunctive inclusion)";
    case KmPostulate::kR6Conjunction:
      return "R6 (conjunctive preservation)";
    case KmPostulate::kU2UpdateVacuity:
      return "U2 (update vacuity)";
    case KmPostulate::kU8Disjunction:
      return "U8 (disjunction decomposition)";
  }
  return "?";
}

bool PostulateReport::Satisfies(KmPostulate postulate) const {
  for (size_t i = 0; i < postulates.size(); ++i) {
    if (postulates[i] == postulate) return violated[i] == 0;
  }
  return false;
}

std::string PostulateReport::ToString(const Vocabulary& vocabulary) const {
  std::ostringstream out;
  for (size_t i = 0; i < postulates.size(); ++i) {
    out << KmPostulateName(postulates[i]) << ": " << violated[i] << "/"
        << checked[i] << " violations";
    if (witnesses[i].has_value()) {
      out << "  e.g. T=" << revise::ToString(witnesses[i]->t, vocabulary)
          << " P=" << revise::ToString(witnesses[i]->p, vocabulary);
    }
    out << "\n";
  }
  return out.str();
}

namespace {

class Sweep {
 public:
  Sweep(const ModelBasedOperator& op, const PostulateSweepOptions& options,
        Vocabulary* vocabulary)
      : op_(op), rng_(options.seed), trials_(options.trials) {
    for (int i = 0; i < options.num_vars; ++i) {
      vars_.push_back(vocabulary->Intern("km" + std::to_string(i)));
    }
    alphabet_ = Alphabet(vars_);
  }

  Formula Draw() {
    for (;;) {
      Formula f = RandomFormula(vars_, 4, &rng_);
      if (IsSatisfiable(f)) return f;
    }
  }

  ModelSet Revise(const Formula& t, const Formula& p) {
    return op_.ReviseModelSets(EnumerateModels(t, alphabet_),
                               EnumerateModels(p, alphabet_));
  }

  void Check(KmPostulate postulate, PostulateReport* report) {
    int checked = 0;
    int violated = 0;
    std::optional<PostulateViolation> witness;
    for (int trial = 0; trial < trials_; ++trial) {
      const Formula t = Draw();
      const Formula p = Draw();
      std::optional<PostulateViolation> violation =
          CheckOne(postulate, t, p);
      if (!violation.has_value() && !skipped_) {
        ++checked;
        continue;
      }
      if (skipped_) {
        skipped_ = false;
        continue;
      }
      ++checked;
      ++violated;
      if (!witness.has_value()) witness = violation;
    }
    report->postulates.push_back(postulate);
    report->checked.push_back(checked);
    report->violated.push_back(violated);
    report->witnesses.push_back(witness);
  }

 private:
  std::optional<PostulateViolation> Fail(KmPostulate postulate,
                                         const Formula& t, const Formula& p,
                                         std::string description) {
    PostulateViolation violation;
    violation.postulate = postulate;
    violation.t = t;
    violation.p = p;
    violation.description = std::move(description);
    return violation;
  }

  std::optional<PostulateViolation> CheckOne(KmPostulate postulate,
                                             const Formula& t,
                                             const Formula& p) {
    switch (postulate) {
      case KmPostulate::kR1Success: {
        if (!Revise(t, p).IsSubsetOf(EnumerateModels(p, alphabet_))) {
          return Fail(postulate, t, p, "result not within M(P)");
        }
        return std::nullopt;
      }
      case KmPostulate::kR2Vacuity: {
        const Formula both = Formula::And(t, p);
        if (!IsSatisfiable(both)) {
          skipped_ = true;
          return std::nullopt;
        }
        if (!(Revise(t, p) == EnumerateModels(both, alphabet_))) {
          return Fail(postulate, t, p, "T & P consistent but T*P != T&P");
        }
        return std::nullopt;
      }
      case KmPostulate::kR3Consistency: {
        if (Revise(t, p).empty()) {
          return Fail(postulate, t, p, "satisfiable inputs, empty result");
        }
        return std::nullopt;
      }
      case KmPostulate::kR4Syntax: {
        const Formula t2 = Formula::Not(Formula::Not(t));
        const Formula p2 = Formula::And(p, Formula::Or(p, t));
        if (!(Revise(t, p) == Revise(t2, p2))) {
          return Fail(postulate, t, p, "equivalent inputs, different output");
        }
        return std::nullopt;
      }
      case KmPostulate::kR5Conjunction:
      case KmPostulate::kR6Conjunction: {
        const Formula q = RandomFormula(vars_, 3, &rng_);
        const Formula pq = Formula::And(p, q);
        if (!IsSatisfiable(pq)) {
          skipped_ = true;
          return std::nullopt;
        }
        const ModelSet lhs = ModelSet::Intersection(
            Revise(t, p), EnumerateModels(q, alphabet_));
        const ModelSet rhs = Revise(t, pq);
        if (postulate == KmPostulate::kR5Conjunction) {
          if (!lhs.IsSubsetOf(rhs)) {
            auto v = Fail(postulate, t, p, "(T*P)&Q not within T*(P&Q)");
            v->q = q;
            return v;
          }
        } else {
          if (!lhs.empty() && !rhs.IsSubsetOf(lhs)) {
            auto v = Fail(postulate, t, p, "T*(P&Q) not within (T*P)&Q");
            v->q = q;
            return v;
          }
        }
        return std::nullopt;
      }
      case KmPostulate::kU2UpdateVacuity: {
        const Formula weaker = Formula::Or(t, p);  // T |= weaker
        if (!(Revise(t, weaker) == EnumerateModels(t, alphabet_))) {
          return Fail(postulate, t, weaker, "T |= P but T*P != T");
        }
        return std::nullopt;
      }
      case KmPostulate::kU8Disjunction: {
        const Formula t2 = Draw();
        const ModelSet whole = Revise(Formula::Or(t, t2), p);
        const ModelSet split =
            ModelSet::Union(Revise(t, p), Revise(t2, p));
        if (!(whole == split)) {
          auto v = Fail(postulate, t, p, "(T1|T2)*P != (T1*P)|(T2*P)");
          v->t2 = t2;
          return v;
        }
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  const ModelBasedOperator& op_;
  Rng rng_;
  int trials_;
  std::vector<Var> vars_;
  Alphabet alphabet_;
  bool skipped_ = false;
};

}  // namespace

PostulateReport CheckKmPostulates(const ModelBasedOperator& op,
                                  const PostulateSweepOptions& options,
                                  Vocabulary* vocabulary) {
  Sweep sweep(op, options, vocabulary);
  PostulateReport report;
  for (const KmPostulate postulate :
       {KmPostulate::kR1Success, KmPostulate::kR2Vacuity,
        KmPostulate::kR3Consistency, KmPostulate::kR4Syntax,
        KmPostulate::kR5Conjunction, KmPostulate::kR6Conjunction,
        KmPostulate::kU2UpdateVacuity, KmPostulate::kU8Disjunction}) {
    sweep.Check(postulate, &report);
  }
  return report;
}

}  // namespace revise
