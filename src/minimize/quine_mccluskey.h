// Exact two-level minimization (Quine-McCluskey prime implicants + exact
// set cover by branch and bound).
//
// The paper's size results concern the SMALLEST formula equivalent to the
// revised knowledge base.  Exact minimum circuit size is infeasible, so the
// benches use the exact minimum two-level (DNF/CNF) size as a measurable
// proxy, alongside the naive representation size.  Alphabets up to ~16
// letters are practical.

#ifndef REVISE_MINIMIZE_QUINE_MCCLUSKEY_H_
#define REVISE_MINIMIZE_QUINE_MCCLUSKEY_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"
#include "model/model_set.h"

namespace revise {

// A product term over an alphabet of <= 32 letters: the letters in `care`
// are fixed to the corresponding bit of `values` (bits of `values` outside
// `care` are zero).
struct Implicant {
  uint32_t values = 0;
  uint32_t care = 0;

  bool Covers(uint32_t minterm) const {
    return (minterm & care) == values;
  }
  // Number of literals in the term.
  int NumLiterals() const;

  bool operator==(const Implicant& other) const {
    return values == other.values && care == other.care;
  }
  bool operator<(const Implicant& other) const {
    return care != other.care ? care < other.care : values < other.values;
  }
};

// All prime implicants of the function whose on-set is `minterms`
// (bit i of a minterm = value of alphabet letter i), over `num_vars`
// letters.
[[nodiscard]] std::vector<Implicant> PrimeImplicants(
    const std::vector<uint32_t>& minterms, size_t num_vars);

struct TwoLevelResult {
  std::vector<Implicant> terms;
  // Total number of literals (the paper's variable-occurrence measure for
  // a two-level formula).
  uint64_t literal_count = 0;
};

// Exact minimum-literal DNF cover of the on-set (empty terms for the
// constant-false function; a single all-dont-care term for constant true).
[[nodiscard]] TwoLevelResult MinimizeDnf(const std::vector<uint32_t>& minterms,
                                         size_t num_vars);

// Convenience wrappers on model sets (alphabet size <= 32).
[[nodiscard]] TwoLevelResult MinimizeDnf(const ModelSet& models);
// Minimum CNF via the complement (De Morgan duality).
[[nodiscard]] TwoLevelResult MinimizeCnf(const ModelSet& models);
// min(|minimal DNF|, |minimal CNF|) in literals: the two-level proxy for
// "size of the smallest equivalent formula".
[[nodiscard]] uint64_t MinimalTwoLevelSize(const ModelSet& models);

// Renders a DNF result as a Formula over `alphabet`.
Formula DnfToFormula(const TwoLevelResult& result, const Alphabet& alphabet);
// Renders a CNF result (terms of the complement's DNF) as a Formula.
Formula CnfToFormula(const TwoLevelResult& result, const Alphabet& alphabet);

}  // namespace revise

#endif  // REVISE_MINIMIZE_QUINE_MCCLUSKEY_H_
