// Horn upper-bound compilation (Selman & Kautz).
//
// Section 2.3 of the paper credits Kautz and Selman with the first use of
// non-uniform complexity for compactability lower bounds: a polynomial
// representation of the Horn LEAST UPPER BOUND of a formula would put
// NP ⊆ P/poly.  This module implements the object itself, as the paper's
// reference [16] (Gogic-Papadimitriou-Sideri, "incremental recompilation
// of knowledge") applies it to revision:
//
//   * a theory is Horn-expressible iff its model set is closed under
//     intersection of models (Dechter & Pearl);
//   * the Horn LUB of phi is the strongest Horn theory entailed by phi;
//     its models are exactly the intersection closure of M(phi);
//   * query answering against the LUB is SOUND for positive answers:
//     LUB |= Q implies phi |= Q (phi |= LUB).
//
// Alphabets up to ~14 letters are practical (candidate Horn clauses are
// enumerated exhaustively).

#ifndef REVISE_MINIMIZE_HORN_H_
#define REVISE_MINIMIZE_HORN_H_

#include "logic/formula.h"
#include "model/model_set.h"

namespace revise {

// Clause with at most one positive literal?
[[nodiscard]] bool IsHornClause(const Formula& f);
// CNF whose clauses are all Horn?
[[nodiscard]] bool IsHornFormula(const Formula& f);

// Fixpoint closure of the model set under pairwise intersection.
[[nodiscard]] ModelSet IntersectionClosure(const ModelSet& models);

// The prime (subsumption-minimal) Horn implicates of the model set,
// conjoined: the canonical representation of the Horn least upper bound.
// Requires alphabet size <= 20 (candidate enumeration is O(n * 2^n)).
[[nodiscard]] Formula HornLub(const ModelSet& models);

}  // namespace revise

#endif  // REVISE_MINIMIZE_HORN_H_
