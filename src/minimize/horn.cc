#include "minimize/horn.h"

#include <algorithm>

#include "util/check.h"

namespace revise {

namespace {

// Counts positive literals; returns false if f is not a clause.
bool ClauseShape(const Formula& f, int* positive_count) {
  *positive_count = 0;
  auto literal = [&](const Formula& lit) {
    if (lit.kind() == Connective::kVar) {
      ++*positive_count;
      return true;
    }
    return lit.kind() == Connective::kNot &&
           lit.child(0).kind() == Connective::kVar;
  };
  if (f.IsConst()) return true;
  if (literal(f)) return true;
  if (f.kind() != Connective::kOr) return false;
  for (size_t i = 0; i < f.arity(); ++i) {
    if (!literal(f.child(i))) return false;
  }
  return true;
}

}  // namespace

bool IsHornClause(const Formula& f) {
  int positives = 0;
  return ClauseShape(f, &positives) && positives <= 1;
}

bool IsHornFormula(const Formula& f) {
  if (IsHornClause(f)) return true;
  if (f.kind() != Connective::kAnd) return false;
  for (size_t i = 0; i < f.arity(); ++i) {
    if (!IsHornClause(f.child(i))) return false;
  }
  return true;
}

ModelSet IntersectionClosure(const ModelSet& models) {
  std::vector<Interpretation> closed(models.begin(), models.end());
  std::sort(closed.begin(), closed.end());
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t size = closed.size();
    std::vector<Interpretation> added;
    for (size_t i = 0; i < size; ++i) {
      for (size_t j = i + 1; j < size; ++j) {
        Interpretation meet = closed[i].Intersection(closed[j]);
        if (!std::binary_search(closed.begin(), closed.end(), meet)) {
          added.push_back(std::move(meet));
        }
      }
    }
    if (!added.empty()) {
      changed = true;
      closed.insert(closed.end(), added.begin(), added.end());
      std::sort(closed.begin(), closed.end());
      closed.erase(std::unique(closed.begin(), closed.end()),
                   closed.end());
    }
  }
  return ModelSet(models.alphabet(), std::move(closed));
}

Formula HornLub(const ModelSet& models) {
  const Alphabet& alphabet = models.alphabet();
  const size_t n = alphabet.size();
  REVISE_CHECK_LE(n, 20u);
  if (models.empty()) return Formula::False();

  // A Horn clause is (/\ body -> head) with body ⊆ letters and head a
  // letter outside the body, or headless (-> false).  It is entailed iff
  // no model contains the whole body while missing the head.
  struct HornCandidate {
    uint64_t body;
    int head;  // position, or -1 for headless
  };
  auto entailed = [&](const HornCandidate& c) {
    for (const Interpretation& m : models) {
      const uint64_t bits = m.ToIndex();
      if ((bits & c.body) != c.body) continue;
      if (c.head >= 0 && ((bits >> c.head) & 1)) continue;
      return false;  // model has the body but not the head
    }
    return true;
  };

  std::vector<HornCandidate> entailed_clauses;
  for (uint64_t body = 0; body < (uint64_t{1} << n); ++body) {
    HornCandidate headless{body, -1};
    if (entailed(headless)) {
      entailed_clauses.push_back(headless);
      // Every clause with this body is subsumed; skip heads.
      continue;
    }
    for (size_t h = 0; h < n; ++h) {
      if ((body >> h) & 1) continue;
      HornCandidate c{body, static_cast<int>(h)};
      if (entailed(c)) entailed_clauses.push_back(c);
    }
  }

  // Keep the prime (subsumption-minimal) clauses: C subsumes D if
  // C.body ⊆ D.body and (C headless, or same head).
  std::vector<HornCandidate> prime;
  for (const HornCandidate& c : entailed_clauses) {
    bool subsumed = false;
    for (const HornCandidate& d : entailed_clauses) {
      if (d.body == c.body && d.head == c.head) continue;
      const bool body_subset = (d.body & ~c.body) == 0;
      const bool head_ok = d.head == -1 || d.head == c.head;
      if (body_subset && head_ok &&
          (d.body != c.body || d.head != c.head)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) prime.push_back(c);
  }

  std::vector<Formula> clauses;
  clauses.reserve(prime.size());
  for (const HornCandidate& c : prime) {
    std::vector<Formula> literals;
    for (size_t i = 0; i < n; ++i) {
      if ((c.body >> i) & 1) {
        literals.push_back(Formula::Literal(alphabet.var(i), false));
      }
    }
    if (c.head >= 0) {
      literals.push_back(Formula::Literal(alphabet.var(c.head), true));
    }
    clauses.push_back(DisjoinAll(literals));
  }
  return ConjoinAll(clauses);
}

}  // namespace revise
