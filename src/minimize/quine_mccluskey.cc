#include "minimize/quine_mccluskey.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/profile.h"
#include "util/check.h"

namespace revise {

int Implicant::NumLiterals() const { return std::popcount(care); }

std::vector<Implicant> PrimeImplicants(const std::vector<uint32_t>& minterms,
                                       size_t num_vars) {
  REVISE_CHECK_LE(num_vars, 32u);
  std::vector<Implicant> current;
  current.reserve(minterms.size());
  const uint32_t full_care =
      num_vars == 32 ? ~uint32_t{0}
                     : ((uint32_t{1} << num_vars) - 1);
  for (const uint32_t m : minterms) {
    current.push_back(Implicant{m & full_care, full_care});
  }
  std::sort(current.begin(), current.end());
  current.erase(std::unique(current.begin(), current.end()), current.end());

  std::vector<Implicant> primes;
  while (!current.empty()) {
    REVISE_OBS_COUNTER("qm.merge_rounds").Increment();
    std::vector<bool> merged(current.size(), false);
    std::vector<Implicant> next;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        if (current[i].care != current[j].care) continue;
        const uint32_t diff = current[i].values ^ current[j].values;
        if (std::popcount(diff) != 1) continue;
        merged[i] = true;
        merged[j] = true;
        next.push_back(Implicant{current[i].values & ~diff,
                                 current[i].care & ~diff});
      }
    }
    for (size_t i = 0; i < current.size(); ++i) {
      if (!merged[i]) primes.push_back(current[i]);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
  }
  std::sort(primes.begin(), primes.end());
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  REVISE_OBS_COUNTER("qm.prime_implicants").Increment(primes.size());
  REVISE_OBS_HISTOGRAM("qm.primes_per_call")
      .Record(static_cast<uint64_t>(primes.size()));
  return primes;
}

namespace {

// Exact branch-and-bound unate covering minimizing total literal count.
class CoverSolver {
 public:
  CoverSolver(const std::vector<Implicant>& primes,
              const std::vector<uint32_t>& minterms)
      : primes_(primes), minterms_(minterms) {
    covers_.resize(minterms.size());
    for (size_t m = 0; m < minterms.size(); ++m) {
      for (size_t p = 0; p < primes.size(); ++p) {
        if (primes[p].Covers(minterms_[m])) covers_[m].push_back(p);
      }
      REVISE_CHECK(!covers_[m].empty());
    }
  }

  std::vector<size_t> Solve() {
    // Greedy upper bound: repeatedly take the prime covering the most
    // uncovered minterms per literal.
    best_cost_ = GreedyBound(&best_);
    std::vector<bool> covered(minterms_.size(), false);
    std::vector<size_t> chosen;
    Recurse(covered, &chosen, 0);
    return best_;
  }

 private:
  uint64_t CostOf(const std::vector<size_t>& picks) const {
    uint64_t cost = 0;
    for (const size_t p : picks) cost += primes_[p].NumLiterals();
    return cost;
  }

  uint64_t GreedyBound(std::vector<size_t>* out) const {
    std::vector<bool> covered(minterms_.size(), false);
    std::vector<size_t> picks;
    size_t remaining = minterms_.size();
    while (remaining > 0) {
      size_t best_prime = 0;
      double best_score = -1;
      for (size_t p = 0; p < primes_.size(); ++p) {
        size_t gain = 0;
        for (size_t m = 0; m < minterms_.size(); ++m) {
          if (!covered[m] && primes_[p].Covers(minterms_[m])) ++gain;
        }
        if (gain == 0) continue;
        const double score =
            static_cast<double>(gain) / primes_[p].NumLiterals();
        if (score > best_score) {
          best_score = score;
          best_prime = p;
        }
      }
      picks.push_back(best_prime);
      for (size_t m = 0; m < minterms_.size(); ++m) {
        if (primes_[best_prime].Covers(minterms_[m])) {
          if (!covered[m]) --remaining;
          covered[m] = true;
        }
      }
    }
    *out = picks;
    return CostOf(picks);
  }

  void Recurse(std::vector<bool>& covered, std::vector<size_t>* chosen,
               uint64_t cost) {
    REVISE_OBS_COUNTER("qm.cover_branches").Increment();
    if (cost >= best_cost_) return;  // bound
    // Pick the uncovered minterm with the fewest covering primes.
    size_t pivot = minterms_.size();
    size_t fewest = std::numeric_limits<size_t>::max();
    for (size_t m = 0; m < minterms_.size(); ++m) {
      if (covered[m]) continue;
      if (covers_[m].size() < fewest) {
        fewest = covers_[m].size();
        pivot = m;
      }
    }
    if (pivot == minterms_.size()) {
      // Fully covered: record improvement.
      best_cost_ = cost;
      best_ = *chosen;
      return;
    }
    for (const size_t p : covers_[pivot]) {
      std::vector<size_t> newly;
      for (size_t m = 0; m < minterms_.size(); ++m) {
        if (!covered[m] && primes_[p].Covers(minterms_[m])) {
          covered[m] = true;
          newly.push_back(m);
        }
      }
      chosen->push_back(p);
      Recurse(covered, chosen, cost + primes_[p].NumLiterals());
      chosen->pop_back();
      for (const size_t m : newly) covered[m] = false;
    }
  }

  const std::vector<Implicant>& primes_;
  const std::vector<uint32_t>& minterms_;
  std::vector<std::vector<size_t>> covers_;
  std::vector<size_t> best_;
  uint64_t best_cost_ = 0;
};

std::vector<uint32_t> MintermsOf(const ModelSet& models) {
  REVISE_CHECK_LE(models.alphabet().size(), 32u);
  std::vector<uint32_t> minterms;
  minterms.reserve(models.size());
  for (const Interpretation& m : models) {
    minterms.push_back(static_cast<uint32_t>(m.ToIndex()));
  }
  return minterms;
}

std::vector<uint32_t> ComplementMinterms(const ModelSet& models) {
  const size_t n = models.alphabet().size();
  REVISE_CHECK_LE(n, 22u);  // complement enumeration must stay feasible
  std::vector<uint32_t> out;
  for (uint64_t v = 0; v < (uint64_t{1} << n); ++v) {
    if (!models.Contains(Interpretation::FromIndex(n, v))) {
      out.push_back(static_cast<uint32_t>(v));
    }
  }
  return out;
}

}  // namespace

TwoLevelResult MinimizeDnf(const std::vector<uint32_t>& minterms,
                           size_t num_vars) {
  obs::ProfileScope profile("qm.minimize");
  TwoLevelResult result;
  if (minterms.empty()) return result;  // constant false
  const std::vector<Implicant> primes = PrimeImplicants(minterms, num_vars);
  CoverSolver solver(primes, minterms);
  for (const size_t p : solver.Solve()) {
    result.terms.push_back(primes[p]);
    result.literal_count += primes[p].NumLiterals();
  }
  return result;
}

TwoLevelResult MinimizeDnf(const ModelSet& models) {
  return MinimizeDnf(MintermsOf(models), models.alphabet().size());
}

TwoLevelResult MinimizeCnf(const ModelSet& models) {
  return MinimizeDnf(ComplementMinterms(models), models.alphabet().size());
}

uint64_t MinimalTwoLevelSize(const ModelSet& models) {
  return std::min(MinimizeDnf(models).literal_count,
                  MinimizeCnf(models).literal_count);
}

Formula DnfToFormula(const TwoLevelResult& result,
                     const Alphabet& alphabet) {
  std::vector<Formula> terms;
  for (const Implicant& implicant : result.terms) {
    std::vector<Formula> lits;
    for (size_t i = 0; i < alphabet.size(); ++i) {
      if ((implicant.care >> i) & 1) {
        lits.push_back(Formula::Literal(alphabet.var(i),
                                        (implicant.values >> i) & 1));
      }
    }
    terms.push_back(ConjoinAll(lits));
  }
  return DisjoinAll(terms);
}

Formula CnfToFormula(const TwoLevelResult& result,
                     const Alphabet& alphabet) {
  // Negate the complement's DNF: each term becomes a clause with flipped
  // literal polarities.
  std::vector<Formula> clauses;
  for (const Implicant& implicant : result.terms) {
    std::vector<Formula> lits;
    for (size_t i = 0; i < alphabet.size(); ++i) {
      if ((implicant.care >> i) & 1) {
        lits.push_back(Formula::Literal(alphabet.var(i),
                                        !((implicant.values >> i) & 1)));
      }
    }
    clauses.push_back(DisjoinAll(lits));
  }
  return ConjoinAll(clauses);
}

}  // namespace revise
