// A model set re-laid as a contiguous row-major bit matrix.
//
// Each row is one interpretation: bit i of row r is the value
// models[r].Get(i), stored in 64-bit words exactly as Interpretation
// stores them.  Rows are padded with zero words to a whole number of
// 256-bit blocks (simd.h kWordsPerBlock) and the backing store is
// 64-byte-aligned, so the batch kernels can sweep whole blocks — SIMD or
// SWAR — without tail cases and without per-pair pointer chasing through
// std::vector headers.  The matrix is built once per operator call and is
// immutable from the kernels' point of view; the zero padding is a class
// invariant (Interpretation keeps its own tail bits zero, and the
// constructors zero-fill), which is what makes block-granular popcounts
// exact.
//
// The layer sits below model/: it depends only on logic/ and util/, and
// accepts plain Interpretation vectors (ModelSet callers pass
// set.models() and set.alphabet().size()).

#ifndef REVISE_KERNEL_PACKED_MATRIX_H_
#define REVISE_KERNEL_PACKED_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "logic/interpretation.h"

namespace revise::kernel {

class PackedModelMatrix {
 public:
  PackedModelMatrix() = default;
  // Zero-filled matrix of `rows` interpretations over `bits` letters.
  PackedModelMatrix(size_t bits, size_t rows);

  // Packs `models` (uniform width `bits`) row by row.
  static PackedModelMatrix FromModels(size_t bits,
                                      const std::vector<Interpretation>& models);

  size_t bits() const { return bits_; }
  size_t rows() const { return rows_; }
  // Words that carry payload bits: ceil(bits / 64).
  size_t words_used() const { return words_used_; }
  // 256-bit blocks per row (at least 1, so every row is sweepable).
  size_t blocks() const { return blocks_; }
  // Words from one row to the next: blocks() * kWordsPerBlock.
  size_t row_stride() const { return stride_; }

  const uint64_t* row(size_t r) const { return data_.get() + r * stride_; }
  uint64_t* row(size_t r) { return data_.get() + r * stride_; }

  // Copies `m` into row `r` (m.size() must equal bits()).
  void SetRow(size_t r, const Interpretation& m);
  // Materializes row `r` back into an Interpretation.
  Interpretation ToInterpretation(size_t r) const;

 private:
  struct AlignedFree {
    void operator()(uint64_t* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  size_t bits_ = 0;
  size_t rows_ = 0;
  size_t words_used_ = 0;
  size_t blocks_ = 0;
  size_t stride_ = 0;
  std::unique_ptr<uint64_t[], AlignedFree> data_;
};

}  // namespace revise::kernel

#endif  // REVISE_KERNEL_PACKED_MATRIX_H_
