#include "kernel/packed_matrix.h"

#include <algorithm>
#include <cstring>

#include "kernel/simd.h"
#include "util/check.h"

namespace revise::kernel {

PackedModelMatrix::PackedModelMatrix(size_t bits, size_t rows)
    : bits_(bits),
      rows_(rows),
      words_used_((bits + 63) / 64),
      blocks_(std::max<size_t>(
          1, (words_used_ + kWordsPerBlock - 1) / kWordsPerBlock)),
      stride_(blocks_ * kWordsPerBlock) {
  const size_t words = std::max<size_t>(1, rows_) * stride_;
  data_.reset(static_cast<uint64_t*>(
      ::operator new[](words * sizeof(uint64_t), std::align_val_t{64})));
  std::memset(data_.get(), 0, words * sizeof(uint64_t));
}

PackedModelMatrix PackedModelMatrix::FromModels(
    size_t bits, const std::vector<Interpretation>& models) {
  PackedModelMatrix matrix(bits, models.size());
  for (size_t r = 0; r < models.size(); ++r) {
    matrix.SetRow(r, models[r]);
  }
  return matrix;
}

void PackedModelMatrix::SetRow(size_t r, const Interpretation& m) {
  REVISE_DCHECK_LT(r, rows_);
  REVISE_DCHECK_EQ(m.size(), bits_);
  const std::vector<uint64_t>& words = m.words();
  REVISE_DCHECK_EQ(words.size(), words_used_);
  std::copy(words.begin(), words.end(), row(r));
}

Interpretation PackedModelMatrix::ToInterpretation(size_t r) const {
  REVISE_DCHECK_LT(r, rows_);
  return Interpretation::FromWords(bits_, row(r));
}

}  // namespace revise::kernel
