// Batch kernels over PackedModelMatrix rows.
//
// These are the hot inner loops of the six model-based revision operators
// (see src/revision/model_based.h), re-expressed as sweeps over packed
// bit-matrix rows instead of one-Interpretation-at-a-time calls.  The
// callers' contract, in both directions:
//
//   * bit-identical results: every function here computes exactly the
//     value the scalar Interpretation reference computes, at every thread
//     count and on every SIMD path (off / swar / avx2 / neon).  Selection
//     kernels return ascending or m-major index lists whose order matches
//     the scalar selection loops; minimal/maximal kernels return the
//     canonical (lexicographic) order MinimalUnderInclusion returns.
//   * parallelism is internal: kernels shard over row tiles with
//     ParallelMapRanges and merge deterministically, so callers never see
//     the thread count.
//   * matrices passed together must have the same bits() (they come from
//     model sets over one alphabet); this is DCHECKed, not CHECKed —
//     validation belongs at the operator boundary, not in the sweeps.
//
// The scalar reference stays available at runtime: SetPackedKernelsEnabled
// (false) makes the routed call sites in model/, revision/ fall back to
// their original Interpretation loops, which is how the bench measures
// seq_ms vs seq_packed_ms and how the fuzz oracle cross-checks the two.

#ifndef REVISE_KERNEL_KERNELS_H_
#define REVISE_KERNEL_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernel/packed_matrix.h"
#include "logic/interpretation.h"

namespace revise::kernel {

// Name of the SIMD path compiled into the kernel library ("off", "swar",
// "avx2" or "neon"), i.e. the REVISE_SIMD CMake option after compile-time
// ISA dispatch.
const char* ActiveSimdPath();

// Process-wide routing switch: when false, the call sites in model/ and
// revision/ use their scalar Interpretation loops instead of these
// kernels.  Benches and tests flip it to compare the two paths; defaults
// to enabled.
void SetPackedKernelsEnabled(bool enabled);
bool PackedKernelsEnabled();

// min over all pairs (i, j) of |a_i delta b_j|, clamped at `cap`: returns
// `cap` when every pair differs in more than cap - 1 letters (and for
// empty inputs).  Sweeps 32x32 row tiles with the capped early exit
// applied per 256-bit block and a shared best-so-far bound propagated
// across tiles and across shards (a relaxed atomic — the min of a fixed
// pair set is thread-count-independent, the bound only prunes work).
size_t MinDistanceOfSets(const PackedModelMatrix& a,
                         const PackedModelMatrix& b, size_t cap);

// Exact distances |a_row delta b_j| for every j, written to out[0
// .. b.rows()).
void DistanceRow(const PackedModelMatrix& a, size_t row,
                 const PackedModelMatrix& b, uint32_t* out);

// Ascending indices j of p-rows within Hamming distance <= k of at least
// one t-row (the Dalal selection: with k the global minimum, <= k and
// == k coincide).
std::vector<uint32_t> SelectWithinDistance(const PackedModelMatrix& p,
                                           const PackedModelMatrix& t,
                                           size_t k);

// The inclusion-minimal symmetric differences over all pairs
// (delta(T, P) of the paper), in canonical lexicographic order —
// bit-identical to MinimalUnderInclusion over the materialized pairwise
// differences.
std::vector<Interpretation> MinimalDiffsOfSets(const PackedModelMatrix& a,
                                               const PackedModelMatrix& b);

// Ascending indices j of p-rows whose difference with some t-row is a row
// of `delta` (the Satoh selection).  `delta` rows must be unique and
// lexicographically sorted, as MinimalDiffsOfSets returns them.
std::vector<uint32_t> SelectWithDiffInSorted(const PackedModelMatrix& p,
                                             const PackedModelMatrix& t,
                                             const PackedModelMatrix& delta);

// Ascending indices j of p-rows that agree with some t-row outside `mask`
// (the Weber selection: p_j delta t_i subseteq mask).
std::vector<uint32_t> SelectWithinMask(const PackedModelMatrix& p,
                                       const PackedModelMatrix& t,
                                       const Interpretation& mask);

// For each t-row m in turn: indices j of p-rows n with m delta n minimal
// under inclusion among {m delta n' : n' in p} (the Winslett selection).
// m-major concatenation, possibly with repeated j across different m —
// exactly the order the scalar selection loop pushes models.
std::vector<uint32_t> SelectPointwiseMinimalDiffs(const PackedModelMatrix& t,
                                                  const PackedModelMatrix& p);

// For each t-row m in turn: indices j of p-rows at exactly the minimum
// distance min_j |m delta p_j| (the Forbus selection).  m-major, as above.
std::vector<uint32_t> SelectPointwiseMinDistance(const PackedModelMatrix& t,
                                                 const PackedModelMatrix& p);

// Packed MinimalUnderInclusion / MaximalUnderInclusion: the unique
// inclusion-minimal (resp. -maximal) elements of `sets`, in canonical
// lexicographic order.  All elements must have the same size().
std::vector<Interpretation> MinimalInterpretations(
    std::vector<Interpretation> sets);
std::vector<Interpretation> MaximalInterpretations(
    std::vector<Interpretation> sets);

// Bit-mask variants for the formula-based candidate enumeration
// (revision/candidates.cc), where difference sets are <= 64-bit masks:
// the unique inclusion-minimal masks, sorted ascending.
std::vector<uint64_t> MinimalMasks(std::vector<uint64_t> masks);
// Minimum popcount over `masks`; `fallback` for an empty vector.
size_t MinPopcount(const std::vector<uint64_t>& masks, size_t fallback);

}  // namespace revise::kernel

#endif  // REVISE_KERNEL_KERNELS_H_
