// The single ISA seam of the packed kernel layer.
//
// Every primitive here is an exact bit count or an exact word predicate
// over 256-bit blocks (kWordsPerBlock x 64-bit words), so each of the
// three compiled paths — scalar (`off`), portable SWAR (`swar`) and the
// compile-time-dispatched AVX2/NEON path (`native`) — returns bit-for-bit
// the same value.  Which path a translation unit gets is decided by
// REVISE_SIMD_MODE, which src/kernel/CMakeLists.txt sets from the
// REVISE_SIMD cache option (off|swar|native); everything outside
// src/kernel/*.cc compiles without ISA flags and reaches these paths only
// through the kernels' exported functions.
//
//   off     std::popcount word loop — the semantics oracle, no tricks;
//   swar    4-word unrolled Wilkes/Mula-style accumulation: per-word
//           nibble counts summed across the block, one widening multiply
//           per block instead of one per word;
//   native  AVX2 vpshufb nibble-LUT popcount (x86) or vcnt byte counts
//           (NEON) on whole 256-bit blocks, falling back to swar when the
//           compiler advertises neither ISA.
//
// Rows handed to these functions are zero-padded to whole blocks by
// PackedModelMatrix, so reading the full block never changes a count and
// never reads unowned memory.

#ifndef REVISE_KERNEL_SIMD_H_
#define REVISE_KERNEL_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#ifndef REVISE_SIMD_MODE
#define REVISE_SIMD_MODE 1  // default: portable SWAR
#endif

#if REVISE_SIMD_MODE == 2 && defined(__AVX2__)
#define REVISE_SIMD_PATH_AVX2 1
#include <immintrin.h>
#elif REVISE_SIMD_MODE == 2 && defined(__ARM_NEON)
#define REVISE_SIMD_PATH_NEON 1
#include <arm_neon.h>
#endif

namespace revise::kernel {

// Words per block; PackedModelMatrix pads every row to a whole number of
// blocks and aligns rows so a block load never splits a cache line pair.
inline constexpr size_t kWordsPerBlock = 4;

// Human-readable name of the path this translation unit compiled.
static constexpr const char* SimdPathName() {
#if REVISE_SIMD_MODE == 0
  return "off";
#elif defined(REVISE_SIMD_PATH_AVX2)
  return "avx2";
#elif defined(REVISE_SIMD_PATH_NEON)
  return "neon";
#else
  return "swar";
#endif
}

// --- SWAR core ----------------------------------------------------------

// Per-byte population counts of one word (each byte ends up 0..8): the
// classic three-step halving reduction, stopped at byte granularity so
// several words can share one horizontal sum.
static inline uint64_t ByteCounts(uint64_t x) {
  x -= (x >> 1) & 0x5555555555555555ULL;
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  return (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
}

// Popcount of a 4-word block by SWAR accumulation: four byte-count words
// summed (byte lanes reach at most 32), widened to 16-bit lanes (at most
// 64 each, so the 4 x 64 = 256 total cannot overflow the final lane) and
// collapsed with one multiply.
static inline uint64_t SwarPopcountBlock(uint64_t w0, uint64_t w1, uint64_t w2,
                                         uint64_t w3) {
  const uint64_t bytes =
      ByteCounts(w0) + ByteCounts(w1) + ByteCounts(w2) + ByteCounts(w3);
  const uint64_t halves = (bytes & 0x00ff00ff00ff00ffULL) +
                          ((bytes >> 8) & 0x00ff00ff00ff00ffULL);
  return (halves * 0x0001000100010001ULL) >> 48;
}

// --- single-word popcount (all paths exact) -----------------------------

static inline size_t PopcountWord(uint64_t x) {
#if REVISE_SIMD_MODE == 1
  return static_cast<size_t>((ByteCounts(x) * 0x0101010101010101ULL) >> 56);
#else
  return static_cast<size_t>(std::popcount(x));
#endif
}

// --- block primitives ---------------------------------------------------

#if defined(REVISE_SIMD_PATH_AVX2)

static inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

static inline uint64_t HorizontalSum256(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

static inline uint64_t PopcountBlock(const uint64_t* a) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  return HorizontalSum256(Popcount256(v));
}

static inline uint64_t XorPopcountBlock(const uint64_t* a, const uint64_t* b) {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return HorizontalSum256(Popcount256(_mm256_xor_si256(va, vb)));
}

// a subseteq b on one block: (a & ~b) == 0.
static inline bool SubsetBlock(const uint64_t* a, const uint64_t* b) {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return _mm256_testc_si256(vb, va) != 0;  // tests (~b & a) == 0
}

// (x ^ y) & ~mask == 0 on one block: x and y agree outside `mask`.
static inline bool DiffWithinMaskBlock(const uint64_t* x, const uint64_t* y,
                                       const uint64_t* mask) {
  const __m256i vx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x));
  const __m256i vy =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y));
  const __m256i vm =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask));
  return _mm256_testc_si256(vm, _mm256_xor_si256(vx, vy)) != 0;
}

#elif defined(REVISE_SIMD_PATH_NEON)

static inline uint64_t Popcount128(uint8x16_t v) {
  return vaddvq_u8(vcntq_u8(v));
}

static inline uint64_t PopcountBlock(const uint64_t* a) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(a);
  return Popcount128(vld1q_u8(p)) + Popcount128(vld1q_u8(p + 16));
}

static inline uint64_t XorPopcountBlock(const uint64_t* a, const uint64_t* b) {
  const uint8_t* pa = reinterpret_cast<const uint8_t*>(a);
  const uint8_t* pb = reinterpret_cast<const uint8_t*>(b);
  return Popcount128(veorq_u8(vld1q_u8(pa), vld1q_u8(pb))) +
         Popcount128(veorq_u8(vld1q_u8(pa + 16), vld1q_u8(pb + 16)));
}

static inline bool SubsetBlock(const uint64_t* a, const uint64_t* b) {
  const uint8_t* pa = reinterpret_cast<const uint8_t*>(a);
  const uint8_t* pb = reinterpret_cast<const uint8_t*>(b);
  const uint8x16_t stray0 = vbicq_u8(vld1q_u8(pa), vld1q_u8(pb));
  const uint8x16_t stray1 = vbicq_u8(vld1q_u8(pa + 16), vld1q_u8(pb + 16));
  return vmaxvq_u8(vorrq_u8(stray0, stray1)) == 0;
}

static inline bool DiffWithinMaskBlock(const uint64_t* x, const uint64_t* y,
                                       const uint64_t* mask) {
  const uint8_t* px = reinterpret_cast<const uint8_t*>(x);
  const uint8_t* py = reinterpret_cast<const uint8_t*>(y);
  const uint8_t* pm = reinterpret_cast<const uint8_t*>(mask);
  const uint8x16_t stray0 =
      vbicq_u8(veorq_u8(vld1q_u8(px), vld1q_u8(py)), vld1q_u8(pm));
  const uint8x16_t stray1 = vbicq_u8(
      veorq_u8(vld1q_u8(px + 16), vld1q_u8(py + 16)), vld1q_u8(pm + 16));
  return vmaxvq_u8(vorrq_u8(stray0, stray1)) == 0;
}

#elif REVISE_SIMD_MODE == 0

static inline uint64_t PopcountBlock(const uint64_t* a) {
  uint64_t count = 0;
  for (size_t i = 0; i < kWordsPerBlock; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i]));
  }
  return count;
}

static inline uint64_t XorPopcountBlock(const uint64_t* a, const uint64_t* b) {
  uint64_t count = 0;
  for (size_t i = 0; i < kWordsPerBlock; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

static inline bool SubsetBlock(const uint64_t* a, const uint64_t* b) {
  for (size_t i = 0; i < kWordsPerBlock; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

static inline bool DiffWithinMaskBlock(const uint64_t* x, const uint64_t* y,
                                       const uint64_t* mask) {
  for (size_t i = 0; i < kWordsPerBlock; ++i) {
    if (((x[i] ^ y[i]) & ~mask[i]) != 0) return false;
  }
  return true;
}

#else  // SWAR (mode 1, and native without AVX2/NEON)

static inline uint64_t PopcountBlock(const uint64_t* a) {
  return SwarPopcountBlock(a[0], a[1], a[2], a[3]);
}

static inline uint64_t XorPopcountBlock(const uint64_t* a, const uint64_t* b) {
  return SwarPopcountBlock(a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2],
                           a[3] ^ b[3]);
}

static inline bool SubsetBlock(const uint64_t* a, const uint64_t* b) {
  const uint64_t stray = (a[0] & ~b[0]) | (a[1] & ~b[1]) | (a[2] & ~b[2]) |
                         (a[3] & ~b[3]);
  return stray == 0;
}

static inline bool DiffWithinMaskBlock(const uint64_t* x, const uint64_t* y,
                                       const uint64_t* mask) {
  const uint64_t stray =
      ((x[0] ^ y[0]) & ~mask[0]) | ((x[1] ^ y[1]) & ~mask[1]) |
      ((x[2] ^ y[2]) & ~mask[2]) | ((x[3] ^ y[3]) & ~mask[3]);
  return stray == 0;
}

#endif

}  // namespace revise::kernel

#endif  // REVISE_KERNEL_SIMD_H_
