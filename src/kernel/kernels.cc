#include "kernel/kernels.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "kernel/simd.h"
#include "util/check.h"
#include "util/parallel.h"

namespace revise::kernel {

namespace {

// Row tile edge for the pairwise sweeps: 32 rows of up-to-a-few blocks
// keep both tiles resident in L1 while a tile's 32x32 pairs amortize the
// bound refresh.
constexpr size_t kTileRows = 32;
// Below ~2048 pairs (or 8 selection rows) a sweep runs single-shard; the
// same grains the scalar kernels use, so shard decompositions — and with
// them any shard-order-sensitive merge — stay comparable.
constexpr size_t kPairGrain = 2048;
constexpr size_t kSelectionGrain = 8;

std::atomic<bool> g_packed_enabled{true};

// --- row helpers (all lengths in words_used / blocks of the matrices) ---

size_t PairDistance(const uint64_t* x, const uint64_t* y, size_t blocks) {
  size_t count = 0;
  for (size_t b = 0; b < blocks; ++b) {
    count += XorPopcountBlock(x + b * kWordsPerBlock, y + b * kWordsPerBlock);
  }
  return count;
}

// |x delta y| if <= cap, else cap + 1, exiting at the first block that
// pushes the running count past the cap.
size_t PairDistanceCapped(const uint64_t* x, const uint64_t* y, size_t blocks,
                          size_t cap) {
  size_t count = 0;
  for (size_t b = 0; b < blocks; ++b) {
    count += XorPopcountBlock(x + b * kWordsPerBlock, y + b * kWordsPerBlock);
    if (count > cap) return cap + 1;
  }
  return count;
}

size_t RowPopcount(const uint64_t* x, size_t blocks) {
  size_t count = 0;
  for (size_t b = 0; b < blocks; ++b) {
    count += PopcountBlock(x + b * kWordsPerBlock);
  }
  return count;
}

// Interpretation::operator< over packed rows of one width: most
// significant word down, i.e. numeric order of the bit pattern.
bool RowLess(const uint64_t* x, const uint64_t* y, size_t words) {
  for (size_t i = words; i-- > 0;) {
    if (x[i] != y[i]) return x[i] < y[i];
  }
  return false;
}

bool RowEq(const uint64_t* x, const uint64_t* y, size_t words) {
  for (size_t i = 0; i < words; ++i) {
    if (x[i] != y[i]) return false;
  }
  return true;
}

// x subseteq y over whole rows.
bool RowSubset(const uint64_t* x, const uint64_t* y, size_t blocks) {
  for (size_t b = 0; b < blocks; ++b) {
    if (!SubsetBlock(x + b * kWordsPerBlock, y + b * kWordsPerBlock)) {
      return false;
    }
  }
  return true;
}

void AtomicMin(std::atomic<size_t>* best, size_t value) {
  size_t current = best->load(std::memory_order_relaxed);
  while (value < current &&
         !best->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

// Concatenates per-shard index lists in shard order.
std::vector<uint32_t> ConcatIndexShards(
    std::vector<std::vector<uint32_t>> shards) {
  if (shards.size() == 1) return std::move(shards[0]);
  std::vector<uint32_t> merged;
  size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  merged.reserve(total);
  for (const auto& shard : shards) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  return merged;
}

// Shard grain for loops doing |t| work per p-row (or vice versa).
size_t GrainForPairs(size_t inner_rows) {
  return std::max<size_t>(1, kPairGrain / std::max<size_t>(1, inner_rows));
}

// Indices (into m) of the unique inclusion-minimal rows, in lexicographic
// order: the packed mirror of model_set.cc's cardinality-bucket sweep.  A
// proper subset has strictly smaller cardinality, so candidates are only
// tested against minima from strictly smaller popcount buckets.
std::vector<size_t> MinimalRowIndices(const PackedModelMatrix& m) {
  const size_t words = m.words_used();
  const size_t blocks = m.blocks();
  std::vector<size_t> order(m.rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return RowLess(m.row(a), m.row(b), words);
  });
  std::vector<size_t> uniq;
  uniq.reserve(order.size());
  for (const size_t r : order) {
    if (uniq.empty() || !RowEq(m.row(uniq.back()), m.row(r), words)) {
      uniq.push_back(r);
    }
  }
  std::vector<size_t> cards(uniq.size());
  for (size_t i = 0; i < uniq.size(); ++i) {
    cards[i] = RowPopcount(m.row(uniq[i]), blocks);
  }
  std::vector<size_t> by_card(uniq.size());
  std::iota(by_card.begin(), by_card.end(), size_t{0});
  std::stable_sort(by_card.begin(), by_card.end(),
                   [&](size_t a, size_t b) { return cards[a] < cards[b]; });
  std::vector<char> keep(uniq.size(), 0);
  std::vector<size_t> minima;  // row indices of found minima
  size_t i = 0;
  while (i < by_card.size()) {
    const size_t card = cards[by_card[i]];
    const size_t bucket_begin = minima.size();
    for (; i < by_card.size() && cards[by_card[i]] == card; ++i) {
      const uint64_t* candidate = m.row(uniq[by_card[i]]);
      bool minimal = true;
      for (size_t k = 0; k < bucket_begin; ++k) {
        if (RowSubset(m.row(minima[k]), candidate, blocks)) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        keep[by_card[i]] = 1;
        minima.push_back(uniq[by_card[i]]);
      }
    }
  }
  std::vector<size_t> result;
  result.reserve(minima.size());
  for (size_t j = 0; j < uniq.size(); ++j) {
    if (keep[j]) result.push_back(uniq[j]);  // uniq is in lex order
  }
  return result;
}

// Mirror image for maximal rows: sweep popcount buckets downward.
std::vector<size_t> MaximalRowIndices(const PackedModelMatrix& m) {
  const size_t words = m.words_used();
  const size_t blocks = m.blocks();
  std::vector<size_t> order(m.rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return RowLess(m.row(a), m.row(b), words);
  });
  std::vector<size_t> uniq;
  uniq.reserve(order.size());
  for (const size_t r : order) {
    if (uniq.empty() || !RowEq(m.row(uniq.back()), m.row(r), words)) {
      uniq.push_back(r);
    }
  }
  std::vector<size_t> cards(uniq.size());
  for (size_t i = 0; i < uniq.size(); ++i) {
    cards[i] = RowPopcount(m.row(uniq[i]), blocks);
  }
  std::vector<size_t> by_card(uniq.size());
  std::iota(by_card.begin(), by_card.end(), size_t{0});
  std::stable_sort(by_card.begin(), by_card.end(),
                   [&](size_t a, size_t b) { return cards[a] < cards[b]; });
  std::vector<char> keep(uniq.size(), 0);
  std::vector<size_t> maxima;
  size_t i = by_card.size();
  while (i > 0) {
    const size_t card = cards[by_card[i - 1]];
    const size_t bucket_begin = maxima.size();
    for (; i > 0 && cards[by_card[i - 1]] == card; --i) {
      const uint64_t* candidate = m.row(uniq[by_card[i - 1]]);
      bool maximal = true;
      for (size_t k = 0; k < bucket_begin; ++k) {
        if (RowSubset(candidate, m.row(maxima[k]), blocks)) {
          maximal = false;
          break;
        }
      }
      if (maximal) {
        keep[by_card[i - 1]] = 1;
        maxima.push_back(uniq[by_card[i - 1]]);
      }
    }
  }
  std::vector<size_t> result;
  result.reserve(maxima.size());
  for (size_t j = 0; j < uniq.size(); ++j) {
    if (keep[j]) result.push_back(uniq[j]);
  }
  return result;
}

// Materializes selected rows.
std::vector<Interpretation> RowsToInterpretations(
    const PackedModelMatrix& m, const std::vector<size_t>& rows) {
  std::vector<Interpretation> out;
  out.reserve(rows.size());
  for (const size_t r : rows) out.push_back(m.ToInterpretation(r));
  return out;
}

// The unique inclusion-maximal masks, sorted ascending (mirror of
// MinimalMasks).
std::vector<uint64_t> MaximalMasks(std::vector<uint64_t> masks) {
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  if (masks.size() <= 1) return masks;
  std::vector<size_t> cards(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) cards[i] = PopcountWord(masks[i]);
  std::vector<size_t> by_card(masks.size());
  std::iota(by_card.begin(), by_card.end(), size_t{0});
  std::stable_sort(by_card.begin(), by_card.end(),
                   [&](size_t a, size_t b) { return cards[a] < cards[b]; });
  std::vector<char> keep(masks.size(), 0);
  std::vector<uint64_t> maxima;
  size_t i = by_card.size();
  while (i > 0) {
    const size_t card = cards[by_card[i - 1]];
    const size_t bucket_begin = maxima.size();
    for (; i > 0 && cards[by_card[i - 1]] == card; --i) {
      const uint64_t candidate = masks[by_card[i - 1]];
      bool maximal = true;
      for (size_t k = 0; k < bucket_begin; ++k) {
        if ((candidate & ~maxima[k]) == 0) {
          maximal = false;
          break;
        }
      }
      if (maximal) {
        keep[by_card[i - 1]] = 1;
        maxima.push_back(candidate);
      }
    }
  }
  std::vector<uint64_t> result;
  result.reserve(maxima.size());
  for (size_t j = 0; j < masks.size(); ++j) {
    if (keep[j]) result.push_back(masks[j]);
  }
  return result;
}

// First word of an interpretation of <= 64 letters (0 for the empty
// alphabet, whose word vector is empty).
uint64_t Word0(const Interpretation& m) {
  return m.words().empty() ? 0 : m.words()[0];
}

}  // namespace

const char* ActiveSimdPath() { return SimdPathName(); }

void SetPackedKernelsEnabled(bool enabled) {
  g_packed_enabled.store(enabled, std::memory_order_relaxed);
}

bool PackedKernelsEnabled() {
  return g_packed_enabled.load(std::memory_order_relaxed);
}

size_t MinDistanceOfSets(const PackedModelMatrix& a,
                         const PackedModelMatrix& b, size_t cap) {
  REVISE_DCHECK_EQ(a.bits(), b.bits());
  if (a.rows() == 0 || b.rows() == 0) return cap;
  std::atomic<size_t> best{cap};
  const size_t blocks = a.blocks();
  const bool one_word = a.words_used() <= 1;
  const size_t a_tiles = (a.rows() + kTileRows - 1) / kTileRows;
  const size_t grain = GrainForPairs(kTileRows * b.rows());
  ParallelMapRanges<int>(a_tiles, grain, [&](size_t tile_begin,
                                             size_t tile_end) {
    for (size_t tile = tile_begin; tile < tile_end; ++tile) {
      const size_t row_begin = tile * kTileRows;
      const size_t row_end = std::min(a.rows(), row_begin + kTileRows);
      // Refresh the local bound from the shared one once per tile pair;
      // inside a tile the bound is thread-private.
      size_t local = best.load(std::memory_order_relaxed);
      for (size_t col_begin = 0; col_begin < b.rows();
           col_begin += kTileRows) {
        const size_t col_end = std::min(b.rows(), col_begin + kTileRows);
        for (size_t i = row_begin; i < row_end && local > 0; ++i) {
          const uint64_t* x = a.row(i);
          if (one_word) {
            const uint64_t xw = x[0];
            for (size_t j = col_begin; j < col_end; ++j) {
              const size_t d = PopcountWord(xw ^ b.row(j)[0]);
              if (d < local) local = d;
            }
          } else {
            for (size_t j = col_begin; j < col_end && local > 0; ++j) {
              const size_t d =
                  PairDistanceCapped(x, b.row(j), blocks, local - 1);
              if (d < local) local = d;
            }
          }
        }
        AtomicMin(&best, local);
        local = std::min(local, best.load(std::memory_order_relaxed));
        if (local == 0) return 0;
      }
    }
    return 0;
  });
  return best.load(std::memory_order_relaxed);
}

void DistanceRow(const PackedModelMatrix& a, size_t row,
                 const PackedModelMatrix& b, uint32_t* out) {
  REVISE_DCHECK_EQ(a.bits(), b.bits());
  REVISE_DCHECK_LT(row, a.rows());
  const uint64_t* x = a.row(row);
  if (a.words_used() <= 1) {
    const uint64_t xw = x[0];
    for (size_t j = 0; j < b.rows(); ++j) {
      out[j] = static_cast<uint32_t>(PopcountWord(xw ^ b.row(j)[0]));
    }
    return;
  }
  const size_t blocks = a.blocks();
  for (size_t j = 0; j < b.rows(); ++j) {
    out[j] = static_cast<uint32_t>(PairDistance(x, b.row(j), blocks));
  }
}

std::vector<uint32_t> SelectWithinDistance(const PackedModelMatrix& p,
                                           const PackedModelMatrix& t,
                                           size_t k) {
  REVISE_DCHECK_EQ(p.bits(), t.bits());
  const size_t blocks = p.blocks();
  const bool one_word = p.words_used() <= 1;
  return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
      p.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
        std::vector<uint32_t> hits;
        for (size_t j = begin; j < end; ++j) {
          const uint64_t* y = p.row(j);
          const uint64_t yw = y[0];
          for (size_t i = 0; i < t.rows(); ++i) {
            const size_t d =
                one_word ? PopcountWord(yw ^ t.row(i)[0])
                         : PairDistanceCapped(y, t.row(i), blocks, k);
            if (d <= k) {
              hits.push_back(static_cast<uint32_t>(j));
              break;
            }
          }
        }
        return hits;
      }));
}

std::vector<Interpretation> MinimalDiffsOfSets(const PackedModelMatrix& a,
                                               const PackedModelMatrix& b) {
  REVISE_DCHECK_EQ(a.bits(), b.bits());
  if (a.rows() == 0 || b.rows() == 0) return {};
  const size_t bits = a.bits();
  const size_t grain = GrainForPairs(b.rows());
  if (a.words_used() <= 1) {
    // One-word rows: differences are plain uint64 values — prune each
    // shard with MinimalMasks, merge, prune once more.  Ascending value
    // order is lexicographic order at this width.
    std::vector<std::vector<uint64_t>> shards =
        ParallelMapRanges<std::vector<uint64_t>>(
            a.rows(), grain, [&](size_t begin, size_t end) {
              std::vector<uint64_t> diffs;
              diffs.reserve((end - begin) * b.rows());
              for (size_t i = begin; i < end; ++i) {
                const uint64_t xw = a.row(i)[0];
                for (size_t j = 0; j < b.rows(); ++j) {
                  diffs.push_back(xw ^ b.row(j)[0]);
                }
              }
              return MinimalMasks(std::move(diffs));
            });
    std::vector<uint64_t> minimal;
    if (shards.size() == 1) {
      minimal = std::move(shards[0]);
    } else {
      std::vector<uint64_t> merged;
      for (const auto& shard : shards) {
        merged.insert(merged.end(), shard.begin(), shard.end());
      }
      minimal = MinimalMasks(std::move(merged));
    }
    std::vector<Interpretation> result;
    result.reserve(minimal.size());
    for (const uint64_t value : minimal) {
      result.push_back(Interpretation::FromWords(bits, &value));
    }
    return result;
  }
  const size_t stride = a.row_stride();
  std::vector<std::vector<Interpretation>> shards =
      ParallelMapRanges<std::vector<Interpretation>>(
          a.rows(), grain, [&](size_t begin, size_t end) {
            PackedModelMatrix diffs(bits, (end - begin) * b.rows());
            size_t r = 0;
            for (size_t i = begin; i < end; ++i) {
              const uint64_t* x = a.row(i);
              for (size_t j = 0; j < b.rows(); ++j) {
                const uint64_t* y = b.row(j);
                uint64_t* d = diffs.row(r++);
                for (size_t w = 0; w < stride; ++w) d[w] = x[w] ^ y[w];
              }
            }
            return RowsToInterpretations(diffs, MinimalRowIndices(diffs));
          });
  if (shards.size() == 1) return std::move(shards[0]);
  std::vector<Interpretation> merged;
  for (auto& shard : shards) {
    merged.insert(merged.end(), std::make_move_iterator(shard.begin()),
                  std::make_move_iterator(shard.end()));
  }
  return MinimalInterpretations(std::move(merged));
}

std::vector<uint32_t> SelectWithDiffInSorted(const PackedModelMatrix& p,
                                             const PackedModelMatrix& t,
                                             const PackedModelMatrix& delta) {
  REVISE_DCHECK_EQ(p.bits(), t.bits());
  REVISE_DCHECK_EQ(p.bits(), delta.bits());
  const size_t words = p.words_used();
  if (words <= 1) {
    std::vector<uint64_t> sorted_delta;
    sorted_delta.reserve(delta.rows());
    for (size_t d = 0; d < delta.rows(); ++d) {
      sorted_delta.push_back(delta.row(d)[0]);
    }
    REVISE_DCHECK(
        std::is_sorted(sorted_delta.begin(), sorted_delta.end()));
    return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
        p.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
          std::vector<uint32_t> hits;
          for (size_t j = begin; j < end; ++j) {
            const uint64_t yw = p.row(j)[0];
            for (size_t i = 0; i < t.rows(); ++i) {
              if (std::binary_search(sorted_delta.begin(),
                                     sorted_delta.end(),
                                     yw ^ t.row(i)[0])) {
                hits.push_back(static_cast<uint32_t>(j));
                break;
              }
            }
          }
          return hits;
        }));
  }
  const size_t stride = p.row_stride();
  return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
      p.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
        std::vector<uint32_t> hits;
        std::vector<uint64_t> diff(stride, 0);
        for (size_t j = begin; j < end; ++j) {
          const uint64_t* y = p.row(j);
          for (size_t i = 0; i < t.rows(); ++i) {
            const uint64_t* x = t.row(i);
            for (size_t w = 0; w < words; ++w) diff[w] = x[w] ^ y[w];
            size_t lo = 0;
            size_t hi = delta.rows();
            while (lo < hi) {
              const size_t mid = lo + (hi - lo) / 2;
              if (RowLess(delta.row(mid), diff.data(), words)) {
                lo = mid + 1;
              } else {
                hi = mid;
              }
            }
            if (lo < delta.rows() &&
                RowEq(delta.row(lo), diff.data(), words)) {
              hits.push_back(static_cast<uint32_t>(j));
              break;
            }
          }
        }
        return hits;
      }));
}

std::vector<uint32_t> SelectWithinMask(const PackedModelMatrix& p,
                                       const PackedModelMatrix& t,
                                       const Interpretation& mask) {
  REVISE_DCHECK_EQ(p.bits(), t.bits());
  REVISE_DCHECK_EQ(p.bits(), mask.size());
  const size_t blocks = p.blocks();
  // Zero-padded copy of the mask words, one full row's worth.
  std::vector<uint64_t> mask_row(p.row_stride(), 0);
  std::copy(mask.words().begin(), mask.words().end(), mask_row.begin());
  const bool one_word = p.words_used() <= 1;
  const uint64_t outside = ~mask_row[0];
  return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
      p.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
        std::vector<uint32_t> hits;
        for (size_t j = begin; j < end; ++j) {
          const uint64_t* y = p.row(j);
          const uint64_t yw = y[0];
          for (size_t i = 0; i < t.rows(); ++i) {
            bool within;
            if (one_word) {
              within = ((yw ^ t.row(i)[0]) & outside) == 0;
            } else {
              const uint64_t* x = t.row(i);
              within = true;
              for (size_t blk = 0; blk < blocks; ++blk) {
                if (!DiffWithinMaskBlock(x + blk * kWordsPerBlock,
                                         y + blk * kWordsPerBlock,
                                         mask_row.data() +
                                             blk * kWordsPerBlock)) {
                  within = false;
                  break;
                }
              }
            }
            if (within) {
              hits.push_back(static_cast<uint32_t>(j));
              break;
            }
          }
        }
        return hits;
      }));
}

std::vector<uint32_t> SelectPointwiseMinimalDiffs(const PackedModelMatrix& t,
                                                  const PackedModelMatrix& p) {
  REVISE_DCHECK_EQ(t.bits(), p.bits());
  if (p.rows() == 0) return {};
  const size_t bits = t.bits();
  if (t.words_used() <= 1) {
    return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
        t.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
          std::vector<uint32_t> hits;
          std::vector<uint64_t> diffs(p.rows());
          for (size_t i = begin; i < end; ++i) {
            const uint64_t xw = t.row(i)[0];
            for (size_t j = 0; j < p.rows(); ++j) {
              diffs[j] = xw ^ p.row(j)[0];
            }
            const std::vector<uint64_t> mu = MinimalMasks(diffs);
            for (size_t j = 0; j < p.rows(); ++j) {
              if (std::binary_search(mu.begin(), mu.end(), diffs[j])) {
                hits.push_back(static_cast<uint32_t>(j));
              }
            }
          }
          return hits;
        }));
  }
  const size_t words = t.words_used();
  const size_t stride = t.row_stride();
  return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
      t.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
        std::vector<uint32_t> hits;
        PackedModelMatrix diffs(bits, p.rows());
        for (size_t i = begin; i < end; ++i) {
          const uint64_t* x = t.row(i);
          for (size_t j = 0; j < p.rows(); ++j) {
            const uint64_t* y = p.row(j);
            uint64_t* d = diffs.row(j);
            for (size_t w = 0; w < stride; ++w) d[w] = x[w] ^ y[w];
          }
          const std::vector<size_t> mu = MinimalRowIndices(diffs);
          for (size_t j = 0; j < p.rows(); ++j) {
            // mu rows are in lex order; membership by binary search.
            size_t lo = 0;
            size_t hi = mu.size();
            while (lo < hi) {
              const size_t mid = lo + (hi - lo) / 2;
              if (RowLess(diffs.row(mu[mid]), diffs.row(j), words)) {
                lo = mid + 1;
              } else {
                hi = mid;
              }
            }
            if (lo < mu.size() &&
                RowEq(diffs.row(mu[lo]), diffs.row(j), words)) {
              hits.push_back(static_cast<uint32_t>(j));
            }
          }
        }
        return hits;
      }));
}

std::vector<uint32_t> SelectPointwiseMinDistance(const PackedModelMatrix& t,
                                                 const PackedModelMatrix& p) {
  REVISE_DCHECK_EQ(t.bits(), p.bits());
  if (p.rows() == 0) return {};
  return ConcatIndexShards(ParallelMapRanges<std::vector<uint32_t>>(
      t.rows(), kSelectionGrain, [&](size_t begin, size_t end) {
        std::vector<uint32_t> hits;
        std::vector<uint32_t> dist(p.rows());
        for (size_t i = begin; i < end; ++i) {
          DistanceRow(t, i, p, dist.data());
          const uint32_t k = *std::min_element(dist.begin(), dist.end());
          for (size_t j = 0; j < p.rows(); ++j) {
            if (dist[j] == k) hits.push_back(static_cast<uint32_t>(j));
          }
        }
        return hits;
      }));
}

std::vector<Interpretation> MinimalInterpretations(
    std::vector<Interpretation> sets) {
  if (sets.empty()) return {};
  const size_t bits = sets[0].size();
  if (bits <= 64) {
    std::vector<uint64_t> values;
    values.reserve(sets.size());
    for (const Interpretation& m : sets) {
      REVISE_DCHECK_EQ(m.size(), bits);
      values.push_back(Word0(m));
    }
    const std::vector<uint64_t> minimal = MinimalMasks(std::move(values));
    std::vector<Interpretation> result;
    result.reserve(minimal.size());
    for (const uint64_t value : minimal) {
      result.push_back(Interpretation::FromWords(bits, &value));
    }
    return result;
  }
  const PackedModelMatrix packed = PackedModelMatrix::FromModels(bits, sets);
  return RowsToInterpretations(packed, MinimalRowIndices(packed));
}

std::vector<Interpretation> MaximalInterpretations(
    std::vector<Interpretation> sets) {
  if (sets.empty()) return {};
  const size_t bits = sets[0].size();
  if (bits <= 64) {
    std::vector<uint64_t> values;
    values.reserve(sets.size());
    for (const Interpretation& m : sets) {
      REVISE_DCHECK_EQ(m.size(), bits);
      values.push_back(Word0(m));
    }
    const std::vector<uint64_t> maximal = MaximalMasks(std::move(values));
    std::vector<Interpretation> result;
    result.reserve(maximal.size());
    for (const uint64_t value : maximal) {
      result.push_back(Interpretation::FromWords(bits, &value));
    }
    return result;
  }
  const PackedModelMatrix packed = PackedModelMatrix::FromModels(bits, sets);
  return RowsToInterpretations(packed, MaximalRowIndices(packed));
}

std::vector<uint64_t> MinimalMasks(std::vector<uint64_t> masks) {
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  if (masks.size() <= 1) return masks;
  std::vector<size_t> cards(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) cards[i] = PopcountWord(masks[i]);
  std::vector<size_t> by_card(masks.size());
  std::iota(by_card.begin(), by_card.end(), size_t{0});
  std::stable_sort(by_card.begin(), by_card.end(),
                   [&](size_t a, size_t b) { return cards[a] < cards[b]; });
  std::vector<char> keep(masks.size(), 0);
  std::vector<uint64_t> minima;
  size_t i = 0;
  while (i < by_card.size()) {
    const size_t card = cards[by_card[i]];
    const size_t bucket_begin = minima.size();
    for (; i < by_card.size() && cards[by_card[i]] == card; ++i) {
      const uint64_t candidate = masks[by_card[i]];
      bool minimal = true;
      for (size_t k = 0; k < bucket_begin; ++k) {
        if ((minima[k] & ~candidate) == 0) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        keep[by_card[i]] = 1;
        minima.push_back(candidate);
      }
    }
  }
  std::vector<uint64_t> result;
  result.reserve(minima.size());
  for (size_t j = 0; j < masks.size(); ++j) {
    if (keep[j]) result.push_back(masks[j]);
  }
  return result;
}

size_t MinPopcount(const std::vector<uint64_t>& masks, size_t fallback) {
  size_t best = fallback;
  for (const uint64_t mask : masks) {
    best = std::min(best, PopcountWord(mask));
  }
  return best;
}

}  // namespace revise::kernel
