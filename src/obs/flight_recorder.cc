#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace revise::obs {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Stable small thread ids in first-event order, independent of the trace
// layer's ids so recording never perturbs Chrome track numbering.
std::atomic<int> g_next_tid{0};
int ThisThreadTid() {
  thread_local const int tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// The preallocated ring: slots are fixed-size PODs, so recording copies
// bytes under the mutex and never allocates.
struct RecorderState {
  std::vector<FlightEvent> ring;
  size_t capacity = kDefaultFlightRecorderCapacity;
  size_t write_pos = 0;  // oldest record once the ring has wrapped
  uint64_t dropped = 0;
  bool capacity_from_env = false;
};

util::Mutex g_recorder_mu;
// All ring state; callers must hold g_recorder_mu (annotation-checked).
RecorderState& Recorder() REVISE_REQUIRES(g_recorder_mu) {
  static RecorderState* const state = [] {
    auto* created = new RecorderState();
    if (const char* cap = std::getenv("REVISE_FLIGHT_EVENTS");
        cap != nullptr && *cap != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(cap, &end, 10);
      if (end != nullptr && *end == '\0' && parsed > 0) {
        created->capacity = static_cast<size_t>(parsed);
        created->capacity_from_env = true;
      }
    }
    created->ring.reserve(created->capacity);
    return created;
  }();
  return *state;
}

void CopyTruncated(std::string_view text, char* out, size_t out_size) {
  const size_t n = std::min(text.size(), out_size - 1);
  std::memcpy(out, text.data(), n);
  out[n] = '\0';
}

int ProcessId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<int>(::getpid());
#else
  return 0;
#endif
}

// The in-flight operation table: a flat vector ordered by entry time.
// Registration is off the hot path (one FlightOpScope per revision
// operation, not per kernel call), so a mutex-guarded vector is plenty.
util::Mutex g_inflight_mu;
std::vector<InFlightOp>& InFlightTable() REVISE_REQUIRES(g_inflight_mu) {
  static std::vector<InFlightOp>* const table = [] {
    auto* created = new std::vector<InFlightOp>();
    created->reserve(kMaxTrackedInFlightOps);
    return created;
  }();
  return *table;
}

std::atomic<uint64_t> g_next_op_id{1};

void CrashHook(const char* message) {
  DumpFlightRecorder(stderr, message);
  const std::string path = WriteCrashDump(message);
  if (!path.empty()) {
    std::fprintf(stderr, "revise: crash dump written to %s\n", path.c_str());
  }
}

}  // namespace

void InstallFlightRecorderCrashHook() {
  static const bool installed = [] {
    internal_check::SetCrashReportHook(&CrashHook);
    return true;
  }();
  (void)installed;
}

void RecordFlightEvent(std::string_view name, std::string_view detail) {
  InstallFlightRecorderCrashHook();
  FlightEvent event;
  event.t_ns = NowNanos();
  event.tid = ThisThreadTid();
  CopyTruncated(name, event.name, sizeof(event.name));
  CopyTruncated(detail, event.detail, sizeof(event.detail));
  util::MutexLock lock(g_recorder_mu);
  RecorderState& state = Recorder();
  if (state.ring.size() < state.capacity) {
    state.ring.push_back(event);
  } else {
    state.ring[state.write_pos] = event;
    state.write_pos = (state.write_pos + 1) % state.capacity;
    ++state.dropped;
  }
}

void SetFlightRecorderCapacity(size_t capacity) {
  util::MutexLock lock(g_recorder_mu);
  RecorderState& state = Recorder();
  state.capacity = capacity == 0 ? 1 : capacity;
  state.ring.clear();
  state.ring.shrink_to_fit();
  state.ring.reserve(state.capacity);
  state.write_pos = 0;
  state.dropped = 0;
}

size_t FlightRecorderCapacity() {
  util::MutexLock lock(g_recorder_mu);
  return Recorder().capacity;
}

std::vector<FlightEvent> SnapshotFlightEvents() {
  return SnapshotFlightRecorder().events;
}

FlightRecorderStats SnapshotFlightRecorder() {
  util::MutexLock lock(g_recorder_mu);
  const RecorderState& state = Recorder();
  FlightRecorderStats stats;
  stats.dropped = state.dropped;
  if (state.ring.size() < state.capacity || state.write_pos == 0) {
    stats.events = state.ring;
    return stats;
  }
  stats.events.reserve(state.ring.size());
  stats.events.insert(
      stats.events.end(),
      state.ring.begin() + static_cast<ptrdiff_t>(state.write_pos),
      state.ring.end());
  stats.events.insert(
      stats.events.end(), state.ring.begin(),
      state.ring.begin() + static_cast<ptrdiff_t>(state.write_pos));
  return stats;
}

void ClearFlightEvents() {
  util::MutexLock lock(g_recorder_mu);
  RecorderState& state = Recorder();
  state.ring.clear();
  state.write_pos = 0;
  state.dropped = 0;
}

uint64_t FlightEventsDropped() {
  util::MutexLock lock(g_recorder_mu);
  return Recorder().dropped;
}

void DumpFlightRecorder(std::FILE* out, const char* reason) {
  const FlightRecorderStats stats = SnapshotFlightRecorder();
  const std::vector<FlightEvent>& events = stats.events;
  const uint64_t dropped = stats.dropped;
  std::fprintf(out, "=== revise flight recorder (reason: %s) ===\n",
               reason == nullptr ? "unspecified" : reason);
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& event = events[i];
    std::fprintf(out, "  [%4zu] t=%lld ns tid=%d %s%s%s\n", i,
                 static_cast<long long>(event.t_ns), event.tid, event.name,
                 event.detail[0] == '\0' ? "" : " ", event.detail);
  }
  std::fprintf(out,
               "=== end flight recorder (%zu events, %llu overwritten) ===\n",
               events.size(), static_cast<unsigned long long>(dropped));
}

std::vector<InFlightOp> SnapshotInFlightOps() {
  util::MutexLock lock(g_inflight_mu);
  return InFlightTable();
}

std::string FlightRecorderJson(const char* reason) {
  Json recorder = Json::MakeObject();
  recorder["reason"] = reason == nullptr ? "unspecified" : reason;
  const FlightRecorderStats stats = SnapshotFlightRecorder();
  recorder["pid"] = ProcessId();
  recorder["dropped"] = stats.dropped;
  const int64_t now_ns = NowNanos();
  Json in_flight = Json::MakeArray();
  for (const InFlightOp& op : SnapshotInFlightOps()) {
    Json entry = Json::MakeObject();
    entry["id"] = op.id;
    entry["t_ns"] = op.start_ns;
    entry["age_ns"] = now_ns - op.start_ns;
    entry["tid"] = op.tid;
    entry["name"] = op.name;
    in_flight.Append(std::move(entry));
  }
  recorder["in_flight"] = std::move(in_flight);
  Json events = Json::MakeArray();
  for (const FlightEvent& event : stats.events) {
    Json entry = Json::MakeObject();
    entry["t_ns"] = event.t_ns;
    entry["tid"] = event.tid;
    entry["name"] = event.name;
    entry["detail"] = event.detail;
    events.Append(std::move(entry));
  }
  recorder["events"] = std::move(events);
  Json doc = Json::MakeObject();
  doc["flight_recorder"] = std::move(recorder);
  return doc.Dump(/*indent=*/1);
}

std::string WriteFlightDump(const char* reason, const char* file_prefix) {
  std::string path;
  if (const char* dir = std::getenv("REVISE_CRASH_DIR");
      dir != nullptr && *dir != '\0') {
    path.assign(dir);
    if (path.back() != '/') path.push_back('/');
  }
  char name[64];
  std::snprintf(name, sizeof(name), "%s_%d.json", file_prefix, ProcessId());
  path += name;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return {};
  const std::string text = FlightRecorderJson(reason);
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !newline_ok || !close_ok) return {};
  return path;
}

std::string WriteCrashDump(const char* reason) {
  return WriteFlightDump(reason, "crash");
}

FlightOpScope::FlightOpScope(std::string_view op_name) {
  CopyTruncated(op_name, op_name_, sizeof(op_name_));
  REVISE_FLIGHT_EVENT("revise.op_begin", op_name_);
  InFlightOp op;
  op.start_ns = NowNanos();
  op.tid = ThisThreadTid();
  CopyTruncated(op_name, op.name, sizeof(op.name));
  {
    util::MutexLock lock(g_inflight_mu);
    std::vector<InFlightOp>& table = InFlightTable();
    if (table.size() < kMaxTrackedInFlightOps) {
      op.id = g_next_op_id.fetch_add(1, std::memory_order_relaxed);
      id_ = op.id;
      table.push_back(op);
    }
  }
  if (id_ == 0) {
    REVISE_OBS_COUNTER("obs.inflight_ops_dropped").Increment();
  }
}

FlightOpScope::~FlightOpScope() {
  if (id_ != 0) {
    util::MutexLock lock(g_inflight_mu);
    std::vector<InFlightOp>& table = InFlightTable();
    for (size_t i = 0; i < table.size(); ++i) {
      if (table[i].id == id_) {
        table.erase(table.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  REVISE_FLIGHT_EVENT("revise.op_end", op_name_);
}

}  // namespace revise::obs
