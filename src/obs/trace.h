// Scoped RAII timing spans, a monotonic Stopwatch, and timeline export.
//
// A `Span` marks a timed region.  When tracing is off (the default) a
// Span costs one relaxed atomic load at construction and nothing at
// destruction — no string is built, no clock is read.  When a sink is
// installed (SetTraceSink or the REVISE_TRACE environment variable),
// spans record {name, depth, thread, start, duration} into a bounded
// process-wide ring buffer, feed a per-name duration histogram in the
// Registry, and optionally stream to stderr:
//
//   REVISE_TRACE=text           indented human-readable lines on stderr
//   REVISE_TRACE=json           one JSON object per line on stderr
//   REVISE_TRACE=off            collect spans silently (for report.h)
//   REVISE_TRACE=chrome:<path>  collect silently and write a Chrome
//                               Trace Event file (chrome://tracing or
//                               Perfetto loadable) to <path> at exit
//
// The span buffer is a ring of REVISE_TRACE_BUFFER records (default
// 65536): long runs stay bounded, the oldest spans are overwritten, and
// every overwrite increments the `obs.spans_dropped` counter so a
// truncated timeline is self-announcing.
//
// Nesting is tracked with a thread-local depth counter and each thread
// gets a stable small integer id (in first-span order), so the recorded
// spans reconstruct the call tree per thread and export as a
// multi-track timeline.
//
// Spans are additionally causal: every span draws a process-unique id
// and records the id of the innermost span open when it began.  The
// parent context is thread-local but also hops across ThreadPool
// batches (util/parallel.h pool-context hooks), so spans opened inside
// ParallelMapRanges shards link to the operation that spawned them
// instead of starting a fresh depth-0 track, and the whole run
// reconstructs as a single rooted tree.  Cross-thread edges export as
// Chrome flow events.

#ifndef REVISE_OBS_TRACE_H_
#define REVISE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace revise::obs {

// A steady-clock timer, also used by deadline checks in the solve layer.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart();
  // Nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const;
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_ns_ = 0;
};

enum class TraceSink {
  kNone,    // tracing disabled entirely (spans are no-ops)
  kSilent,  // collect spans in the buffer only
  kText,    // buffer + indented text on stderr
  kJson,    // buffer + JSON lines on stderr
  kChrome,  // buffer only; a Chrome trace file is written at exit
};

// Installs a sink.  kNone disables tracing (and is the default unless the
// REVISE_TRACE environment variable says otherwise).
void SetTraceSink(TraceSink sink);
TraceSink GetTraceSink();

// Fast check used by Span construction.
bool TracingEnabled();

// Destination for the Chrome Trace Event export when the kChrome sink is
// active (set from REVISE_TRACE=chrome:<path> or the --trace flag).
void SetChromeTracePath(std::string path);
std::string GetChromeTracePath();

// One finished span as recorded in the buffer.
struct SpanRecord {
  std::string name;
  uint64_t id = 0;         // process-unique, allocated at span entry
  uint64_t parent_id = 0;  // innermost enclosing span; 0 = root
  int depth = 0;           // nesting level within its causal tree, 0 = root
  int tid = 0;             // stable thread id, 0 = first tracing thread
  int64_t start_ns = 0;    // steady-clock time at span entry
  int64_t duration_ns = 0;
};

// The id of the innermost span currently open on this thread (including
// a parent installed by the pool-context hooks); 0 when none.
uint64_t CurrentSpanId();

// Copies the buffered spans (oldest surviving record first, then
// completion order).
std::vector<SpanRecord> SnapshotSpans();
void ClearSpans();

// Replaces the ring capacity (dropping any buffered spans).  Default is
// kDefaultSpanBufferCapacity, overridable with REVISE_TRACE_BUFFER; a
// test hook as much as a tuning knob.  Capacity 0 is clamped to 1.
inline constexpr size_t kDefaultSpanBufferCapacity = 65536;
void SetSpanBufferCapacity(size_t capacity);
size_t SpanBufferCapacity();

// Serializes the current span buffer as a Chrome Trace Event JSON object
// ({"traceEvents": [...]}, "X" complete events, microsecond timestamps
// rebased to the earliest buffered span, one track per thread id).
Status WriteChromeTrace(const std::string& path);

// RAII timed region.  `name` should follow the `subsystem.action`
// convention, e.g. Span span("revise.Dalal");
class Span {
 public:
  explicit Span(std::string_view name) {
    if (TracingEnabled()) Begin(name);
  }
  // Concatenates `prefix` + `suffix` only when tracing is active, so call
  // sites can label spans with runtime names (operator names) for free
  // when tracing is off.
  Span(std::string_view prefix, std::string_view suffix) {
    if (TracingEnabled()) {
      std::string name(prefix);
      name += suffix;
      Begin(name);
    }
  }
  ~Span() {
    if (active_) End();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // This span's id while active; 0 when tracing was off at construction.
  uint64_t id() const { return id_; }

 private:
  void Begin(std::string_view name);
  void End();

  bool active_ = false;
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  int depth_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace revise::obs

#endif  // REVISE_OBS_TRACE_H_
