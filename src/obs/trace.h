// Scoped RAII timing spans and a monotonic Stopwatch.
//
// A `Span` marks a timed region.  When tracing is off (the default) a
// Span costs one relaxed atomic load at construction and nothing at
// destruction — no string is built, no clock is read.  When a sink is
// installed (SetTraceSink or the REVISE_TRACE environment variable),
// spans record {name, depth, start, duration} into a process-wide buffer
// and optionally stream to stderr:
//
//   REVISE_TRACE=text   indented human-readable lines on stderr
//   REVISE_TRACE=json   one JSON object per line on stderr
//   REVISE_TRACE=off    collect spans silently (available to report.h)
//
// Nesting is tracked with a thread-local depth counter, so the recorded
// spans reconstruct the call tree per thread.

#ifndef REVISE_OBS_TRACE_H_
#define REVISE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace revise::obs {

// A steady-clock timer, also used by deadline checks in the solve layer.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart();
  // Nanoseconds since construction or the last Restart().
  int64_t ElapsedNanos() const;
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  int64_t start_ns_ = 0;
};

enum class TraceSink {
  kNone,    // tracing disabled entirely (spans are no-ops)
  kSilent,  // collect spans in the buffer only
  kText,    // buffer + indented text on stderr
  kJson,    // buffer + JSON lines on stderr
};

// Installs a sink.  kNone disables tracing (and is the default unless the
// REVISE_TRACE environment variable says otherwise).
void SetTraceSink(TraceSink sink);
TraceSink GetTraceSink();

// Fast check used by Span construction.
bool TracingEnabled();

// One finished span as recorded in the buffer.
struct SpanRecord {
  std::string name;
  int depth = 0;           // nesting level within its thread, 0 = root
  int64_t start_ns = 0;    // steady-clock time at span entry
  int64_t duration_ns = 0;
};

// Copies the buffered spans (in completion order).
std::vector<SpanRecord> SnapshotSpans();
void ClearSpans();

// RAII timed region.  `name` should follow the `subsystem.action`
// convention, e.g. Span span("revise.Dalal");
class Span {
 public:
  explicit Span(std::string_view name) {
    if (TracingEnabled()) Begin(name);
  }
  // Concatenates `prefix` + `suffix` only when tracing is active, so call
  // sites can label spans with runtime names (operator names) for free
  // when tracing is off.
  Span(std::string_view prefix, std::string_view suffix) {
    if (TracingEnabled()) {
      std::string name(prefix);
      name += suffix;
      Begin(name);
    }
  }
  ~Span() {
    if (active_) End();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Begin(std::string_view name);
  void End();

  bool active_ = false;
  std::string name_;
  int depth_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace revise::obs

#endif  // REVISE_OBS_TRACE_H_
