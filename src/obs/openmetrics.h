// OpenMetrics exposition of the instrument registry, plus the matching
// round-trip parser.
//
// RenderOpenMetrics turns the live Registry (counters, gauges,
// log-bucketed histograms) into spec-compliant OpenMetrics text:
//
//   # TYPE revise_build info
//   revise_build_info{git_sha="...",compiler="...",build_type="..."} 1
//   # TYPE obs_uptime_seconds gauge
//   obs_uptime_seconds 42
//   # TYPE sat_conflicts counter
//   sat_conflicts_total 123
//   # TYPE revise_dalal histogram
//   revise_dalal_bucket{le="4.0"} 2
//   revise_dalal_bucket{le="+Inf"} 9
//   revise_dalal_count 9
//   revise_dalal_sum 55
//   # EOF
//
// Counters expose the mandatory `_total` sample, histograms expose
// cumulative `le` buckets (only the octave cells that actually hold
// samples, so the 496-bucket layout stays compact on the wire) plus
// `_count`/`_sum`, and a `revise_build` info metric carries the build
// provenance as labels.  Instrument names are `subsystem.metric`
// (enforced by tools/revise_lint); SanitizeMetricName maps them onto
// the OpenMetrics grammar ('.' -> '_'), and the lint obs-name rule
// rejects names that would not survive the mapping (leading digit or
// underscore).  Label values are escaped per the spec (backslash,
// double quote, newline).
//
// ParseOpenMetrics reads the exposition back into typed maps and
// validates the structural invariants (TYPE before samples, cumulative
// bucket monotonicity, +Inf bucket equal to _count) — tests round-trip
// every metric kind through it, and the statsz CI smoke job validates a
// live /metrics scrape with the same code (tools/revise_om_check.cc).
//
// MetricsSnapshotJson is the JSON twin of the exposition, reusing the
// schema-v2 section shapes from obs/report.h so a /metrics.json poll
// and an offline report diff cleanly.

#ifndef REVISE_OBS_OPENMETRICS_H_
#define REVISE_OBS_OPENMETRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace revise::obs {

// Maps `subsystem.metric` onto the OpenMetrics name grammar
// [a-zA-Z_][a-zA-Z0-9_]*: '.' becomes '_', any other out-of-grammar
// byte becomes '_' too.  The obs-name lint rule guarantees registered
// names start with a lowercase letter, so the mapping never needs a
// prefix and is injective over lint-clean names that do not mix '_'
// and '.' at the same positions.
std::string SanitizeMetricName(std::string_view name);

// Escapes a label value per the OpenMetrics ABNF: backslash, double
// quote, and newline become \\, \" and \n.  No surrounding quotes.
std::string EscapeLabelValue(std::string_view value);

struct OpenMetricsOptions {
  // Include the process-level block: the revise_build info metric, a
  // refreshed obs.uptime_seconds gauge, and the mem_peak_rss_bytes /
  // mem_current_rss_bytes gauges.  Tests rendering a local Registry
  // turn this off to stay deterministic.
  bool include_process = true;
};

// Renders `registry` as OpenMetrics text, terminated by "# EOF\n".
std::string RenderOpenMetricsFrom(const Registry& registry,
                                  const OpenMetricsOptions& options = {});

// The process-wide registry (what /metrics and the periodic dump serve).
std::string RenderOpenMetrics(const OpenMetricsOptions& options = {});

// The JSON snapshot twin: {"schema_version": 2, "schema_minor": ...,
// "uptime_seconds": ..., "counters": {...}, "gauges": {...},
// "histograms": {...}, "memory": {...}} with the same section shapes as
// a schema-v2 report.
Json MetricsSnapshotJson();

// --- round-trip parser -------------------------------------------------

struct ParsedHistogram {
  // (le, cumulative count) in declaration order; the +Inf bucket is
  // recorded with le = infinity.
  std::vector<std::pair<double, uint64_t>> cumulative_buckets;
  uint64_t count = 0;
  uint64_t sum = 0;
  bool has_count = false;
  bool has_sum = false;
};

struct ParsedMetrics {
  std::map<std::string, uint64_t> counters;          // by exposition name
  std::map<std::string, int64_t> gauges;
  std::map<std::string, ParsedHistogram> histograms;
  // info metrics: name -> label map.
  std::map<std::string, std::map<std::string, std::string>> infos;
  bool saw_eof = false;
};

// Parses an OpenMetrics exposition produced by RenderOpenMetrics (one
// metric point per family, no timestamps).  Returns kInvalidArgument
// with a line number on: samples without a preceding TYPE, unknown
// sample suffixes for the declared type, malformed label syntax,
// non-monotone cumulative buckets, a +Inf bucket disagreeing with
// _count, or a missing "# EOF" terminator.
StatusOr<ParsedMetrics> ParseOpenMetrics(std::string_view text);

}  // namespace revise::obs

#endif  // REVISE_OBS_OPENMETRICS_H_
