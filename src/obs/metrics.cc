#include "obs/metrics.h"

#include <chrono>

namespace revise::obs {

namespace {

int64_t NowSteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Captured at load time (dynamic initialization), before main and any
// instrumented work, so uptime measures the whole process lifetime.
const int64_t g_process_start_ns = NowSteadyNanos();

}  // namespace

int64_t ProcessStartNanos() { return g_process_start_ns; }

double ProcessUptimeSeconds() {
  return static_cast<double>(NowSteadyNanos() - g_process_start_ns) * 1e-9;
}

int64_t TouchUptimeGauge() {
  const int64_t seconds =
      (NowSteadyNanos() - g_process_start_ns) / 1000000000;
  REVISE_OBS_GAUGE("obs.uptime_seconds").Set(seconds);
  return seconds;
}

Registry& Registry::Global() {
  static Registry* const registry = new Registry();  // leaked, never destroyed
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    std::string key(name);
    auto counter = std::unique_ptr<Counter>(new Counter(key));
    it = counters_.emplace(std::move(key), std::move(counter)).first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    std::string key(name);
    auto gauge = std::unique_ptr<Gauge>(new Gauge(key));
    it = gauges_.emplace(std::move(key), std::move(gauge)).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  util::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    std::string key(name);
    auto histogram = std::unique_ptr<Histogram>(new Histogram(key));
    it = histograms_.emplace(std::move(key), std::move(histogram)).first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, uint64_t>> Registry::SnapshotCounters()
    const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> snapshot;
  snapshot.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.emplace_back(name, counter->Value());
  }
  return snapshot;
}

std::vector<std::pair<std::string, int64_t>> Registry::SnapshotGauges() const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<std::string, int64_t>> snapshot;
  snapshot.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.emplace_back(name, gauge->Value());
  }
  return snapshot;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
Registry::SnapshotHistograms() const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> snapshot;
  snapshot.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    if (histogram->Count() == 0) continue;
    snapshot.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void Registry::ResetAll() {
  util::MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace revise::obs
