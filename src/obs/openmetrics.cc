#include "obs/openmetrics.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/memory.h"
#include "obs/report.h"

namespace revise::obs {

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9');
}

void AppendU64(std::string* out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  *out += buffer;
}

void AppendI64(std::string* out, int64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  *out += buffer;
}

// `le` label values are canonical floats per the spec; bucket bounds
// are integers, so append ".0" rather than round-tripping through
// double (which would lose precision past 2^53).
void AppendLe(std::string* out, uint64_t bound) {
  AppendU64(out, bound);
  *out += ".0";
}

void AppendHistogram(std::string* out, const std::string& family,
                     const HistogramSnapshot& snapshot) {
  *out += "# TYPE " + family + " histogram\n";
  uint64_t cumulative = 0;
  for (const auto& [bound, cell_count] : snapshot.buckets) {
    cumulative += cell_count;
    *out += family + "_bucket{le=\"";
    AppendLe(out, bound);
    *out += "\"} ";
    AppendU64(out, cumulative);
    *out += "\n";
  }
  // The spec requires the +Inf bucket and requires it to equal _count;
  // both use the cell total so the invariant holds even when count_
  // leads the cells under concurrent writers (histogram.h).
  *out += family + "_bucket{le=\"+Inf\"} ";
  AppendU64(out, snapshot.bucket_total);
  *out += "\n" + family + "_count ";
  AppendU64(out, snapshot.bucket_total);
  *out += "\n" + family + "_sum ";
  AppendU64(out, snapshot.sum);
  *out += "\n";
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string sanitized;
  sanitized.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = i == 0 ? IsNameStart(c) : IsNameChar(c);
    sanitized.push_back(ok ? c : '_');
  }
  return sanitized;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped.push_back(c);
    }
  }
  return escaped;
}

std::string RenderOpenMetricsFrom(const Registry& registry,
                                  const OpenMetricsOptions& options) {
  std::string out;
  if (options.include_process) {
    TouchUptimeGauge();
    const Json manifest = BuildManifest();
    out += "# TYPE revise_build info\n";
    out += "revise_build_info{git_sha=\"";
    out += EscapeLabelValue(manifest.Find("git_sha")->AsString());
    out += "\",compiler=\"";
    out += EscapeLabelValue(manifest.Find("compiler")->AsString());
    out += "\",build_type=\"";
    out += EscapeLabelValue(manifest.Find("build_type")->AsString());
    out += "\"} 1\n";
    // The RSS figures live outside the registry (obs/memory.h); expose
    // them as gauges so a scrape sees the same numbers as the report's
    // memory section.
    const Json memory = MemoryStats::ToJson();
    out += "# TYPE mem_peak_rss_bytes gauge\nmem_peak_rss_bytes ";
    AppendU64(&out, memory.Find("peak_rss_bytes")->AsUint());
    out += "\n# TYPE mem_current_rss_bytes gauge\nmem_current_rss_bytes ";
    AppendU64(&out, memory.Find("current_rss_bytes")->AsUint());
    out += "\n";
  }
  for (const auto& [name, value] : registry.SnapshotCounters()) {
    const std::string family = SanitizeMetricName(name);
    out += "# TYPE " + family + " counter\n" + family + "_total ";
    AppendU64(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : registry.SnapshotGauges()) {
    const std::string family = SanitizeMetricName(name);
    out += "# TYPE " + family + " gauge\n" + family + " ";
    AppendI64(&out, value);
    out += "\n";
  }
  for (const auto& [name, snapshot] : registry.SnapshotHistograms()) {
    AppendHistogram(&out, SanitizeMetricName(name), snapshot);
  }
  out += "# EOF\n";
  return out;
}

std::string RenderOpenMetrics(const OpenMetricsOptions& options) {
  return RenderOpenMetricsFrom(Registry::Global(), options);
}

Json MetricsSnapshotJson() {
  Json doc = Json::MakeObject();
  doc["schema_version"] = kSchemaVersion;
  doc["schema_minor"] = kSchemaMinor;
  doc["uptime_seconds"] = ProcessUptimeSeconds();
  TouchUptimeGauge();
  Json counters = Json::MakeObject();
  for (const auto& [name, value] : Registry::Global().SnapshotCounters()) {
    counters[name] = value;
  }
  doc["counters"] = std::move(counters);
  Json gauges = Json::MakeObject();
  for (const auto& [name, value] : Registry::Global().SnapshotGauges()) {
    gauges[name] = value;
  }
  doc["gauges"] = std::move(gauges);
  Json histograms = Json::MakeObject();
  for (const auto& [name, snapshot] :
       Registry::Global().SnapshotHistograms()) {
    Json entry = Json::MakeObject();
    entry["count"] = snapshot.count;
    entry["sum"] = snapshot.sum;
    entry["min"] = snapshot.min;
    entry["max"] = snapshot.max;
    entry["mean"] = snapshot.Mean();
    entry["p50"] = snapshot.p50;
    entry["p90"] = snapshot.p90;
    entry["p99"] = snapshot.p99;
    histograms[name] = std::move(entry);
  }
  doc["histograms"] = std::move(histograms);
  doc["memory"] = MemoryStats::ToJson();
  return doc;
}

// --- parser ------------------------------------------------------------

namespace {

Status ParseError(size_t line, const std::string& message) {
  return InvalidArgumentError("openmetrics line " + std::to_string(line) +
                              ": " + message);
}

// Splits a `key="value"` label list (the text between the braces) into
// a map, undoing the exposition escapes.
StatusOr<std::map<std::string, std::string>> ParseLabels(
    std::string_view text, size_t line) {
  std::map<std::string, std::string> labels;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eq = text.find('=', pos);
    if (eq == std::string_view::npos) {
      return ParseError(line, "label without '='");
    }
    const std::string key(text.substr(pos, eq - pos));
    if (key.empty() || !IsNameStart(key[0])) {
      return ParseError(line, "bad label name '" + key + "'");
    }
    if (eq + 1 >= text.size() || text[eq + 1] != '"') {
      return ParseError(line, "label value must be quoted");
    }
    std::string value;
    size_t i = eq + 2;
    bool closed = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '\\') {
        if (i + 1 >= text.size()) {
          return ParseError(line, "dangling escape in label value");
        }
        const char next = text[++i];
        if (next == 'n') {
          value.push_back('\n');
        } else if (next == '\\' || next == '"') {
          value.push_back(next);
        } else {
          return ParseError(line, "unknown escape in label value");
        }
      } else if (c == '"') {
        closed = true;
        ++i;
        break;
      } else {
        value.push_back(c);
      }
    }
    if (!closed) return ParseError(line, "unterminated label value");
    labels.emplace(key, std::move(value));
    if (i < text.size()) {
      if (text[i] != ',') {
        return ParseError(line, "expected ',' between labels");
      }
      ++i;
    }
    pos = i;
  }
  return labels;
}

enum class FamilyType { kNone, kCounter, kGauge, kHistogram, kInfo };

Status ValidateHistogram(const std::string& family,
                         const ParsedHistogram& histogram, size_t line) {
  uint64_t previous = 0;
  double previous_le = -std::numeric_limits<double>::infinity();
  bool saw_inf = false;
  uint64_t inf_count = 0;
  for (const auto& [le, cumulative] : histogram.cumulative_buckets) {
    if (le <= previous_le) {
      return ParseError(line, family + ": bucket le values not increasing");
    }
    if (cumulative < previous) {
      return ParseError(line,
                        family + ": cumulative bucket counts decreased");
    }
    previous = cumulative;
    previous_le = le;
    if (le == std::numeric_limits<double>::infinity()) {
      saw_inf = true;
      inf_count = cumulative;
    }
  }
  if (!histogram.cumulative_buckets.empty() && !saw_inf) {
    return ParseError(line, family + ": missing +Inf bucket");
  }
  if (saw_inf && histogram.has_count && inf_count != histogram.count) {
    return ParseError(line, family + ": +Inf bucket != _count");
  }
  return Status::Ok();
}

StatusOr<uint64_t> ParseU64(std::string_view text, size_t line) {
  if (text.empty()) return ParseError(line, "missing value");
  char* end = nullptr;
  const std::string copy(text);
  errno = 0;
  const unsigned long long value = std::strtoull(copy.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return ParseError(line, "bad unsigned value '" + copy + "'");
  }
  return static_cast<uint64_t>(value);
}

StatusOr<int64_t> ParseI64(std::string_view text, size_t line) {
  if (text.empty()) return ParseError(line, "missing value");
  char* end = nullptr;
  const std::string copy(text);
  errno = 0;
  const long long value = std::strtoll(copy.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return ParseError(line, "bad integer value '" + copy + "'");
  }
  return static_cast<int64_t>(value);
}

}  // namespace

StatusOr<ParsedMetrics> ParseOpenMetrics(std::string_view text) {
  ParsedMetrics parsed;
  std::string family;
  FamilyType type = FamilyType::kNone;
  size_t family_line = 0;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    if (line.empty()) continue;
    if (parsed.saw_eof) {
      return ParseError(line_number, "content after # EOF");
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        parsed.saw_eof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        // Close out the previous histogram family before switching.
        if (type == FamilyType::kHistogram) {
          if (const Status status = ValidateHistogram(
                  family, parsed.histograms[family], line_number);
              !status.ok()) {
            return status;
          }
        }
        const std::string_view rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return ParseError(line_number, "malformed TYPE line");
        }
        family = std::string(rest.substr(0, space));
        const std::string_view kind = rest.substr(space + 1);
        if (kind == "counter") {
          type = FamilyType::kCounter;
        } else if (kind == "gauge") {
          type = FamilyType::kGauge;
        } else if (kind == "histogram") {
          type = FamilyType::kHistogram;
        } else if (kind == "info") {
          type = FamilyType::kInfo;
        } else {
          return ParseError(line_number,
                            "unsupported type '" + std::string(kind) + "'");
        }
        family_line = line_number;
        continue;
      }
      continue;  // # HELP / # UNIT: tolerated, unused
    }
    // A sample line: name[{labels}] value
    size_t name_end = 0;
    while (name_end < line.size() && IsNameChar(line[name_end])) ++name_end;
    if (name_end == 0) return ParseError(line_number, "missing sample name");
    const std::string_view sample_name = line.substr(0, name_end);
    std::map<std::string, std::string> labels;
    size_t value_start = name_end;
    if (value_start < line.size() && line[value_start] == '{') {
      const size_t close = line.find('}', value_start);
      if (close == std::string_view::npos) {
        return ParseError(line_number, "unterminated label set");
      }
      StatusOr<std::map<std::string, std::string>> parsed_labels =
          ParseLabels(line.substr(value_start + 1, close - value_start - 1),
                      line_number);
      if (!parsed_labels.ok()) return parsed_labels.status();
      labels = std::move(parsed_labels).value();
      value_start = close + 1;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    const std::string_view value_text = line.substr(value_start);
    if (type == FamilyType::kNone) {
      return ParseError(line_number, "sample before any # TYPE");
    }
    if (sample_name.substr(0, family.size()) != family) {
      return ParseError(line_number, "sample '" + std::string(sample_name) +
                                         "' outside family '" + family +
                                         "'");
    }
    const std::string_view suffix = sample_name.substr(family.size());
    switch (type) {
      case FamilyType::kCounter: {
        if (suffix != "_total") {
          return ParseError(line_number,
                            "counter sample must end in _total");
        }
        StatusOr<uint64_t> value = ParseU64(value_text, line_number);
        if (!value.ok()) return value.status();
        parsed.counters[family] = *value;
        break;
      }
      case FamilyType::kGauge: {
        if (!suffix.empty()) {
          return ParseError(line_number, "gauge sample must be bare");
        }
        StatusOr<int64_t> value = ParseI64(value_text, line_number);
        if (!value.ok()) return value.status();
        parsed.gauges[family] = *value;
        break;
      }
      case FamilyType::kHistogram: {
        ParsedHistogram& histogram = parsed.histograms[family];
        if (suffix == "_bucket") {
          const auto le = labels.find("le");
          if (le == labels.end()) {
            return ParseError(line_number, "bucket without le label");
          }
          double bound = 0;
          if (le->second == "+Inf") {
            bound = std::numeric_limits<double>::infinity();
          } else {
            char* end = nullptr;
            bound = std::strtod(le->second.c_str(), &end);
            if (end == nullptr || *end != '\0') {
              return ParseError(line_number,
                                "bad le value '" + le->second + "'");
            }
          }
          StatusOr<uint64_t> value = ParseU64(value_text, line_number);
          if (!value.ok()) return value.status();
          histogram.cumulative_buckets.emplace_back(bound, *value);
        } else if (suffix == "_count") {
          StatusOr<uint64_t> value = ParseU64(value_text, line_number);
          if (!value.ok()) return value.status();
          histogram.count = *value;
          histogram.has_count = true;
        } else if (suffix == "_sum") {
          StatusOr<uint64_t> value = ParseU64(value_text, line_number);
          if (!value.ok()) return value.status();
          histogram.sum = *value;
          histogram.has_sum = true;
        } else {
          return ParseError(line_number, "unknown histogram sample suffix");
        }
        break;
      }
      case FamilyType::kInfo: {
        if (suffix != "_info") {
          return ParseError(line_number, "info sample must end in _info");
        }
        if (value_text != "1") {
          return ParseError(line_number, "info sample value must be 1");
        }
        parsed.infos[family] = std::move(labels);
        break;
      }
      case FamilyType::kNone:
        break;  // unreachable; handled above
    }
  }
  if (type == FamilyType::kHistogram) {
    if (const Status status = ValidateHistogram(
            family, parsed.histograms[family], family_line);
        !status.ok()) {
      return status;
    }
  }
  if (!parsed.saw_eof) {
    return InvalidArgumentError("openmetrics: missing # EOF terminator");
  }
  return parsed;
}

}  // namespace revise::obs
