#include "obs/report.h"

#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/parallel.h"

#if defined(__unix__) || defined(__APPLE__)
extern char** environ;
#endif

#ifndef REVISE_GIT_SHA
#define REVISE_GIT_SHA "unknown"
#endif
#ifndef REVISE_BUILD_TYPE
#define REVISE_BUILD_TYPE "unknown"
#endif

namespace revise::obs {

Json BuildManifest() {
  Json manifest = Json::MakeObject();
  manifest["git_sha"] = REVISE_GIT_SHA;
#if defined(__clang__)
  manifest["compiler"] = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  manifest["compiler"] = std::string("gcc ") + __VERSION__;
#else
  manifest["compiler"] = "unknown";
#endif
  manifest["build_type"] = REVISE_BUILD_TYPE;
  manifest["threads"] = static_cast<uint64_t>(ParallelThreads());
  manifest["hardware_threads"] =
      static_cast<uint64_t>(std::thread::hardware_concurrency());
  manifest["process_start_ns"] = ProcessStartNanos();
  manifest["uptime_seconds"] = ProcessUptimeSeconds();
  TouchUptimeGauge();
  Json env = Json::MakeObject();
#if defined(__unix__) || defined(__APPLE__)
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const std::string_view var(*entry);
    if (var.rfind("REVISE_", 0) != 0) continue;
    const size_t eq = var.find('=');
    if (eq == std::string_view::npos) continue;
    env[var.substr(0, eq)] = var.substr(eq + 1);
  }
#endif
  manifest["env"] = std::move(env);
  return manifest;
}

void Report::SetMeta(std::string_view key, Json value) {
  meta_[key] = std::move(value);
}

Report::Table* Report::FindTable(std::string_view table) {
  for (Table& t : tables_) {
    if (t.name == table) return &t;
  }
  return nullptr;
}

void Report::AddTable(std::string_view table,
                      std::vector<std::string> columns) {
  if (Table* existing = FindTable(table)) {
    existing->columns = std::move(columns);
    return;
  }
  tables_.push_back(Table{std::string(table), std::move(columns), {}});
}

void Report::AddRow(std::string_view table, std::vector<Json> row) {
  Table* t = FindTable(table);
  if (t == nullptr) {
    tables_.push_back(Table{std::string(table), {}, {}});
    t = &tables_.back();
  }
  t->rows.push_back(std::move(row));
}

void Report::AddSeries(std::string_view series, std::vector<double> values,
                       std::string_view verdict) {
  series_.push_back(
      Series{std::string(series), std::move(values), std::string(verdict)});
}

Json Report::ToJson() const {
  Json doc = Json::MakeObject();
  doc["schema_version"] = kSchemaVersion;
  doc["schema_minor"] = kSchemaMinor;
  doc["name"] = name_;
  doc["manifest"] = BuildManifest();
  doc["meta"] = meta_;

  Json tables = Json::MakeArray();
  for (const Table& table : tables_) {
    Json entry = Json::MakeObject();
    entry["name"] = table.name;
    Json columns = Json::MakeArray();
    for (const std::string& column : table.columns) columns.Append(column);
    entry["columns"] = std::move(columns);
    Json rows = Json::MakeArray();
    for (const std::vector<Json>& row : table.rows) {
      Json cells = Json::MakeArray();
      for (const Json& cell : row) cells.Append(cell);
      rows.Append(std::move(cells));
    }
    entry["rows"] = std::move(rows);
    tables.Append(std::move(entry));
  }
  doc["tables"] = std::move(tables);

  Json series = Json::MakeArray();
  for (const Series& s : series_) {
    Json entry = Json::MakeObject();
    entry["name"] = s.name;
    Json values = Json::MakeArray();
    for (const double value : s.values) values.Append(value);
    entry["values"] = std::move(values);
    entry["verdict"] = s.verdict;
    series.Append(std::move(entry));
  }
  doc["series"] = std::move(series);

  Json counters = Json::MakeObject();
  for (const auto& [name, value] : Registry::Global().SnapshotCounters()) {
    counters[name] = value;
  }
  doc["counters"] = std::move(counters);

  Json gauges = Json::MakeObject();
  for (const auto& [name, value] : Registry::Global().SnapshotGauges()) {
    gauges[name] = value;
  }
  doc["gauges"] = std::move(gauges);

  Json histograms = Json::MakeObject();
  for (const auto& [name, snapshot] :
       Registry::Global().SnapshotHistograms()) {
    Json entry = Json::MakeObject();
    entry["count"] = snapshot.count;
    entry["sum"] = snapshot.sum;
    entry["min"] = snapshot.min;
    entry["max"] = snapshot.max;
    entry["mean"] = snapshot.Mean();
    entry["p50"] = snapshot.p50;
    entry["p90"] = snapshot.p90;
    entry["p99"] = snapshot.p99;
    histograms[name] = std::move(entry);
  }
  doc["histograms"] = std::move(histograms);

  doc["memory"] = MemoryStats::ToJson();

  Json spans = Json::MakeArray();
  for (const SpanRecord& span : SnapshotSpans()) {
    Json entry = Json::MakeObject();
    entry["name"] = span.name;
    entry["id"] = span.id;
    entry["parent_id"] = span.parent_id;
    entry["depth"] = span.depth;
    entry["tid"] = span.tid;
    entry["start_ns"] = span.start_ns;
    entry["duration_ns"] = span.duration_ns;
    spans.Append(std::move(entry));
  }
  doc["spans"] = std::move(spans);

  doc["profiles"] = ProfileForestToJson();

  return doc;
}

Status Report::WriteToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("cannot open report file: " + path);
  }
  const std::string text = ToJson().Dump(/*indent=*/2);
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !newline_ok || !close_ok) {
    return InternalError("short write to report file: " + path);
  }
  return Status::Ok();
}

}  // namespace revise::obs
