#include "obs/histogram.h"

namespace revise::obs {

namespace {

// Smallest bucket upper bound at which the cumulative count reaches
// `rank` (1-based).  `rank` must be <= the total count in `buckets`.
uint64_t ValueAtRank(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    uint64_t rank) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(buckets.size() - 1);
}

uint64_t RankOf(double quantile, uint64_t count) {
  const double exact = quantile * static_cast<double>(count);
  uint64_t rank = static_cast<uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;  // ceil
  if (rank == 0) rank = 1;
  return rank > count ? count : rank;
}

}  // namespace

HistogramSnapshot Histogram::Snapshot() const {
  // Copy the cells once; quantiles are then computed from one view.  The
  // copy is not atomic across cells, so under concurrent writers the
  // bucket total may lag count_ — quantile ranks are clamped to the
  // bucket total to stay well-defined.
  std::array<uint64_t, kNumBuckets> cells{};
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cells[i] = buckets_[i].load(std::memory_order_relaxed);
    bucket_total += cells[i];
  }
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t seen_min = min_.load(std::memory_order_relaxed);
  snapshot.min = seen_min == ~uint64_t{0} ? 0 : seen_min;
  snapshot.max = max_.load(std::memory_order_relaxed);
  if (bucket_total > 0) {
    snapshot.p50 = ValueAtRank(cells, RankOf(0.50, bucket_total));
    snapshot.p90 = ValueAtRank(cells, RankOf(0.90, bucket_total));
    snapshot.p99 = ValueAtRank(cells, RankOf(0.99, bucket_total));
  }
  snapshot.bucket_total = bucket_total;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (cells[i] != 0) {
      snapshot.buckets.emplace_back(BucketUpperBound(i), cells[i]);
    }
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace revise::obs
