// A lock-cheap log-bucketed histogram of non-negative integer samples.
//
// The paper's empirical story is about *distributions* of sizes and
// durations (model-set cardinalities, prime-implicant counts, span
// durations), not just sums: a mean hides the 2^m blowup rows that
// matter.  Histogram records samples into geometrically spaced buckets
// (HdrHistogram-style: 3 bits of sub-bucket precision per power of two,
// so any percentile estimate is within 12.5% of the true sample value)
// and keeps exact count/sum/min/max.
//
// Design constraints (matching Counter/Gauge in metrics.h):
//   * Record() is a handful of relaxed atomic operations — no locks, no
//     allocation; safe from any thread including the parallel kernels;
//   * the bucket layout is fixed at compile time (496 buckets cover the
//     full uint64 range in ~4 KB), so histograms never resize;
//   * Snapshot() is approximate under concurrent writers (each cell is
//     read atomically) which is fine for reporting.

#ifndef REVISE_OBS_HISTOGRAM_H_
#define REVISE_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace revise::obs {

// One consistent-enough view of a histogram, with precomputed quantiles.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  // Non-empty cells as (bucket upper bound, samples in that bucket), in
  // increasing bound order — the raw material for the OpenMetrics
  // cumulative `le` buckets (obs/openmetrics.h).  `bucket_total` is
  // their sum; under concurrent writers it may lag `count` by in-flight
  // Record()s, so exporters that must satisfy the OpenMetrics invariant
  // (the +Inf bucket equals `_count`) use bucket_total for both.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  uint64_t bucket_total = 0;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Histogram {
 public:
  // 2^kSubBucketBits sub-buckets per power of two.
  static constexpr int kSubBucketBits = 3;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  // Values 0..7 are exact; 61 further octaves of 8 sub-buckets cover the
  // remaining uint64 range: (64 - kSubBucketBits) * kSubBuckets = 488
  // indices starting at kSubBuckets.
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits) * kSubBuckets + kSubBuckets;

  // Maps a sample to its bucket.  Exact below kSubBuckets, then the top
  // kSubBucketBits bits after the leading one select the sub-bucket.
  static constexpr size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int k = 63 - std::countl_zero(value);  // 2^k <= value
    const int shift = k - kSubBucketBits;
    const uint64_t top = value >> shift;  // in [kSubBuckets, 2*kSubBuckets)
    return static_cast<size_t>(shift + 1) * kSubBuckets +
           static_cast<size_t>(top - kSubBuckets);
  }

  // Largest value mapping to `index` (the representative used for
  // percentile estimates, so estimates err on the conservative side).
  static constexpr uint64_t BucketUpperBound(size_t index) {
    if (index < kSubBuckets) return index;
    const int shift = static_cast<int>(index / kSubBuckets) - 1;
    const uint64_t top = kSubBuckets + index % kSubBuckets;
    const uint64_t lower = top << shift;
    return lower + ((uint64_t{1} << shift) - 1);
  }

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen_min = min_.load(std::memory_order_relaxed);
    while (value < seen_min &&
           !min_.compare_exchange_weak(seen_min, value,
                                       std::memory_order_relaxed)) {
    }
    uint64_t seen_max = max_.load(std::memory_order_relaxed);
    while (value > seen_max &&
           !max_.compare_exchange_weak(seen_max, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::string name_;
};

}  // namespace revise::obs

#endif  // REVISE_OBS_HISTOGRAM_H_
