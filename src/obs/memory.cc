#include "obs/memory.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace revise::obs {

namespace {

// Largest VmHWM ever observed, so the reported peak is monotone even if
// procfs is unavailable or resets across reads.
std::atomic<uint64_t> g_observed_peak{0};

// Returns the "<field>: N kB" value from /proc/self/status in bytes, or
// 0 when the file or field is missing (non-Linux platforms).
uint64_t ReadProcStatusBytes(const char* field) {
  uint64_t bytes = 0;
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    unsigned long long kib = 0;
    if (std::sscanf(line + field_len + 1, "%llu", &kib) == 1) {
      bytes = static_cast<uint64_t>(kib) * 1024;
    }
    break;
  }
  std::fclose(file);
#else
  (void)field;
#endif
  return bytes;
}

}  // namespace

uint64_t MemoryStats::PeakRssBytes() {
  const uint64_t read = ReadProcStatusBytes("VmHWM");
  uint64_t seen = g_observed_peak.load(std::memory_order_relaxed);
  while (read > seen && !g_observed_peak.compare_exchange_weak(
                            seen, read, std::memory_order_relaxed)) {
  }
  return read > seen ? read : seen;
}

uint64_t MemoryStats::CurrentRssBytes() {
  return ReadProcStatusBytes("VmRSS");
}

Json MemoryStats::ToJson() {
  Json doc = Json::MakeObject();
  // VmRSS is maintained with batched per-thread counters and can briefly
  // exceed the precisely-accounted VmHWM; clamp so peak >= current holds.
  const uint64_t current = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  doc["peak_rss_bytes"] = peak > current ? peak : current;
  doc["current_rss_bytes"] = current;
  for (const auto& [name, value] : Registry::Global().SnapshotGauges()) {
    if (name.rfind("mem.", 0) == 0) doc[name] = value;
  }
  return doc;
}

}  // namespace revise::obs
