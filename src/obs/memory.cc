#include "obs/memory.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace revise::obs {

namespace {

// Largest VmHWM ever observed, so the reported peak is monotone even if
// procfs is unavailable or resets across reads.
std::atomic<uint64_t> g_observed_peak{0};

// Peak and current RSS captured by one pass over /proc/self/status, so
// the pair is consistent.
struct ProcStatusSample {
  uint64_t peak_bytes = 0;     // VmHWM
  uint64_t current_bytes = 0;  // VmRSS
};

// Parses VmHWM and VmRSS ("<field>: N kB") in a single pass; both 0
// when the file or fields are missing (non-Linux platforms).
ProcStatusSample ReadProcStatus() {
  ProcStatusSample sample;
  REVISE_OBS_COUNTER("mem.statm_reads").Increment();
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return sample;
  int remaining = 2;
  char line[256];
  while (remaining > 0 && std::fgets(line, sizeof(line), file) != nullptr) {
    uint64_t* target = nullptr;
    size_t skip = 0;
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      target = &sample.peak_bytes;
      skip = 6;
    } else if (std::strncmp(line, "VmRSS:", 6) == 0) {
      target = &sample.current_bytes;
      skip = 6;
    } else {
      continue;
    }
    unsigned long long kib = 0;
    if (std::sscanf(line + skip, "%llu", &kib) == 1) {
      *target = static_cast<uint64_t>(kib) * 1024;
    }
    --remaining;
  }
  std::fclose(file);
#endif
  return sample;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kDefaultCacheTtlNanos = 100'000'000;  // 100ms

std::atomic<int64_t> g_cache_ttl_ns{kDefaultCacheTtlNanos};

struct SampleCache {
  ProcStatusSample sample;
  int64_t stamp_ns = 0;
  bool valid = false;
};

util::Mutex g_cache_mu;
SampleCache& Cache() REVISE_REQUIRES(g_cache_mu) {
  static SampleCache* const cache = new SampleCache();
  return *cache;
}

// The cached pair, refreshed when older than the TTL.  Within one TTL
// window every caller (peak, current, ToJson) sees the same sample.
ProcStatusSample CachedSample() {
  const int64_t ttl_ns = g_cache_ttl_ns.load(std::memory_order_relaxed);
  const int64_t now_ns = NowNanos();
  util::MutexLock lock(g_cache_mu);
  SampleCache& cache = Cache();
  if (!cache.valid || now_ns - cache.stamp_ns >= ttl_ns) {
    cache.sample = ReadProcStatus();
    cache.stamp_ns = now_ns;
    cache.valid = true;
  }
  return cache.sample;
}

}  // namespace

uint64_t MemoryStats::PeakRssBytes() {
  const uint64_t read = CachedSample().peak_bytes;
  uint64_t seen = g_observed_peak.load(std::memory_order_relaxed);
  while (read > seen && !g_observed_peak.compare_exchange_weak(
                            seen, read, std::memory_order_relaxed)) {
  }
  return read > seen ? read : seen;
}

uint64_t MemoryStats::CurrentRssBytes() {
  return CachedSample().current_bytes;
}

Json MemoryStats::ToJson() {
  Json doc = Json::MakeObject();
  // VmRSS is maintained with batched per-thread counters and can briefly
  // exceed the precisely-accounted VmHWM; clamp so peak >= current holds.
  const uint64_t current = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  doc["peak_rss_bytes"] = peak > current ? peak : current;
  doc["current_rss_bytes"] = current;
  for (const auto& [name, value] : Registry::Global().SnapshotGauges()) {
    if (name.rfind("mem.", 0) == 0) doc[name] = value;
  }
  return doc;
}

void MemoryStats::SetCacheTtlNanosForTesting(int64_t ttl_ns) {
  g_cache_ttl_ns.store(ttl_ns < 0 ? kDefaultCacheTtlNanos : ttl_ns,
                       std::memory_order_relaxed);
}

void MemoryStats::InvalidateCacheForTesting() {
  util::MutexLock lock(g_cache_mu);
  Cache().valid = false;
}

}  // namespace revise::obs
