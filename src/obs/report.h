// Machine-readable run reports.
//
// A Report accumulates the artefacts of one bench (or test) run —
// reproduced table rows, per-family size series, free-form metadata —
// and serializes them together with a snapshot of the global counter
// registry, histogram registry, memory accounting, and span buffer to a
// stable JSON schema:
//
//   {
//     "schema_version": 2,
//     "schema_minor": 2,
//     "name": "<bench name>",
//     "manifest": { "git_sha": ..., "compiler": ..., "build_type": ...,
//                   "threads": ..., "hardware_threads": ...,
//                   "process_start_ns": ..., "uptime_seconds": ...,
//                   "env": { "REVISE_THREADS": "8", ... } },
//     "meta": { ... },
//     "tables": [ {"name": ..., "columns": [...], "rows": [[...], ...]} ],
//     "series": [ {"name": ..., "values": [...], "verdict": "..."} ],
//     "counters": { "sat.conflicts": 123, ... },
//     "gauges": { "bdd.nodes": 42, ... },
//     "histograms": { "revise.Dalal": {"count": ..., "sum": ...,
//                     "min": ..., "max": ..., "mean": ..., "p50": ...,
//                     "p90": ..., "p99": ...}, ... },
//     "memory": { "peak_rss_bytes": ..., "current_rss_bytes": ...,
//                 "mem.model_cache_bytes": ..., ... },
//     "spans": [ {"name": ..., "id": 7, "parent_id": 0, "depth": 0,
//                 "tid": 0, "start_ns": ..., "duration_ns": ...} ],
//     "profiles": [ {"name": ..., "span_id": ..., "duration_ns": ...,
//                    "counters": {"sat.solves": ..., ...},
//                    "peak_model_set_models": ...,
//                    "peak_rss_delta_bytes": ...,
//                    "children": [...]} ]
//   }
//
// Field order is fixed (Json objects preserve insertion order), so the
// emitted artefacts diff cleanly between runs.  Bump `kSchemaVersion`
// when the layout changes; additive extensions bump `kSchemaMinor`
// instead; tests/obs_test.cc validates the schema.
// Schema history: v1 had no manifest/histograms/memory blocks and no
// span thread ids; v2.1 added span ids/parent ids and the profiles
// section (additive, so `schema_version` stays 2 and v2 readers parse
// v2.1 reports); v2.2 added the manifest's process_start_ns (the
// steady-clock anchor shared with /statusz and `obs.uptime_seconds`)
// and uptime_seconds fields; v2 readers (tools/revise_benchdiff.cc)
// accept all.

#ifndef REVISE_OBS_REPORT_H_
#define REVISE_OBS_REPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "util/status.h"

namespace revise::obs {

inline constexpr int kSchemaVersion = 2;
inline constexpr int kSchemaMinor = 2;

// The build/run provenance block embedded in every report: git sha and
// compiler baked in at build time, thread configuration and the REVISE_*
// environment read at call time.
Json BuildManifest();

class Report {
 public:
  explicit Report(std::string_view name) : name_(name) {}

  const std::string& name() const { return name_; }

  // Free-form metadata (e.g. generator parameters, git describe).
  void SetMeta(std::string_view key, Json value);

  // Declares a table; rows are appended with AddRow.  Re-declaring an
  // existing table name resets its columns and keeps the rows.
  void AddTable(std::string_view table, std::vector<std::string> columns);
  void AddRow(std::string_view table, std::vector<Json> row);

  // A numeric series (e.g. result size per revision step for one hard
  // family), with an optional growth verdict label.
  void AddSeries(std::string_view series, std::vector<double> values,
                 std::string_view verdict = "");

  // Assembles the document, snapshotting the global registry and span
  // buffer at call time.
  Json ToJson() const;

  // Serializes ToJson() pretty-printed to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  struct Table {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<Json>> rows;
  };
  struct Series {
    std::string name;
    std::vector<double> values;
    std::string verdict;
  };

  Table* FindTable(std::string_view table);

  std::string name_;
  Json meta_ = Json::MakeObject();
  std::vector<Table> tables_;
  std::vector<Series> series_;
};

}  // namespace revise::obs

#endif  // REVISE_OBS_REPORT_H_
