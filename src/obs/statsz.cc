#include "obs/statsz.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/profile.h"
#include "obs/report.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace revise::obs {

namespace {

constexpr int kAcceptPollMs = 100;
// Bounds on one request head: size and overall read deadline.
constexpr size_t kMaxRequestHeadBytes = 8192;
constexpr int kRequestHeadTimeoutMs = 5000;

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Bad Request";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(response.code);
  out += " ";
  out += ReasonPhrase(response.code);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

int ProcessId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<int>(::getpid());
#else
  return 0;
#endif
}

Json StatuszJson() {
  Json doc = Json::MakeObject();
  doc["manifest"] = BuildManifest();
  doc["pid"] = ProcessId();
  doc["uptime_seconds"] = ProcessUptimeSeconds();
  Json threads = Json::MakeObject();
  threads["configured"] = static_cast<uint64_t>(ParallelThreads());
  threads["pool_workers"] =
      static_cast<uint64_t>(ThreadPool::Global().worker_count());
  doc["threads"] = std::move(threads);
  doc["memory"] = MemoryStats::ToJson();
  Json statsz = Json::MakeObject();
  statsz["port"] = REVISE_OBS_GAUGE("statsz.port").Value();
  statsz["requests"] = REVISE_OBS_COUNTER("statsz.requests").Value();
  statsz["rejected"] = REVISE_OBS_COUNTER("statsz.rejected").Value();
  statsz["bad_requests"] =
      REVISE_OBS_COUNTER("statsz.bad_requests").Value();
  doc["statsz"] = std::move(statsz);
  return doc;
}

}  // namespace

HttpResponse HandleStatszPath(std::string_view path) {
  // Ignore any query string: the endpoints take no parameters.
  if (const size_t query = path.find('?'); query != std::string_view::npos) {
    path = path.substr(0, query);
  }
  HttpResponse response;
  if (path == "/metrics") {
    response.content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    response.body = RenderOpenMetrics();
    return response;
  }
  if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = MetricsSnapshotJson().Dump(/*indent=*/1);
    response.body += "\n";
    return response;
  }
  if (path == "/statusz") {
    response.content_type = "application/json";
    response.body = StatuszJson().Dump(/*indent=*/1);
    response.body += "\n";
    return response;
  }
  if (path == "/profilez") {
    Json doc = Json::MakeObject();
    doc["schema_version"] = kSchemaVersion;
    doc["schema_minor"] = kSchemaMinor;
    doc["profiling_enabled"] = ProfilingEnabled();
    doc["profiles"] = ProfileForestToJson();
    response.content_type = "application/json";
    response.body = doc.Dump(/*indent=*/1);
    response.body += "\n";
    return response;
  }
  if (path == "/tracez") {
    response.content_type = "application/json";
    response.body = FlightRecorderJson("tracez");
    response.body += "\n";
    return response;
  }
  if (path == "/healthz" || path == "/") {
    response.body = "ok\n";
    return response;
  }
  response.code = 404;
  response.body = "not found\n";
  return response;
}

StatusOr<std::unique_ptr<StatszServer>> StatszServer::Start(
    const StatszOptions& options) {
  StatusOr<util::TcpListener> listener =
      util::ListenTcpLoopback(options.port);
  if (!listener.ok()) return listener.status();
  std::unique_ptr<StatszServer> server(new StatszServer(options));
  server->listener_ = *listener;
  REVISE_OBS_GAUGE("statsz.port").Set(server->listener_.port);
  if (options.announce) {
    std::fprintf(stderr, "revise: statsz listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server->listener_.port));
  }
  const size_t workers = options.workers == 0 ? 1 : options.workers;
  server->worker_threads_.reserve(workers);
  StatszServer* raw = server.get();
  for (size_t i = 0; i < workers; ++i) {
    server->worker_threads_.emplace_back([raw] { raw->WorkerLoop(); });
  }
  server->accept_thread_ =
      BackgroundThread([raw] { raw->AcceptLoop(); });
  return server;
}

StatszServer::~StatszServer() { Stop(); }

void StatszServer::Stop() {
  {
    util::MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    queue_cv_.NotifyAll();
  }
  accept_thread_.Join();
  for (BackgroundThread& worker : worker_threads_) worker.Join();
  util::CloseSocket(listener_.fd);
  listener_.fd = -1;
}

void StatszServer::AcceptLoop() {
  for (;;) {
    {
      util::MutexLock lock(mu_);
      if (stopping_) return;
    }
    StatusOr<int> accepted =
        util::AcceptConnection(listener_.fd, kAcceptPollMs);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle poll; re-check the stop flag
      }
      // Listener failed (closed fd, resource exhaustion): the server
      // degrades to not serving rather than spinning.
      REVISE_OBS_COUNTER("statsz.accept_errors").Increment();
      return;
    }
    const int fd = *accepted;
    bool enqueued = false;
    {
      util::MutexLock lock(mu_);
      if (!stopping_ && queue_.size() < options_.queue_limit) {
        queue_.push_back(fd);
        enqueued = true;
        queue_cv_.NotifyOne();
      }
    }
    if (!enqueued) {
      // Shed load inline: a full queue answers 503 from the accept
      // thread so the workers (and the process under observation)
      // never accumulate unbounded backlog.
      REVISE_OBS_COUNTER("statsz.rejected").Increment();
      HttpResponse response;
      response.code = 503;
      response.body = "statsz overloaded\n";
      (void)util::SendAll(fd, SerializeResponse(response));
      util::CloseSocket(fd);
    }
  }
}

void StatszServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) queue_cv_.Wait(mu_);
      if (queue_.empty() && stopping_) return;
      fd = queue_.front();
      queue_.pop_front();
    }
    ServeConnection(fd);
  }
}

void StatszServer::ServeConnection(int fd) {
  // The scope makes a wedged handler visible to the stall watchdog and
  // /tracez — the server monitors itself like any other operation.
  FlightOpScope scope("statsz.request");
  // Bounded head read: a client that connects and then stalls costs this
  // worker at most the deadline, not forever.
  StatusOr<std::string> head =
      util::ReadHttpRequestHead(fd, kMaxRequestHeadBytes,
                                kRequestHeadTimeoutMs);
  if (!head.ok()) {
    if (head.status().code() == StatusCode::kDeadlineExceeded) {
      REVISE_OBS_COUNTER("statsz.request_timeouts").Increment();
    } else {
      REVISE_OBS_COUNTER("statsz.bad_requests").Increment();
    }
    util::CloseSocket(fd);
    return;
  }
  // Request line: METHOD SP PATH SP VERSION.
  const std::string_view text = *head;
  const size_t line_end = text.find('\n');
  const std::string_view request_line =
      text.substr(0, line_end == std::string_view::npos ? text.size()
                                                        : line_end);
  const size_t method_end = request_line.find(' ');
  HttpResponse response;
  if (method_end == std::string_view::npos) {
    REVISE_OBS_COUNTER("statsz.bad_requests").Increment();
    response.code = 405;
    response.body = "malformed request\n";
  } else if (request_line.substr(0, method_end) != "GET") {
    REVISE_OBS_COUNTER("statsz.bad_requests").Increment();
    response.code = 405;
    response.body = "only GET is supported\n";
  } else {
    const size_t path_start = method_end + 1;
    size_t path_end = request_line.find(' ', path_start);
    if (path_end == std::string_view::npos) path_end = request_line.size();
    REVISE_OBS_COUNTER("statsz.requests").Increment();
    response = HandleStatszPath(
        request_line.substr(path_start, path_end - path_start));
  }
  (void)util::SendAll(fd, SerializeResponse(response));
  util::CloseSocket(fd);
}

// --- process-wide instance ---------------------------------------------

namespace {

util::Mutex g_statsz_mu;
StatszServer*& GlobalStatszSlot() REVISE_REQUIRES(g_statsz_mu) {
  static StatszServer* server = nullptr;
  return server;
}

}  // namespace

StatszServer* StartStatszFromEnv() {
  const char* env = std::getenv("REVISE_STATSZ");
  if (env == nullptr || *env == '\0') return GlobalStatsz();
  {
    util::MutexLock lock(g_statsz_mu);
    if (GlobalStatszSlot() != nullptr) return GlobalStatszSlot();
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == nullptr || *end != '\0' || parsed > 65535) {
    std::fprintf(stderr, "revise: bad REVISE_STATSZ value '%s' (want a "
                         "port number; 0 = ephemeral)\n",
                 env);
    return nullptr;
  }
  StatszOptions options;
  options.port = static_cast<uint16_t>(parsed);
  const Status status = StartGlobalStatsz(options);
  if (!status.ok()) {
    std::fprintf(stderr, "revise: statsz failed to start: %s\n",
                 status.ToString().c_str());
    return nullptr;
  }
  return GlobalStatsz();
}

Status StartGlobalStatsz(const StatszOptions& options) {
  util::MutexLock lock(g_statsz_mu);
  if (GlobalStatszSlot() != nullptr) {
    return FailedPreconditionError("statsz server already running");
  }
  StatusOr<std::unique_ptr<StatszServer>> server =
      StatszServer::Start(options);
  if (!server.ok()) return server.status();
  GlobalStatszSlot() = server->release();
  return Status::Ok();
}

StatszServer* GlobalStatsz() {
  util::MutexLock lock(g_statsz_mu);
  return GlobalStatszSlot();
}

void StopGlobalStatsz() {
  StatszServer* server = nullptr;
  {
    util::MutexLock lock(g_statsz_mu);
    server = GlobalStatszSlot();
    GlobalStatszSlot() = nullptr;
  }
  delete server;  // ~StatszServer stops and joins
}

}  // namespace revise::obs
