// A minimal JSON document model: build, serialize, parse.
//
// Used by the observability layer to emit machine-readable bench reports
// (report.h) and by tests to round-trip them.  Numbers are kept in three
// flavours (uint64/int64/double) so solver counters survive the trip
// without precision loss.  Objects preserve insertion order, giving the
// emitted reports a stable field layout that diffs cleanly across runs.

#ifndef REVISE_OBS_JSON_H_
#define REVISE_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/status.h"

namespace revise::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() : rep_(nullptr) {}
  Json(std::nullptr_t) : rep_(nullptr) {}            // NOLINT
  Json(bool value) : rep_(value) {}                  // NOLINT
  Json(int value) : rep_(int64_t{value}) {}          // NOLINT
  Json(int64_t value) : rep_(value) {}               // NOLINT
  Json(uint64_t value) : rep_(value) {}              // NOLINT
  Json(unsigned value) : rep_(uint64_t{value}) {}    // NOLINT
  Json(double value) : rep_(value) {}                // NOLINT
  Json(std::string value) : rep_(std::move(value)) {}  // NOLINT
  Json(std::string_view value) : rep_(std::string(value)) {}  // NOLINT
  Json(const char* value) : rep_(std::string(value)) {}       // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_number() const {
    return std::holds_alternative<int64_t>(rep_) ||
           std::holds_alternative<uint64_t>(rep_) ||
           std::holds_alternative<double>(rep_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_array() const { return std::holds_alternative<Array>(rep_); }
  bool is_object() const { return std::holds_alternative<Object>(rep_); }

  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const;
  uint64_t AsUint() const;
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  // Array/object size; 0 for scalars.
  size_t size() const;

  // --- array operations ---
  void Append(Json value);
  const Json& at(size_t index) const { return std::get<Array>(rep_)[index]; }
  const Array& array() const { return std::get<Array>(rep_); }

  // --- object operations ---
  // Inserts (or overwrites) a member.  Converts a null value to an object
  // first, so `Json j; j["k"] = ...;` works.
  Json& operator[](std::string_view key);
  // Null if absent.
  const Json* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  const Object& object() const { return std::get<Object>(rep_); }

  // Serializes.  indent == 0 emits a single line; indent > 0 pretty-prints
  // with that many spaces per level.
  std::string Dump(int indent = 0) const;

  static StatusOr<Json> Parse(std::string_view text);

  // Numbers compare numerically (the parser may restore 7 as uint64
  // where the builder stored int64); containers compare element-wise.
  friend bool operator==(const Json& a, const Json& b);

 private:
  explicit Json(Array array) : rep_(std::move(array)) {}
  explicit Json(Object object) : rep_(std::move(object)) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, uint64_t, double, std::string,
               Array, Object>
      rep_;
};

// Escapes a string for embedding in JSON output (adds the quotes).
std::string JsonQuote(std::string_view text);

}  // namespace revise::obs

#endif  // REVISE_OBS_JSON_H_
