// Background observability services: the periodic metrics dumper and
// the stall watchdog.
//
// Both are opt-in monitor threads (BackgroundThread) that ride on
// the v1-v4 observability surfaces rather than adding new ones:
//
//   * MetricsDumper renders the OpenMetrics exposition
//     (obs/openmetrics.h) to a file every interval, writing to
//     `<path>.tmp` and renaming over `<path>` so readers always see a
//     complete document — tail -f style collectors and post-mortem
//     inspection get the same bytes a /metrics scrape would return.
//     Activation: REVISE_METRICS_DUMP=<path>:<interval_s> (the interval
//     may be fractional; the last ':' splits, so paths with colons
//     work).  Each rotation bumps `obs.metrics_dumps`.
//
//   * StallWatchdog samples the in-flight operation table
//     (obs/flight_recorder.h) and, when an operation has been open
//     longer than the threshold, records an `obs.watchdog_stall` flight
//     event, bumps `obs.watchdog_stalls`, and writes a stall_<pid>.json
//     dump through the same writer as the crash path — a wedged
//     process leaves the same self-describing artifact a crashed one
//     does.  Each FlightOpScope instance is reported at most once (the
//     table's per-scope ids), so a genuinely stuck operation produces
//     one dump, not one per poll.  Activation: REVISE_WATCHDOG_S=<s>
//     (fractional allowed).
//
// Failure to start (bad value, unwritable path) is reported on stderr
// and otherwise ignored: monitoring must never take down the workload
// it monitors.

#ifndef REVISE_OBS_WATCHDOG_H_
#define REVISE_OBS_WATCHDOG_H_

#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace revise::obs {

struct MetricsDumperOptions {
  std::string path;          // final dump path (rotated atomically)
  double interval_s = 10.0;  // time between rotations
};

class MetricsDumper {
 public:
  // Writes one dump immediately (so a short-lived process still leaves
  // an artifact, and a bad path fails at start, not minutes later),
  // then starts the rotation thread.
  static StatusOr<std::unique_ptr<MetricsDumper>> Start(
      const MetricsDumperOptions& options);

  ~MetricsDumper();

  // Writes a final dump and stops the thread.  Idempotent.
  void Stop();

 private:
  explicit MetricsDumper(const MetricsDumperOptions& options)
      : options_(options) {}

  void Loop();
  Status WriteDump();

  MetricsDumperOptions options_;
  util::Mutex mu_;
  util::CondVar stop_cv_;
  bool stopping_ REVISE_GUARDED_BY(mu_) = false;
  BackgroundThread thread_;
};

struct StallWatchdogOptions {
  double threshold_s = 60.0;  // in-flight age that counts as a stall
  // Time between samples; 0 derives threshold_s / 4, clamped to
  // [10ms, 1s].
  double poll_interval_s = 0.0;
  bool write_dump = true;  // write stall_<pid>.json on first detection
};

class StallWatchdog {
 public:
  static StatusOr<std::unique_ptr<StallWatchdog>> Start(
      const StallWatchdogOptions& options);

  ~StallWatchdog();

  void Stop();  // idempotent

 private:
  explicit StallWatchdog(const StallWatchdogOptions& options)
      : options_(options) {}

  void Loop();

  StallWatchdogOptions options_;
  util::Mutex mu_;
  util::CondVar stop_cv_;
  bool stopping_ REVISE_GUARDED_BY(mu_) = false;
  BackgroundThread thread_;
};

// Start the process-wide dumper from REVISE_METRICS_DUMP=<path>:<interval_s>
// exactly once.  Returns nullptr when unset or malformed (reported on
// stderr).
MetricsDumper* StartMetricsDumperFromEnv();

// Start the process-wide watchdog from REVISE_WATCHDOG_S=<seconds>
// exactly once.  Returns nullptr when unset or malformed (reported on
// stderr).
StallWatchdog* StartStallWatchdogFromEnv();

// Stop and destroy the process-wide instances (tests).
void StopGlobalMetricsDumper();
void StopGlobalStallWatchdog();

}  // namespace revise::obs

#endif  // REVISE_OBS_WATCHDOG_H_
