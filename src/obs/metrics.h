// Process-wide registry of named monotonic counters and gauges.
//
// Design constraints (see DESIGN.md "Observability"):
//   * hot-path cheap: an increment is one relaxed atomic add — no locks,
//     no allocation, no branching on configuration;
//   * registration is interned: looking up the same name twice returns
//     the same Counter*, and instrumented call sites cache the pointer in
//     a function-local static so the registry mutex is paid once;
//   * snapshots are consistent enough for reporting (each value is read
//     atomically; the set of counters only grows).
//
// Naming convention: `subsystem.metric`, all lower case — e.g.
// `sat.conflicts`, `bdd.unique_hits`, `qm.prime_implicants`.

#ifndef REVISE_OBS_METRICS_H_
#define REVISE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace revise::obs {

// A monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::atomic<uint64_t> value_{0};
  std::string name_;
};

// A last-value-wins gauge (e.g. current BDD node count, peak sizes are
// maintained with UpdateMax).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void UpdateMax(int64_t candidate) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::atomic<int64_t> value_{0};
  std::string name_;
};

class Registry {
 public:
  // The process-wide registry used by all instrumented subsystems.
  static Registry& Global();

  // Returns the counter/gauge/histogram registered under `name`, creating
  // it on first use.  The returned pointer is stable for the registry
  // lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Name-sorted snapshots of every registered instrument.
  std::vector<std::pair<std::string, uint64_t>> SnapshotCounters() const;
  std::vector<std::pair<std::string, int64_t>> SnapshotGauges() const;
  // Histograms that never recorded a sample are skipped.
  std::vector<std::pair<std::string, HistogramSnapshot>> SnapshotHistograms()
      const;

  // Zeroes every instrument (instruments stay registered).
  void ResetAll();

 private:
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      REVISE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      REVISE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      REVISE_GUARDED_BY(mu_);
};

// Steady-clock nanoseconds captured during static initialization — the
// monotonic process-start anchor shared by the report manifest
// (schema v2.2), /statusz, and the `obs.uptime_seconds` gauge, so live
// and offline views of uptime agree.
int64_t ProcessStartNanos();
double ProcessUptimeSeconds();

// Refreshes `obs.uptime_seconds` from ProcessStartNanos (gauges are
// last-value-wins, so the gauge is only as fresh as the last snapshot
// that touched it) and returns the whole-second value it was set to.
int64_t TouchUptimeGauge();

}  // namespace revise::obs

// Returns a reference to the named global counter, resolving the registry
// lookup once per call site.
#define REVISE_OBS_COUNTER(name)                                          \
  ([]() -> ::revise::obs::Counter& {                                      \
    static ::revise::obs::Counter* const revise_obs_counter_ =            \
        ::revise::obs::Registry::Global().GetCounter(name);               \
    return *revise_obs_counter_;                                          \
  }())

// Returns a reference to the named global gauge, resolving the registry
// lookup once per call site (the gauge analogue of REVISE_OBS_COUNTER).
#define REVISE_OBS_GAUGE(name)                                            \
  ([]() -> ::revise::obs::Gauge& {                                        \
    static ::revise::obs::Gauge* const revise_obs_gauge_ =                \
        ::revise::obs::Registry::Global().GetGauge(name);                 \
    return *revise_obs_gauge_;                                            \
  }())

// Returns a reference to the named global histogram, resolving the
// registry lookup once per call site (the distribution analogue of
// REVISE_OBS_COUNTER).
#define REVISE_OBS_HISTOGRAM(name)                                        \
  ([]() -> ::revise::obs::Histogram& {                                    \
    static ::revise::obs::Histogram* const revise_obs_histogram_ =        \
        ::revise::obs::Registry::Global().GetHistogram(name);             \
    return *revise_obs_histogram_;                                        \
  }())

#endif  // REVISE_OBS_METRICS_H_
