// Operation-scoped cost attribution (EXPLAIN profiles).
//
// A `ProfileScope` brackets one operation: it snapshots a fixed set of
// attribution counters (SAT solves/decisions/conflicts, models
// enumerated, model-cache hits/misses, BDD nodes, QM prime implicants)
// on entry and exit and records the deltas in a tree node.  Scopes nest
// through a thread-local current-node pointer that also hops across
// ThreadPool batches (the same pool-context hooks the trace spans use),
// so the finished tree mirrors the causal span tree — each node carries
// the id of the span it opened.
//
// Attribution rules:
//   * a node's recorded deltas are INCLUSIVE of its children;
//   * Exclusive(i) = inclusive minus the children's inclusive, clamped
//     at zero.  With REVISE_THREADS=1 the exclusive values over a tree
//     sum exactly to the global counter deltas; with concurrent siblings
//     the shared global counters can double-attribute overlapping work,
//     so parallel profiles are an upper bound per node;
//   * peak model-set cardinality is the largest set Note'd while the
//     scope (or any descendant) was current;
//   * bytes are the peak-RSS growth while the scope was open — monotone,
//     inclusive-only (no per-child exclusivity).
//
// Profiling is off by default; a disabled ProfileScope costs one relaxed
// atomic load beyond its embedded Span.  Completed root scopes append to
// a process-wide forest drained by TakeProfiles() (the `:explain` REPL
// command, the bench --explain flag) or serialized in place by
// ProfileForestToJson() (the report `profiles` section).

#ifndef REVISE_OBS_PROFILE_H_
#define REVISE_OBS_PROFILE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace revise::obs {

// Marks a profile counter key for tools/revise_lint, which validates the
// literal against the `subsystem.metric` naming rule exactly like the
// first argument of REVISE_OBS_COUNTER.  Expands to the literal itself.
#define REVISE_PROFILE_KEY(name) (name)

inline constexpr size_t kProfileCounterCount = 8;

// The fixed attribution set, in a stable order.  Keys double as the
// Registry counter names the deltas are read from.
const std::array<const char*, kProfileCounterCount>& ProfileCounterKeys();

// One operation in a finished (or in-flight) cost tree.
struct ProfileNode {
  std::string name;
  uint64_t span_id = 0;    // the aligned trace span; 0 when tracing off
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  // Counter deltas between scope entry and exit, index-aligned with
  // ProfileCounterKeys(); inclusive of children.
  std::array<uint64_t, kProfileCounterCount> inclusive{};
  // Largest model-set cardinality noted while this scope or any
  // descendant was current.
  uint64_t peak_model_set_models = 0;
  // Peak-RSS growth while the scope was open (monotone, inclusive).
  int64_t peak_rss_delta_bytes = 0;
  ProfileNode* parent = nullptr;  // not owned; null for roots
  std::vector<std::unique_ptr<ProfileNode>> children;

  // Inclusive minus the children's inclusive, clamped at zero.
  uint64_t Exclusive(size_t counter) const;
};

// Toggles profiling process-wide.  Scopes already open keep their state.
void SetProfilingEnabled(bool enabled);
bool ProfilingEnabled();

// RAII attribution scope.  Always opens a trace Span of the same name
// (so profile trees and span trees stay aligned); builds a ProfileNode
// only while ProfilingEnabled().
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view name) : span_(name) {
    if (ProfilingEnabled()) Begin(std::string(name));
  }
  // Mirrors Span's two-part constructor: the concatenation is only paid
  // when profiling is on (the Span member handles the tracing side).
  ProfileScope(std::string_view prefix, std::string_view suffix)
      : span_(prefix, suffix) {
    if (ProfilingEnabled()) {
      std::string name(prefix);
      name += suffix;
      Begin(std::move(name));
    }
  }
  ~ProfileScope() {
    if (node_ != nullptr) End();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  void Begin(std::string name);
  void End();

  Span span_;
  ProfileNode* node_ = nullptr;
  std::unique_ptr<ProfileNode> root_;  // set only when this scope is a root
  std::array<uint64_t, kProfileCounterCount> entry_{};
  uint64_t entry_peak_rss_ = 0;
};

// Records the cardinality of a model set the current operation
// materialized; feeds the peak-model-set attribution.  No-op when
// profiling is off or no scope is current.
void NoteModelSetCardinality(size_t models);

// Completed root trees in completion order, transferring ownership and
// emptying the forest.
std::vector<std::unique_ptr<ProfileNode>> TakeProfiles();

// Serializes the completed forest without draining it (report.cc).
Json ProfileForestToJson();
Json ProfileNodeToJson(const ProfileNode& node);

// Renders one tree as indented text, one node per line with duration and
// the non-zero attribution values (`:explain`'s output).
std::string RenderProfileTree(const ProfileNode& root);

// Nodes created past this cap are dropped (counted in
// obs.profile_nodes_dropped) until TakeProfiles() resets the budget.
inline constexpr size_t kMaxLiveProfileNodes = 65536;

namespace internal {
// Raw thread-local current-node accessors for the pool-context hooks in
// trace.cc; not part of the public surface.
void* CurrentProfileNodeRaw();
void SetCurrentProfileNodeRaw(void* node);
}  // namespace internal

}  // namespace revise::obs

#endif  // REVISE_OBS_PROFILE_H_
