#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace revise::obs {

int64_t Json::AsInt() const {
  if (const auto* i = std::get_if<int64_t>(&rep_)) return *i;
  if (const auto* u = std::get_if<uint64_t>(&rep_)) {
    return static_cast<int64_t>(*u);
  }
  return static_cast<int64_t>(std::get<double>(rep_));
}

uint64_t Json::AsUint() const {
  if (const auto* u = std::get_if<uint64_t>(&rep_)) return *u;
  if (const auto* i = std::get_if<int64_t>(&rep_)) {
    return static_cast<uint64_t>(*i);
  }
  return static_cast<uint64_t>(std::get<double>(rep_));
}

double Json::AsDouble() const {
  if (const auto* d = std::get_if<double>(&rep_)) return *d;
  if (const auto* i = std::get_if<int64_t>(&rep_)) {
    return static_cast<double>(*i);
  }
  return static_cast<double>(std::get<uint64_t>(rep_));
}

bool operator==(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    const bool a_double = std::holds_alternative<double>(a.rep_);
    const bool b_double = std::holds_alternative<double>(b.rep_);
    if (a_double || b_double) return a.AsDouble() == b.AsDouble();
    // Integer flavours: equal iff the mathematical values agree.
    const bool a_neg =
        std::holds_alternative<int64_t>(a.rep_) && a.AsInt() < 0;
    const bool b_neg =
        std::holds_alternative<int64_t>(b.rep_) && b.AsInt() < 0;
    if (a_neg != b_neg) return false;
    return a_neg ? a.AsInt() == b.AsInt() : a.AsUint() == b.AsUint();
  }
  if (a.is_array() && b.is_array()) {
    const Json::Array& x = a.array();
    const Json::Array& y = b.array();
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (!(x[i] == y[i])) return false;
    }
    return true;
  }
  if (a.is_object() && b.is_object()) {
    const Json::Object& x = a.object();
    const Json::Object& y = b.object();
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].first != y[i].first || !(x[i].second == y[i].second)) {
        return false;
      }
    }
    return true;
  }
  return a.rep_ == b.rep_;
}

size_t Json::size() const {
  if (const auto* a = std::get_if<Array>(&rep_)) return a->size();
  if (const auto* o = std::get_if<Object>(&rep_)) return o->size();
  return 0;
}

void Json::Append(Json value) {
  if (is_null()) rep_ = Array{};
  std::get<Array>(rep_).push_back(std::move(value));
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) rep_ = Object{};
  Object& members = std::get<Object>(rep_);
  for (Member& member : members) {
    if (member.first == key) return member.second;
  }
  members.emplace_back(std::string(key), Json());
  return members.back().second;
}

const Json* Json::Find(std::string_view key) const {
  const auto* members = std::get_if<Object>(&rep_);
  if (members == nullptr) return nullptr;
  for (const Member& member : *members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    *out += '\n';
    out->append(static_cast<size_t>(indent) * d, ' ');
  };
  if (is_null()) {
    *out += "null";
  } else if (const auto* b = std::get_if<bool>(&rep_)) {
    *out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<int64_t>(&rep_)) {
    *out += std::to_string(*i);
  } else if (const auto* u = std::get_if<uint64_t>(&rep_)) {
    *out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&rep_)) {
    if (std::isfinite(*d)) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", *d);
      *out += buffer;
      // Keep the double-ness visible so a parse round-trip restores the
      // same numeric flavour (10.0 must not come back as the integer 10).
      if (std::string_view(buffer).find_first_of(".eE") ==
          std::string_view::npos) {
        *out += ".0";
      }
    } else {
      *out += "null";  // JSON has no Inf/NaN
    }
  } else if (const auto* s = std::get_if<std::string>(&rep_)) {
    *out += JsonQuote(*s);
  } else if (const auto* array = std::get_if<Array>(&rep_)) {
    if (array->empty()) {
      *out += "[]";
      return;
    }
    *out += '[';
    // `index`, not `i`: the int64_t branch's condition declaration above
    // stays in scope for the whole else-if chain and would be shadowed.
    for (size_t index = 0; index < array->size(); ++index) {
      if (index > 0) *out += indent > 0 ? "," : ", ";
      newline_pad(depth + 1);
      (*array)[index].DumpTo(out, indent, depth + 1);
    }
    newline_pad(depth);
    *out += ']';
  } else {
    const Object& members = std::get<Object>(rep_);
    if (members.empty()) {
      *out += "{}";
      return;
    }
    *out += '{';
    for (size_t index = 0; index < members.size(); ++index) {
      if (index > 0) *out += indent > 0 ? "," : ", ";
      newline_pad(depth + 1);
      *out += JsonQuote(members[index].first);
      *out += ": ";
      members[index].second.DumpTo(out, indent, depth + 1);
    }
    newline_pad(depth);
    *out += '}';
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> Run() {
    StatusOr<Json> value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      StatusOr<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return Json(*std::move(s));
    }
    if (ConsumeWord("true")) return Json(true);
    if (ConsumeWord("false")) return Json(false);
    if (ConsumeWord("null")) return Json(nullptr);
    return ParseNumber();
  }

  StatusOr<Json> ParseObject() {
    ++pos_;  // '{'
    Json object = Json::MakeObject();
    SkipSpace();
    if (Consume('}')) return object;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      StatusOr<Json> value = ParseValue();
      if (!value.ok()) return value;
      object[*key] = *std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}'");
    }
  }

  StatusOr<Json> ParseArray() {
    ++pos_;  // '['
    Json array = Json::MakeArray();
    SkipSpace();
    if (Consume(']')) return array;
    for (;;) {
      StatusOr<Json> value = ParseValue();
      if (!value.ok()) return value;
      array.Append(*std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']'");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status(StatusCode::kInvalidArgument,
                          "truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status(StatusCode::kInvalidArgument,
                            "bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are not recombined; the
          // reports only ever emit ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Status(StatusCode::kInvalidArgument,
                        "unknown escape sequence");
      }
    }
    return Status(StatusCode::kInvalidArgument, "unterminated string");
  }

  StatusOr<Json> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_integer = true;
    if (Consume('.')) {
      is_integer = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("expected a value");
    if (is_integer) {
      if (token[0] != '-') {
        uint64_t u = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return Json(u);
        }
      } else {
        int64_t i = 0;
        const auto [ptr, ec] =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (ec == std::errc() && ptr == token.data() + token.size()) {
          return Json(i);
        }
      }
      // Fall through to double on overflow.
    }
    double d = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("malformed number");
    }
    return Json(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace revise::obs
