// Process memory accounting for bench reports, the REPL, and /statusz.
//
// Two sources are combined:
//   * the OS view — peak and current resident set size read from
//     /proc/self/status (VmHWM / VmRSS).  On platforms without procfs
//     both read as 0, and the peak additionally remembers the largest
//     value this process ever observed, so PeakRssBytes() is monotone
//     non-decreasing within a run regardless of the kernel's bookkeeping;
//   * the library's own view — `mem.*` byte gauges maintained by the
//     subsystems that hold the big allocations (model cache entries, BDD
//     unique tables, interned vocabulary names), which attribute the RSS
//     to owners.
//
// procfs reads are cached: one pass parses VmHWM and VmRSS together and
// the pair is served from a short-TTL cache (default 100ms), so callers
// that snapshot repeatedly — the statsz /metrics endpoint, the periodic
// metrics dumper, per-row bench reporting — cost one file parse per TTL
// window instead of one per call (and always see a peak/current pair
// from the same instant).  Actual parses are counted in
// `mem.statm_reads`.
//
// MemoryStats::ToJson() snapshots both sources into one object; report.h
// embeds it in every schema-v2 report.

#ifndef REVISE_OBS_MEMORY_H_
#define REVISE_OBS_MEMORY_H_

#include <cstdint>

#include "obs/json.h"

namespace revise::obs {

class MemoryStats {
 public:
  // Peak resident set size in bytes (monotone within the process).
  static uint64_t PeakRssBytes();
  // Current resident set size in bytes (0 where unsupported).
  static uint64_t CurrentRssBytes();

  // {"peak_rss_bytes": ..., "current_rss_bytes": ...,
  //  "mem.model_cache_bytes": ..., ...} — the RSS figures plus every
  //  registered `mem.*` gauge.
  static Json ToJson();

  // Test hooks for the procfs cache.  TTL 0 re-reads on every call;
  // negative restores the default.  Invalidate forces the next call to
  // re-read regardless of TTL.
  static void SetCacheTtlNanosForTesting(int64_t ttl_ns);
  static void InvalidateCacheForTesting();
};

}  // namespace revise::obs

#endif  // REVISE_OBS_MEMORY_H_
