// Process memory accounting for bench reports and the REPL.
//
// Two sources are combined:
//   * the OS view — peak and current resident set size read from
//     /proc/self/status (VmHWM / VmRSS).  On platforms without procfs
//     both read as 0, and the peak additionally remembers the largest
//     value this process ever observed, so PeakRssBytes() is monotone
//     non-decreasing within a run regardless of the kernel's bookkeeping;
//   * the library's own view — `mem.*` byte gauges maintained by the
//     subsystems that hold the big allocations (model cache entries, BDD
//     unique tables, interned vocabulary names), which attribute the RSS
//     to owners.
//
// MemoryStats::ToJson() snapshots both into one object; report.h embeds
// it in every schema-v2 report.

#ifndef REVISE_OBS_MEMORY_H_
#define REVISE_OBS_MEMORY_H_

#include <cstdint>

#include "obs/json.h"

namespace revise::obs {

class MemoryStats {
 public:
  // Peak resident set size in bytes (monotone within the process).
  static uint64_t PeakRssBytes();
  // Current resident set size in bytes (0 where unsupported).
  static uint64_t CurrentRssBytes();

  // {"peak_rss_bytes": ..., "current_rss_bytes": ...,
  //  "mem.model_cache_bytes": ..., ...} — the RSS figures plus every
  //  registered `mem.*` gauge.
  static Json ToJson();
};

}  // namespace revise::obs

#endif  // REVISE_OBS_MEMORY_H_
