// An always-on crash flight recorder: a bounded ring of recent
// structured events (operation begin/end, cache evictions, deadline
// hits, fuzz oracle verdicts) that failure paths dump so every crash or
// fuzzer mismatch is a self-describing artifact.
//
// Recording is cheap and allocation-free: each event copies its name and
// detail into fixed char arrays of a preallocated slot under one mutex.
// The ring holds kDefaultFlightRecorderCapacity events (overridable with
// REVISE_FLIGHT_EVENTS or SetFlightRecorderCapacity); older events are
// overwritten oldest-first.
//
// The first recorded event installs a crash hook into the REVISE_CHECK /
// REVISE_DCHECK failure path (util/check.h): a failed check dumps the
// ring to stderr and writes crash_<pid>.json (into REVISE_CRASH_DIR or
// the working directory) before aborting.  revise_fuzz does the same on
// an oracle mismatch.
//
// Event names follow the `subsystem.metric` convention and are validated
// by tools/revise_lint — always record through REVISE_FLIGHT_EVENT with
// a literal name.

#ifndef REVISE_OBS_FLIGHT_RECORDER_H_
#define REVISE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace revise::obs {

inline constexpr size_t kDefaultFlightRecorderCapacity = 1024;

// One recorded event; name/detail are truncated to the slot size.
struct FlightEvent {
  int64_t t_ns = 0;  // steady-clock timestamp
  int tid = 0;       // stable small thread id, in first-event order
  char name[48] = {};
  char detail[80] = {};
};

// Appends an event to the ring (and installs the crash hook on first
// use).  Prefer the REVISE_FLIGHT_EVENT macro, which revise_lint checks.
void RecordFlightEvent(std::string_view name, std::string_view detail = {});

// Replaces the ring capacity, dropping buffered events (capacity 0 is
// clamped to 1).
void SetFlightRecorderCapacity(size_t capacity);
size_t FlightRecorderCapacity();

// Buffered events, oldest surviving first.
std::vector<FlightEvent> SnapshotFlightEvents();
void ClearFlightEvents();

// Events overwritten since the last ClearFlightEvents /
// SetFlightRecorderCapacity.
uint64_t FlightEventsDropped();

// Events plus the overwrite count read under one lock acquisition, so
// the pair is consistent.  The crash dump writers use this: reading the
// ring and the counter separately can pair events with a dropped count
// from a different instant when other threads keep recording.
struct FlightRecorderStats {
  std::vector<FlightEvent> events;
  uint64_t dropped = 0;
};
FlightRecorderStats SnapshotFlightRecorder();

// Writes the ring to `out` as human-readable lines bracketed by
// "=== revise flight recorder" markers.
void DumpFlightRecorder(std::FILE* out, const char* reason);

// {"flight_recorder": {"reason": ..., "pid": ..., "dropped": ...,
//  "in_flight": [{"id":..., "t_ns":..., "age_ns":..., "tid":...,
//                 "name":...}, ...],
//  "events": [{"t_ns":..., "tid":..., "name":..., "detail":...}, ...]}}
std::string FlightRecorderJson(const char* reason);

// Writes FlightRecorderJson to <prefix>_<pid>.json in REVISE_CRASH_DIR
// (or the working directory) and returns the path; empty on I/O
// failure.  The crash hook uses prefix "crash"; the stall watchdog
// (obs/watchdog.h) uses "stall" — same writer, same shape, so tooling
// that reads one reads both.
std::string WriteFlightDump(const char* reason, const char* file_prefix);

// WriteFlightDump(reason, "crash") — the util/check.h failure path.
std::string WriteCrashDump(const char* reason);

// Installs the util/check.h crash hook (idempotent; RecordFlightEvent
// does this automatically).
void InstallFlightRecorderCrashHook();

// One operation currently inside a FlightOpScope — the heartbeat the
// stall watchdog samples.  `id` is process-unique per scope instance,
// so the watchdog reports each wedged operation once rather than every
// poll.
struct InFlightOp {
  uint64_t id = 0;
  int64_t start_ns = 0;  // steady-clock timestamp at scope entry
  int tid = 0;
  char name[48] = {};
};

// Open FlightOpScopes, oldest first.  Bounded: past
// kMaxTrackedInFlightOps concurrently open scopes, new scopes record
// their begin/end events but are invisible here (counted in
// obs.inflight_ops_dropped).
inline constexpr size_t kMaxTrackedInFlightOps = 256;
std::vector<InFlightOp> SnapshotInFlightOps();

// RAII begin/end event pair around one revision operation; registers
// the operation in the in-flight table for the stall watchdog.
class FlightOpScope {
 public:
  explicit FlightOpScope(std::string_view op_name);
  ~FlightOpScope();

  FlightOpScope(const FlightOpScope&) = delete;
  FlightOpScope& operator=(const FlightOpScope&) = delete;

 private:
  char op_name_[48] = {};
  uint64_t id_ = 0;  // 0 when the in-flight table was full
};

}  // namespace revise::obs

// The lint-checked recording form: `name` must be a string literal in
// `subsystem.metric` format.
#define REVISE_FLIGHT_EVENT(name, detail) \
  (::revise::obs::RecordFlightEvent((name), (detail)))

#endif  // REVISE_OBS_FLIGHT_RECORDER_H_
