// The in-process statsz server: live introspection over HTTP/1.0.
//
// Obs v1-v3 built rich in-process state — counters, histograms, causal
// traces, EXPLAIN profiles, a crash flight recorder — reachable only at
// exit or crash.  StatszServer makes it reachable from a *running*
// process: a dependency-free POSIX-socket listener (util/net.h) bound
// to 127.0.0.1 serving
//
//   /metrics       OpenMetrics exposition (obs/openmetrics.h)
//   /metrics.json  the JSON snapshot twin (schema-v2 section shapes)
//   /statusz       run manifest: git sha, build flags, uptime, threads,
//                  RSS, statsz request counters
//   /profilez      the completed EXPLAIN profile forest as JSON
//                  (obs/profile.h; empty array unless profiling is on)
//   /tracez        the crash flight recorder ring + in-flight ops as
//                  JSON (obs/flight_recorder.h)
//   /healthz       "ok\n" — liveness for scripts and load balancers
//
// Architecture: one accept thread polls the listener and hands each
// connection to a bounded queue drained by worker threads
// (BackgroundThread; all locks on the annotated util::Mutex so
// the -Wthread-safety CI job covers the server).  When the queue is
// full the accept thread answers 503 inline — introspection load must
// degrade by dropping scrapes, never by queueing unboundedly inside
// the process it observes.  Each served request runs under a
// FlightOpScope, so a wedged handler is itself visible to the stall
// watchdog and /tracez.
//
// Activation: REVISE_STATSZ=<port> (StartStatszFromEnv, called by the
// benches' JsonReporter, the REPL, and revise_fuzz), the bench
// --statsz=<port> flag, or the REPL :statsz command.  Port 0 binds an
// ephemeral port; the bound port is exposed through the `statsz.port`
// gauge and announced once on stderr as
//   revise: statsz listening on 127.0.0.1:<port>
// so headless harnesses (the CI smoke job) can discover it.
//
// This listener is the deliberate skeleton of the `revised` front-end
// (ROADMAP item 2): the accept/bounded-handoff shape, the health and
// introspection endpoints, and the port-0 discovery protocol carry
// over unchanged.

#ifndef REVISE_OBS_STATSZ_H_
#define REVISE_OBS_STATSZ_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/net.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace revise::obs {

struct StatszOptions {
  uint16_t port = 0;       // 0 = ephemeral
  size_t workers = 1;      // request-serving threads
  size_t queue_limit = 16; // pending connections before 503
  bool announce = true;    // print the stderr discovery line
};

// One rendered HTTP response, before serialization.
struct HttpResponse {
  int code = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// The endpoint dispatch, exposed for tests that want to exercise
// handlers without sockets.  Unknown paths return 404.
HttpResponse HandleStatszPath(std::string_view path);

class StatszServer {
 public:
  // Binds, starts the accept and worker threads, sets the
  // `statsz.port` gauge, and (per options) announces the port.
  static StatusOr<std::unique_ptr<StatszServer>> Start(
      const StatszOptions& options);

  ~StatszServer();

  // Stops accepting, drains the queue, joins all threads.  Idempotent.
  void Stop();

  uint16_t port() const { return listener_.port; }

 private:
  explicit StatszServer(const StatszOptions& options)
      : options_(options) {}

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  StatszOptions options_;
  util::TcpListener listener_;

  util::Mutex mu_;
  util::CondVar queue_cv_;
  std::deque<int> queue_ REVISE_GUARDED_BY(mu_);
  bool stopping_ REVISE_GUARDED_BY(mu_) = false;

  BackgroundThread accept_thread_;
  std::vector<BackgroundThread> worker_threads_;
};

// Starts the process-wide server from REVISE_STATSZ=<port> exactly once
// (subsequent calls return the running server).  Returns nullptr when
// the variable is unset/empty or the bind failed (failure is reported
// on stderr — a bad port must not kill the workload it observes).
StatszServer* StartStatszFromEnv();

// Starts the process-wide server explicitly (bench --statsz, REPL
// :statsz).  Fails with kFailedPrecondition if one is already running.
Status StartGlobalStatsz(const StatszOptions& options);

// The running process-wide server, if any.
StatszServer* GlobalStatsz();

// Stops and destroys the process-wide server (tests).
void StopGlobalStatsz();

}  // namespace revise::obs

#endif  // REVISE_OBS_STATSZ_H_
