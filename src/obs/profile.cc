#include "obs/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/memory.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace revise::obs {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool> g_profiling{false};

// One mutex guards every tree mutation (child attachment, peak notes,
// root completion): concurrent shard tasks share their parent node, and
// profiling is an opt-in diagnosis mode where simplicity beats ns-level
// contention tuning.
util::Mutex g_profile_mu;

struct ProfileState {
  std::vector<std::unique_ptr<ProfileNode>> forest;
  size_t nodes_created = 0;  // since the last TakeProfiles()
};

// Tree mutations and forest reads all go through here; callers must hold
// g_profile_mu (checked by clang thread-safety analysis).
ProfileState& State() REVISE_REQUIRES(g_profile_mu) {
  static ProfileState* const state = new ProfileState();
  return *state;
}

thread_local ProfileNode* t_current_node = nullptr;

// The interned Counter* for each attribution key, resolved once.
const std::array<Counter*, kProfileCounterCount>& AttributionCounters() {
  static const std::array<Counter*, kProfileCounterCount>* const counters =
      [] {
        auto* resolved = new std::array<Counter*, kProfileCounterCount>();
        const auto& keys = ProfileCounterKeys();
        for (size_t i = 0; i < kProfileCounterCount; ++i) {
          (*resolved)[i] = Registry::Global().GetCounter(keys[i]);
        }
        return resolved;
      }();
  return *counters;
}

void AppendRendered(const ProfileNode& node, int indent, std::string* out) {
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%s  %.3f ms", indent * 2, "",
                node.name.c_str(),
                static_cast<double>(node.duration_ns) * 1e-6);
  out->append(line);
  const auto& keys = ProfileCounterKeys();
  for (size_t i = 0; i < kProfileCounterCount; ++i) {
    if (node.inclusive[i] == 0) continue;
    std::snprintf(line, sizeof(line), "  %s=%llu", keys[i],
                  static_cast<unsigned long long>(node.inclusive[i]));
    out->append(line);
  }
  if (node.peak_model_set_models != 0) {
    std::snprintf(line, sizeof(line), "  peak_model_set=%llu",
                  static_cast<unsigned long long>(
                      node.peak_model_set_models));
    out->append(line);
  }
  if (node.peak_rss_delta_bytes > 0) {
    std::snprintf(line, sizeof(line), "  rss+%lld B",
                  static_cast<long long>(node.peak_rss_delta_bytes));
    out->append(line);
  }
  out->push_back('\n');
  for (const std::unique_ptr<ProfileNode>& child : node.children) {
    AppendRendered(*child, indent + 1, out);
  }
}

}  // namespace

const std::array<const char*, kProfileCounterCount>& ProfileCounterKeys() {
  static const std::array<const char*, kProfileCounterCount> keys = {
      REVISE_PROFILE_KEY("sat.solves"),
      REVISE_PROFILE_KEY("sat.decisions"),
      REVISE_PROFILE_KEY("sat.conflicts"),
      REVISE_PROFILE_KEY("solve.models_enumerated"),
      REVISE_PROFILE_KEY("solve.model_cache.hits"),
      REVISE_PROFILE_KEY("solve.model_cache.misses"),
      REVISE_PROFILE_KEY("bdd.nodes_created"),
      REVISE_PROFILE_KEY("qm.prime_implicants"),
  };
  return keys;
}

uint64_t ProfileNode::Exclusive(size_t counter) const {
  uint64_t from_children = 0;
  for (const std::unique_ptr<ProfileNode>& child : children) {
    from_children += child->inclusive[counter];
  }
  const uint64_t total = inclusive[counter];
  return from_children >= total ? 0 : total - from_children;
}

void SetProfilingEnabled(bool enabled) {
  g_profiling.store(enabled, std::memory_order_relaxed);
}

bool ProfilingEnabled() {
  return g_profiling.load(std::memory_order_relaxed);
}

void ProfileScope::Begin(std::string name) {
  auto node = std::make_unique<ProfileNode>();
  node->name = std::move(name);
  node->span_id = span_.id();
  node->start_ns = NowNanos();
  node->parent = t_current_node;
  ProfileNode* raw = node.get();
  {
    util::MutexLock lock(g_profile_mu);
    ProfileState& state = State();
    if (state.nodes_created >= kMaxLiveProfileNodes) {
      REVISE_OBS_COUNTER("obs.profile_nodes_dropped").Increment();
      return;  // scope stays inactive; notes fall through to the parent
    }
    ++state.nodes_created;
    if (node->parent != nullptr) {
      node->parent->children.push_back(std::move(node));
    } else {
      root_ = std::move(node);
    }
  }
  const auto& counters = AttributionCounters();
  for (size_t i = 0; i < kProfileCounterCount; ++i) {
    entry_[i] = counters[i]->Value();
  }
  entry_peak_rss_ = MemoryStats::PeakRssBytes();
  node_ = raw;
  t_current_node = raw;
}

void ProfileScope::End() {
  const auto& counters = AttributionCounters();
  node_->duration_ns = NowNanos() - node_->start_ns;
  for (size_t i = 0; i < kProfileCounterCount; ++i) {
    node_->inclusive[i] = counters[i]->Value() - entry_[i];
  }
  const uint64_t peak_rss = MemoryStats::PeakRssBytes();
  node_->peak_rss_delta_bytes =
      static_cast<int64_t>(peak_rss) - static_cast<int64_t>(entry_peak_rss_);
  t_current_node = node_->parent;
  {
    util::MutexLock lock(g_profile_mu);
    if (node_->parent != nullptr) {
      // The child's peak counts toward every enclosing operation.
      node_->parent->peak_model_set_models =
          std::max(node_->parent->peak_model_set_models,
                   node_->peak_model_set_models);
    } else if (root_ != nullptr) {
      State().forest.push_back(std::move(root_));
    }
  }
  node_ = nullptr;
}

void NoteModelSetCardinality(size_t models) {
  if (!ProfilingEnabled()) return;
  ProfileNode* node = t_current_node;
  if (node == nullptr) return;
  util::MutexLock lock(g_profile_mu);
  node->peak_model_set_models =
      std::max(node->peak_model_set_models, static_cast<uint64_t>(models));
}

std::vector<std::unique_ptr<ProfileNode>> TakeProfiles() {
  util::MutexLock lock(g_profile_mu);
  ProfileState& state = State();
  std::vector<std::unique_ptr<ProfileNode>> taken = std::move(state.forest);
  state.forest.clear();
  state.nodes_created = 0;
  return taken;
}

Json ProfileNodeToJson(const ProfileNode& node) {
  Json entry = Json::MakeObject();
  entry["name"] = node.name;
  entry["span_id"] = node.span_id;
  entry["duration_ns"] = node.duration_ns;
  Json counters = Json::MakeObject();
  const auto& keys = ProfileCounterKeys();
  for (size_t i = 0; i < kProfileCounterCount; ++i) {
    counters[keys[i]] = node.inclusive[i];
  }
  entry["counters"] = std::move(counters);
  entry["peak_model_set_models"] = node.peak_model_set_models;
  entry["peak_rss_delta_bytes"] = node.peak_rss_delta_bytes;
  Json children = Json::MakeArray();
  for (const std::unique_ptr<ProfileNode>& child : node.children) {
    children.Append(ProfileNodeToJson(*child));
  }
  entry["children"] = std::move(children);
  return entry;
}

Json ProfileForestToJson() {
  util::MutexLock lock(g_profile_mu);
  Json forest = Json::MakeArray();
  for (const std::unique_ptr<ProfileNode>& root : State().forest) {
    forest.Append(ProfileNodeToJson(*root));
  }
  return forest;
}

std::string RenderProfileTree(const ProfileNode& root) {
  std::string out;
  AppendRendered(root, 0, &out);
  return out;
}

namespace internal {

void* CurrentProfileNodeRaw() { return t_current_node; }

void SetCurrentProfileNodeRaw(void* node) {
  t_current_node = static_cast<ProfileNode*>(node);
}

}  // namespace internal

}  // namespace revise::obs
