#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace revise::obs {

namespace {

// Same clock (and epoch) as the in-flight table's start_ns stamps.
int64_t NowSteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ClampedWaitMs(double seconds) {
  const double ms = seconds * 1000.0;
  if (ms < 1.0) return 1;
  if (ms > 3600.0 * 1000.0) return 3600 * 1000;
  return static_cast<int64_t>(ms);
}

}  // namespace

// --- MetricsDumper -----------------------------------------------------

StatusOr<std::unique_ptr<MetricsDumper>> MetricsDumper::Start(
    const MetricsDumperOptions& options) {
  if (options.path.empty()) {
    return InvalidArgumentError("metrics dump path is empty");
  }
  if (!(options.interval_s > 0.0)) {
    return InvalidArgumentError("metrics dump interval must be positive");
  }
  std::unique_ptr<MetricsDumper> dumper(new MetricsDumper(options));
  REVISE_RETURN_IF_ERROR(dumper->WriteDump());
  MetricsDumper* raw = dumper.get();
  dumper->thread_ = BackgroundThread([raw] { raw->Loop(); });
  return dumper;
}

MetricsDumper::~MetricsDumper() { Stop(); }

void MetricsDumper::Stop() {
  {
    util::MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    stop_cv_.NotifyAll();
  }
  thread_.Join();
  // A final rotation so the artifact reflects the end of the run.
  (void)WriteDump().ok();
}

void MetricsDumper::Loop() {
  const int64_t wait_ms = ClampedWaitMs(options_.interval_s);
  for (;;) {
    {
      util::MutexLock lock(mu_);
      while (!stopping_) {
        if (!stop_cv_.WaitFor(mu_, wait_ms)) break;  // interval elapsed
      }
      if (stopping_) return;
    }
    if (!WriteDump().ok()) {
      REVISE_OBS_COUNTER("obs.metrics_dump_errors").Increment();
    }
  }
}

Status MetricsDumper::WriteDump() {
  const std::string text = RenderOpenMetrics();
  const std::string tmp = options_.path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    return InternalError("cannot open metrics dump file " + tmp);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !close_ok) {
    std::remove(tmp.c_str());
    return InternalError("short write to metrics dump file " + tmp);
  }
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rotate metrics dump into " + options_.path);
  }
  REVISE_OBS_COUNTER("obs.metrics_dumps").Increment();
  return Status::Ok();
}

// --- StallWatchdog -----------------------------------------------------

StatusOr<std::unique_ptr<StallWatchdog>> StallWatchdog::Start(
    const StallWatchdogOptions& options) {
  if (!(options.threshold_s > 0.0)) {
    return InvalidArgumentError("watchdog threshold must be positive");
  }
  StallWatchdogOptions resolved = options;
  if (!(resolved.poll_interval_s > 0.0)) {
    resolved.poll_interval_s =
        std::clamp(resolved.threshold_s / 4.0, 0.010, 1.0);
  }
  std::unique_ptr<StallWatchdog> watchdog(new StallWatchdog(resolved));
  StallWatchdog* raw = watchdog.get();
  watchdog->thread_ = BackgroundThread([raw] { raw->Loop(); });
  return watchdog;
}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Stop() {
  {
    util::MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    stop_cv_.NotifyAll();
  }
  thread_.Join();
}

void StallWatchdog::Loop() {
  const int64_t wait_ms = ClampedWaitMs(options_.poll_interval_s);
  const int64_t threshold_ns =
      static_cast<int64_t>(options_.threshold_s * 1e9);
  // Scope ids already reported as stalled; pruned to the live table each
  // poll so the set stays bounded by kMaxTrackedInFlightOps.
  std::set<uint64_t> reported;
  for (;;) {
    {
      util::MutexLock lock(mu_);
      if (stopping_) return;
      (void)stop_cv_.WaitFor(mu_, wait_ms);
      if (stopping_) return;
    }
    const std::vector<InFlightOp> ops = SnapshotInFlightOps();
    const int64_t now_ns = NowSteadyNanos();
    std::set<uint64_t> live;
    bool new_stall = false;
    for (const InFlightOp& op : ops) {
      live.insert(op.id);
      if (now_ns - op.start_ns < threshold_ns) continue;
      if (reported.count(op.id) != 0) continue;
      reported.insert(op.id);
      new_stall = true;
      char detail[80];
      std::snprintf(detail, sizeof(detail), "%s stalled %.1fs", op.name,
                    static_cast<double>(now_ns - op.start_ns) * 1e-9);
      REVISE_FLIGHT_EVENT("obs.watchdog_stall", detail);
      REVISE_OBS_COUNTER("obs.watchdog_stalls").Increment();
    }
    // Forget finished scopes: their ids never recur (monotone counter).
    for (auto it = reported.begin(); it != reported.end();) {
      if (live.count(*it) == 0) {
        it = reported.erase(it);
      } else {
        ++it;
      }
    }
    if (new_stall && options_.write_dump) {
      const std::string path = WriteFlightDump("stall watchdog", "stall");
      if (!path.empty()) {
        std::fprintf(stderr, "revise: watchdog stall dump written to %s\n",
                     path.c_str());
      }
    }
  }
}

// --- process-wide instances --------------------------------------------

namespace {

util::Mutex g_watchdog_mu;
MetricsDumper*& GlobalDumperSlot() REVISE_REQUIRES(g_watchdog_mu) {
  static MetricsDumper* dumper = nullptr;
  return dumper;
}
StallWatchdog*& GlobalWatchdogSlot() REVISE_REQUIRES(g_watchdog_mu) {
  static StallWatchdog* watchdog = nullptr;
  return watchdog;
}

}  // namespace

MetricsDumper* StartMetricsDumperFromEnv() {
  const char* env = std::getenv("REVISE_METRICS_DUMP");
  {
    util::MutexLock lock(g_watchdog_mu);
    if (GlobalDumperSlot() != nullptr) return GlobalDumperSlot();
  }
  if (env == nullptr || *env == '\0') return nullptr;
  const std::string spec(env);
  const size_t colon = spec.rfind(':');
  MetricsDumperOptions options;
  if (colon == std::string::npos || colon == 0) {
    std::fprintf(stderr, "revise: bad REVISE_METRICS_DUMP value '%s' "
                         "(want <path>:<interval_s>)\n",
                 env);
    return nullptr;
  }
  options.path = spec.substr(0, colon);
  char* end = nullptr;
  options.interval_s = std::strtod(spec.c_str() + colon + 1, &end);
  if (end == nullptr || *end != '\0' || !(options.interval_s > 0.0)) {
    std::fprintf(stderr, "revise: bad REVISE_METRICS_DUMP interval in "
                         "'%s' (want a positive number of seconds)\n",
                 env);
    return nullptr;
  }
  StatusOr<std::unique_ptr<MetricsDumper>> dumper =
      MetricsDumper::Start(options);
  if (!dumper.ok()) {
    std::fprintf(stderr, "revise: metrics dumper failed to start: %s\n",
                 dumper.status().ToString().c_str());
    return nullptr;
  }
  util::MutexLock lock(g_watchdog_mu);
  if (GlobalDumperSlot() == nullptr) {
    GlobalDumperSlot() = dumper->release();
  }
  return GlobalDumperSlot();
}

StallWatchdog* StartStallWatchdogFromEnv() {
  const char* env = std::getenv("REVISE_WATCHDOG_S");
  {
    util::MutexLock lock(g_watchdog_mu);
    if (GlobalWatchdogSlot() != nullptr) return GlobalWatchdogSlot();
  }
  if (env == nullptr || *env == '\0') return nullptr;
  char* end = nullptr;
  StallWatchdogOptions options;
  options.threshold_s = std::strtod(env, &end);
  if (end == nullptr || *end != '\0' || !(options.threshold_s > 0.0)) {
    std::fprintf(stderr, "revise: bad REVISE_WATCHDOG_S value '%s' "
                         "(want a positive number of seconds)\n",
                 env);
    return nullptr;
  }
  StatusOr<std::unique_ptr<StallWatchdog>> watchdog =
      StallWatchdog::Start(options);
  if (!watchdog.ok()) {
    std::fprintf(stderr, "revise: stall watchdog failed to start: %s\n",
                 watchdog.status().ToString().c_str());
    return nullptr;
  }
  util::MutexLock lock(g_watchdog_mu);
  if (GlobalWatchdogSlot() == nullptr) {
    GlobalWatchdogSlot() = watchdog->release();
  }
  return GlobalWatchdogSlot();
}

void StopGlobalMetricsDumper() {
  MetricsDumper* dumper = nullptr;
  {
    util::MutexLock lock(g_watchdog_mu);
    dumper = GlobalDumperSlot();
    GlobalDumperSlot() = nullptr;
  }
  delete dumper;
}

void StopGlobalStallWatchdog() {
  StallWatchdog* watchdog = nullptr;
  {
    util::MutexLock lock(g_watchdog_mu);
    watchdog = GlobalWatchdogSlot();
    GlobalWatchdogSlot() = nullptr;
  }
  delete watchdog;
}

}  // namespace revise::obs
