#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/json.h"

namespace revise::obs {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<TraceSink> g_sink{TraceSink::kNone};
std::atomic<bool> g_enabled{false};

std::mutex g_spans_mu;
std::vector<SpanRecord>& SpanBuffer() {
  static std::vector<SpanRecord>* const buffer =
      new std::vector<SpanRecord>();
  return *buffer;
}

thread_local int t_depth = 0;

// Reads REVISE_TRACE once, before the first sink query.
TraceSink SinkFromEnvironment() {
  const char* value = std::getenv("REVISE_TRACE");
  if (value == nullptr || *value == '\0') return TraceSink::kNone;
  if (std::strcmp(value, "text") == 0) return TraceSink::kText;
  if (std::strcmp(value, "json") == 0) return TraceSink::kJson;
  if (std::strcmp(value, "off") == 0) return TraceSink::kSilent;
  std::fprintf(stderr,
               "revise: ignoring unknown REVISE_TRACE value '%s' "
               "(expected text, json, or off)\n",
               value);
  return TraceSink::kNone;
}

struct EnvironmentInit {
  EnvironmentInit() { SetTraceSink(SinkFromEnvironment()); }
};
EnvironmentInit g_environment_init;

}  // namespace

void Stopwatch::Restart() { start_ns_ = NowNanos(); }

int64_t Stopwatch::ElapsedNanos() const { return NowNanos() - start_ns_; }

void SetTraceSink(TraceSink sink) {
  g_sink.store(sink, std::memory_order_relaxed);
  g_enabled.store(sink != TraceSink::kNone, std::memory_order_relaxed);
}

TraceSink GetTraceSink() { return g_sink.load(std::memory_order_relaxed); }

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

std::vector<SpanRecord> SnapshotSpans() {
  std::lock_guard<std::mutex> lock(g_spans_mu);
  return SpanBuffer();
}

void ClearSpans() {
  std::lock_guard<std::mutex> lock(g_spans_mu);
  SpanBuffer().clear();
}

void Span::Begin(std::string_view name) {
  if (name_.empty()) name_.assign(name);
  active_ = true;
  depth_ = t_depth++;
  start_ns_ = NowNanos();
}

void Span::End() {
  const int64_t duration_ns = NowNanos() - start_ns_;
  --t_depth;
  active_ = false;
  const TraceSink sink = GetTraceSink();
  if (sink == TraceSink::kNone) return;  // sink removed mid-span
  {
    std::lock_guard<std::mutex> lock(g_spans_mu);
    SpanBuffer().push_back(SpanRecord{name_, depth_, start_ns_, duration_ns});
  }
  if (sink == TraceSink::kText) {
    std::fprintf(stderr, "%*s%s  %.3f ms\n", depth_ * 2, "", name_.c_str(),
                 static_cast<double>(duration_ns) * 1e-6);
  } else if (sink == TraceSink::kJson) {
    Json line = Json::MakeObject();
    line["span"] = name_;
    line["depth"] = depth_;
    line["start_ns"] = start_ns_;
    line["duration_ns"] = duration_ns;
    std::fprintf(stderr, "%s\n", line.Dump().c_str());
  }
}

}  // namespace revise::obs
