#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "util/mutex.h"
#include "util/parallel.h"
#include "util/thread_annotations.h"

namespace revise::obs {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<TraceSink> g_sink{TraceSink::kNone};
std::atomic<bool> g_enabled{false};

// The bounded span ring.  `ring` grows with push_back until `capacity`,
// then wraps: `write_pos` is the index of the oldest record (the next one
// to be overwritten).
struct SpanBufferState {
  std::vector<SpanRecord> ring;
  size_t capacity = kDefaultSpanBufferCapacity;
  size_t write_pos = 0;
};

util::Mutex g_spans_mu;
// The ring state lives behind this accessor; every caller must hold
// g_spans_mu, which the REQUIRES annotation enforces on clang.
SpanBufferState& SpanBuffer() REVISE_REQUIRES(g_spans_mu) {
  static SpanBufferState* const buffer = new SpanBufferState();
  return *buffer;
}

util::Mutex g_chrome_mu;
std::string& ChromePath() REVISE_REQUIRES(g_chrome_mu) {
  static std::string* const path = new std::string();
  return *path;
}

thread_local int t_depth = 0;

// Causal context: the innermost open span (0 = none) and a process-wide
// id allocator.  Id 0 is reserved for "no parent".
thread_local uint64_t t_current_span_id = 0;
std::atomic<uint64_t> g_next_span_id{1};

// Pool-context hooks (util/parallel.h): carry the submitting thread's
// span context and profile node into every thread executing tasks of a
// batch, so shard-local spans attach to the spawning operation.
void CapturePoolContext(PoolTaskContext* out) {
  out->trace_span_id = t_current_span_id;
  out->trace_depth = t_depth;
  out->profile_node = internal::CurrentProfileNodeRaw();
}

void SwapPoolContext(const PoolTaskContext& incoming,
                     PoolTaskContext* previous) {
  previous->trace_span_id = t_current_span_id;
  previous->trace_depth = t_depth;
  previous->profile_node = internal::CurrentProfileNodeRaw();
  t_current_span_id = incoming.trace_span_id;
  t_depth = incoming.trace_depth;
  internal::SetCurrentProfileNodeRaw(incoming.profile_node);
}

// Stable small thread ids in first-span order (the Chrome trace track
// order).  The main thread usually traces first and gets 0.
std::atomic<int> g_next_tid{0};
int ThisThreadTid() {
  thread_local const int tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void WriteChromeTraceAtExit() {
  if (GetTraceSink() != TraceSink::kChrome) return;
  const std::string path = GetChromeTracePath();
  if (path.empty()) return;
  const Status status = WriteChromeTrace(path);
  if (status.ok()) {
    std::fprintf(stderr, "revise: chrome trace written to %s\n",
                 path.c_str());
  } else {
    std::fprintf(stderr, "revise: chrome trace export failed: %s\n",
                 status.ToString().c_str());
  }
}

void RegisterChromeAtExitOnce() {
  static const bool registered = [] {
    std::atexit(WriteChromeTraceAtExit);
    return true;
  }();
  (void)registered;
}

// Reads REVISE_TRACE (and REVISE_TRACE_BUFFER) once, before the first
// sink query.
TraceSink SinkFromEnvironment() {
  const char* value = std::getenv("REVISE_TRACE");
  if (value == nullptr || *value == '\0') return TraceSink::kNone;
  if (std::strcmp(value, "text") == 0) return TraceSink::kText;
  if (std::strcmp(value, "json") == 0) return TraceSink::kJson;
  if (std::strcmp(value, "off") == 0) return TraceSink::kSilent;
  if (std::strncmp(value, "chrome:", 7) == 0 && value[7] != '\0') {
    SetChromeTracePath(value + 7);
    return TraceSink::kChrome;
  }
  std::fprintf(stderr,
               "revise: ignoring unknown REVISE_TRACE value '%s' "
               "(expected text, json, off, or chrome:<path>)\n",
               value);
  return TraceSink::kNone;
}

struct EnvironmentInit {
  EnvironmentInit() {
    SetPoolContextHooks(&CapturePoolContext, &SwapPoolContext);
    if (const char* cap = std::getenv("REVISE_TRACE_BUFFER");
        cap != nullptr && *cap != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(cap, &end, 10);
      if (end != nullptr && *end == '\0') {
        SetSpanBufferCapacity(static_cast<size_t>(parsed));
      } else {
        std::fprintf(stderr,
                     "revise: ignoring non-numeric REVISE_TRACE_BUFFER "
                     "value '%s'\n",
                     cap);
      }
    }
    SetTraceSink(SinkFromEnvironment());
  }
};
EnvironmentInit g_environment_init;

}  // namespace

void Stopwatch::Restart() { start_ns_ = NowNanos(); }

int64_t Stopwatch::ElapsedNanos() const { return NowNanos() - start_ns_; }

void SetTraceSink(TraceSink sink) {
  g_sink.store(sink, std::memory_order_relaxed);
  g_enabled.store(sink != TraceSink::kNone, std::memory_order_relaxed);
  if (sink == TraceSink::kChrome) RegisterChromeAtExitOnce();
}

TraceSink GetTraceSink() { return g_sink.load(std::memory_order_relaxed); }

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

uint64_t CurrentSpanId() { return t_current_span_id; }

void SetChromeTracePath(std::string path) {
  {
    util::MutexLock lock(g_chrome_mu);
    ChromePath() = std::move(path);
  }
  RegisterChromeAtExitOnce();
}

std::string GetChromeTracePath() {
  util::MutexLock lock(g_chrome_mu);
  return ChromePath();
}

std::vector<SpanRecord> SnapshotSpans() {
  util::MutexLock lock(g_spans_mu);
  const SpanBufferState& state = SpanBuffer();
  if (state.ring.size() < state.capacity || state.write_pos == 0) {
    return state.ring;
  }
  std::vector<SpanRecord> ordered;
  ordered.reserve(state.ring.size());
  ordered.insert(ordered.end(), state.ring.begin() + static_cast<ptrdiff_t>(
                                                         state.write_pos),
                 state.ring.end());
  ordered.insert(ordered.end(), state.ring.begin(),
                 state.ring.begin() + static_cast<ptrdiff_t>(state.write_pos));
  return ordered;
}

void ClearSpans() {
  util::MutexLock lock(g_spans_mu);
  SpanBuffer().ring.clear();
  SpanBuffer().write_pos = 0;
}

void SetSpanBufferCapacity(size_t capacity) {
  util::MutexLock lock(g_spans_mu);
  SpanBufferState& state = SpanBuffer();
  state.capacity = capacity == 0 ? 1 : capacity;
  state.ring.clear();
  state.ring.shrink_to_fit();
  state.write_pos = 0;
}

size_t SpanBufferCapacity() {
  util::MutexLock lock(g_spans_mu);
  return SpanBuffer().capacity;
}

Status WriteChromeTrace(const std::string& path) {
  const std::vector<SpanRecord> spans = SnapshotSpans();
  int64_t epoch_ns = 0;
  for (const SpanRecord& span : spans) {
    if (epoch_ns == 0 || span.start_ns < epoch_ns) epoch_ns = span.start_ns;
  }
  // Parent lookup for cross-thread flow arrows (a dropped parent simply
  // has no arrow; the child still renders on its own track).
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) by_id[span.id] = &span;
  Json doc = Json::MakeObject();
  Json events = Json::MakeArray();
  for (const SpanRecord& span : spans) {
    Json event = Json::MakeObject();
    event["name"] = span.name;
    event["cat"] = "revise";
    event["ph"] = "X";
    event["ts"] = static_cast<double>(span.start_ns - epoch_ns) * 1e-3;
    event["dur"] = static_cast<double>(span.duration_ns) * 1e-3;
    event["pid"] = 1;
    event["tid"] = span.tid;
    Json args = Json::MakeObject();
    args["depth"] = span.depth;
    args["id"] = span.id;
    args["parent_id"] = span.parent_id;
    event["args"] = std::move(args);
    events.Append(std::move(event));
    // A parent on another thread gets an explicit flow event pair: start
    // ("s") on the parent's track, finish ("f") on the child's, both at
    // the child's entry time and keyed by the child's unique span id.
    const auto parent = by_id.find(span.parent_id);
    if (span.parent_id == 0 || parent == by_id.end() ||
        parent->second->tid == span.tid) {
      continue;
    }
    const double flow_ts =
        static_cast<double>(span.start_ns - epoch_ns) * 1e-3;
    Json start = Json::MakeObject();
    start["name"] = span.name;
    start["cat"] = "revise.flow";
    start["ph"] = "s";
    start["id"] = span.id;
    start["ts"] = flow_ts;
    start["pid"] = 1;
    start["tid"] = parent->second->tid;
    events.Append(std::move(start));
    Json finish = Json::MakeObject();
    finish["name"] = span.name;
    finish["cat"] = "revise.flow";
    finish["ph"] = "f";
    finish["bp"] = "e";
    finish["id"] = span.id;
    finish["ts"] = flow_ts;
    finish["pid"] = 1;
    finish["tid"] = span.tid;
    events.Append(std::move(finish));
  }
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return InternalError("cannot open trace file: " + path);
  }
  const std::string text = doc.Dump(/*indent=*/1);
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !newline_ok || !close_ok) {
    return InternalError("short write to trace file: " + path);
  }
  return Status::Ok();
}

void Span::Begin(std::string_view name) {
  if (name_.empty()) name_.assign(name);
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = t_current_span_id;
  t_current_span_id = id_;
  depth_ = t_depth++;
  start_ns_ = NowNanos();
}

void Span::End() {
  const int64_t duration_ns = NowNanos() - start_ns_;
  t_current_span_id = parent_id_;
  --t_depth;
  active_ = false;
  const TraceSink sink = GetTraceSink();
  if (sink == TraceSink::kNone) return;  // sink removed mid-span
  const int tid = ThisThreadTid();
  // Per-name duration distribution for the report's histograms section.
  Registry::Global().GetHistogram(name_)->Record(
      duration_ns < 0 ? 0 : static_cast<uint64_t>(duration_ns));
  {
    util::MutexLock lock(g_spans_mu);
    SpanBufferState& state = SpanBuffer();
    SpanRecord record{name_, id_, parent_id_, depth_, tid, start_ns_,
                      duration_ns};
    if (state.ring.size() < state.capacity) {
      state.ring.push_back(std::move(record));
    } else {
      state.ring[state.write_pos] = std::move(record);
      state.write_pos = (state.write_pos + 1) % state.capacity;
      REVISE_OBS_COUNTER("obs.spans_dropped").Increment();
    }
  }
  if (sink == TraceSink::kText) {
    std::fprintf(stderr, "%*s%s  %.3f ms\n", depth_ * 2, "", name_.c_str(),
                 static_cast<double>(duration_ns) * 1e-6);
  } else if (sink == TraceSink::kJson) {
    Json line = Json::MakeObject();
    line["span"] = name_;
    line["id"] = id_;
    line["parent_id"] = parent_id_;
    line["depth"] = depth_;
    line["tid"] = tid;
    line["start_ns"] = start_ns_;
    line["duration_ns"] = duration_ns;
    std::fprintf(stderr, "%s\n", line.Dump().c_str());
  }
}

}  // namespace revise::obs
