#include "solve/qbf.h"

#include <unordered_map>
#include <unordered_set>

#include "logic/substitute.h"
#include "solve/sat_context.h"
#include "util/check.h"

namespace revise {

ExistsForallResult ExistsForallSat(const std::vector<Var>& exists_vars,
                                   const std::vector<Var>& forall_vars,
                                   const Formula& matrix) {
  // Any matrix variable not in either block is treated as existential.
  std::unordered_set<Var> declared(exists_vars.begin(), exists_vars.end());
  declared.insert(forall_vars.begin(), forall_vars.end());
  std::vector<Var> all_exists = exists_vars;
  for (const Var v : matrix.Vars()) {
    if (declared.find(v) == declared.end()) all_exists.push_back(v);
  }
  const Alphabet exists_alphabet(all_exists);
  const Alphabet forall_alphabet(forall_vars);

  ExistsForallResult result;
  SatContext abstraction;
  // Force the existential variables to exist in the abstraction even
  // before the first refinement mentions them.
  for (const Var v : all_exists) abstraction.SatVarOf(v);

  for (;;) {
    ++result.iterations;
    if (!abstraction.Solve()) {
      result.satisfiable = false;
      return result;
    }
    const Interpretation candidate =
        abstraction.ExtractModel(exists_alphabet);

    // Verify: does some assignment of the universals falsify the matrix
    // under this candidate?
    SatContext verifier;
    verifier.Assert(Formula::Not(matrix));
    std::vector<sat::Lit> assumptions;
    assumptions.reserve(exists_alphabet.size());
    for (size_t i = 0; i < exists_alphabet.size(); ++i) {
      const int sat_var = verifier.SatVarOf(exists_alphabet.var(i));
      assumptions.push_back(sat::MakeLit(sat_var, !candidate.Get(i)));
    }
    if (!verifier.Solve(assumptions)) {
      result.satisfiable = true;
      result.witness = candidate;
      return result;
    }
    // Refine with the counterexample: the matrix must hold at y*.
    std::unordered_map<Var, Formula> map;
    for (const Var y : forall_vars) {
      map.emplace(y, Formula::Constant(verifier.ModelValue(y)));
    }
    const Formula refinement = Substitute(matrix, map);
    if (refinement.IsFalse()) {
      // No candidate can satisfy the matrix at this counterexample.
      result.satisfiable = false;
      return result;
    }
    abstraction.Assert(refinement);
  }
}

bool QueryEquivalentQbf(const Formula& a, const Formula& b,
                        const Alphabet& alphabet) {
  auto aux_of = [&](const Formula& f) {
    std::vector<Var> aux;
    for (const Var v : f.Vars()) {
      if (!alphabet.Contains(v)) aux.push_back(v);
    }
    return aux;
  };
  auto projection_escapes = [&](const Formula& lhs, const Formula& rhs) {
    // ∃(alphabet ∪ aux(lhs)) ∀aux(rhs). lhs ∧ ¬rhs: some projection of
    // lhs is outside the projection of rhs.
    std::vector<Var> exists_vars = alphabet.vars();
    const std::vector<Var> lhs_aux = aux_of(lhs);
    exists_vars.insert(exists_vars.end(), lhs_aux.begin(), lhs_aux.end());
    return ExistsForallSat(exists_vars, aux_of(rhs),
                           Formula::And(lhs, Formula::Not(rhs)))
        .satisfiable;
  };
  return !projection_escapes(a, b) && !projection_escapes(b, a);
}

}  // namespace revise
