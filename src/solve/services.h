// High-level semantic services over formulas: satisfiability, entailment,
// equivalence, and model enumeration (AllSAT over a chosen alphabet).

#ifndef REVISE_SOLVE_SERVICES_H_
#define REVISE_SOLVE_SERVICES_H_

#include <vector>

#include "logic/formula.h"
#include "logic/interpretation.h"
#include "model/model_set.h"

namespace revise {

[[nodiscard]] bool IsSatisfiable(const Formula& f);

// a |= b.
[[nodiscard]] bool Entails(const Formula& a, const Formula& b);

// Logical equivalence: a |= b and b |= a.
[[nodiscard]] bool AreEquivalent(const Formula& a, const Formula& b);

// All models of f over `alphabet`, i.e. the projections onto `alphabet` of
// the models of f over V(f) ∪ alphabet.  Variables of f outside `alphabet`
// are projected out (a projection appears once no matter how many
// extensions it has); letters of `alphabet` not occurring in f take both
// values.  `limit` == 0 means unlimited.  The enumeration uses blocking
// clauses on the alphabet literals.  Unlimited enumerations are memoized
// in the process-wide ModelCache (solve/model_cache.h) keyed by the
// structural formula hash and the alphabet; repeated enumerations of the
// same pair are cache hits.
[[nodiscard]] ModelSet EnumerateModels(const Formula& f,
                                       const Alphabet& alphabet,
                                       size_t limit = 0);

// Exact model count over `alphabet` by enumeration (small alphabets only).
[[nodiscard]] size_t CountModels(const Formula& f, const Alphabet& alphabet);

// Query equivalence (paper's criterion (1)) of `a` and `b` with respect to
// queries over `alphabet`: every formula built from `alphabet` letters is
// entailed by a iff it is entailed by b.  Over a finite alphabet this holds
// iff the projections of the two model sets onto `alphabet` coincide.
// Short-circuits: when neither side has variables outside `alphabet` this
// is a single SAT call on Xor(a, b); otherwise one side is enumerated in
// full and the other streamed, stopping at the first unshared model.
[[nodiscard]] bool QueryEquivalent(const Formula& a, const Formula& b,
                                   const Alphabet& alphabet);

}  // namespace revise

#endif  // REVISE_SOLVE_SERVICES_H_
