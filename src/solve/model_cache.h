// An LRU-bounded memo for full model enumerations.
//
// EnumerateModels re-pays a complete AllSAT sweep every time the same
// (formula, alphabet) pair comes back — which the revision pipeline does
// constantly: postulate checks enumerate M(T) and M(P) once per postulate,
// query-equivalence tests enumerate both sides, and iterated revision
// round-trips ModelSet -> Formula -> EnumerateModels on every step.  This
// cache keys finished enumerations by the *structural* identity of the
// formula (Formula::StructuralHash / StructurallyEqual, i.e. the shape and
// variable ids, not node pointers) together with the alphabet.  Variable
// ids fully determine the enumeration result, so hits are exact.
//
//   * bounded: least-recently-used entries are evicted beyond `capacity`;
//   * explicit invalidation: Clear() drops everything (enumeration results
//     are immutable facts, so invalidation is only needed when a test or
//     long-lived process wants to release memory or isolate measurements);
//   * observable: hits, misses, insertions and evictions are published as
//     solve.model_cache.* counters by every instance (they aggregate
//     process-wide cache activity); the live entry count
//     (solve.model_cache.size) and the resident-byte estimate
//     (mem.model_cache_bytes, picked up by obs::MemoryStats::ToJson) are
//     gauges describing the *global* cache only — a short-lived local
//     instance must not leave the gauges describing a dead cache;
//   * thread-safe: one mutex; entries are returned by value.
//
// Configuration: REVISE_MODEL_CACHE sets the capacity in entries
// (default 128, 0 disables caching entirely).
//
// Disable vs evict-all semantics: capacity 0 means *disabled*.  A
// disabled cache still counts every Lookup as a miss (so hits + misses
// keeps matching the number of unlimited enumerations regardless of
// configuration), Insert is a silent no-op, and both gauges read 0.
// set_capacity(0) on a populated cache evicts every entry (counted as
// evictions) before disabling; set_capacity(n > 0) re-enables with an
// empty cache and the counters continue monotonically.

#ifndef REVISE_SOLVE_MODEL_CACHE_H_
#define REVISE_SOLVE_MODEL_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "logic/formula.h"
#include "logic/interpretation.h"
#include "model/model_set.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace revise {

class ModelCache {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  // The process-wide cache used by EnumerateModels (capacity taken from
  // REVISE_MODEL_CACHE at first use).
  static ModelCache& Global();

  // `publish_gauges` marks the instance whose size/bytes feed the global
  // gauges; only Global() passes true.  Counters are always published.
  explicit ModelCache(size_t capacity, bool publish_gauges = false)
      : capacity_(capacity), publish_gauges_(publish_gauges) {}

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  // Returns the cached model set for (f, alphabet) and marks it most
  // recently used, or nullopt on a miss (or when disabled).
  [[nodiscard]] std::optional<ModelSet> Lookup(const Formula& f,
                                               const Alphabet& alphabet);

  // Records an enumeration result, evicting the least recently used
  // entries beyond capacity.  Re-inserting an existing key refreshes it.
  void Insert(const Formula& f, const Alphabet& alphabet,
              const ModelSet& models);

  // Drops every entry (explicit invalidation).
  void Clear();

  // Shrinks/extends the bound; shrinking evicts LRU entries immediately.
  void set_capacity(size_t capacity);
  size_t capacity() const;
  bool enabled() const { return capacity() > 0; }
  size_t size() const;

  // Estimated resident bytes across all entries (model words plus fixed
  // per-entry overhead); mirrors the mem.model_cache_bytes gauge.
  uint64_t approx_bytes() const;

 private:
  struct Entry {
    uint64_t hash = 0;
    Formula formula;
    Alphabet alphabet;
    ModelSet models;
  };
  using EntryList = std::list<Entry>;

  static uint64_t ApproxEntryBytes(const Entry& entry);

  void EvictOverCapacityLocked() REVISE_REQUIRES(mu_);
  void PublishGaugesLocked() const REVISE_REQUIRES(mu_);
  EntryList::iterator FindLocked(uint64_t hash, const Formula& f,
                                 const Alphabet& alphabet)
      REVISE_REQUIRES(mu_);

  mutable util::Mutex mu_;
  size_t capacity_ REVISE_GUARDED_BY(mu_);
  const bool publish_gauges_;
  // Sum of ApproxEntryBytes over lru_.
  uint64_t bytes_ REVISE_GUARDED_BY(mu_) = 0;
  EntryList lru_ REVISE_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_multimap<uint64_t, EntryList::iterator> index_
      REVISE_GUARDED_BY(mu_);
};

}  // namespace revise

#endif  // REVISE_SOLVE_MODEL_CACHE_H_
