#include "solve/services.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "solve/sat_context.h"
#include "util/check.h"

namespace revise {

bool IsSatisfiable(const Formula& f) {
  obs::Span span("solve.sat");
  SatContext context;
  context.Assert(f);
  return context.Solve();
}

bool Entails(const Formula& a, const Formula& b) {
  // a |= b iff a & !b is unsatisfiable.
  obs::Span span("solve.entails");
  SatContext context;
  context.Assert(a);
  context.Assert(Formula::Not(b));
  return !context.Solve();
}

bool AreEquivalent(const Formula& a, const Formula& b) {
  SatContext context;
  context.Assert(Formula::Xor(a, b));
  return !context.Solve();
}

ModelSet EnumerateModels(const Formula& f, const Alphabet& alphabet,
                         size_t limit) {
  obs::Span span("solve.enumerate");
  SatContext context;
  context.Assert(f);
  // Force the mapping of every alphabet variable to exist so blocking
  // clauses can mention letters that do not occur in f.
  std::vector<sat::Lit> alphabet_lits(alphabet.size());
  for (size_t i = 0; i < alphabet.size(); ++i) {
    alphabet_lits[i] = sat::PosLit(context.SatVarOf(alphabet.var(i)));
  }
  std::vector<Interpretation> models;
  while (context.Solve()) {
    Interpretation m = context.ExtractModel(alphabet);
    models.push_back(m);
    if (limit != 0 && models.size() >= limit) break;
    // Block this projection.
    std::vector<sat::Lit> blocking(alphabet.size());
    for (size_t i = 0; i < alphabet.size(); ++i) {
      blocking[i] =
          m.Get(i) ? sat::Negate(alphabet_lits[i]) : alphabet_lits[i];
    }
    if (!context.solver().AddClause(std::move(blocking))) break;
  }
  REVISE_OBS_COUNTER("solve.models_enumerated").Increment(models.size());
  return ModelSet(alphabet, std::move(models));
}

size_t CountModels(const Formula& f, const Alphabet& alphabet) {
  return EnumerateModels(f, alphabet).size();
}

bool QueryEquivalent(const Formula& a, const Formula& b,
                     const Alphabet& alphabet) {
  return EnumerateModels(a, alphabet) == EnumerateModels(b, alphabet);
}

}  // namespace revise
