#include "solve/services.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/profile.h"
#include "solve/model_cache.h"
#include "solve/sat_context.h"
#include "util/check.h"

namespace revise {

namespace {

// Core blocking-clause AllSAT loop shared by EnumerateModels and
// QueryEquivalent: invokes visit(m) once per distinct projection m of a
// model of f onto `alphabet`, in enumeration order, until visit returns
// false or the projections are exhausted.
template <typename Visit>
void ForEachProjectedModel(const Formula& f, const Alphabet& alphabet,
                           Visit&& visit) {
  SatContext context;
  context.Assert(f);
  // Force the mapping of every alphabet variable to exist so blocking
  // clauses can mention letters that do not occur in f.
  std::vector<sat::Lit> alphabet_lits(alphabet.size());
  for (size_t i = 0; i < alphabet.size(); ++i) {
    alphabet_lits[i] = sat::PosLit(context.SatVarOf(alphabet.var(i)));
  }
  while (context.Solve()) {
    const Interpretation m = context.ExtractModel(alphabet);
    if (!visit(m)) return;
    // Block this projection.
    std::vector<sat::Lit> blocking(alphabet.size());
    for (size_t i = 0; i < alphabet.size(); ++i) {
      blocking[i] =
          m.Get(i) ? sat::Negate(alphabet_lits[i]) : alphabet_lits[i];
    }
    if (!context.solver().AddClause(std::move(blocking))) return;
  }
}

// True iff every variable of f lies inside `alphabet`, i.e. enumerating f
// over `alphabet` involves no projection.
bool ProjectionFree(const Formula& f, const Alphabet& alphabet) {
  for (const Var v : f.Vars()) {
    if (!alphabet.Contains(v)) return false;
  }
  return true;
}

}  // namespace

bool IsSatisfiable(const Formula& f) {
  obs::ProfileScope profile("solve.sat");
  SatContext context;
  context.Assert(f);
  return context.Solve();
}

bool Entails(const Formula& a, const Formula& b) {
  // a |= b iff a & !b is unsatisfiable.
  obs::ProfileScope profile("solve.entails");
  SatContext context;
  context.Assert(a);
  context.Assert(Formula::Not(b));
  return !context.Solve();
}

bool AreEquivalent(const Formula& a, const Formula& b) {
  SatContext context;
  context.Assert(Formula::Xor(a, b));
  return !context.Solve();
}

ModelSet EnumerateModels(const Formula& f, const Alphabet& alphabet,
                         size_t limit) {
  obs::ProfileScope profile("solve.enumerate");
  // Only unlimited enumerations are memoized: a truncated set is not a
  // property of (f, alphabet) alone.
  const bool cacheable = limit == 0;
  if (cacheable) {
    if (std::optional<ModelSet> cached =
            ModelCache::Global().Lookup(f, alphabet)) {
      obs::NoteModelSetCardinality(cached->size());
      return *std::move(cached);
    }
  }
  std::vector<Interpretation> models;
  ForEachProjectedModel(f, alphabet, [&](const Interpretation& m) {
    models.push_back(m);
    return limit == 0 || models.size() < limit;
  });
  REVISE_OBS_COUNTER("solve.models_enumerated").Increment(models.size());
  obs::NoteModelSetCardinality(models.size());
  ModelSet result(alphabet, std::move(models));
  if (cacheable) ModelCache::Global().Insert(f, alphabet, result);
  return result;
}

size_t CountModels(const Formula& f, const Alphabet& alphabet) {
  return EnumerateModels(f, alphabet).size();
}

bool QueryEquivalent(const Formula& a, const Formula& b,
                     const Alphabet& alphabet) {
  obs::ProfileScope profile("solve.query_equivalent");
  if (ProjectionFree(a, alphabet) && ProjectionFree(b, alphabet)) {
    // Projection onto `alphabet` is the identity for both sides, so query
    // equivalence coincides with logical equivalence: one SAT call on
    // Xor(a, b) replaces two full model enumerations.
    REVISE_OBS_COUNTER("solve.query_equiv.sat_shortcut").Increment();
    return !IsSatisfiable(Formula::Xor(a, b));
  }
  // General case: enumerate one side in full (through the model cache) and
  // stream the other side model-by-model, stopping at the first projected
  // model the sides do not share instead of always materializing both.
  const ModelSet ma = EnumerateModels(a, alphabet);
  size_t shared = 0;
  bool contained = true;
  ForEachProjectedModel(b, alphabet, [&](const Interpretation& m) {
    if (!ma.Contains(m)) {
      contained = false;
      return false;
    }
    ++shared;
    return true;
  });
  if (!contained) {
    REVISE_OBS_COUNTER("solve.query_equiv.early_exit").Increment();
    return false;
  }
  // Every projected model of b lies in M(a), each counted once (blocking
  // clauses make the stream duplicate-free): equal iff the counts match.
  return shared == ma.size();
}

}  // namespace revise
