#include "solve/model_cache.h"

#include <cstdio>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace revise {

namespace {

size_t CapacityFromEnvironment() {
  if (const char* value = std::getenv("REVISE_MODEL_CACHE")) {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && parsed >= 0) {
      return static_cast<size_t>(parsed);
    }
    if (*value != '\0') {
      std::fprintf(stderr,
                   "revise: ignoring invalid REVISE_MODEL_CACHE value '%s' "
                   "(expected a non-negative entry count)\n",
                   value);
    }
  }
  return ModelCache::kDefaultCapacity;
}

uint64_t KeyHash(const Formula& f, const Alphabet& alphabet) {
  uint64_t h = f.StructuralHash();
  h ^= 0x9e3779b97f4a7c15ULL + alphabet.size() + (h << 6) + (h >> 2);
  for (const Var v : alphabet.vars()) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace

uint64_t ModelCache::ApproxEntryBytes(const Entry& entry) {
  // Models dominate: one words vector per interpretation plus the object
  // header.  The formula DAG is shared/interned, so only the fixed entry
  // overhead is attributed here.
  const uint64_t words = (entry.alphabet.size() + 63) / 64;
  return sizeof(Entry) +
         entry.models.size() * (sizeof(Interpretation) + words * 8);
}

void ModelCache::PublishGaugesLocked() const {
  if (!publish_gauges_) return;
  REVISE_OBS_GAUGE("solve.model_cache.size")
      .Set(static_cast<int64_t>(lru_.size()));
  REVISE_OBS_GAUGE("mem.model_cache_bytes")
      .Set(static_cast<int64_t>(bytes_));
}

ModelCache& ModelCache::Global() {
  static ModelCache* const cache =
      new ModelCache(CapacityFromEnvironment(), /*publish_gauges=*/true);
  return *cache;
}

ModelCache::EntryList::iterator ModelCache::FindLocked(
    uint64_t hash, const Formula& f, const Alphabet& alphabet) {
  const auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    Entry& entry = *it->second;
    if (entry.alphabet == alphabet && entry.formula.StructurallyEqual(f)) {
      return it->second;
    }
  }
  return lru_.end();
}

std::optional<ModelSet> ModelCache::Lookup(const Formula& f,
                                           const Alphabet& alphabet) {
  util::MutexLock lock(mu_);
  if (capacity_ == 0) {
    // A disabled cache answers every probe with a miss; counting it keeps
    // hits + misses equal to the number of unlimited enumerations whether
    // or not caching is configured (the fuzz model-cache oracle and the
    // JSON reports rely on that invariant).
    REVISE_OBS_COUNTER("solve.model_cache.misses").Increment();
    return std::nullopt;
  }
  const uint64_t hash = KeyHash(f, alphabet);
  const auto it = FindLocked(hash, f, alphabet);
  if (it == lru_.end()) {
    REVISE_OBS_COUNTER("solve.model_cache.misses").Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it);
  REVISE_OBS_COUNTER("solve.model_cache.hits").Increment();
  return it->models;
}

void ModelCache::Insert(const Formula& f, const Alphabet& alphabet,
                        const ModelSet& models) {
  util::MutexLock lock(mu_);
  if (capacity_ == 0) return;
  const uint64_t hash = KeyHash(f, alphabet);
  const auto it = FindLocked(hash, f, alphabet);
  if (it != lru_.end()) {
    bytes_ -= ApproxEntryBytes(*it);
    it->models = models;
    bytes_ += ApproxEntryBytes(*it);
    lru_.splice(lru_.begin(), lru_, it);
    PublishGaugesLocked();
    return;
  }
  lru_.push_front(Entry{hash, f, alphabet, models});
  bytes_ += ApproxEntryBytes(lru_.front());
  index_.emplace(hash, lru_.begin());
  REVISE_OBS_COUNTER("solve.model_cache.insertions").Increment();
  EvictOverCapacityLocked();
  PublishGaugesLocked();
}

void ModelCache::EvictOverCapacityLocked() {
  while (lru_.size() > capacity_) {
    const auto victim = std::prev(lru_.end());
    const auto [begin, end] = index_.equal_range(victim->hash);
    for (auto it = begin; it != end; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    bytes_ -= ApproxEntryBytes(*victim);
    lru_.erase(victim);
    REVISE_OBS_COUNTER("solve.model_cache.evictions").Increment();
    char detail[64];
    std::snprintf(detail, sizeof(detail), "%zu entries, %zu bytes",
                  lru_.size(), bytes_);
    REVISE_FLIGHT_EVENT("solve.model_cache.evict", detail);
  }
}

void ModelCache::Clear() {
  util::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  PublishGaugesLocked();
}

void ModelCache::set_capacity(size_t capacity) {
  util::MutexLock lock(mu_);
  capacity_ = capacity;
  EvictOverCapacityLocked();
  PublishGaugesLocked();
}

size_t ModelCache::capacity() const {
  util::MutexLock lock(mu_);
  return capacity_;
}

size_t ModelCache::size() const {
  util::MutexLock lock(mu_);
  return lru_.size();
}

uint64_t ModelCache::approx_bytes() const {
  util::MutexLock lock(mu_);
  return bytes_;
}

}  // namespace revise
