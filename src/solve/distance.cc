#include "solve/distance.h"

#include "sat/cardinality.h"
#include "sat/cnf.h"
#include "solve/sat_context.h"
#include "util/check.h"

namespace revise {

namespace {

using sat::Lit;
using sat::Negate;
using sat::PosLit;

// Conflicts while adding constraints surface at the next Solve().
constexpr auto LatchConflict = sat::Solver::LatchConflict;

// Sets up T in frame 0, P in frame 1 and difference literals over the
// alphabet; returns the diff literals.
std::vector<Lit> SetUpDiffProblem(const Formula& t, const Formula& p,
                                  const Alphabet& alphabet,
                                  SatContext* context) {
  context->Assert(t, /*frame=*/0);
  context->Assert(p, /*frame=*/1);
  std::vector<Lit> diffs(alphabet.size());
  for (size_t i = 0; i < alphabet.size(); ++i) {
    const Lit a = PosLit(context->SatVarOf(alphabet.var(i), 0));
    const Lit b = PosLit(context->SatVarOf(alphabet.var(i), 1));
    const Lit d = context->FreshLit();
    sat::Solver& solver = context->solver();
    // d <-> a xor b.
    LatchConflict(solver.AddClause({Negate(d), a, b}));
    LatchConflict(solver.AddClause({Negate(d), Negate(a), Negate(b)}));
    LatchConflict(solver.AddClause({d, Negate(a), b}));
    LatchConflict(solver.AddClause({d, a, Negate(b)}));
    diffs[i] = d;
  }
  return diffs;
}

Interpretation DiffFromModel(const SatContext& context,
                             const std::vector<Lit>& diffs) {
  Interpretation d(diffs.size());
  for (size_t i = 0; i < diffs.size(); ++i) {
    if (context.ModelValueOfLit(diffs[i])) d.Set(i, true);
  }
  return d;
}

}  // namespace

std::optional<size_t> MinHammingDistance(const Formula& t, const Formula& p,
                                         const Alphabet& alphabet) {
  SatContext context;
  std::vector<Lit> diffs = SetUpDiffProblem(t, p, alphabet, &context);
  if (!context.Solve()) return std::nullopt;
  size_t best = DiffFromModel(context, diffs).Cardinality();
  if (best == 0) return 0;

  // Build a unary counter over the diffs once, then tighten with
  // assumptions: counts[j] <-> (sum >= j+1).
  sat::Cnf counter;
  counter.EnsureVarCount(context.solver().NumVars());
  std::vector<Lit> counts = sat::EncodeTotalizer(diffs, &counter);
  context.solver().EnsureVarCount(counter.num_vars());
  for (const auto& clause : counter.clauses()) {
    LatchConflict(context.solver().AddClause(clause));
  }
  while (best > 0) {
    // Ask for a solution with sum <= best - 1.
    if (!context.Solve({Negate(counts[best - 1])})) break;
    best = DiffFromModel(context, diffs).Cardinality();
  }
  return best;
}

std::optional<size_t> MinHammingDistanceBinarySearch(
    const Formula& t, const Formula& p, const Alphabet& alphabet) {
  SatContext context;
  std::vector<Lit> diffs = SetUpDiffProblem(t, p, alphabet, &context);
  if (!context.Solve()) return std::nullopt;
  if (diffs.empty()) return 0;
  sat::Cnf counter;
  counter.EnsureVarCount(context.solver().NumVars());
  std::vector<Lit> counts = sat::EncodeTotalizer(diffs, &counter);
  context.solver().EnsureVarCount(counter.num_vars());
  for (const auto& clause : counter.clauses()) {
    LatchConflict(context.solver().AddClause(clause));
  }
  // Invariant: a model with sum <= hi exists; none with sum <= lo - 1.
  size_t lo = 0;
  size_t hi = DiffFromModel(context, diffs).Cardinality();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    // "sum <= mid" is the assumption !counts[mid] (counts[j] <=> >= j+1).
    if (context.Solve({Negate(counts[mid])})) {
      hi = std::min(mid, DiffFromModel(context, diffs).Cardinality());
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::vector<Interpretation> GlobalMinimalDiffs(const Formula& t,
                                               const Formula& p,
                                               const Alphabet& alphabet) {
  SatContext context;
  std::vector<Lit> diffs = SetUpDiffProblem(t, p, alphabet, &context);
  std::vector<Interpretation> minimal;
  std::vector<Lit> retired_activations;
  while (context.Solve()) {
    Interpretation current = DiffFromModel(context, diffs);
    // Shrink to a subset-minimal diff: repeatedly look for a model whose
    // diff is a proper subset of `current`.
    for (;;) {
      std::vector<Lit> assumptions;
      // Outside the current diff: force equal.
      for (size_t i = 0; i < diffs.size(); ++i) {
        if (!current.Get(i)) assumptions.push_back(Negate(diffs[i]));
      }
      // Inside: at least one position must become equal.  Activation
      // literal makes the clause retractable.
      const Lit activation = context.FreshLit();
      std::vector<Lit> clause = {Negate(activation)};
      for (size_t i = 0; i < diffs.size(); ++i) {
        if (current.Get(i)) clause.push_back(Negate(diffs[i]));
      }
      LatchConflict(context.solver().AddClause(std::move(clause)));
      assumptions.push_back(activation);
      const bool improved = context.Solve(assumptions);
      // Retire the activation so the clause is permanently satisfied.
      LatchConflict(context.solver().AddUnit(Negate(activation)));
      if (!improved) break;
      current = DiffFromModel(context, diffs);
    }
    minimal.push_back(current);
    // Block this minimal diff and every superset.
    std::vector<Lit> blocking;
    for (size_t i = 0; i < diffs.size(); ++i) {
      if (current.Get(i)) blocking.push_back(Negate(diffs[i]));
    }
    if (blocking.empty()) break;  // empty diff: nothing else can be minimal
    if (!context.solver().AddClause(std::move(blocking))) break;
  }
  return minimal;
}

Interpretation WeberOmega(const Formula& t, const Formula& p,
                          const Alphabet& alphabet) {
  Interpretation omega(alphabet.size());
  for (const Interpretation& diff : GlobalMinimalDiffs(t, p, alphabet)) {
    omega = omega.Union(diff);
  }
  return omega;
}

}  // namespace revise
