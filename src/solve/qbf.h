// A 2-QBF (exists-forall) solver by counterexample-guided abstraction
// refinement, and the Pi_2^p-flavored services built on it.
//
// The paper's negative results live at the second level of the polynomial
// hierarchy (Sections 2.2.4 and 7; NP ⊆ coNP/poly collapses PH to Pi_3^p).
// This module supplies the matching decision machinery:
//
//   * ExistsForallSat — decides ∃X ∀Y. phi by CEGAR: a candidate solver
//     proposes X-assignments, a verifier searches for Y-counterexamples,
//     and each counterexample refines the abstraction with phi[Y/y*].
//   * QueryEquivalentQbf — decides the paper's criterion (1) between two
//     formulas with DIFFERENT auxiliary letters without enumerating
//     models: the projections onto the shared alphabet differ iff
//     ∃(X, aux1) ∀aux2. (T1 ∧ ¬T2) or symmetrically — two ∃∀ calls.
//     This scales where EnumerateModels-based QueryEquivalent cannot.

#ifndef REVISE_SOLVE_QBF_H_
#define REVISE_SOLVE_QBF_H_

#include <vector>

#include "logic/formula.h"
#include "logic/interpretation.h"

namespace revise {

struct ExistsForallResult {
  bool satisfiable = false;
  // A witness assignment to the existential variables when satisfiable.
  Interpretation witness;  // over Alphabet(exists_vars)
  // Number of refinement iterations (for diagnostics/benches).
  int iterations = 0;
};

// Decides ∃ exists_vars ∀ forall_vars . matrix.  Variables of `matrix`
// outside both blocks are treated as existential (inner-most ∃ under the
// ∀ would change the meaning; callers must list every variable).
[[nodiscard]] ExistsForallResult ExistsForallSat(
    const std::vector<Var>& exists_vars, const std::vector<Var>& forall_vars,
    const Formula& matrix);

// Criterion (1) between a and b over `alphabet`: do the projections of
// M(a) and M(b) onto `alphabet` coincide?  Letters of a/b outside the
// alphabet are treated as each formula's private auxiliary letters.
[[nodiscard]] bool QueryEquivalentQbf(const Formula& a, const Formula& b,
                                      const Alphabet& alphabet);

}  // namespace revise

#endif  // REVISE_SOLVE_QBF_H_
