// Bridge between the logic layer (formulas over a Vocabulary) and the SAT
// solver: Tseitin encoding, multi-frame variable mapping, model extraction.
//
// A "frame" is an independent copy of the logic-variable space inside the
// solver.  Encoding T in frame 0 and P in frame 1 lets us reason about a
// model of T and a model of P simultaneously (the paper's pairs (M, N) with
// their symmetric difference) without inventing renamed logic variables.

#ifndef REVISE_SOLVE_SAT_CONTEXT_H_
#define REVISE_SOLVE_SAT_CONTEXT_H_

#include <unordered_map>
#include <vector>

#include "logic/formula.h"
#include "logic/interpretation.h"
#include "sat/literal.h"
#include "sat/solver.h"
#include "util/status.h"

namespace revise {

class SatContext {
 public:
  SatContext() = default;

  SatContext(const SatContext&) = delete;
  SatContext& operator=(const SatContext&) = delete;

  sat::Solver& solver() { return solver_; }

  // Solver variable representing logic variable `var` in `frame`.
  int SatVarOf(Var var, int frame = 0);

  // Tseitin-encodes `f` (interpreting its variables in `frame`) and
  // returns a literal equivalent to f.  Clauses defining the encoding are
  // added to the solver; the formula itself is not asserted.
  [[nodiscard]] sat::Lit Encode(const Formula& f, int frame = 0);

  // Asserts f (unit clause on its encoding literal).
  void Assert(const Formula& f, int frame = 0);

  // Fresh solver literal (positive polarity).
  sat::Lit FreshLit();

  // Solves under assumptions; returns true iff satisfiable.  When a soft
  // deadline is set and expires mid-search, returns false and timed_out()
  // reports true until the next Solve call.
  [[nodiscard]] bool Solve(const std::vector<sat::Lit>& assumptions = {});

  // Like Solve, but a deadline expiry is reported as an explicit
  // kDeadlineExceeded status instead of being folded into `false`.
  StatusOr<bool> SolveOrDeadline(const std::vector<sat::Lit>& assumptions = {});

  // Bounds each subsequent Solve call to roughly `seconds` of wall time
  // (polled every ~64 conflicts, so very easy instances never pay for a
  // clock read).  Values <= 0 clear the deadline.
  void set_soft_deadline_seconds(double seconds) {
    soft_deadline_seconds_ = seconds;
  }
  double soft_deadline_seconds() const { return soft_deadline_seconds_; }
  // True iff the most recent Solve call hit the soft deadline.
  bool timed_out() const { return timed_out_; }

  // Value of logic variable `var` in `frame` in the last model.
  [[nodiscard]] bool ModelValue(Var var, int frame = 0) const;
  [[nodiscard]] bool ModelValueOfLit(sat::Lit lit) const;

  // Extracts the last model restricted to `alphabet` in `frame`.
  [[nodiscard]] Interpretation ExtractModel(const Alphabet& alphabet,
                                            int frame = 0) const;

 private:
  struct FrameKey {
    Var var;
    int frame;
    bool operator==(const FrameKey& other) const {
      return var == other.var && frame == other.frame;
    }
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& key) const {
      return std::hash<uint64_t>()(
          (static_cast<uint64_t>(key.frame) << 32) | key.var);
    }
  };
  struct NodeKey {
    const void* node;
    int frame;
    bool operator==(const NodeKey& other) const {
      return node == other.node && frame == other.frame;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& key) const {
      return std::hash<const void*>()(key.node) * 31 +
             static_cast<size_t>(key.frame);
    }
  };

  sat::Lit EncodeRec(const Formula& f, int frame);

  sat::Solver solver_;
  double soft_deadline_seconds_ = 0.0;
  bool timed_out_ = false;
  std::unordered_map<FrameKey, int, FrameKeyHash> var_map_;
  std::unordered_map<NodeKey, sat::Lit, NodeKeyHash> node_map_;
  // Pins formula nodes referenced by node_map_ so ids stay unique.
  std::vector<Formula> pinned_;
};

}  // namespace revise

#endif  // REVISE_SOLVE_SAT_CONTEXT_H_
