#include "solve/sat_context.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace revise {

using sat::Lit;
using sat::MakeLit;
using sat::Negate;
using sat::PosLit;

namespace {
// Tseitin encoding never reacts to a top-level conflict mid-recursion;
// the solver latches UNSAT and the next Solve() reports it.
constexpr auto LatchConflict = sat::Solver::LatchConflict;
}  // namespace

int SatContext::SatVarOf(Var var, int frame) {
  const FrameKey key{var, frame};
  auto it = var_map_.find(key);
  if (it != var_map_.end()) return it->second;
  const int sat_var = solver_.NewVar();
  var_map_.emplace(key, sat_var);
  REVISE_OBS_COUNTER("encode.frame_vars").Increment();
  obs::Registry::Global()
      .GetGauge("encode.max_frame")
      ->UpdateMax(frame);
  return sat_var;
}

Lit SatContext::FreshLit() { return PosLit(solver_.NewVar()); }

Lit SatContext::Encode(const Formula& f, int frame) {
  return EncodeRec(f, frame);
}

Lit SatContext::EncodeRec(const Formula& f, int frame) {
  const NodeKey key{f.id(), frame};
  auto it = node_map_.find(key);
  if (it != node_map_.end()) return it->second;

  Lit result = sat::kUndefLit;
  switch (f.kind()) {
    case Connective::kConst: {
      // A dedicated always-true/false variable per constant value.
      const Lit lit = FreshLit();
      LatchConflict(solver_.AddUnit(f.const_value() ? lit : Negate(lit)));
      result = lit;
      break;
    }
    case Connective::kVar:
      result = PosLit(SatVarOf(f.var(), frame));
      break;
    case Connective::kNot:
      result = Negate(EncodeRec(f.child(0), frame));
      break;
    case Connective::kAnd:
    case Connective::kOr: {
      std::vector<Lit> children;
      children.reserve(f.arity());
      for (size_t i = 0; i < f.arity(); ++i) {
        children.push_back(EncodeRec(f.child(i), frame));
      }
      const Lit g = FreshLit();
      const bool is_and = f.kind() == Connective::kAnd;
      std::vector<Lit> big;
      big.reserve(children.size() + 1);
      for (const Lit c : children) {
        if (is_and) {
          LatchConflict(solver_.AddBinary(Negate(g), c));  // g -> c
          big.push_back(Negate(c));
        } else {
          LatchConflict(solver_.AddBinary(g, Negate(c)));  // c -> g
          big.push_back(c);
        }
      }
      big.push_back(is_and ? g : Negate(g));
      LatchConflict(solver_.AddClause(std::move(big)));
      result = g;
      break;
    }
    case Connective::kImplies: {
      const Lit a = EncodeRec(f.child(0), frame);
      const Lit b = EncodeRec(f.child(1), frame);
      const Lit g = FreshLit();
      LatchConflict(solver_.AddClause({Negate(g), Negate(a), b}));
      LatchConflict(solver_.AddBinary(g, a));         // !a -> g
      LatchConflict(solver_.AddBinary(g, Negate(b)));  // b -> g
      result = g;
      break;
    }
    case Connective::kIff:
    case Connective::kXor: {
      const Lit a = EncodeRec(f.child(0), frame);
      Lit b = EncodeRec(f.child(1), frame);
      if (f.kind() == Connective::kXor) b = Negate(b);
      const Lit g = FreshLit();  // g <-> (a <-> b)
      LatchConflict(solver_.AddClause({Negate(g), Negate(a), b}));
      LatchConflict(solver_.AddClause({Negate(g), a, Negate(b)}));
      LatchConflict(solver_.AddClause({g, a, b}));
      LatchConflict(solver_.AddClause({g, Negate(a), Negate(b)}));
      result = g;
      break;
    }
  }
  node_map_.emplace(key, result);
  pinned_.push_back(f);
  // Tseitin bookkeeping: every connective above introduced one fresh
  // definition literal plus a fixed clause pattern.
  switch (f.kind()) {
    case Connective::kVar:
    case Connective::kNot:
      break;  // no aux var, no clauses
    case Connective::kConst:
      REVISE_OBS_COUNTER("encode.aux_vars").Increment();
      REVISE_OBS_COUNTER("encode.aux_clauses").Increment();
      break;
    case Connective::kAnd:
    case Connective::kOr:
      REVISE_OBS_COUNTER("encode.aux_vars").Increment();
      REVISE_OBS_COUNTER("encode.aux_clauses").Increment(f.arity() + 1);
      break;
    case Connective::kImplies:
      REVISE_OBS_COUNTER("encode.aux_vars").Increment();
      REVISE_OBS_COUNTER("encode.aux_clauses").Increment(3);
      break;
    case Connective::kIff:
    case Connective::kXor:
      REVISE_OBS_COUNTER("encode.aux_vars").Increment();
      REVISE_OBS_COUNTER("encode.aux_clauses").Increment(4);
      break;
  }
  return result;
}

void SatContext::Assert(const Formula& f, int frame) {
  LatchConflict(solver_.AddUnit(Encode(f, frame)));
}

bool SatContext::Solve(const std::vector<Lit>& assumptions) {
  timed_out_ = false;
  if (soft_deadline_seconds_ > 0.0) {
    obs::Stopwatch stopwatch;
    const double deadline = soft_deadline_seconds_;
    solver_.SetInterrupt(
        [&stopwatch, deadline] { return stopwatch.ElapsedSeconds() >= deadline; });
    const sat::Solver::Result result = solver_.SolveAssuming(assumptions);
    solver_.SetInterrupt(nullptr);
    if (result == sat::Solver::Result::kUnknown) {
      timed_out_ = true;
      REVISE_OBS_COUNTER("solve.timed_out").Increment();
      REVISE_FLIGHT_EVENT("solve.deadline_hit", "soft SAT deadline exceeded");
    }
    return result == sat::Solver::Result::kSat;
  }
  return solver_.SolveAssuming(assumptions) == sat::Solver::Result::kSat;
}

StatusOr<bool> SatContext::SolveOrDeadline(
    const std::vector<Lit>& assumptions) {
  const bool satisfiable = Solve(assumptions);
  if (timed_out_) {
    return DeadlineExceededError("SAT search exceeded soft deadline");
  }
  return satisfiable;
}

bool SatContext::ModelValue(Var var, int frame) const {
  const FrameKey key{var, frame};
  auto it = var_map_.find(key);
  // Variables never mentioned are unconstrained; read them as false,
  // matching the "interpretation = set of true letters" convention.
  if (it == var_map_.end()) return false;
  return solver_.ModelValue(it->second);
}

bool SatContext::ModelValueOfLit(Lit lit) const {
  const bool v = solver_.ModelValue(sat::LitVar(lit));
  return sat::LitSign(lit) ? !v : v;
}

Interpretation SatContext::ExtractModel(const Alphabet& alphabet,
                                        int frame) const {
  Interpretation m(alphabet.size());
  for (size_t i = 0; i < alphabet.size(); ++i) {
    if (ModelValue(alphabet.var(i), frame)) m.Set(i, true);
  }
  return m;
}

}  // namespace revise
