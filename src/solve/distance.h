// Distance machinery between the models of two formulas.
//
// Computes the quantities on which the global model-based operators are
// built: Dalal's minimum Hamming distance k_{T,P}, Satoh's set of minimal
// symmetric differences delta(T,P) = minc ∪_{M |= T} mu(M,P), and Weber's
// letter set Omega = ∪ delta(T,P).  Everything runs on the CDCL solver with
// T encoded in one frame, P in another, and difference indicator literals
// d_i <-> (x_i in frame 0) xor (x_i in frame 1).

#ifndef REVISE_SOLVE_DISTANCE_H_
#define REVISE_SOLVE_DISTANCE_H_

#include <optional>
#include <vector>

#include "logic/formula.h"
#include "logic/interpretation.h"

namespace revise {

// k_{T,P}: minimum Hamming distance over `alphabet` between a model of `t`
// and a model of `p`.  Returns nullopt when either formula is
// unsatisfiable.  Variables of t/p outside `alphabet` must not exist
// (callers pass alphabet ⊇ V(t) ∪ V(p)).
[[nodiscard]] std::optional<size_t> MinHammingDistance(
    const Formula& t, const Formula& p, const Alphabet& alphabet);

// Same value computed with O(log |alphabet|) SAT calls by binary search on
// the totalizer outputs — the oracle pattern behind Dalal's
// Delta_2^p[log n] complexity (Section 2.2.4).
[[nodiscard]] std::optional<size_t> MinHammingDistanceBinarySearch(
    const Formula& t, const Formula& p, const Alphabet& alphabet);

// delta(T,P): all subset-minimal symmetric differences (as letter sets over
// `alphabet`) between a model of t and a model of p.  Empty result means
// one of the formulas is unsatisfiable.
[[nodiscard]] std::vector<Interpretation> GlobalMinimalDiffs(
    const Formula& t, const Formula& p, const Alphabet& alphabet);

// Weber's Omega = ∪ delta(T,P) as a letter set over `alphabet`.
[[nodiscard]] Interpretation WeberOmega(const Formula& t, const Formula& p,
                                        const Alphabet& alphabet);

}  // namespace revise

#endif  // REVISE_SOLVE_DISTANCE_H_
