#include "model/model_set.h"

#include <algorithm>

#include "util/check.h"

namespace revise {

ModelSet::ModelSet(Alphabet alphabet, std::vector<Interpretation> models)
    : alphabet_(std::move(alphabet)), models_(std::move(models)) {
  for (const Interpretation& m : models_) {
    REVISE_CHECK_EQ(m.size(), alphabet_.size());
  }
  std::sort(models_.begin(), models_.end());
  models_.erase(std::unique(models_.begin(), models_.end()), models_.end());
}

bool ModelSet::Contains(const Interpretation& m) const {
  return std::binary_search(models_.begin(), models_.end(), m);
}

bool ModelSet::IsSubsetOf(const ModelSet& other) const {
  REVISE_CHECK(alphabet_ == other.alphabet_);
  return std::includes(other.models_.begin(), other.models_.end(),
                       models_.begin(), models_.end());
}

ModelSet ModelSet::Union(const ModelSet& a, const ModelSet& b) {
  REVISE_CHECK(a.alphabet_ == b.alphabet_);
  std::vector<Interpretation> merged = a.models_;
  merged.insert(merged.end(), b.models_.begin(), b.models_.end());
  return ModelSet(a.alphabet_, std::move(merged));
}

ModelSet ModelSet::Intersection(const ModelSet& a, const ModelSet& b) {
  REVISE_CHECK(a.alphabet_ == b.alphabet_);
  std::vector<Interpretation> result;
  std::set_intersection(a.models_.begin(), a.models_.end(),
                        b.models_.begin(), b.models_.end(),
                        std::back_inserter(result));
  return ModelSet(a.alphabet_, std::move(result));
}

ModelSet ModelSet::ProjectTo(const Alphabet& target) const {
  std::vector<Interpretation> projected;
  projected.reserve(models_.size());
  for (const Interpretation& m : models_) {
    projected.push_back(Reinterpret(m, alphabet_, target));
  }
  return ModelSet(target, std::move(projected));
}

std::vector<Interpretation> MinimalUnderInclusion(
    std::vector<Interpretation> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<Interpretation> result;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool minimal = true;
    for (size_t j = 0; j < sets.size(); ++j) {
      if (i != j && sets[j].IsProperSubsetOf(sets[i])) {
        minimal = false;
        break;
      }
    }
    if (minimal) result.push_back(sets[i]);
  }
  return result;
}

std::vector<Interpretation> MaximalUnderInclusion(
    std::vector<Interpretation> sets) {
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<Interpretation> result;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool maximal = true;
    for (size_t j = 0; j < sets.size(); ++j) {
      if (i != j && sets[i].IsProperSubsetOf(sets[j])) {
        maximal = false;
        break;
      }
    }
    if (maximal) result.push_back(sets[i]);
  }
  return result;
}

}  // namespace revise
