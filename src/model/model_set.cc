#include "model/model_set.h"

#include <algorithm>

#include "kernel/kernels.h"
#include "util/check.h"

namespace revise {

ModelSet::ModelSet(Alphabet alphabet, std::vector<Interpretation> models)
    : alphabet_(std::move(alphabet)), models_(std::move(models)) {
  for (const Interpretation& m : models_) {
    REVISE_DCHECK_EQ(m.size(), alphabet_.size());
  }
  std::sort(models_.begin(), models_.end());
  models_.erase(std::unique(models_.begin(), models_.end()), models_.end());
}

bool ModelSet::Contains(const Interpretation& m) const {
  // binary_search is only meaningful against the canonical order the
  // constructor establishes and over interpretations of matching width.
  REVISE_DCHECK_EQ(m.size(), alphabet_.size());
  REVISE_DCHECK(std::is_sorted(models_.begin(), models_.end()));
  return std::binary_search(models_.begin(), models_.end(), m);
}

bool ModelSet::IsSubsetOf(const ModelSet& other) const {
  REVISE_CHECK(alphabet_ == other.alphabet_);
  REVISE_DCHECK(std::is_sorted(models_.begin(), models_.end()));
  REVISE_DCHECK(std::is_sorted(other.models_.begin(), other.models_.end()));
  if (models_.size() > other.models_.size()) return false;
  return std::includes(other.models_.begin(), other.models_.end(),
                       models_.begin(), models_.end());
}

ModelSet ModelSet::Union(const ModelSet& a, const ModelSet& b) {
  REVISE_CHECK(a.alphabet_ == b.alphabet_);
  std::vector<Interpretation> merged = a.models_;
  merged.insert(merged.end(), b.models_.begin(), b.models_.end());
  return ModelSet(a.alphabet_, std::move(merged));
}

ModelSet ModelSet::Intersection(const ModelSet& a, const ModelSet& b) {
  REVISE_CHECK(a.alphabet_ == b.alphabet_);
  std::vector<Interpretation> result;
  std::set_intersection(a.models_.begin(), a.models_.end(),
                        b.models_.begin(), b.models_.end(),
                        std::back_inserter(result));
  return ModelSet(a.alphabet_, std::move(result));
}

ModelSet ModelSet::ProjectTo(const Alphabet& target) const {
  std::vector<Interpretation> projected;
  projected.reserve(models_.size());
  for (const Interpretation& m : models_) {
    projected.push_back(Reinterpret(m, alphabet_, target));
  }
  return ModelSet(target, std::move(projected));
}

namespace {

// Deduplicates `sets` in place and returns the index order sorted by
// cardinality (ascending).  A proper subset always has strictly smaller
// cardinality, so both extremal filters below only compare candidates
// against elements from strictly smaller/larger cardinality buckets.
std::vector<size_t> CanonicalizeAndOrderByCardinality(
    std::vector<Interpretation>* sets, std::vector<size_t>* cards) {
  // The subset sweeps below only make sense over a uniform width; mixed
  // widths would silently compare interpretations of different alphabets.
  for (size_t i = 1; i < sets->size(); ++i) {
    REVISE_DCHECK_EQ((*sets)[i].size(), (*sets)[0].size());
  }
  std::sort(sets->begin(), sets->end());
  sets->erase(std::unique(sets->begin(), sets->end()), sets->end());
  cards->resize(sets->size());
  for (size_t i = 0; i < sets->size(); ++i) {
    (*cards)[i] = (*sets)[i].Cardinality();
  }
  std::vector<size_t> order(sets->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return (*cards)[a] < (*cards)[b];
  });
  return order;
}

}  // namespace

std::vector<Interpretation> MinimalUnderInclusion(
    std::vector<Interpretation> sets) {
  // The packed layer runs the same cardinality-bucket sweep over bit-matrix
  // rows (or raw uint64 values when the width allows); the scalar sweep
  // below is the reference it is tested against.
  if (kernel::PackedKernelsEnabled()) {
    return kernel::MinimalInterpretations(std::move(sets));
  }
  std::vector<size_t> cards;
  const std::vector<size_t> order =
      CanonicalizeAndOrderByCardinality(&sets, &cards);
  // Sweep cardinality buckets upward: a candidate is minimal iff no
  // already-found minimum (necessarily of strictly smaller cardinality)
  // is contained in it.  Only |result| * n subset tests instead of n^2.
  std::vector<char> keep(sets.size(), 0);
  std::vector<const Interpretation*> minima;
  size_t i = 0;
  while (i < order.size()) {
    const size_t card = cards[order[i]];
    const size_t bucket_begin = minima.size();
    for (; i < order.size() && cards[order[i]] == card; ++i) {
      const Interpretation& candidate = sets[order[i]];
      bool minimal = true;
      for (size_t m = 0; m < bucket_begin; ++m) {
        if (minima[m]->IsSubsetOf(candidate)) {
          minimal = false;
          break;
        }
      }
      if (minimal) {
        keep[order[i]] = 1;
        minima.push_back(&sets[order[i]]);
      }
    }
  }
  std::vector<Interpretation> result;
  for (size_t j = 0; j < sets.size(); ++j) {
    if (keep[j]) result.push_back(sets[j]);
  }
  return result;  // still in the canonical (lexicographic) order
}

std::vector<Interpretation> MaximalUnderInclusion(
    std::vector<Interpretation> sets) {
  if (kernel::PackedKernelsEnabled()) {
    return kernel::MaximalInterpretations(std::move(sets));
  }
  std::vector<size_t> cards;
  const std::vector<size_t> order =
      CanonicalizeAndOrderByCardinality(&sets, &cards);
  // Mirror image: sweep buckets downward, testing containment in the
  // already-found maxima (strictly larger cardinality).
  std::vector<char> keep(sets.size(), 0);
  std::vector<const Interpretation*> maxima;
  size_t i = order.size();
  while (i > 0) {
    const size_t card = cards[order[i - 1]];
    const size_t bucket_begin = maxima.size();
    for (; i > 0 && cards[order[i - 1]] == card; --i) {
      const Interpretation& candidate = sets[order[i - 1]];
      bool maximal = true;
      for (size_t m = 0; m < bucket_begin; ++m) {
        if (candidate.IsSubsetOf(*maxima[m])) {
          maximal = false;
          break;
        }
      }
      if (maximal) {
        keep[order[i - 1]] = 1;
        maxima.push_back(&sets[order[i - 1]]);
      }
    }
  }
  std::vector<Interpretation> result;
  for (size_t j = 0; j < sets.size(); ++j) {
    if (keep[j]) result.push_back(sets[j]);
  }
  return result;  // still in the canonical (lexicographic) order
}

}  // namespace revise
