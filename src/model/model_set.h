// Sets of interpretations (model sets) and the set-algebra used by the
// paper's model-based revision operators: minc / maxc (minimal and maximal
// elements under set inclusion), unions, intersections and projections.

#ifndef REVISE_MODEL_MODEL_SET_H_
#define REVISE_MODEL_MODEL_SET_H_

#include <vector>

#include "logic/interpretation.h"

namespace revise {

// A canonical (sorted, duplicate-free) set of interpretations over one
// alphabet.  The alphabet is carried for self-description.
class ModelSet {
 public:
  ModelSet() = default;
  ModelSet(Alphabet alphabet, std::vector<Interpretation> models);

  const Alphabet& alphabet() const { return alphabet_; }
  const std::vector<Interpretation>& models() const { return models_; }
  size_t size() const { return models_.size(); }
  bool empty() const { return models_.empty(); }
  const Interpretation& operator[](size_t i) const { return models_[i]; }

  bool Contains(const Interpretation& m) const;
  // Subset relation as sets of interpretations (alphabets must match).
  bool IsSubsetOf(const ModelSet& other) const;

  static ModelSet Union(const ModelSet& a, const ModelSet& b);
  static ModelSet Intersection(const ModelSet& a, const ModelSet& b);

  // Projects every model onto `target` (dropping/defaulting letters) and
  // deduplicates.
  ModelSet ProjectTo(const Alphabet& target) const;

  bool operator==(const ModelSet& other) const {
    return alphabet_ == other.alphabet_ && models_ == other.models_;
  }

  auto begin() const { return models_.begin(); }
  auto end() const { return models_.end(); }

 private:
  Alphabet alphabet_;
  std::vector<Interpretation> models_;
};

// The paper's minc S / maxc S over a family of letter-sets (represented as
// Interpretations): keeps only elements minimal (maximal) w.r.t. set
// inclusion.  Duplicates are removed; the result is in the canonical
// (lexicographic) order, so callers may binary-search it.  A proper subset
// has strictly smaller cardinality, so candidates are swept in cardinality
// buckets and tested only against the extremal elements already found —
// |result| * n subset tests instead of n^2.
std::vector<Interpretation> MinimalUnderInclusion(
    std::vector<Interpretation> sets);
std::vector<Interpretation> MaximalUnderInclusion(
    std::vector<Interpretation> sets);

}  // namespace revise

#endif  // REVISE_MODEL_MODEL_SET_H_
