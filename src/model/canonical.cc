#include "model/canonical.h"

#include <vector>

namespace revise {

Formula Minterm(const Interpretation& m, const Alphabet& alphabet) {
  std::vector<Formula> literals;
  literals.reserve(alphabet.size());
  for (size_t i = 0; i < alphabet.size(); ++i) {
    literals.push_back(Formula::Literal(alphabet.var(i), m.Get(i)));
  }
  return ConjoinAll(literals);
}

Formula CanonicalDnf(const ModelSet& models) {
  if (models.empty()) return Formula::False();
  std::vector<Formula> minterms;
  minterms.reserve(models.size());
  for (const Interpretation& m : models) {
    minterms.push_back(Minterm(m, models.alphabet()));
  }
  return DisjoinAll(minterms);
}

}  // namespace revise
