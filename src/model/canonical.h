// Canonical formula representations of model sets.

#ifndef REVISE_MODEL_CANONICAL_H_
#define REVISE_MODEL_CANONICAL_H_

#include "logic/formula.h"
#include "model/model_set.h"

namespace revise {

// The canonical DNF of a model set: one full minterm per model (false for
// the empty set).  This is the "naive" explicit representation whose size
// the paper's explosion arguments are about.
Formula CanonicalDnf(const ModelSet& models);

// The minterm (full conjunction of literals over `alphabet`) describing a
// single interpretation.
Formula Minterm(const Interpretation& m, const Alphabet& alphabet);

}  // namespace revise

#endif  // REVISE_MODEL_CANONICAL_H_
