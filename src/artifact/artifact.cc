#include "artifact/artifact.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "artifact/checksum.h"
#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define REVISE_ARTIFACT_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace revise::artifact {

const std::array<uint8_t, kMagicSize> kMagic = {'R',  'K',  'B',  '!',
                                                0x0d, 0x0a, 0x1a, 0x0a};

namespace {

void StoreU32(uint8_t* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void StoreU64(uint8_t* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint32_t LoadU32(const uint8_t* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

uint64_t LoadU64(const uint8_t* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

size_t AlignUp(size_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

// CRC-64 of the full image with the file-crc field read as zero.
uint64_t FileCrc(const uint8_t* data, size_t size) {
  static const uint8_t kZeros[8] = {0};
  uint64_t state = Crc64Init();
  state = Crc64Update(state, data, kFileCrcOffset);
  state = Crc64Update(state, kZeros, sizeof(kZeros));
  state = Crc64Update(state, data + kFileCrcOffset + 8,
                      size - kFileCrcOffset - 8);
  return Crc64Final(state);
}

bool MmapDisabledByEnv() {
  const char* env = std::getenv("REVISE_ARTIFACT_MMAP");
  return env != nullptr && env[0] == '0' && env[1] == '\0';
}

}  // namespace

std::string_view SectionIdName(SectionId id) {
  switch (id) {
    case SectionId::kVocabulary:
      return "vocabulary";
    case SectionId::kFormulas:
      return "formulas";
    case SectionId::kModelMeta:
      return "model_meta";
    case SectionId::kModelRows:
      return "model_rows";
    case SectionId::kBdd:
      return "bdd";
    case SectionId::kKbMeta:
      return "kb_meta";
  }
  return "unknown";
}

void ByteWriter::U32(uint32_t value) {
  size_t at = out_.size();
  out_.resize(at + 4);
  StoreU32(out_.data() + at, value);
}

void ByteWriter::U64(uint64_t value) {
  size_t at = out_.size();
  out_.resize(at + 8);
  StoreU64(out_.data() + at, value);
}

void ByteWriter::Bytes(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out_.insert(out_.end(), bytes, bytes + size);
}

void ByteWriter::String(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  Bytes(s.data(), s.size());
}

uint8_t ByteReader::U8() {
  if (!ok_ || size_ - pos_ < 1) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

uint32_t ByteReader::U32() {
  if (!ok_ || size_ - pos_ < 4) {
    ok_ = false;
    return 0;
  }
  uint32_t value = LoadU32(data_ + pos_);
  pos_ += 4;
  return value;
}

uint64_t ByteReader::U64() {
  if (!ok_ || size_ - pos_ < 8) {
    ok_ = false;
    return 0;
  }
  uint64_t value = LoadU64(data_ + pos_);
  pos_ += 8;
  return value;
}

bool ByteReader::String(std::string* out) {
  uint32_t length = U32();
  if (!ok_ || size_ - pos_ < length) {
    ok_ = false;
    return false;
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return true;
}

bool ByteReader::Skip(size_t size) {
  if (!ok_ || size_ - pos_ < size) {
    ok_ = false;
    return false;
  }
  pos_ += size;
  return true;
}

void ArtifactWriter::AddSection(SectionId id, std::vector<uint8_t> payload) {
  sections_.push_back({id, std::move(payload)});
}

std::vector<uint8_t> ArtifactWriter::Assemble() const {
  const size_t table_size = sections_.size() * kSectionEntrySize;
  size_t offset = AlignUp(kHeaderSize + table_size);
  std::vector<size_t> offsets;
  offsets.reserve(sections_.size());
  for (const Pending& section : sections_) {
    offsets.push_back(offset);
    offset = AlignUp(offset + section.payload.size());
  }
  // The file ends right after the last payload (no trailing padding).
  size_t total = sections_.empty() ? kHeaderSize + table_size
                                   : offsets.back() + sections_.back()
                                                          .payload.size();

  std::vector<uint8_t> image(total, 0);
  std::memcpy(image.data(), kMagic.data(), kMagicSize);
  StoreU32(image.data() + kVersionOffset, kFormatVersion);
  StoreU32(image.data() + 12, static_cast<uint32_t>(sections_.size()));
  StoreU64(image.data() + 16, total);

  for (size_t i = 0; i < sections_.size(); ++i) {
    const Pending& section = sections_[i];
    uint8_t* entry = image.data() + kHeaderSize + i * kSectionEntrySize;
    StoreU32(entry, static_cast<uint32_t>(section.id));
    StoreU32(entry + 4, 0);
    StoreU64(entry + 8, offsets[i]);
    StoreU64(entry + 16, section.payload.size());
    StoreU64(entry + 24,
             Crc64(section.payload.data(), section.payload.size()));
    std::memcpy(image.data() + offsets[i], section.payload.data(),
                section.payload.size());
  }

  StoreU64(image.data() + kFileCrcOffset, FileCrc(image.data(), total));
  return image;
}

Status ArtifactWriter::WriteToFile(const std::string& path) const {
  std::vector<uint8_t> image = Assemble();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out.good()) {
    return InternalError("short write to " + path);
  }
  out.close();
  if (out.fail()) {
    return InternalError("close of " + path + " failed");
  }
  REVISE_OBS_COUNTER("artifact.writes").Increment();
  REVISE_OBS_HISTOGRAM("artifact.write_bytes").Record(image.size());
  return Status::Ok();
}

ArtifactFile::ArtifactFile(ArtifactFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      owned_(std::move(other.owned_)),
      sections_(std::move(other.sections_)),
      version_(other.version_),
      crc_(other.crc_) {}

ArtifactFile& ArtifactFile::operator=(ArtifactFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    owned_ = std::move(other.owned_);
    sections_ = std::move(other.sections_);
    version_ = other.version_;
    crc_ = other.crc_;
  }
  return *this;
}

ArtifactFile::~ArtifactFile() { Release(); }

void ArtifactFile::Release() {
#if defined(REVISE_ARTIFACT_HAVE_MMAP)
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_size_);
    map_base_ = nullptr;
  }
#endif
  data_ = nullptr;
}

StatusOr<ArtifactFile> ArtifactFile::Open(const std::string& path) {
  ArtifactFile file;
#if defined(REVISE_ARTIFACT_HAVE_MMAP)
  if (!MmapDisabledByEnv()) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st;
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        size_t size = static_cast<size_t>(st.st_size);
        void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
          file.map_base_ = base;
          file.map_size_ = size;
          file.data_ = static_cast<const uint8_t*>(base);
          file.size_ = size;
        }
      }
      ::close(fd);
    }
  }
#endif
  if (file.data_ == nullptr) {
    // Streamed fallback: no mmap on this platform, mapping disabled via
    // REVISE_ARTIFACT_MMAP=0, or the map itself failed.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      return NotFoundError("cannot open artifact " + path);
    }
    std::streamsize size = in.tellg();
    in.seekg(0);
    file.owned_.resize(static_cast<size_t>(size));
    if (!in.read(reinterpret_cast<char*>(file.owned_.data()), size)) {
      return InternalError("short read of artifact " + path);
    }
    file.data_ = file.owned_.data();
    file.size_ = file.owned_.size();
  }

  Status valid = file.Validate();
  if (!valid.ok()) {
    REVISE_OBS_COUNTER("artifact.open_failures").Increment();
    return valid;
  }
  REVISE_OBS_COUNTER("artifact.opens").Increment();
  if (file.mapped()) {
    REVISE_OBS_COUNTER("artifact.mmap_opens").Increment();
  }
  REVISE_OBS_HISTOGRAM("artifact.open_bytes").Record(file.size_);
  return file;
}

StatusOr<ArtifactFile> ArtifactFile::FromBytes(std::vector<uint8_t> bytes) {
  ArtifactFile file;
  file.owned_ = std::move(bytes);
  file.data_ = file.owned_.data();
  file.size_ = file.owned_.size();
  Status valid = file.Validate();
  if (!valid.ok()) {
    REVISE_OBS_COUNTER("artifact.open_failures").Increment();
    return valid;
  }
  return file;
}

Status ArtifactFile::Validate() {
  if (size_ < kHeaderSize) {
    return InvalidArgumentError("artifact truncated: " +
                                std::to_string(size_) +
                                " bytes is smaller than the header");
  }
  if (std::memcmp(data_, kMagic.data(), kMagicSize) != 0) {
    return InvalidArgumentError("bad magic: not a .rkb artifact");
  }
  uint64_t declared_size = LoadU64(data_ + 16);
  if (declared_size != size_) {
    return InvalidArgumentError(
        "artifact size mismatch: header declares " +
        std::to_string(declared_size) + " bytes, file has " +
        std::to_string(size_));
  }
  // Whole-file checksum before anything else is trusted: any flipped
  // byte from here on is caught as a checksum error.
  crc_ = LoadU64(data_ + kFileCrcOffset);
  uint64_t actual_crc = FileCrc(data_, size_);
  if (crc_ != actual_crc) {
    REVISE_OBS_COUNTER("artifact.checksum_failures").Increment();
    return InvalidArgumentError("artifact checksum mismatch (file CRC-64)");
  }
  version_ = LoadU32(data_ + kVersionOffset);
  if (version_ != kFormatVersion) {
    return InvalidArgumentError(
        "unsupported artifact format version " + std::to_string(version_) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        ")");
  }
  uint32_t count = LoadU32(data_ + 12);
  if (count > kMaxSections) {
    return InvalidArgumentError("artifact section count " +
                                std::to_string(count) + " out of range");
  }
  size_t table_end = kHeaderSize + size_t{count} * kSectionEntrySize;
  if (table_end > size_) {
    return InvalidArgumentError("artifact section table truncated");
  }
  sections_.clear();
  sections_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* entry = data_ + kHeaderSize + i * kSectionEntrySize;
    Section section;
    section.id = static_cast<SectionId>(LoadU32(entry));
    section.offset = LoadU64(entry + 8);
    section.size = LoadU64(entry + 16);
    section.crc = LoadU64(entry + 24);
    if (section.offset % kSectionAlignment != 0 ||
        section.offset < table_end || section.offset > size_ ||
        section.size > size_ - section.offset) {
      return InvalidArgumentError(
          "artifact section " + std::string(SectionIdName(section.id)) +
          " out of bounds");
    }
    for (const Section& before : sections_) {
      if (before.id == section.id) {
        return InvalidArgumentError(
            "duplicate artifact section " +
            std::string(SectionIdName(section.id)));
      }
    }
    // Redundant with the file CRC, but keeps section-level blame: a
    // mismatch here names the damaged section.
    uint64_t section_crc = Crc64(data_ + section.offset, section.size);
    if (section_crc != section.crc) {
      REVISE_OBS_COUNTER("artifact.checksum_failures").Increment();
      return InvalidArgumentError(
          "artifact checksum mismatch in section " +
          std::string(SectionIdName(section.id)));
    }
    sections_.push_back(section);
  }
  return Status::Ok();
}

const ArtifactFile::Section* ArtifactFile::Find(SectionId id) const {
  for (const Section& section : sections_) {
    if (section.id == id) {
      return &section;
    }
  }
  return nullptr;
}

}  // namespace revise::artifact
