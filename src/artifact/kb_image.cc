#include "artifact/kb_image.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "artifact/checksum.h"
#include "bdd/bdd.h"
#include "kernel/packed_matrix.h"
#include "kernel/simd.h"
#include "obs/metrics.h"

namespace revise::artifact {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

// --- formula node table ------------------------------------------------
//
// Nodes are emitted children-first, so every child reference is a smaller
// index.  Two maps deduplicate: by node identity (cheap, catches shared
// DAG nodes) and by structure (catches equal subtrees allocated apart),
// so the table is a true structural DAG regardless of how the formulas
// were built.

class FormulaEncoder {
 public:
  uint32_t Add(const Formula& f) {
    auto by_id = by_id_.find(f.id());
    if (by_id != by_id_.end()) {
      return by_id->second;
    }
    std::vector<uint64_t> key;
    key.push_back(static_cast<uint64_t>(f.kind()));
    switch (f.kind()) {
      case Connective::kConst:
        key.push_back(f.const_value() ? 1 : 0);
        break;
      case Connective::kVar:
        key.push_back(f.var());
        break;
      default:
        for (const Formula& child : f.children()) {
          key.push_back(Add(child));
        }
        break;
    }
    auto [it, inserted] = by_structure_.try_emplace(key, count_);
    if (inserted) {
      EmitNode(f, key);
      ++count_;
    }
    by_id_.emplace(f.id(), it->second);
    return it->second;
  }

  uint32_t count() const { return count_; }

  std::vector<uint8_t> Finish() && {
    ByteWriter payload;
    payload.U32(count_);
    std::vector<uint8_t> body = std::move(body_).Take();
    payload.Bytes(body.data(), body.size());
    return std::move(payload).Take();
  }

 private:
  void EmitNode(const Formula& f, const std::vector<uint64_t>& key) {
    body_.U8(static_cast<uint8_t>(f.kind()));
    switch (f.kind()) {
      case Connective::kConst:
        body_.U8(f.const_value() ? 1 : 0);
        break;
      case Connective::kVar:
        body_.U32(f.var());
        break;
      default:
        body_.U32(static_cast<uint32_t>(key.size() - 1));
        for (size_t i = 1; i < key.size(); ++i) {
          body_.U32(static_cast<uint32_t>(key[i]));
        }
        break;
    }
  }

  ByteWriter body_;
  uint32_t count_ = 0;
  std::unordered_map<const void*, uint32_t> by_id_;
  std::map<std::vector<uint64_t>, uint32_t> by_structure_;
};

// Decodes the node table, rebuilding each node through the public
// factories with variables remapped.  Stored nodes are factory-normal
// (flattened, constant-folded), and the factories are idempotent on
// normal forms, so the rebuilt formulas are structurally identical to
// what was saved.
Status DecodeFormulas(ByteReader reader, const std::vector<Var>& remap,
                      std::vector<Formula>* nodes) {
  uint32_t count = reader.U32();
  if (!reader.ok() || count > reader.remaining()) {
    return InvalidArgumentError("artifact formula table header corrupt");
  }
  nodes->clear();
  nodes->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind = reader.U8();
    switch (static_cast<Connective>(kind)) {
      case Connective::kConst:
        nodes->push_back(Formula::Constant(reader.U8() != 0));
        break;
      case Connective::kVar: {
        uint32_t var = reader.U32();
        if (!reader.ok() || var >= remap.size()) {
          return InvalidArgumentError("artifact formula variable id " +
                                      std::to_string(var) + " out of range");
        }
        nodes->push_back(Formula::Variable(remap[var]));
        break;
      }
      case Connective::kNot:
      case Connective::kAnd:
      case Connective::kOr:
      case Connective::kImplies:
      case Connective::kIff:
      case Connective::kXor: {
        uint32_t arity = reader.U32();
        if (!reader.ok() || arity > reader.remaining() / 4 + 1) {
          return InvalidArgumentError("artifact formula arity corrupt");
        }
        std::vector<Formula> children;
        children.reserve(arity);
        for (uint32_t c = 0; c < arity; ++c) {
          uint32_t child = reader.U32();
          if (!reader.ok() || child >= i) {
            return InvalidArgumentError(
                "artifact formula child reference out of order");
          }
          children.push_back((*nodes)[child]);
        }
        switch (static_cast<Connective>(kind)) {
          case Connective::kNot:
            if (arity != 1) {
              return InvalidArgumentError("artifact NOT node arity != 1");
            }
            nodes->push_back(Formula::Not(children[0]));
            break;
          case Connective::kAnd:
            nodes->push_back(Formula::And(children));
            break;
          case Connective::kOr:
            nodes->push_back(Formula::Or(children));
            break;
          default:
            if (arity != 2) {
              return InvalidArgumentError(
                  "artifact binary connective arity != 2");
            }
            if (static_cast<Connective>(kind) == Connective::kImplies) {
              nodes->push_back(Formula::Implies(children[0], children[1]));
            } else if (static_cast<Connective>(kind) == Connective::kIff) {
              nodes->push_back(Formula::Iff(children[0], children[1]));
            } else {
              nodes->push_back(Formula::Xor(children[0], children[1]));
            }
            break;
        }
        break;
      }
      default:
        return InvalidArgumentError("artifact formula kind " +
                                    std::to_string(kind) + " unknown");
    }
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("artifact formula table has trailing bytes");
  }
  return Status::Ok();
}

// The canonical ROBDD of the model set in sorted-alphabet order, built
// one minterm cube at a time (bottom-up, so each ITE is a cheap top
// insertion) and exported as a renumbered children-first node table.
BddImage BuildBddImage(const ModelSet& models) {
  const Alphabet& alphabet = models.alphabet();
  BddManager manager(alphabet.vars());
  BddManager::NodeRef root = BddManager::kFalse;
  for (const Interpretation& m : models) {
    BddManager::NodeRef cube = BddManager::kTrue;
    for (size_t i = alphabet.size(); i-- > 0;) {
      BddManager::NodeRef v = manager.VarNode(alphabet.var(i));
      cube = m.Get(i) ? manager.Ite(v, cube, BddManager::kFalse)
                      : manager.Ite(v, BddManager::kFalse, cube);
    }
    root = manager.Or(root, cube);
  }

  BddImage image;
  image.order = manager.order();
  std::unordered_map<BddManager::NodeRef, uint32_t> renumber = {
      {BddManager::kFalse, 0}, {BddManager::kTrue, 1}};
  // Children-first DFS; depth is bounded by the variable count.
  auto Export = [&](auto&& self, BddManager::NodeRef f) -> uint32_t {
    auto found = renumber.find(f);
    if (found != renumber.end()) {
      return found->second;
    }
    uint32_t low = self(self, manager.NodeLow(f));
    uint32_t high = self(self, manager.NodeHigh(f));
    image.nodes.push_back({manager.NodeLevel(f), low, high});
    uint32_t ref = static_cast<uint32_t>(image.nodes.size()) + 1;
    renumber.emplace(f, ref);
    return ref;
  };
  image.root = Export(Export, root);
  return image;
}

}  // namespace

std::string_view StrategyName(uint32_t strategy) {
  switch (strategy) {
    case kStrategyDelayed:
      return "delayed";
    case kStrategyExplicit:
      return "explicit";
    case kStrategyCompact:
      return "compact";
    default:
      return "unknown";
  }
}

bool BddImage::Evaluate(const Interpretation& m,
                        const Alphabet& alphabet) const {
  uint32_t ref = root;
  while (ref > 1) {
    const Node& node = nodes[ref - 2];
    bool bit = false;
    if (std::optional<size_t> pos = alphabet.IndexOf(order[node.level])) {
      bit = m.Get(*pos);
    }
    ref = bit ? node.high : node.low;
  }
  return ref == 1;
}

Status WriteKbArtifact(const KbImage& image, const Vocabulary& vocabulary,
                       const std::string& path) {
  Clock::time_point start = Clock::now();
  ArtifactWriter writer;

  // VOCAB: every interned name in id order, so load can rebuild the
  // old-id -> new-id remap (and Fresh() keeps skipping taken names).
  {
    ByteWriter payload;
    payload.U32(static_cast<uint32_t>(vocabulary.size()));
    for (Var var = 0; var < vocabulary.size(); ++var) {
      payload.String(vocabulary.Name(var));
    }
    writer.AddSection(SectionId::kVocabulary, std::move(payload).Take());
  }

  // FORMULAS + the root indices for KBMETA.
  FormulaEncoder formulas;
  std::vector<uint32_t> initial_roots;
  for (const Formula& f : image.initial) {
    initial_roots.push_back(formulas.Add(f));
  }
  std::vector<uint32_t> update_roots;
  for (const Formula& f : image.updates) {
    update_roots.push_back(formulas.Add(f));
  }
  uint32_t folded_root = formulas.Add(image.folded);
  std::vector<uint32_t> folded_theory_roots;
  for (const Formula& f : image.folded_theory) {
    folded_theory_roots.push_back(formulas.Add(f));
  }
  writer.AddSection(SectionId::kFormulas, std::move(formulas).Finish());

  // MODELMETA + MODELROWS: the canonical model set in PackedModelMatrix
  // row layout, 64-byte aligned in the file for in-place reads.
  const Alphabet& alphabet = image.models.alphabet();
  kernel::PackedModelMatrix matrix = kernel::PackedModelMatrix::FromModels(
      alphabet.size(), image.models.models());
  {
    ByteWriter payload;
    payload.U32(static_cast<uint32_t>(alphabet.size()));
    for (Var var : alphabet.vars()) {
      payload.U32(var);
    }
    payload.U64(matrix.rows());
    payload.U64(matrix.row_stride());
    writer.AddSection(SectionId::kModelMeta, std::move(payload).Take());
  }
  {
    ByteWriter payload;
    for (size_t r = 0; r < matrix.rows(); ++r) {
      const uint64_t* row = matrix.row(r);
      for (size_t w = 0; w < matrix.row_stride(); ++w) {
        payload.U64(row[w]);
      }
    }
    writer.AddSection(SectionId::kModelRows, std::move(payload).Take());
  }

  // BDD: order, root, children-first node table.
  BddImage bdd = BuildBddImage(image.models);
  {
    ByteWriter payload;
    payload.U32(static_cast<uint32_t>(bdd.order.size()));
    for (Var var : bdd.order) {
      payload.U32(var);
    }
    payload.U32(static_cast<uint32_t>(bdd.nodes.size()));
    payload.U32(bdd.root);
    for (const BddImage::Node& node : bdd.nodes) {
      payload.U32(node.level);
      payload.U32(node.low);
      payload.U32(node.high);
    }
    writer.AddSection(SectionId::kBdd, std::move(payload).Take());
  }

  // KBMETA: operator, strategy, and the formula roots.
  {
    ByteWriter payload;
    payload.U32(static_cast<uint32_t>(image.operator_id));
    payload.U32(image.strategy);
    payload.U32(0);  // flags, reserved
    payload.U64(matrix.rows());
    payload.U32(static_cast<uint32_t>(initial_roots.size()));
    for (uint32_t root : initial_roots) {
      payload.U32(root);
    }
    payload.U32(static_cast<uint32_t>(update_roots.size()));
    for (uint32_t root : update_roots) {
      payload.U32(root);
    }
    payload.U32(folded_root);
    payload.U32(static_cast<uint32_t>(folded_theory_roots.size()));
    for (uint32_t root : folded_theory_roots) {
      payload.U32(root);
    }
    writer.AddSection(SectionId::kKbMeta, std::move(payload).Take());
  }

  Status written = writer.WriteToFile(path);
  if (!written.ok()) {
    return written;
  }
  REVISE_OBS_COUNTER("artifact.compiles").Increment();
  REVISE_OBS_HISTOGRAM("artifact.compile_ms").Record(ElapsedMs(start));
  return Status::Ok();
}

StatusOr<KbArtifact> KbArtifact::Open(const std::string& path) {
  StatusOr<ArtifactFile> file = ArtifactFile::Open(path);
  if (!file.ok()) {
    return file.status();
  }
  KbArtifact artifact;
  artifact.file_ = std::move(*file);
  Status decoded = artifact.DecodeMeta();
  if (!decoded.ok()) {
    return decoded;
  }
  return artifact;
}

Status KbArtifact::DecodeMeta() {
  for (const ArtifactFile::Section& section : file_.sections()) {
    info_.sections.push_back({std::string(SectionIdName(section.id)),
                              section.offset, section.size, section.crc});
  }
  info_.format_version = file_.format_version();
  info_.file_size = file_.file_size();
  info_.file_crc = file_.file_crc();
  info_.mapped = file_.mapped();

  const ArtifactFile::Section* vocab = file_.Find(SectionId::kVocabulary);
  const ArtifactFile::Section* formulas = file_.Find(SectionId::kFormulas);
  const ArtifactFile::Section* model_meta = file_.Find(SectionId::kModelMeta);
  const ArtifactFile::Section* model_rows = file_.Find(SectionId::kModelRows);
  const ArtifactFile::Section* bdd = file_.Find(SectionId::kBdd);
  const ArtifactFile::Section* kb_meta = file_.Find(SectionId::kKbMeta);
  if (vocab == nullptr || formulas == nullptr || model_meta == nullptr ||
      model_rows == nullptr || bdd == nullptr || kb_meta == nullptr) {
    return InvalidArgumentError(
        "artifact is missing a required section (not a compiled KB?)");
  }

  // VOCAB.
  {
    ByteReader reader(file_.SectionData(*vocab), vocab->size);
    uint32_t count = reader.U32();
    if (!reader.ok() || count > reader.remaining()) {
      return InvalidArgumentError("artifact vocabulary header corrupt");
    }
    names_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      if (!reader.String(&name)) {
        return InvalidArgumentError("artifact vocabulary truncated");
      }
      names_.push_back(std::move(name));
    }
    if (!reader.AtEnd()) {
      return InvalidArgumentError("artifact vocabulary has trailing bytes");
    }
  }
  info_.vocabulary_size = names_.size();

  // FORMULAS header only; the body is decoded in Materialize.
  uint32_t formula_count = 0;
  {
    ByteReader reader(file_.SectionData(*formulas), formulas->size);
    formula_count = reader.U32();
    if (!reader.ok()) {
      return InvalidArgumentError("artifact formula table truncated");
    }
  }
  info_.formula_nodes = formula_count;

  // MODELMETA.
  {
    ByteReader reader(file_.SectionData(*model_meta), model_meta->size);
    uint32_t bits = reader.U32();
    if (!reader.ok() || bits > reader.remaining() / 4) {
      return InvalidArgumentError("artifact model alphabet corrupt");
    }
    alphabet_.reserve(bits);
    for (uint32_t i = 0; i < bits; ++i) {
      uint32_t var = reader.U32();
      if (var >= names_.size() ||
          (!alphabet_.empty() && var <= alphabet_.back())) {
        return InvalidArgumentError(
            "artifact model alphabet not strictly ascending / out of range");
      }
      alphabet_.push_back(var);
    }
    rows_ = reader.U64();
    stride_words_ = reader.U64();
    if (!reader.ok() || !reader.AtEnd()) {
      return InvalidArgumentError("artifact model metadata corrupt");
    }
    // The stride is the writer's PackedModelMatrix row stride: the used
    // words rounded up to whole SIMD blocks, at least one block — also
    // for rows == 0, where the rows section itself is empty.
    const size_t words_used = (alphabet_.size() + 63) / 64;
    const size_t expected_stride =
        std::max<size_t>(1, (words_used + kernel::kWordsPerBlock - 1) /
                                kernel::kWordsPerBlock) *
        kernel::kWordsPerBlock;
    if (stride_words_ != expected_stride) {
      return InvalidArgumentError("artifact model row stride corrupt");
    }
    if (rows_ * stride_words_ * 8 != model_rows->size) {
      return InvalidArgumentError(
          "artifact model rows section size does not match its metadata");
    }
    row_bytes_ = file_.SectionData(*model_rows);
  }
  info_.alphabet_size = alphabet_.size();
  info_.model_count = rows_;

  // Canonicity + padding: rows strictly increasing, tail bits zero.  This
  // means ModelRow can hand words straight to Interpretation::FromWords.
  {
    const size_t bits = alphabet_.size();
    const size_t words_used = (bits + 63) / 64;
    for (size_t r = 0; r < rows_; ++r) {
      for (size_t w = words_used; w < stride_words_; ++w) {
        if (RowWord(r, w) != 0) {
          return InvalidArgumentError("artifact model row padding not zero");
        }
      }
      if (bits % 64 != 0 && words_used > 0 &&
          (RowWord(r, words_used - 1) >> (bits % 64)) != 0) {
        return InvalidArgumentError("artifact model row tail bits not zero");
      }
      if (r > 0 && !(ModelRow(r - 1) < ModelRow(r))) {
        return InvalidArgumentError(
            "artifact model rows not in canonical order");
      }
    }
  }

  // BDD.
  {
    ByteReader reader(file_.SectionData(*bdd), bdd->size);
    uint32_t order_len = reader.U32();
    if (!reader.ok() || order_len > reader.remaining() / 4) {
      return InvalidArgumentError("artifact bdd order corrupt");
    }
    bdd_order_.reserve(order_len);
    bdd_level_to_bit_.reserve(order_len);
    for (uint32_t i = 0; i < order_len; ++i) {
      uint32_t var = reader.U32();
      auto at = std::lower_bound(alphabet_.begin(), alphabet_.end(), var);
      if (at == alphabet_.end() || *at != var) {
        return InvalidArgumentError(
            "artifact bdd order variable outside the model alphabet");
      }
      bdd_order_.push_back(var);
      bdd_level_to_bit_.push_back(
          static_cast<size_t>(at - alphabet_.begin()));
    }
    bdd_node_count_ = reader.U32();
    bdd_root_ = reader.U32();
    if (!reader.ok() || bdd_node_count_ != reader.remaining() / 12 ||
        reader.remaining() % 12 != 0) {
      return InvalidArgumentError("artifact bdd node table size corrupt");
    }
    if (bdd_root_ >= bdd_node_count_ + 2) {
      return InvalidArgumentError("artifact bdd root out of range");
    }
    bdd_node_bytes_ = reader.Here();
    // Structural sanity: children precede parents, levels strictly
    // increase toward the terminals, no redundant nodes.
    for (size_t i = 0; i < bdd_node_count_; ++i) {
      uint32_t level = reader.U32();
      uint32_t low = reader.U32();
      uint32_t high = reader.U32();
      if (level >= bdd_order_.size() || low == high ||
          low >= i + 2 || high >= i + 2) {
        return InvalidArgumentError("artifact bdd node " +
                                    std::to_string(i) + " malformed");
      }
      for (uint32_t child : {low, high}) {
        if (child >= 2) {
          ByteReader peek(bdd_node_bytes_ + (child - 2) * 12, 4);
          if (peek.U32() <= level) {
            return InvalidArgumentError(
                "artifact bdd levels not strictly increasing");
          }
        }
      }
    }
  }
  info_.bdd_nodes = bdd_node_count_;

  // KBMETA.
  {
    ByteReader reader(file_.SectionData(*kb_meta), kb_meta->size);
    operator_id_ = reader.U32();
    strategy_ = reader.U32();
    reader.U32();  // flags, reserved
    uint64_t model_count = reader.U64();
    if (!reader.ok() || model_count != rows_) {
      return InvalidArgumentError(
          "artifact kb metadata model count mismatch");
    }
    if (operator_id_ > static_cast<uint32_t>(OperatorId::kWeber)) {
      return InvalidArgumentError("artifact operator id " +
                                  std::to_string(operator_id_) +
                                  " unknown");
    }
    if (StrategyName(strategy_) == "unknown") {
      return InvalidArgumentError("artifact strategy " +
                                  std::to_string(strategy_) + " unknown");
    }
    auto ReadRoots = [&](std::vector<uint32_t>* roots) -> bool {
      uint32_t count = reader.U32();
      if (!reader.ok() || count > reader.remaining() / 4) {
        return false;
      }
      roots->reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t root = reader.U32();
        if (root >= formula_count) {
          return false;
        }
        roots->push_back(root);
      }
      return reader.ok();
    };
    if (!ReadRoots(&initial_roots_) || !ReadRoots(&update_roots_)) {
      return InvalidArgumentError("artifact kb metadata roots corrupt");
    }
    folded_root_ = reader.U32();
    if (!reader.ok() || folded_root_ >= formula_count) {
      return InvalidArgumentError("artifact folded root out of range");
    }
    if (!ReadRoots(&folded_theory_roots_) || !reader.AtEnd()) {
      return InvalidArgumentError("artifact kb metadata roots corrupt");
    }
  }
  info_.update_count = update_roots_.size();
  info_.operator_name = std::string(
      OperatorById(static_cast<OperatorId>(operator_id_))->name());
  info_.strategy_name = std::string(StrategyName(strategy_));
  return Status::Ok();
}

uint64_t KbArtifact::RowWord(size_t row, size_t word) const {
  const uint8_t* at = row_bytes_ + (row * stride_words_ + word) * 8;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(at[i]) << (8 * i);
  }
  return value;
}

bool KbArtifact::RowBit(size_t row, size_t bit) const {
  // Bytewise in-place peek: independent of host endianness and section
  // alignment (little-endian words make byte b hold bits 8b..8b+7).
  const uint8_t byte = row_bytes_[row * stride_words_ * 8 + bit / 8];
  return (byte >> (bit % 8)) & 1;
}

Interpretation KbArtifact::ModelRow(size_t row) const {
  const size_t bits = alphabet_.size();
  const uint8_t* at = row_bytes_ + row * stride_words_ * 8;
  if constexpr (std::endian::native == std::endian::little) {
    if (reinterpret_cast<uintptr_t>(at) % alignof(uint64_t) == 0) {
      // Zero-parse fast path: the packed words are the file bytes.
      REVISE_OBS_COUNTER("artifact.rows_inplace").Increment();
      return Interpretation::FromWords(
          bits, reinterpret_cast<const uint64_t*>(at));
    }
  }
  REVISE_OBS_COUNTER("artifact.rows_streamed").Increment();
  const size_t words_used = (bits + 63) / 64;
  std::vector<uint64_t> words(words_used);
  for (size_t w = 0; w < words_used; ++w) {
    words[w] = RowWord(row, w);
  }
  return Interpretation::FromWords(bits, words.data());
}

bool KbArtifact::AskPackedRow(size_t row) const {
  uint32_t ref = bdd_root_;
  while (ref > 1) {
    const uint8_t* node = bdd_node_bytes_ + (ref - 2) * 12;
    ByteReader reader(node, 12);
    uint32_t level = reader.U32();
    uint32_t low = reader.U32();
    uint32_t high = reader.U32();
    ref = RowBit(row, bdd_level_to_bit_[level]) ? high : low;
  }
  return ref == 1;
}

Status KbArtifact::VerifyPackedSections() const {
  // DecodeMeta already enforced canonical row order, zero padding and BDD
  // shape; here the two representations are played against each other:
  // every stored model must satisfy the stored BDD (Definition 7.1's ASK
  // run directly on the mapped bytes).
  for (size_t r = 0; r < rows_; ++r) {
    if (!AskPackedRow(r)) {
      return InvalidArgumentError(
          "artifact model row " + std::to_string(r) +
          " is rejected by the stored BDD");
    }
  }
  return Status::Ok();
}

StatusOr<KbImage> KbArtifact::Materialize(Vocabulary* vocabulary) const {
  Clock::time_point start = Clock::now();
  std::vector<Var> remap;
  remap.reserve(names_.size());
  for (const std::string& name : names_) {
    remap.push_back(vocabulary->Intern(name));
  }

  const ArtifactFile::Section* formulas = file_.Find(SectionId::kFormulas);
  std::vector<Formula> nodes;
  Status decoded = DecodeFormulas(
      ByteReader(file_.SectionData(*formulas), formulas->size), remap,
      &nodes);
  if (!decoded.ok()) {
    return decoded;
  }

  KbImage image;
  image.operator_id = static_cast<OperatorId>(operator_id_);
  image.strategy = strategy_;
  std::vector<Formula> initial;
  for (uint32_t root : initial_roots_) {
    initial.push_back(nodes[root]);
  }
  image.initial = Theory(std::move(initial));
  for (uint32_t root : update_roots_) {
    image.updates.push_back(nodes[root]);
  }
  image.folded = nodes[folded_root_];
  std::vector<Formula> folded_theory;
  for (uint32_t root : folded_theory_roots_) {
    folded_theory.push_back(nodes[root]);
  }
  image.folded_theory = Theory(std::move(folded_theory));

  // Models: remap the alphabet; when the remap preserves the stored
  // order (always when loading into a fresh vocabulary) rows transfer
  // words-at-a-time, otherwise bits are permuted one by one.
  std::vector<Var> new_vars;
  new_vars.reserve(alphabet_.size());
  bool order_preserved = true;
  for (size_t i = 0; i < alphabet_.size(); ++i) {
    new_vars.push_back(remap[alphabet_[i]]);
    if (i > 0 && new_vars[i] <= new_vars[i - 1]) {
      order_preserved = false;
    }
  }
  Alphabet alphabet(new_vars);
  std::vector<Interpretation> models;
  models.reserve(rows_);
  if (order_preserved) {
    for (size_t r = 0; r < rows_; ++r) {
      models.push_back(ModelRow(r));
    }
  } else {
    for (size_t r = 0; r < rows_; ++r) {
      Interpretation m(alphabet.size());
      for (size_t bit = 0; bit < alphabet_.size(); ++bit) {
        if (RowBit(r, bit)) {
          m.Set(*alphabet.IndexOf(new_vars[bit]), true);
        }
      }
      models.push_back(std::move(m));
    }
  }
  image.models = ModelSet(alphabet, std::move(models));

  image.bdd.order.reserve(bdd_order_.size());
  for (Var var : bdd_order_) {
    image.bdd.order.push_back(remap[var]);
  }
  image.bdd.nodes.reserve(bdd_node_count_);
  for (size_t i = 0; i < bdd_node_count_; ++i) {
    ByteReader reader(bdd_node_bytes_ + i * 12, 12);
    uint32_t level = reader.U32();
    uint32_t low = reader.U32();
    uint32_t high = reader.U32();
    image.bdd.nodes.push_back({level, low, high});
  }
  image.bdd.root = bdd_root_;

  REVISE_OBS_HISTOGRAM("artifact.materialize_ms").Record(ElapsedMs(start));
  return image;
}

}  // namespace revise::artifact
