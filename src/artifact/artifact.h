// The .rkb artifact container: a versioned little-endian binary file
// holding a compiled knowledge base (kb_image.h gives the sections their
// meaning; this header only knows about bytes).
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     8  magic "RKB!\r\n\x1a\n" (the PNG trick: the CRLF / ^Z
//                 bytes catch text-mode and truncating transports)
//        8     4  format version (kFormatVersion)
//       12     4  section count
//       16     8  file size in bytes
//       24     8  CRC-64/XZ of the whole file, computed with these eight
//                 bytes zeroed
//       32    32  reserved (zero)
//       64   32n  section table: n entries of
//                   u32 id, u32 reserved, u64 offset, u64 size, u64 crc
//    .....        section payloads, each starting on a 64-byte boundary
//                 (zero padding between), so packed 64-bit model rows can
//                 be read in place from an mmap
//
// The loader validates magic, declared size, the whole-file checksum, the
// format version, section-table bounds and every per-section checksum
// before handing out a single payload byte; a flipped byte anywhere is a
// load error, never a decoded value.  The header layout (magic, version,
// size, crc offsets) is frozen across format versions so that version
// mismatches are always reported cleanly.
//
// Reads prefer mmap (zero-parse access to the packed sections); when the
// platform lacks mmap, the map fails, or REVISE_ARTIFACT_MMAP=0 is set,
// the file is streamed into an owned buffer instead.  Both paths give out
// the same pointers-into-a-buffer view.

#ifndef REVISE_ARTIFACT_ARTIFACT_H_
#define REVISE_ARTIFACT_ARTIFACT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace revise::artifact {

inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kMagicSize = 8;
inline constexpr size_t kHeaderSize = 64;
inline constexpr size_t kSectionEntrySize = 32;
inline constexpr size_t kSectionAlignment = 64;
inline constexpr size_t kMaxSections = 1024;
// Offsets of the frozen header fields (see layout above).
inline constexpr size_t kVersionOffset = 8;
inline constexpr size_t kFileCrcOffset = 24;

extern const std::array<uint8_t, kMagicSize> kMagic;

enum class SectionId : uint32_t {
  kVocabulary = 1,  // interned names, id order
  kFormulas = 2,    // structurally deduplicated formula node table
  kModelMeta = 3,   // alphabet + packed-row geometry
  kModelRows = 4,   // raw PackedModelMatrix rows (the mmap fast path)
  kBdd = 5,         // variable order + node table + root
  kKbMeta = 6,      // operator, strategy, formula roots
};

// "vocabulary", "formulas", ... ("unknown" for ids not in the enum).
std::string_view SectionIdName(SectionId id);

// Append-only little-endian encoder for section payloads.
class ByteWriter {
 public:
  void U8(uint8_t value) { out_.push_back(value); }
  void U32(uint32_t value);
  void U64(uint64_t value);
  void Bytes(const void* data, size_t size);
  // u32 length + raw bytes.
  void String(std::string_view s);

  size_t size() const { return out_.size(); }
  std::vector<uint8_t> Take() && { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
};

// Bounds-checked little-endian cursor over a section payload.  Overruns
// set a sticky failure flag and make every further read return zero, so
// decoders can read a whole record and check ok() once.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  // Reads a u32 length + bytes; fails (returning false) on overrun.
  bool String(std::string* out);

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return ok_ && pos_ == size_; }

  // Consumes nothing: pointer to the current position, for in-place views.
  const uint8_t* Here() const { return data_ + pos_; }
  // Advances past `size` bytes (the in-place view just handed out).
  bool Skip(size_t size);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Assembles and writes an artifact: add section payloads in any order,
// then WriteToFile (or Assemble for an in-memory image).
class ArtifactWriter {
 public:
  void AddSection(SectionId id, std::vector<uint8_t> payload);

  // The complete file image, checksums filled in.
  std::vector<uint8_t> Assemble() const;

  // Assemble + durable write: the stream is explicitly flushed and
  // checked, so a short write (e.g. a full disk) is an error, not an Ok.
  Status WriteToFile(const std::string& path) const;

 private:
  struct Pending {
    SectionId id;
    std::vector<uint8_t> payload;
  };
  std::vector<Pending> sections_;
};

// A validated, opened artifact.  Owns either an mmap or a buffer; hands
// out borrowed pointers into it.  Move-only.
class ArtifactFile {
 public:
  struct Section {
    SectionId id;
    size_t offset;
    size_t size;
    uint64_t crc;
  };

  // An empty placeholder (no sections); real instances come from Open /
  // FromBytes.  Exists so owners can default-construct and move-assign.
  ArtifactFile() = default;

  // Opens and fully validates (checksums included).  Every corrupt-file
  // error is InvalidArgument with a message naming the failed check.
  static StatusOr<ArtifactFile> Open(const std::string& path);
  // Validates an in-memory image (always "streamed"; used by tests and
  // the fuzz oracle's corruption probes).
  static StatusOr<ArtifactFile> FromBytes(std::vector<uint8_t> bytes);

  ArtifactFile(ArtifactFile&& other) noexcept;
  ArtifactFile& operator=(ArtifactFile&& other) noexcept;
  ArtifactFile(const ArtifactFile&) = delete;
  ArtifactFile& operator=(const ArtifactFile&) = delete;
  ~ArtifactFile();

  uint32_t format_version() const { return version_; }
  size_t file_size() const { return size_; }
  uint64_t file_crc() const { return crc_; }
  // True when the payloads are served straight from an mmap.
  bool mapped() const { return map_base_ != nullptr; }

  const std::vector<Section>& sections() const { return sections_; }
  const Section* Find(SectionId id) const;
  const uint8_t* SectionData(const Section& section) const {
    return data_ + section.offset;
  }

 private:
  Status Validate();
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;  // non-null iff mmap-backed
  size_t map_size_ = 0;
  std::vector<uint8_t> owned_;  // used iff streamed
  std::vector<Section> sections_;
  uint32_t version_ = 0;
  uint64_t crc_ = 0;
};

}  // namespace revise::artifact

#endif  // REVISE_ARTIFACT_ARTIFACT_H_
