// CRC-64 checksums for the .rkb artifact container.
//
// The artifact format (artifact.h) protects every section payload and the
// file as a whole with CRC-64/XZ (the ECMA-182 polynomial, reflected,
// init/xorout all-ones — the same parameterisation xz-utils uses).  A
// 64-bit CRC detects every single-byte corruption and every burst shorter
// than 64 bits, which is exactly the guarantee the loader advertises:
// a flipped byte is rejected with a checksum error, never decoded into a
// wrong answer.
//
// The implementation is a plain table-driven byte-at-a-time loop: the
// checksum runs once per save/load over data that is then parsed or
// copied anyway, so it is nowhere near hot enough to justify a slicing
// kernel.

#ifndef REVISE_ARTIFACT_CHECKSUM_H_
#define REVISE_ARTIFACT_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace revise::artifact {

// One-shot CRC-64/XZ of `size` bytes.  Crc64("123456789") ==
// 0x995dc9bbdf1939fa (the standard check value for this parameterisation).
uint64_t Crc64(const void* data, size_t size);

// Incremental form: feed `state = Crc64Update(state, ...)` chunk by chunk
// starting from Crc64Init() and finish with Crc64Final(state).  Used by
// the artifact writer to checksum the header with its own crc field
// zeroed without copying the file.
uint64_t Crc64Init();
uint64_t Crc64Update(uint64_t state, const void* data, size_t size);
uint64_t Crc64Final(uint64_t state);

}  // namespace revise::artifact

#endif  // REVISE_ARTIFACT_CHECKSUM_H_
