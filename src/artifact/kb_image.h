// Compiled knowledge-base images: the meaning of the .rkb sections.
//
// A KbImage is everything the core KnowledgeBase needs to resume exactly
// where a previous process stopped, plus the two precomputed query
// structures that make cold starts cheap:
//
//  * the canonical ModelSet of the revised knowledge base, packed in the
//    PackedModelMatrix row layout so the loader can hand rows straight
//    out of an mmap, and
//  * the canonical ROBDD of that model set (Definition 7.1's data
//    structure D with its polynomial ASK), evaluable directly against
//    the on-disk node table without materializing anything.
//
// The formula sections carry the syntactic state — the initial theory,
// the update sequence, and the folded explicit/compact representation
// (for the compact strategy this is the paper's precomputed compact
// revision, fresh letters included) — as one structurally deduplicated
// node table.  Variables are stored by name; loading interns the names
// into the caller's Vocabulary and remaps ids, so an artifact can be
// loaded into a process whose vocabulary already holds other letters.
//
// This layer is vocabulary/logic/model/bdd-level only; core/kb_artifact.h
// bridges KbImage to the KnowledgeBase class.

#ifndef REVISE_ARTIFACT_KB_IMAGE_H_
#define REVISE_ARTIFACT_KB_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "model/model_set.h"
#include "revision/operator.h"
#include "util/status.h"

namespace revise::artifact {

// Storage-strategy encoding in the KBMETA section.  Frozen format
// values; core/kb_artifact.cc maps them to RevisionStrategy.
inline constexpr uint32_t kStrategyDelayed = 0;
inline constexpr uint32_t kStrategyExplicit = 1;
inline constexpr uint32_t kStrategyCompact = 2;

// "delayed" / "explicit" / "compact" ("unknown" otherwise).
std::string_view StrategyName(uint32_t strategy);

// A decoded copy of the BDD section: the canonical ROBDD of the model
// set, in the sorted-alphabet variable order.
struct BddImage {
  struct Node {
    uint32_t level;
    uint32_t low;   // NodeRef: 0 false, 1 true, k >= 2 -> nodes[k - 2]
    uint32_t high;
  };
  std::vector<Var> order;  // level -> variable
  std::vector<Node> nodes;
  uint32_t root = 0;

  // Definition 7.1's ASK: one root-to-terminal walk.  Letters of `order`
  // absent from `alphabet` read as false.
  [[nodiscard]] bool Evaluate(const Interpretation& m,
                              const Alphabet& alphabet) const;
};

// A fully materialized knowledge-base snapshot.
struct KbImage {
  OperatorId operator_id = OperatorId::kDalal;
  uint32_t strategy = kStrategyDelayed;
  Theory initial;
  std::vector<Formula> updates;
  Formula folded;
  Theory folded_theory;
  ModelSet models;
  BddImage bdd;
};

// Per-section row of InspectArtifact / `revise_compile inspect`.
struct SectionInfo {
  std::string name;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t crc = 0;
};

struct ArtifactInfo {
  uint32_t format_version = 0;
  uint64_t file_size = 0;
  uint64_t file_crc = 0;
  bool mapped = false;
  std::vector<SectionInfo> sections;
  std::string operator_name;
  std::string strategy_name;
  uint64_t vocabulary_size = 0;
  uint64_t formula_nodes = 0;
  uint64_t update_count = 0;
  uint64_t alphabet_size = 0;
  uint64_t model_count = 0;
  uint64_t bdd_nodes = 0;
};

// Compiles the image into a .rkb file: packs the models, builds the
// canonical BDD, deduplicates the formula DAG, checksums everything.
// `vocabulary` must be the one the image's formulas are expressed in.
Status WriteKbArtifact(const KbImage& image, const Vocabulary& vocabulary,
                       const std::string& path);

// An opened, checksum-validated artifact with its metadata decoded.  The
// packed model rows and the BDD node table stay in the (mmap-backed when
// possible) file buffer and are consumed in place; Materialize() is the
// only call that copies them out.
class KbArtifact {
 public:
  static StatusOr<KbArtifact> Open(const std::string& path);

  KbArtifact(KbArtifact&&) noexcept = default;
  KbArtifact& operator=(KbArtifact&&) noexcept = default;

  const ArtifactInfo& info() const { return info_; }
  // True when the packed sections are served from an mmap.
  bool mapped() const { return file_.mapped(); }

  size_t model_rows() const { return rows_; }
  size_t model_bits() const { return alphabet_.size(); }
  // Bit `bit` of packed row `row`, read in place from the file buffer.
  [[nodiscard]] bool RowBit(size_t row, size_t bit) const;
  // Row `row` as an Interpretation over the stored alphabet: a zero-parse
  // word copy when the host is little-endian and the section is 8-byte
  // aligned (always, given the 64-byte section alignment), a per-word
  // decode otherwise.
  [[nodiscard]] Interpretation ModelRow(size_t row) const;

  // ASK on the stored BDD evaluated against stored row `row`, walking
  // the on-disk node table directly.
  [[nodiscard]] bool AskPackedRow(size_t row) const;

  // Internal self-consistency beyond the checksums: every packed row
  // satisfies the stored BDD, the stored model count matches, rows are
  // strictly increasing (canonical), padding bits are zero.
  Status VerifyPackedSections() const;

  // Decodes everything into formulas/models over `*vocabulary` (interning
  // the stored names; ids are remapped, so the vocabulary need not be
  // empty).
  StatusOr<KbImage> Materialize(Vocabulary* vocabulary) const;

 private:
  KbArtifact() = default;
  Status DecodeMeta();
  // Word `word` of packed row `row`, decoded little-endian in place.
  uint64_t RowWord(size_t row, size_t word) const;

  ArtifactFile file_;
  ArtifactInfo info_;

  std::vector<std::string> names_;     // stored vocabulary, id order
  std::vector<Var> alphabet_;          // stored var ids, strictly ascending
  size_t rows_ = 0;
  size_t stride_words_ = 0;
  const uint8_t* row_bytes_ = nullptr;

  std::vector<Var> bdd_order_;             // stored var ids, level order
  std::vector<size_t> bdd_level_to_bit_;   // level -> alphabet position
  const uint8_t* bdd_node_bytes_ = nullptr;
  size_t bdd_node_count_ = 0;
  uint32_t bdd_root_ = 0;

  // KBMETA fields needed by Materialize.
  uint32_t operator_id_ = 0;
  uint32_t strategy_ = 0;
  std::vector<uint32_t> initial_roots_;
  std::vector<uint32_t> update_roots_;
  std::vector<uint32_t> folded_theory_roots_;
  uint32_t folded_root_ = 0;
};

}  // namespace revise::artifact

#endif  // REVISE_ARTIFACT_KB_IMAGE_H_
