#include "artifact/checksum.h"

#include <array>

namespace revise::artifact {
namespace {

// Reflected ECMA-182 polynomial (CRC-64/XZ).
constexpr uint64_t kPoly = 0xc96c5795d7870f42ull;

constexpr std::array<uint64_t, 256> MakeTable() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint64_t, 256> kTable = MakeTable();

}  // namespace

uint64_t Crc64Init() { return ~0ull; }

uint64_t Crc64Update(uint64_t state, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    state = kTable[(state ^ bytes[i]) & 0xff] ^ (state >> 8);
  }
  return state;
}

uint64_t Crc64Final(uint64_t state) { return ~state; }

uint64_t Crc64(const void* data, size_t size) {
  return Crc64Final(Crc64Update(Crc64Init(), data, size));
}

}  // namespace revise::artifact
