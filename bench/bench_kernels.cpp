// Microbenchmarks for the revision kernels and the model-enumeration
// cache (no paper table — this is the performance regression harness).
//
//   * Kernel scaling: every model-based operator kernel timed three ways
//     on a Nebel-style worlds instance (mt = one letter of each pair
//     {x_i, y_i}, mp = pair-equal models): scalar Interpretation loops at
//     1 thread (seq_ms), packed bit-matrix kernels at 1 thread
//     (seq_packed_ms) and packed at REVISE_THREADS (par_ms), with a
//     bit-identity check across all three runs.  The headline `speedup`
//     column is the single-thread packed-vs-scalar ratio — honest on any
//     machine; parallel scaling shows up in par_ms only when the manifest
//     records more than one hardware thread.
//   * Enumeration cache: cold vs warm EnumerateModels on the Nebel GFUV
//     formula.  The warm path is a structural-hash lookup and is orders
//     of magnitude faster than re-running the AllSAT loop.
//
// --json writes BENCH_kernels.json with both tables.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hardness/families.h"
#include "kernel/kernels.h"
#include "model/model_set.h"
#include "obs/metrics.h"
#include "revision/formula_based.h"
#include "revision/model_based.h"
#include "solve/model_cache.h"
#include "solve/services.h"
#include "util/parallel.h"

namespace revise {
namespace {

// Nebel-style worlds over 2m letters (x_0, y_0, ..., x_{m-1}, y_{m-1}),
// built directly as bit patterns so the kernel benches need no SAT calls:
//   mt: for every mask, x_i = bit i, y_i = !bit i  (one of each pair);
//   mp: for every mask, x_i = y_i = bit i          (pair-equal).
// Every mt/mp symmetric difference selects exactly one letter per pair,
// so delta(T,P) has 2^m incomparable elements — the worst case for the
// inclusion-minimal sweep.
struct KernelInput {
  Alphabet alphabet;
  ModelSet mt;
  ModelSet mp;
};

KernelInput MakeNebelWorlds(int m) {
  std::vector<Var> vars;
  for (int i = 0; i < 2 * m; ++i) vars.push_back(static_cast<Var>(i));
  const Alphabet alphabet(vars);
  std::vector<Interpretation> mt;
  std::vector<Interpretation> mp;
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    Interpretation one_of_each(alphabet.size());
    Interpretation pair_equal(alphabet.size());
    for (int i = 0; i < m; ++i) {
      const bool bit = (mask >> i) & 1;
      one_of_each.Set(2 * i, bit);
      one_of_each.Set(2 * i + 1, !bit);
      pair_equal.Set(2 * i, bit);
      pair_equal.Set(2 * i + 1, bit);
    }
    mt.push_back(one_of_each);
    mp.push_back(pair_equal);
  }
  return {alphabet, ModelSet(alphabet, std::move(mt)),
          ModelSet(alphabet, std::move(mp))};
}

// Minimum wall time of `reps` runs, in milliseconds.
template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

// Times one kernel row three ways (scalar/1t, packed/1t, packed/default
// threads), checks all three results are bit-identical and appends the
// row.  Restores packed kernels + default threads on exit.
template <typename Result, typename Run>
void MeasureKernelRow(obs::Report* report, const char* name, int m,
                      size_t pairs, const Run& run) {
  Result scalar_result;
  Result packed_result;
  Result par_result;
  kernel::SetPackedKernelsEnabled(false);
  SetParallelThreadsOverride(1);
  const double seq_ms = TimeMs(3, [&] { scalar_result = run(); });
  kernel::SetPackedKernelsEnabled(true);
  const double seq_packed_ms = TimeMs(3, [&] { packed_result = run(); });
  SetParallelThreadsOverride(0);  // default: REVISE_THREADS or hardware
  const double par_ms = TimeMs(3, [&] { par_result = run(); });
  const bool identical =
      scalar_result == packed_result && packed_result == par_result;
  const double speedup = seq_packed_ms > 0 ? seq_ms / seq_packed_ms : 0.0;
  std::printf("%-22s %-4d %10zu %10.2f %14.2f %10.2f %7.2fx %10s\n", name, m,
              pairs, seq_ms, seq_packed_ms, par_ms, speedup,
              identical ? "yes" : "NO");
  report->AddRow("kernel_scaling", {name, m, pairs, seq_ms, seq_packed_ms,
                                    par_ms, speedup, identical});
}

void MeasureKernelScaling(obs::Report* report) {
  bench::Headline("Revision kernels: scalar vs packed vs REVISE_THREADS");
  const size_t parallel_threads = ParallelThreads();
  std::printf(
      "hardware threads: %u, parallel run uses %zu thread(s), "
      "simd path: %s\n",
      std::thread::hardware_concurrency(), parallel_threads,
      kernel::ActiveSimdPath());
  report->AddTable("kernel_scaling",
                   {"kernel", "m", "pairs", "seq_ms", "seq_packed_ms",
                    "par_ms", "speedup", "identical"});
  std::printf("%-22s %-4s %10s %10s %14s %10s %8s %10s\n", "kernel", "m",
              "pairs", "seq ms", "seq packed ms", "par ms", "speedup",
              "identical");

  struct Kernel {
    const char* name;
    int m;
    ModelSet (*run)(const ModelSet&, const ModelSet&);
  };
  const Kernel kernels[] = {
      {"Winslett", 8, WinslettModels},   {"Forbus", 8, ForbusModels},
      {"Satoh", 9, SatohModels},         {"Dalal", 10, DalalModels},
      {"Weber", 9, WeberModels},
  };
  for (const Kernel& kernel : kernels) {
    const KernelInput input = MakeNebelWorlds(kernel.m);
    const size_t pairs = input.mt.size() * input.mp.size();
    MeasureKernelRow<ModelSet>(
        report, kernel.name, kernel.m, pairs,
        [&] { return kernel.run(input.mt, input.mp); });
  }

  // The two global sweeps underneath Satoh/Dalal/Weber, timed directly.
  const KernelInput input = MakeNebelWorlds(10);
  const size_t pairs = input.mt.size() * input.mp.size();
  MeasureKernelRow<std::vector<Interpretation>>(
      report, "GlobalMinimalDiffs", 10, pairs,
      [&] { return GlobalMinimalDiffsOfSets(input.mt, input.mp); });
  MeasureKernelRow<std::optional<size_t>>(
      report, "GlobalMinDistance", 10, pairs,
      [&] { return GlobalMinDistanceOfSets(input.mt, input.mp); });
}

void MeasureEnumerationCache(obs::Report* report) {
  bench::Headline("EnumerateModels: cold AllSAT vs warm cache hit");
  report->AddTable("model_cache", {"m", "models", "cold_ms", "warm_ms",
                                   "speedup", "identical"});
  std::printf("%-4s %8s %12s %12s %10s %10s\n", "m", "models", "cold ms",
              "warm ms", "speedup", "identical");
  for (const int m : {5, 6, 7}) {
    Vocabulary vocabulary;
    const NebelExplosionFamily family(m, &vocabulary);
    const Formula naive = GfuvFormula(family.t, family.p);
    const Alphabet alphabet(
        UnionOfVars(std::vector<Formula>{family.t.AsFormula(), family.p}));
    ModelSet cold_models;
    ModelSet warm_models;
    const double cold_ms = TimeMs(3, [&] {
      ModelCache::Global().Clear();
      cold_models = EnumerateModels(naive, alphabet);
    });
    // The entry survives from the last cold run; every warm run hits.
    const double warm_ms =
        TimeMs(20, [&] { warm_models = EnumerateModels(naive, alphabet); });
    const bool identical = cold_models == warm_models;
    const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
    std::printf("%-4d %8zu %12.3f %12.4f %9.1fx %10s\n", m,
                cold_models.size(), cold_ms, warm_ms, speedup,
                identical ? "yes" : "NO");
    report->AddRow("model_cache", {m, cold_models.size(), cold_ms, warm_ms,
                                   speedup, identical});
  }
  const uint64_t hits =
      obs::Registry::Global().GetCounter("solve.model_cache.hits")->Value();
  const uint64_t misses =
      obs::Registry::Global()
          .GetCounter("solve.model_cache.misses")
          ->Value();
  std::printf("cache counters: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
}

void BM_GlobalMinimalDiffs(benchmark::State& state) {
  const KernelInput input =
      MakeNebelWorlds(static_cast<int>(state.range(0)));
  SetParallelThreadsOverride(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GlobalMinimalDiffsOfSets(input.mt, input.mp));
  }
  SetParallelThreadsOverride(0);
}
BENCHMARK(BM_GlobalMinimalDiffs)
    ->ArgsProduct({{8, 10}, {1, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_DalalKernel(benchmark::State& state) {
  const KernelInput input =
      MakeNebelWorlds(static_cast<int>(state.range(0)));
  SetParallelThreadsOverride(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DalalModels(input.mt, input.mp));
  }
  SetParallelThreadsOverride(0);
}
BENCHMARK(BM_DalalKernel)
    ->ArgsProduct({{8, 10}, {1, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_EnumerateModelsCold(benchmark::State& state) {
  Vocabulary vocabulary;
  const NebelExplosionFamily family(6, &vocabulary);
  const Formula naive = GfuvFormula(family.t, family.p);
  const Alphabet alphabet(
      UnionOfVars(std::vector<Formula>{family.t.AsFormula(), family.p}));
  for (auto _ : state) {
    ModelCache::Global().Clear();
    benchmark::DoNotOptimize(EnumerateModels(naive, alphabet));
  }
}
BENCHMARK(BM_EnumerateModelsCold)->Unit(benchmark::kMillisecond);

void BM_EnumerateModelsWarm(benchmark::State& state) {
  Vocabulary vocabulary;
  const NebelExplosionFamily family(6, &vocabulary);
  const Formula naive = GfuvFormula(family.t, family.p);
  const Alphabet alphabet(
      UnionOfVars(std::vector<Formula>{family.t.AsFormula(), family.p}));
  ModelCache::Global().Clear();
  (void)EnumerateModels(naive, alphabet);  // fill
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateModels(naive, alphabet));
  }
}
BENCHMARK(BM_EnumerateModelsWarm)->Unit(benchmark::kMicrosecond);

void BM_MinimalUnderInclusion(benchmark::State& state) {
  const KernelInput input =
      MakeNebelWorlds(static_cast<int>(state.range(0)));
  std::vector<Interpretation> diffs;
  for (const Interpretation& m : input.mt) {
    for (const Interpretation& n : input.mp) {
      diffs.push_back(m.SymmetricDifference(n));
    }
  }
  for (auto _ : state) {
    std::vector<Interpretation> copy = diffs;
    benchmark::DoNotOptimize(MinimalUnderInclusion(std::move(copy)));
  }
}
BENCHMARK(BM_MinimalUnderInclusion)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_kernels", "BENCH_kernels.json",
                                       &argc, argv);
  // Which ISA path the packed kernels compiled to — timings from
  // different paths are comparable in correctness, not in speed.
  reporter.report().SetMeta(
      "simd_path",
      revise::obs::Json(std::string(revise::kernel::ActiveSimdPath())));
  revise::MeasureKernelScaling(&reporter.report());
  revise::MeasureEnumerationCache(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
