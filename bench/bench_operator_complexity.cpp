// Section 2.2.4: the complexity of query answering T * P |= Q differs
// across operators — Dalal is Delta_2^p[log n]-complete while the others
// are Pi_2^p-hard.  The paper stresses that compactability and complexity
// are related but distinct.
//
// Reproduction of the *shape*: with the best machinery this library has,
// Dalal and Weber queries run through the polynomial compact
// constructions + one entailment check (a bounded number of SAT calls),
// while the remaining operators go through model-set computation.  We
// time query answering per operator across growing n and report the
// crossover.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "compact/single_revision.h"
#include "hardness/random_instances.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

struct Instance {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  Theory t;
  Formula p;
  Formula q;
};

void BuildInstance(int n, uint64_t seed, Instance* out) {
  for (int i = 0; i < n; ++i) {
    out->vars.push_back(out->vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(seed);
  // The theory is a SET of clauses (formula-based operators do real
  // maximal-consistent-subset work on it).
  Theory t;
  do {
    t = Random3Cnf(out->vars, static_cast<size_t>(n * 2.2), &rng);
  } while (!IsSatisfiable(t.AsFormula()));
  out->t = t;
  do {
    out->p = RandomClauses(out->vars, static_cast<size_t>(n * 2.2), 3, &rng);
  } while (!IsSatisfiable(out->p));
  out->q = RandomClauses(out->vars, 2, 3, &rng);
}

// Query answering for Dalal/Weber through the compact route.
bool AskCompact(OperatorId id, Instance* instance) {
  const Formula compact =
      id == OperatorId::kDalal
          ? DalalCompact(instance->t.AsFormula(), instance->p,
                         &instance->vocabulary)
          : WeberCompact(instance->t.AsFormula(), instance->p,
                         &instance->vocabulary);
  return Entails(compact, instance->q);
}

void MeasureCrossover(obs::Report* report) {
  bench::Headline(
      "Section 2.2.4 shape: wall time of T * P |= Q per operator "
      "(compact route for Dalal/Weber, model-set route otherwise)");
  std::printf("%-4s", "n");
  for (const RevisionOperator* op : AllOperators()) {
    std::printf(" %10s", std::string(op->name()).c_str());
  }
  std::printf("   (milliseconds; '-' = skipped, too slow)\n");
  report->AddTable("query_crossover", {"n", "operator", "milliseconds"});
  for (int n : {6, 8, 10, 12, 16, 24}) {
    std::printf("%-4d", n);
    for (const RevisionOperator* op : AllOperators()) {
      // The enumeration route becomes impractical quickly; cap it.
      const bool enumeration_route = op->id() != OperatorId::kDalal &&
                                     op->id() != OperatorId::kWeber;
      if (enumeration_route && n > 12) {
        std::printf(" %10s", "-");
        report->AddRow("query_crossover",
                       {n, std::string(op->name()), nullptr});
        continue;
      }
      Instance instance;
      BuildInstance(n, 1000 + n, &instance);
      const auto start = std::chrono::steady_clock::now();
      bool answer;
      if (enumeration_route) {
        answer = op->Entails(instance.t, instance.p, instance.q);
      } else {
        answer = AskCompact(op->id(), &instance);
      }
      benchmark::DoNotOptimize(answer);
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      std::printf(" %10.2f", elapsed);
      report->AddRow("query_crossover",
                     {n, std::string(op->name()), elapsed});
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected shape: the Dalal/Weber columns stay flat (their query\n"
      "answering runs through polynomial-size representations), the rest\n"
      "grow with the model count — matching the Delta_2^p[log] vs "
      "Pi_2^p-hard split.\n");
}

void BM_EntailsViaCompactDalal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance instance;
  BuildInstance(n, 7, &instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AskCompact(OperatorId::kDalal, &instance));
  }
}
BENCHMARK(BM_EntailsViaCompactDalal)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_EntailsViaEnumerationWinslett(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Instance instance;
  BuildInstance(n, 8, &instance);
  const RevisionOperator* op = OperatorById(OperatorId::kWinslett);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        op->Entails(instance.t, instance.p, instance.q));
  }
}
BENCHMARK(BM_EntailsViaEnumerationWinslett)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_operator_complexity",
                                       "BENCH_operator_complexity.json",
                                       &argc, argv);
  revise::MeasureCrossover(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
