// Table 1, "General case" columns: is a single revision T * P compactable
// when |P| is unbounded?
//
// YES entries (constructive):
//   * Dalal / query equivalence  (Theorem 3.4): measure |T'| for the
//     construction T[X/Y] ∧ P ∧ EXA(k,X,Y,W) against |T|+|P| while
//     verifying query equivalence on small instances.
//   * Weber / query equivalence  (Theorem 3.5): same for T[Omega/Z] ∧ P.
//   * WIDTIO (both criteria): |T'| <= |T| + |P| by construction.
//
// NO entries (reduction-based):
//   * Theorem 3.1 (GFUV, and via Thm 3.2 Winslett/Borgida/Satoh):
//     exhaustively decide every pi in 3-SAT_3 through the single advice
//     T_3 *_GFUV P_3 and count agreement with the SAT solver.
//   * Theorem 3.3 (Forbus): the same via model checking M_pi.
//   * Theorem 3.6 (Dalal/Weber, LOGICAL equivalence): the same via C_pi.
//
// The printed verdict table mirrors the paper's Table 1.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "compact/single_revision.h"
#include "hardness/families.h"
#include "hardness/random_instances.h"
#include "revision/formula_based.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/parallel.h"
#include "util/random.h"

namespace revise {
namespace {

// Measures the Theorem 3.4 / 3.5 construction sizes on growing random
// instances (T a random 3-CNF over n letters, P a random 3-CNF over the
// same letters — |P| unbounded, it grows with n).
void MeasureCompactSizes(obs::Report* report) {
  bench::Headline(
      "Table 1 general/query YES entries: construction sizes (Thm 3.4/3.5)");
  report->AddTable("compact_sizes",
                   {"n", "t_size", "p_size", "dalal_size", "weber_size"});
  std::printf("%-6s %10s %10s %14s %14s\n", "n", "|T|", "|P|",
              "|Dalal T'|", "|Weber T'|");
  // Each n is an independent instance (own vocabulary, seed 100 + n), so
  // the sweep runs on the process thread pool (REVISE_THREADS) and the
  // rows are emitted sequentially in n-order afterwards.
  struct SizeRow {
    int n;
    uint64_t t_size;
    uint64_t p_size;
    uint64_t dalal_size;
    uint64_t weber_size;
  };
  const std::vector<int> ns = {6, 9, 12, 15, 18, 24, 30};
  const std::vector<std::vector<SizeRow>> row_shards =
      ParallelMapRanges<std::vector<SizeRow>>(
          ns.size(), 1, [&](size_t begin, size_t end) {
            std::vector<SizeRow> shard;
            for (size_t i = begin; i < end; ++i) {
              const int n = ns[i];
              Vocabulary vocabulary;
              std::vector<Var> vars;
              for (int j = 0; j < n; ++j) {
                vars.push_back(vocabulary.Intern("x" + std::to_string(j)));
              }
              Rng rng(100 + n);
              Formula t;
              Formula p;
              do {
                t = RandomClauses(vars, static_cast<size_t>(n * 1.5), 3,
                                  &rng);
              } while (!IsSatisfiable(t));
              do {
                p = RandomClauses(vars, static_cast<size_t>(n * 1.5), 3,
                                  &rng);
              } while (!IsSatisfiable(p));
              const Formula dalal = DalalCompact(t, p, &vocabulary);
              const Formula weber = WeberCompact(t, p, &vocabulary);
              shard.push_back({n, t.VarOccurrences(), p.VarOccurrences(),
                               dalal.VarOccurrences(),
                               weber.VarOccurrences()});
            }
            return shard;
          });
  std::vector<uint64_t> dalal_sizes;
  std::vector<uint64_t> weber_sizes;
  for (const std::vector<SizeRow>& shard : row_shards) {
    for (const SizeRow& row : shard) {
      dalal_sizes.push_back(row.dalal_size);
      weber_sizes.push_back(row.weber_size);
      std::printf("%-6d %10llu %10llu %14llu %14llu\n", row.n,
                  static_cast<unsigned long long>(row.t_size),
                  static_cast<unsigned long long>(row.p_size),
                  static_cast<unsigned long long>(row.dalal_size),
                  static_cast<unsigned long long>(row.weber_size));
      report->AddRow("compact_sizes", {row.n, row.t_size, row.p_size,
                                       row.dalal_size, row.weber_size});
    }
  }
  const std::string dalal_verdict = bench::GrowthVerdict(dalal_sizes);
  const std::string weber_verdict = bench::GrowthVerdict(weber_sizes);
  std::printf("growth: Dalal %s, Weber %s (paper: both polynomial)\n",
              dalal_verdict.c_str(), weber_verdict.c_str());
  report->AddSeries("dalal_compact_size",
                    std::vector<double>(dalal_sizes.begin(), dalal_sizes.end()),
                    dalal_verdict);
  report->AddSeries("weber_compact_size",
                    std::vector<double>(weber_sizes.begin(), weber_sizes.end()),
                    weber_verdict);

  // A structured family where k_{T,P} = n/2 grows with n, exercising the
  // EXA circuit's O(n*k) term: T = x1 & ... & xn, P = !x1 & ... & !x_{n/2}.
  std::printf("\nstructured family with k = n/2 (EXA dominates):\n");
  std::printf("%-6s %6s %14s %14s\n", "n", "k", "|Dalal T'|",
              "|Weber T'|");
  report->AddTable("structured_k_half",
                   {"n", "k", "dalal_size", "weber_size"});
  for (int n : {8, 12, 16, 24, 32}) {
    Vocabulary vocabulary;
    std::vector<Formula> pos;
    std::vector<Formula> neg;
    for (int i = 0; i < n; ++i) {
      const Formula v =
          Formula::Variable(vocabulary.Intern("x" + std::to_string(i)));
      pos.push_back(v);
      if (i < n / 2) neg.push_back(Formula::Not(v));
    }
    const Formula t = ConjoinAll(pos);
    const Formula p = ConjoinAll(neg);
    const Formula dalal = DalalCompact(t, p, &vocabulary);
    const Formula weber = WeberCompact(t, p, &vocabulary);
    std::printf("%-6d %6d %14llu %14llu\n", n, n / 2,
                static_cast<unsigned long long>(dalal.VarOccurrences()),
                static_cast<unsigned long long>(weber.VarOccurrences()));
    report->AddRow("structured_k_half",
                   {n, n / 2, dalal.VarOccurrences(), weber.VarOccurrences()});
  }
}

// Exhaustively runs the Theorem 3.1 reduction over ALL 2^8 instances of
// 3-SAT_3 and reports agreement with direct SAT solving.
void ValidateTheorem31(obs::Report* report) {
  bench::Headline(
      "Table 1 general NO entries: Theorem 3.1 reduction (GFUV), exhaustive "
      "over 3-SAT_3");
  Vocabulary vocabulary;
  const Theorem31Family family(3, &vocabulary);
  const Formula advice = GfuvFormula(family.t, family.p);
  std::printf("advice = T_3 *_GFUV P_3, naive size %llu\n",
              static_cast<unsigned long long>(advice.VarOccurrences()));
  int agree = 0;
  int total = 0;
  for (uint64_t mask = 0; mask < 256; ++mask) {
    std::vector<size_t> pi;
    for (size_t j = 0; j < 8; ++j) {
      if ((mask >> j) & 1) pi.push_back(j);
    }
    const bool satisfiable =
        IsSatisfiable(family.tau.InstanceFormula(pi));
    const bool entailed = Entails(advice, family.Query(pi));
    ++total;
    if (satisfiable == entailed) ++agree;
  }
  std::printf("instances decided correctly through the revision: %d/%d\n",
              agree, total);
  report->AddRow("reductions", {"thm3.1_gfuv", agree, total});
}

void ValidateTheorem33(obs::Report* report) {
  bench::Headline(
      "Theorem 3.3 reduction (Forbus, model checking), exhaustive over "
      "3-SAT_3");
  Vocabulary vocabulary;
  const Theorem33Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  const ModelSet revised = OperatorById(OperatorId::kForbus)
                               ->ReviseModels(family.t, family.p, alphabet);
  int agree = 0;
  int total = 0;
  for (uint64_t mask = 0; mask < 256; ++mask) {
    std::vector<size_t> pi;
    for (size_t j = 0; j < 8; ++j) {
      if ((mask >> j) & 1) pi.push_back(j);
    }
    const bool satisfiable =
        IsSatisfiable(family.tau.InstanceFormula(pi));
    const bool is_model = revised.Contains(family.MPi(pi, alphabet));
    ++total;
    if (satisfiable == !is_model) ++agree;
  }
  std::printf("instances decided correctly: %d/%d\n", agree, total);
  report->AddRow("reductions", {"thm3.3_forbus", agree, total});
}

void ValidateTheorem36(obs::Report* report) {
  bench::Headline(
      "Theorem 3.6 reduction (Dalal & Weber, LOGICAL equivalence), "
      "exhaustive over 3-SAT_3");
  Vocabulary vocabulary;
  const Theorem36Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  const ModelSet dalal = OperatorById(OperatorId::kDalal)
                             ->ReviseModels(family.t, family.p, alphabet);
  const ModelSet weber = OperatorById(OperatorId::kWeber)
                             ->ReviseModels(family.t, family.p, alphabet);
  int agree_d = 0;
  int agree_w = 0;
  int total = 0;
  for (uint64_t mask = 0; mask < 256; ++mask) {
    std::vector<size_t> pi;
    for (size_t j = 0; j < 8; ++j) {
      if ((mask >> j) & 1) pi.push_back(j);
    }
    const bool satisfiable =
        IsSatisfiable(family.tau.InstanceFormula(pi));
    const Interpretation c_pi = family.CPi(pi, alphabet);
    ++total;
    if (satisfiable == dalal.Contains(c_pi)) ++agree_d;
    if (satisfiable == weber.Contains(c_pi)) ++agree_w;
  }
  std::printf("Dalal: %d/%d correct;  Weber: %d/%d correct\n", agree_d,
              total, agree_w, total);
  report->AddRow("reductions", {"thm3.6_dalal", agree_d, total});
  report->AddRow("reductions", {"thm3.6_weber", agree_w, total});
}

void PrintVerdictTable(obs::Report* report) {
  bench::Headline("Reproduced Table 1 (general case)");
  std::printf("%-12s %-22s %-22s\n", "formalism", "logical equiv. (2)",
              "query equiv. (1)");
  const struct Row {
    const char* name;
    const char* logical;
    const char* query;
  } rows[] = {
      {"GFUV,Nebel", "NO  (Thm 3.7 reduc.)", "NO  (Thm 3.1 reduc.)"},
      {"Winslett", "NO  (Thm 3.7 reduc.)", "NO  (Thm 3.2 reduc.)"},
      {"Borgida", "NO  (Thm 3.7 reduc.)", "NO  (Thm 3.2 reduc.)"},
      {"Forbus", "NO  (Thm 3.7 reduc.)", "NO  (Thm 3.3 reduc.)"},
      {"Satoh", "NO  (Thm 3.7 reduc.)", "NO  (Thm 3.2 reduc.)"},
      {"Dalal", "NO  (Thm 3.6 reduc.)", "YES (Thm 3.4 measured)"},
      {"Weber", "NO  (Thm 3.6 reduc.)", "YES (Thm 3.5 measured)"},
      {"WIDTIO", "YES (by construction)", "YES (by construction)"},
  };
  report->AddTable("table1_general",
                   {"formalism", "logical_equivalence", "query_equivalence"});
  for (const Row& row : rows) {
    std::printf("%-12s %-22s %-22s\n", row.name, row.logical, row.query);
    report->AddRow("table1_general", {row.name, row.logical, row.query});
  }
}

void BM_DalalCompact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(5);
  Formula t = RandomClauses(vars, static_cast<size_t>(n * 1.5), 3, &rng);
  Formula p = RandomClauses(vars, static_cast<size_t>(n * 1.5), 3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DalalCompact(t, p, &vocabulary));
  }
}
BENCHMARK(BM_DalalCompact)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_WeberCompact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(6);
  Formula t = RandomClauses(vars, static_cast<size_t>(n * 1.5), 3, &rng);
  Formula p = RandomClauses(vars, static_cast<size_t>(n * 1.5), 3, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeberCompact(t, p, &vocabulary));
  }
}
BENCHMARK(BM_WeberCompact)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_GfuvNaive(benchmark::State& state) {
  // The naive explicit representation on the Theorem 3.1 gadget.
  Vocabulary vocabulary;
  const Theorem31Family family(3, &vocabulary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GfuvFormula(family.t, family.p));
  }
}
BENCHMARK(BM_GfuvNaive)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter(
      "bench_table1_general", "BENCH_table1_general.json", &argc, argv);
  reporter.report().AddTable("reductions", {"reduction", "agree", "total"});
  revise::MeasureCompactSizes(&reporter.report());
  revise::ValidateTheorem31(&reporter.report());
  revise::ValidateTheorem33(&reporter.report());
  revise::ValidateTheorem36(&reporter.report());
  revise::PrintVerdictTable(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
