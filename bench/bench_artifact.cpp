// Cold-start cost of a compiled .rkb artifact (src/artifact/) against
// rebuilding the same knowledge base from its text sources.
//
// The rebuild path is what every session paid before the artifact layer:
// parse the theory, replay the update log, enumerate the revised models.
// The artifact path validates checksums, reads the packed rows (in place
// when mmap alignment allows), and reconstructs the same state.  The
// `cold_start` table records both, per Table-1-style corpus size; the
// acceptance bar is load >= 10x faster than rebuild at the larger sizes.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "core/io.h"
#include "core/kb_artifact.h"
#include "core/knowledge_base.h"
#include "hardness/random_instances.h"
#include "solve/model_cache.h"
#include "solve/services.h"
#include "util/check.h"
#include "util/random.h"

namespace revise {
namespace {

// One corpus: a satisfiable random 3-CNF theory over n letters plus a
// satisfiable random 3-CNF update, both written to disk like a user's
// sources, with the compiled artifact alongside.
struct Corpus {
  int n = 0;
  std::string theory_path;
  std::string update_path;
  std::string artifact_path;
};

Formula SatisfiableClauses(const std::vector<Var>& vars, size_t clauses,
                           Rng* rng) {
  Formula f;
  do {
    f = RandomClauses(vars, clauses, 3, rng);
  } while (!IsSatisfiable(f));
  return f;
}

Corpus BuildCorpus(int n, const std::filesystem::path& dir) {
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int j = 0; j < n; ++j) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(j)));
  }
  Rng rng(100 + n);
  const Formula t =
      SatisfiableClauses(vars, static_cast<size_t>(n * 1.5), &rng);
  const Formula p =
      SatisfiableClauses(vars, static_cast<size_t>(n * 1.5), &rng);

  Corpus corpus;
  corpus.n = n;
  const std::string stem = "cold_start_" + std::to_string(n);
  corpus.theory_path = (dir / (stem + ".theory")).string();
  corpus.update_path = (dir / (stem + ".revise")).string();
  corpus.artifact_path = (dir / (stem + ".rkb")).string();
  REVISE_CHECK_OK(SaveTheoryToFile(Theory({t}), vocabulary, corpus.theory_path));
  REVISE_CHECK_OK(SaveTheoryToFile(Theory({p}), vocabulary, corpus.update_path));

  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      Theory({t}), OperatorById(OperatorId::kDalal),
      RevisionStrategy::kDelayed, &vocabulary);
  REVISE_CHECK_OK(kb.status());
  kb->Revise(p);
  kb->Models();  // compile the canonical model set into the artifact
  REVISE_CHECK_OK(SaveKnowledgeBaseArtifact(*kb, corpus.artifact_path));
  return corpus;
}

// The pre-artifact cold start: parse text, replay, enumerate.
size_t RebuildFromText(const Corpus& corpus) {
  Vocabulary vocabulary;
  StatusOr<Theory> theory =
      LoadTheoryFromFile(corpus.theory_path, &vocabulary);
  REVISE_CHECK_OK(theory.status());
  StatusOr<Theory> updates =
      LoadTheoryFromFile(corpus.update_path, &vocabulary);
  REVISE_CHECK_OK(updates.status());
  StatusOr<KnowledgeBase> kb = KnowledgeBase::Create(
      *std::move(theory), OperatorById(OperatorId::kDalal),
      RevisionStrategy::kDelayed, &vocabulary);
  REVISE_CHECK_OK(kb.status());
  for (const Formula& p : updates->formulas()) {
    kb->Revise(p);
  }
  return kb->Models().size();
}

// The artifact cold start: validate, load, hand back the same state.
size_t LoadFromArtifact(const Corpus& corpus) {
  Vocabulary vocabulary;
  StatusOr<KnowledgeBase> kb =
      LoadKnowledgeBaseArtifact(corpus.artifact_path, &vocabulary);
  REVISE_CHECK_OK(kb.status());
  return kb->Models().size();
}

double MedianMs(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

template <typename Fn>
double TimeColdMs(Fn&& fn, int repetitions) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    // Every repetition is a genuine cold start: the global model cache is
    // what the delayed strategy would otherwise warm across runs.
    ModelCache::Global().Clear();
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return MedianMs(samples);
}

void MeasureColdStart(obs::Report* report) {
  bench::Headline(
      "Artifact cold start: .rkb load vs rebuild from text sources");
  report->AddTable("cold_start", {"n", "models", "rebuild_ms", "load_ms",
                                  "speedup"});
  std::printf("%-6s %8s %14s %14s %10s\n", "n", "models", "rebuild (ms)",
              "load (ms)", "speedup");
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("revise_bench_artifact_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  // Rebuild cost grows roughly 10x per two letters (the delayed Dalal
  // sweep), so the larger corpora get one timed repetition; the loads are
  // cheap and always get nine.
  for (int n : {6, 8, 10, 12, 14}) {
    const Corpus corpus = BuildCorpus(n, dir);
    const size_t rebuilt = RebuildFromText(corpus);
    const size_t loaded = LoadFromArtifact(corpus);
    if (rebuilt != loaded) {
      std::fprintf(stderr, "cold start mismatch at n=%d: %zu vs %zu\n", n,
                   rebuilt, loaded);
      std::abort();
    }
    const double rebuild_ms =
        TimeColdMs([&] { return RebuildFromText(corpus); }, n <= 10 ? 5 : 1);
    const double load_ms =
        TimeColdMs([&] { return LoadFromArtifact(corpus); }, 9);
    const double speedup = load_ms > 0 ? rebuild_ms / load_ms : 0;
    std::printf("%-6d %8zu %14.3f %14.3f %9.1fx\n", n, loaded, rebuild_ms,
                load_ms, speedup);
    report->AddRow("cold_start",
                   {n, static_cast<uint64_t>(loaded), rebuild_ms, load_ms,
                    speedup});
  }
  std::filesystem::remove_all(dir);
}

void BM_ArtifactLoad(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("revise_bm_artifact_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const Corpus corpus = BuildCorpus(n, dir);
  for (auto _ : state) {
    ModelCache::Global().Clear();
    benchmark::DoNotOptimize(LoadFromArtifact(corpus));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ArtifactLoad)->Arg(9)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_RebuildFromText(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("revise_bm_rebuild_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const Corpus corpus = BuildCorpus(n, dir);
  for (auto _ : state) {
    ModelCache::Global().Clear();
    benchmark::DoNotOptimize(RebuildFromText(corpus));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RebuildFromText)->Arg(6)->Arg(9)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter(
      "bench_artifact", "BENCH_artifact.json", &argc, argv);
  revise::MeasureColdStart(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
