// Ablations and size measurements for the compact-representation building
// blocks called out in DESIGN.md:
//
//   * EXA(k, X, Y, W): measured size vs (n, k) — the paper sketches an
//     O(n log n) sorting-network circuit; we use an O(n*k) sequential
//     counter.  Both are polynomial; this prints the actual constants.
//   * bounded formulas (5)-(9): size vs k = |V(P)| at fixed |T| — the
//     constant factor is exponential in k (why "bounded" matters).
//   * candidate path vs full enumeration for ReviseModels (the
//     Proposition 2.1 fast path).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "compact/bounded_revision.h"
#include "compact/circuits.h"
#include "hardness/random_instances.h"
#include "revision/candidates.h"
#include "revision/model_based.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

void MeasureExaSizes(obs::Report* report) {
  bench::Headline("EXA(k, X, Y, W) sizes (variable occurrences)");
  report->AddTable("exa_sizes", {"n", "k", "size"});
  std::printf("%-6s", "n\\k");
  for (int k : {1, 2, 4, 8, 16}) std::printf(" %10d", k);
  std::printf("\n");
  for (int n : {8, 16, 32, 64}) {
    std::printf("%-6d", n);
    for (int k : {1, 2, 4, 8, 16}) {
      Vocabulary vocabulary;
      std::vector<Var> x;
      std::vector<Var> y;
      for (int i = 0; i < n; ++i) {
        x.push_back(vocabulary.Fresh("x"));
        y.push_back(vocabulary.Fresh("y"));
      }
      const Formula exa =
          ExaFormula(static_cast<size_t>(k), x, y, &vocabulary);
      std::printf(" %10llu",
                  static_cast<unsigned long long>(exa.VarOccurrences()));
      report->AddRow("exa_sizes", {n, k, exa.VarOccurrences()});
    }
    std::printf("\n");
  }
  std::printf("(O(n*k) as built; polynomial, as Theorem 3.4 requires)\n");
}

void MeasureBoundedConstantFactor(obs::Report* report) {
  bench::Headline(
      "bounded formulas (5)-(9): size vs k = |V(P)| at |T| fixed (n = 24 "
      "letters) — the 2^k constant factor");
  Vocabulary vocabulary;
  std::vector<Formula> letters;
  std::vector<Var> vars;
  for (int i = 0; i < 24; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
    letters.push_back(Formula::Variable(vars.back()));
  }
  const Formula t = ConjoinAll(letters);
  std::printf("%-4s %14s %14s %14s %14s %14s\n", "k", "Winslett(5)",
              "Forbus(6)", "Satoh(7)", "Dalal(8)", "Weber(9)");
  report->AddTable("bounded_constant_factor",
                   {"k", "winslett", "forbus", "satoh", "dalal", "weber"});
  std::vector<uint64_t> winslett_sizes;
  for (int k = 1; k <= 5; ++k) {
    std::vector<Formula> negated;
    for (int i = 0; i < k; ++i) {
      negated.push_back(Formula::Not(letters[i]));
    }
    const Formula p = DisjoinAll(negated);
    const uint64_t winslett = WinslettBounded(t, p).VarOccurrences();
    const uint64_t forbus = ForbusBounded(t, p).VarOccurrences();
    const uint64_t satoh = SatohBounded(t, p).VarOccurrences();
    const uint64_t dalal = DalalBounded(t, p).VarOccurrences();
    const uint64_t weber = WeberBounded(t, p).VarOccurrences();
    winslett_sizes.push_back(winslett);
    std::printf("%-4d %14llu %14llu %14llu %14llu %14llu\n", k,
                static_cast<unsigned long long>(winslett),
                static_cast<unsigned long long>(forbus),
                static_cast<unsigned long long>(satoh),
                static_cast<unsigned long long>(dalal),
                static_cast<unsigned long long>(weber));
    report->AddRow("bounded_constant_factor",
                   {k, winslett, forbus, satoh, dalal, weber});
  }
  report->AddSeries(
      "winslett_bounded_size",
      std::vector<double>(winslett_sizes.begin(), winslett_sizes.end()),
      bench::GrowthVerdict(winslett_sizes));
}

void MeasureCandidateAblation(obs::Report* report) {
  bench::Headline(
      "ablation: candidate path (Prop 2.1) vs full M(P) enumeration for "
      "Winslett, |V(P)| = 2, growing full alphabet");
  std::printf("%-4s %16s %16s\n", "n", "candidates (ms)",
              "enumeration (ms)");
  report->AddTable("candidate_ablation",
                   {"n", "candidates_ms", "enumeration_ms"});
  for (int n : {8, 12, 16, 20}) {
    Vocabulary vocabulary;
    std::vector<Var> vars;
    std::vector<Formula> letters;
    for (int i = 0; i < n; ++i) {
      vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
      letters.push_back(Formula::Variable(vars.back()));
    }
    const Alphabet alphabet(vars);
    const Formula t = ConjoinAll(letters);
    const Formula p = Formula::Or(Formula::Not(letters[0]),
                                  Formula::Not(letters[1]));
    const ModelSet mt = EnumerateModels(t, alphabet);
    auto time_ms = [](auto&& fn) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
    const double candidate_ms = time_ms([&] {
      benchmark::DoNotOptimize(
          ReviseSetByFormula(OperatorId::kWinslett, mt, p));
    });
    double enumeration_ms = -1;
    if (n <= 16) {
      enumeration_ms = time_ms([&] {
        const ModelSet mp = EnumerateModels(p, alphabet);
        benchmark::DoNotOptimize(WinslettModels(mt, mp));
      });
    }
    if (enumeration_ms < 0) {
      std::printf("%-4d %16.3f %16s\n", n, candidate_ms, "(skipped)");
      report->AddRow("candidate_ablation", {n, candidate_ms, nullptr});
    } else {
      std::printf("%-4d %16.3f %16.3f\n", n, candidate_ms,
                  enumeration_ms);
      report->AddRow("candidate_ablation",
                     {n, candidate_ms, enumeration_ms});
    }
  }
  std::printf("(enumeration is exponential in n; candidates in |V(P)|)\n");
}

void BM_ExaConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Vocabulary vocabulary;
    std::vector<Var> x;
    std::vector<Var> y;
    for (int i = 0; i < n; ++i) {
      x.push_back(vocabulary.Fresh("x"));
      y.push_back(vocabulary.Fresh("y"));
    }
    benchmark::DoNotOptimize(
        ExaFormula(static_cast<size_t>(n / 2), x, y, &vocabulary));
  }
}
BENCHMARK(BM_ExaConstruction)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_CandidateRevision(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  std::vector<Formula> letters;
  for (int i = 0; i < n; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
    letters.push_back(Formula::Variable(vars.back()));
  }
  const Alphabet alphabet(vars);
  const ModelSet mt = EnumerateModels(ConjoinAll(letters), alphabet);
  const Formula p = Formula::Or(Formula::Not(letters[0]),
                                Formula::Not(letters[1]));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ReviseSetByFormula(OperatorId::kDalal, mt, p));
  }
}
BENCHMARK(BM_CandidateRevision)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_compact_constructions",
                                       "BENCH_compact_constructions.json",
                                       &argc, argv);
  revise::MeasureExaSizes(&reporter.report());
  revise::MeasureBoundedConstantFactor(&reporter.report());
  revise::MeasureCandidateAblation(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
