// Substrate benchmark: the from-scratch CDCL solver on random 3-SAT
// around the phase transition and on pigeonhole instances.  Everything in
// librevise (operator semantics, compact-representation parameters,
// equivalence checks) bottoms out in this solver.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "sat/literal.h"
#include "sat/solver.h"
#include "util/random.h"

namespace revise::sat {
namespace {

std::vector<std::vector<Lit>> Random3SatClauses(int num_vars,
                                                double ratio, Rng* rng) {
  std::vector<std::vector<Lit>> clauses;
  const int num_clauses = static_cast<int>(num_vars * ratio);
  for (int c = 0; c < num_clauses; ++c) {
    int a = static_cast<int>(rng->Below(num_vars));
    int b = static_cast<int>(rng->Below(num_vars));
    int d = static_cast<int>(rng->Below(num_vars));
    while (b == a) b = static_cast<int>(rng->Below(num_vars));
    while (d == a || d == b) d = static_cast<int>(rng->Below(num_vars));
    clauses.push_back({MakeLit(a, rng->Chance(0.5)),
                       MakeLit(b, rng->Chance(0.5)),
                       MakeLit(d, rng->Chance(0.5))});
  }
  return clauses;
}

void PrintPhaseTransitionSweep(revise::obs::Report* report) {
  revise::bench::Headline(
      "CDCL solver on random 3-SAT (fraction satisfiable across the "
      "clause/variable ratio; n = 100, 40 instances per point)");
  std::printf("%-8s %12s %12s %14s\n", "ratio", "sat frac", "avg confl",
              "avg time (ms)");
  report->AddTable("phase_transition",
                   {"ratio", "sat_fraction", "avg_conflicts", "avg_ms"});
  for (double ratio : {3.0, 3.8, 4.0, 4.2, 4.4, 4.6, 5.0, 5.5}) {
    Rng rng(static_cast<uint64_t>(ratio * 1000));
    int sat_count = 0;
    uint64_t conflicts = 0;
    double total_ms = 0;
    const int kInstances = 40;
    for (int i = 0; i < kInstances; ++i) {
      Solver solver;
      solver.EnsureVarCount(100);
      for (auto& clause : Random3SatClauses(100, ratio, &rng)) {
        Solver::LatchConflict(solver.AddClause(std::move(clause)));
      }
      const auto start = std::chrono::steady_clock::now();
      if (solver.Solve() == Solver::Result::kSat) ++sat_count;
      total_ms += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      conflicts += solver.stats().conflicts;
    }
    std::printf("%-8.1f %12.2f %12llu %14.3f\n", ratio,
                static_cast<double>(sat_count) / kInstances,
                static_cast<unsigned long long>(conflicts / kInstances),
                total_ms / kInstances);
    report->AddRow("phase_transition",
                   {ratio, static_cast<double>(sat_count) / kInstances,
                    conflicts / kInstances, total_ms / kInstances});
  }
  std::printf("(the satisfiable fraction should cross 0.5 near the "
              "classic ratio ~4.27)\n");
}

void BM_Random3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(99);
  const auto clauses = Random3SatClauses(n, ratio, &rng);
  for (auto _ : state) {
    Solver solver;
    solver.EnsureVarCount(n);
    for (const auto& clause : clauses) {
      Solver::LatchConflict(solver.AddClause(clause));
    }
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetLabel("n=" + std::to_string(n) +
                 " ratio=" + std::to_string(ratio));
}
BENCHMARK(BM_Random3Sat)
    ->Args({100, 380})
    ->Args({100, 427})
    ->Args({150, 427})
    ->Args({200, 427})
    ->Unit(benchmark::kMillisecond);

void BM_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  const int pigeons = holes + 1;
  for (auto _ : state) {
    Solver solver;
    solver.EnsureVarCount(pigeons * holes);
    auto var = [&](int p, int h) { return p * holes + h; };
    for (int p = 0; p < pigeons; ++p) {
      std::vector<Lit> clause;
      for (int h = 0; h < holes; ++h) clause.push_back(PosLit(var(p, h)));
      Solver::LatchConflict(solver.AddClause(std::move(clause)));
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          Solver::LatchConflict(
              solver.AddClause({NegLit(var(p1, h)), NegLit(var(p2, h))}));
        }
      }
    }
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_Pigeonhole)->Arg(5)->Arg(6)->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalAssumptions(benchmark::State& state) {
  // Assumption-based solving, the pattern behind k_{T,P} tightening.
  const int n = 60;
  Rng rng(123);
  Solver solver;
  solver.EnsureVarCount(n);
  for (auto& clause : Random3SatClauses(n, 3.5, &rng)) {
    Solver::LatchConflict(solver.AddClause(std::move(clause)));
  }
  for (auto _ : state) {
    const Lit assumption =
        MakeLit(static_cast<int>(rng.Below(n)), rng.Chance(0.5));
    benchmark::DoNotOptimize(solver.SolveAssuming({assumption}));
  }
}
BENCHMARK(BM_IncrementalAssumptions)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace revise::sat

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_sat_solver",
                                       "BENCH_sat_solver.json", &argc, argv);
  revise::sat::PrintPhaseTransitionSweep(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
