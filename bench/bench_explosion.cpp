// Section 3.1's explicit-representation explosions:
//
//   * Nebel's family T1/P1: |W(T1,P1)| = 2^m possible worlds, so the naive
//     GFUV representation explodes — yet the revision is logically
//     equivalent to P1 itself (exact two-level minimization confirms it),
//     illustrating why the paper needs the advice argument rather than a
//     single family.
//   * Winslett's chain family T2/P2: the same explosion with |P2| = 1.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hardness/families.h"
#include "minimize/quine_mccluskey.h"
#include "revision/formula_based.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/parallel.h"

namespace revise {
namespace {

// One reproduced row of the Nebel-family table, computed independently of
// the others so the per-m sweep can run on the process thread pool.
struct NebelRow {
  int m = 0;
  uint64_t input_size = 0;
  size_t worlds = 0;
  uint64_t naive_size = 0;
  std::string minimal;
};

NebelRow ComputeNebelRow(int m) {
  NebelRow row;
  row.m = m;
  Vocabulary vocabulary;
  const NebelExplosionFamily family(m, &vocabulary);
  const auto worlds = MaximalConsistentSubsets(family.t, family.p);
  const Formula naive = GfuvFormula(family.t, family.p);
  row.input_size = family.t.VarOccurrences() + family.p.VarOccurrences();
  row.worlds = worlds.size();
  row.naive_size = naive.VarOccurrences();
  row.minimal = "-";
  if (2 * m <= 12) {
    const Alphabet alphabet(
        UnionOfVars(std::vector<Formula>{family.t.AsFormula(), family.p}));
    const ModelSet models = EnumerateModels(naive, alphabet);
    row.minimal = std::to_string(MinimalTwoLevelSize(models));
  }
  return row;
}

void MeasureNebel(obs::Report* report) {
  bench::Headline("Nebel's family: T = {x_i, y_i}, P = AND(x_i ^ y_i)");
  report->AddTable("nebel_family",
                   {"m", "input_size", "worlds", "naive_gfuv_size",
                    "qm_minimal_size"});
  std::printf("%-4s %10s %12s %16s %16s\n", "m", "|T|+|P|", "|W(T,P)|",
              "naive GFUV size", "QM-minimal size");
  // Rows are independent, so compute them on the pool (REVISE_THREADS)
  // and emit sequentially in m-order afterwards.
  constexpr int kMaxM = 10;
  const std::vector<std::vector<NebelRow>> row_shards =
      ParallelMapRanges<std::vector<NebelRow>>(
          kMaxM, 1, [](size_t begin, size_t end) {
            std::vector<NebelRow> shard;
            for (size_t i = begin; i < end; ++i) {
              shard.push_back(ComputeNebelRow(static_cast<int>(i) + 1));
            }
            return shard;
          });
  std::vector<uint64_t> naive_sizes;
  for (const std::vector<NebelRow>& shard : row_shards) {
    for (const NebelRow& row : shard) {
      naive_sizes.push_back(row.naive_size);
      std::printf("%-4d %10llu %12zu %16llu %16s\n", row.m,
                  static_cast<unsigned long long>(row.input_size), row.worlds,
                  static_cast<unsigned long long>(row.naive_size),
                  row.minimal.c_str());
      report->AddRow("nebel_family", {row.m, row.input_size, row.worlds,
                                      row.naive_size, row.minimal});
    }
  }
  const std::string verdict = bench::GrowthVerdict(naive_sizes);
  std::printf("naive growth: %s (paper: 2^m worlds).  The QM-minimal size\n"
              "stays small because T *_GFUV P1 == P1 for THIS family —\n"
              "worst-case non-compactability needs the Thm 3.1 advice "
              "argument.\n",
              verdict.c_str());
  report->AddSeries("nebel_naive_gfuv_size",
                    std::vector<double>(naive_sizes.begin(), naive_sizes.end()),
                    verdict);
}

void MeasureWinslettChain(obs::Report* report) {
  bench::Headline(
      "Winslett's chain family: constant |P| = 1, worlds still explode");
  report->AddTable("winslett_chain",
                   {"m", "t_size", "p_size", "worlds", "naive_gfuv_size"});
  std::printf("%-4s %10s %6s %12s %16s\n", "m", "|T|", "|P|", "|W(T,P)|",
              "naive GFUV size");
  struct ChainRow {
    int m;
    uint64_t t_size;
    uint64_t p_size;
    size_t worlds;
    uint64_t naive_size;
  };
  constexpr int kMaxM = 8;
  const std::vector<std::vector<ChainRow>> row_shards =
      ParallelMapRanges<std::vector<ChainRow>>(
          kMaxM, 1, [](size_t begin, size_t end) {
            std::vector<ChainRow> shard;
            for (size_t i = begin; i < end; ++i) {
              const int m = static_cast<int>(i) + 1;
              Vocabulary vocabulary;
              const WinslettChainFamily family(m, &vocabulary);
              const auto worlds =
                  MaximalConsistentSubsets(family.t, family.p);
              const Formula naive = GfuvFormula(family.t, family.p);
              shard.push_back({m, family.t.VarOccurrences(),
                               family.p.VarOccurrences(), worlds.size(),
                               naive.VarOccurrences()});
            }
            return shard;
          });
  std::vector<uint64_t> world_counts;
  for (const std::vector<ChainRow>& shard : row_shards) {
    for (const ChainRow& row : shard) {
      world_counts.push_back(row.worlds);
      std::printf("%-4d %10llu %6llu %12zu %16llu\n", row.m,
                  static_cast<unsigned long long>(row.t_size),
                  static_cast<unsigned long long>(row.p_size), row.worlds,
                  static_cast<unsigned long long>(row.naive_size));
      report->AddRow("winslett_chain", {row.m, row.t_size, row.p_size,
                                        row.worlds, row.naive_size});
    }
  }
  const std::string verdict = bench::GrowthVerdict(world_counts);
  std::printf("world-count growth: %s\n", verdict.c_str());
  report->AddSeries(
      "winslett_world_counts",
      std::vector<double>(world_counts.begin(), world_counts.end()), verdict);
}

void BM_MaximalConsistentSubsetsNebel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  const NebelExplosionFamily family(m, &vocabulary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaximalConsistentSubsets(family.t, family.p));
  }
}
BENCHMARK(BM_MaximalConsistentSubsetsNebel)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_WidtioOnNebel(benchmark::State& state) {
  // WIDTIO stays cheap and compact on the same family.
  const int m = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  const NebelExplosionFamily family(m, &vocabulary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WidtioTheory(family.t, family.p));
  }
}
BENCHMARK(BM_WidtioOnNebel)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_explosion",
                                       "BENCH_explosion.json", &argc, argv);
  revise::MeasureNebel(&reporter.report());
  revise::MeasureWinslettChain(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
