// Section 3.1's explicit-representation explosions:
//
//   * Nebel's family T1/P1: |W(T1,P1)| = 2^m possible worlds, so the naive
//     GFUV representation explodes — yet the revision is logically
//     equivalent to P1 itself (exact two-level minimization confirms it),
//     illustrating why the paper needs the advice argument rather than a
//     single family.
//   * Winslett's chain family T2/P2: the same explosion with |P2| = 1.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "hardness/families.h"
#include "minimize/quine_mccluskey.h"
#include "revision/formula_based.h"
#include "revision/operator.h"
#include "solve/services.h"

namespace revise {
namespace {

void MeasureNebel(obs::Report* report) {
  bench::Headline("Nebel's family: T = {x_i, y_i}, P = AND(x_i ^ y_i)");
  report->AddTable("nebel_family",
                   {"m", "input_size", "worlds", "naive_gfuv_size",
                    "qm_minimal_size"});
  std::printf("%-4s %10s %12s %16s %16s\n", "m", "|T|+|P|", "|W(T,P)|",
              "naive GFUV size", "QM-minimal size");
  std::vector<uint64_t> naive_sizes;
  for (int m = 1; m <= 10; ++m) {
    Vocabulary vocabulary;
    const NebelExplosionFamily family(m, &vocabulary);
    const auto worlds = MaximalConsistentSubsets(family.t, family.p);
    const Formula naive = GfuvFormula(family.t, family.p);
    naive_sizes.push_back(naive.VarOccurrences());
    std::string minimal = "-";
    if (2 * m <= 12) {
      const Alphabet alphabet(
          UnionOfVars(std::vector<Formula>{family.t.AsFormula(), family.p}));
      const ModelSet models = EnumerateModels(naive, alphabet);
      minimal = std::to_string(MinimalTwoLevelSize(models));
    }
    std::printf("%-4d %10llu %12zu %16llu %16s\n", m,
                static_cast<unsigned long long>(
                    family.t.VarOccurrences() + family.p.VarOccurrences()),
                worlds.size(),
                static_cast<unsigned long long>(naive.VarOccurrences()),
                minimal.c_str());
    report->AddRow("nebel_family",
                   {m, family.t.VarOccurrences() + family.p.VarOccurrences(),
                    worlds.size(), naive.VarOccurrences(), minimal});
  }
  const std::string verdict = bench::GrowthVerdict(naive_sizes);
  std::printf("naive growth: %s (paper: 2^m worlds).  The QM-minimal size\n"
              "stays small because T *_GFUV P1 == P1 for THIS family —\n"
              "worst-case non-compactability needs the Thm 3.1 advice "
              "argument.\n",
              verdict.c_str());
  report->AddSeries("nebel_naive_gfuv_size",
                    std::vector<double>(naive_sizes.begin(), naive_sizes.end()),
                    verdict);
}

void MeasureWinslettChain(obs::Report* report) {
  bench::Headline(
      "Winslett's chain family: constant |P| = 1, worlds still explode");
  report->AddTable("winslett_chain",
                   {"m", "t_size", "p_size", "worlds", "naive_gfuv_size"});
  std::printf("%-4s %10s %6s %12s %16s\n", "m", "|T|", "|P|", "|W(T,P)|",
              "naive GFUV size");
  std::vector<uint64_t> world_counts;
  for (int m = 1; m <= 8; ++m) {
    Vocabulary vocabulary;
    const WinslettChainFamily family(m, &vocabulary);
    const auto worlds = MaximalConsistentSubsets(family.t, family.p);
    const Formula naive = GfuvFormula(family.t, family.p);
    world_counts.push_back(worlds.size());
    std::printf("%-4d %10llu %6llu %12zu %16llu\n", m,
                static_cast<unsigned long long>(family.t.VarOccurrences()),
                static_cast<unsigned long long>(family.p.VarOccurrences()),
                worlds.size(),
                static_cast<unsigned long long>(naive.VarOccurrences()));
    report->AddRow("winslett_chain",
                   {m, family.t.VarOccurrences(), family.p.VarOccurrences(),
                    worlds.size(), naive.VarOccurrences()});
  }
  const std::string verdict = bench::GrowthVerdict(world_counts);
  std::printf("world-count growth: %s\n", verdict.c_str());
  report->AddSeries(
      "winslett_world_counts",
      std::vector<double>(world_counts.begin(), world_counts.end()), verdict);
}

void BM_MaximalConsistentSubsetsNebel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  const NebelExplosionFamily family(m, &vocabulary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MaximalConsistentSubsets(family.t, family.p));
  }
}
BENCHMARK(BM_MaximalConsistentSubsetsNebel)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_WidtioOnNebel(benchmark::State& state) {
  // WIDTIO stays cheap and compact on the same family.
  const int m = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  const NebelExplosionFamily family(m, &vocabulary);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WidtioTheory(family.t, family.p));
  }
}
BENCHMARK(BM_WidtioOnNebel)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_explosion",
                                       "BENCH_explosion.json", &argc, argv);
  revise::MeasureNebel(&reporter.report());
  revise::MeasureWinslettChain(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
