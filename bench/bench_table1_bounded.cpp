// Table 1, "Bounded case" columns: |P| <= k (constant).
//
// YES entries: the Section 4 formulas (5)-(9) are LOGICALLY equivalent to
// the revision and their size is linear in |T| for each fixed k.  We
// sweep |T| at fixed k and print the measured sizes (all five operators +
// Borgida), verifying logical equivalence against reference semantics on
// the smaller sizes.
//
// NO entry: GFUV stays uncompactable even with |P| = 1 (Theorem 4.1); we
// validate the reduction exhaustively over 3-SAT_3.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "compact/bounded_revision.h"
#include "hardness/families.h"
#include "hardness/random_instances.h"
#include "logic/evaluate.h"
#include "revision/formula_based.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

struct BoundedCase {
  const char* name;
  Formula (*build)(const Formula&, const Formula&);
  OperatorId op;
};

const BoundedCase kCases[] = {
    {"Winslett(5)", &WinslettBounded, OperatorId::kWinslett},
    {"Forbus(6)", &ForbusBounded, OperatorId::kForbus},
    {"Satoh(7)", &SatohBounded, OperatorId::kSatoh},
    {"Dalal(8)", &DalalBounded, OperatorId::kDalal},
    {"Weber(9)", &WeberBounded, OperatorId::kWeber},
    {"Borgida", &BorgidaBounded, OperatorId::kBorgida},
};

// T = conjunction of all letters (n of them), P over the first k letters
// forcing a contradiction — the paper's running Section 4 shape.
void BuildInstance(int n, int k, Vocabulary* vocabulary, Formula* t,
                   Formula* p) {
  std::vector<Formula> letters;
  std::vector<Formula> negated;
  for (int i = 0; i < n; ++i) {
    const Formula v =
        Formula::Variable(vocabulary->Intern("x" + std::to_string(i)));
    letters.push_back(v);
    if (i < k) negated.push_back(Formula::Not(v));
  }
  *t = ConjoinAll(letters);
  *p = DisjoinAll(negated);  // !x0 | ... | !x_{k-1}
}

void MeasureBoundedSizes(obs::Report* report) {
  bench::Headline(
      "Table 1 bounded YES entries: sizes of formulas (5)-(9), k = |V(P)|");
  report->AddTable("bounded_sizes",
                   {"k", "n", "input_size", "operator", "size"});
  std::vector<std::vector<double>> series(std::size(kCases));
  for (int k : {1, 2, 3}) {
    std::printf("\nk = %d\n%-6s %8s", k, "n", "|T|+|P|");
    for (const BoundedCase& c : kCases) std::printf(" %12s", c.name);
    std::printf("\n");
    for (int n : {8, 16, 32, 64}) {
      Vocabulary vocabulary;
      Formula t;
      Formula p;
      BuildInstance(n, k, &vocabulary, &t, &p);
      std::printf("%-6d %8llu", n,
                  static_cast<unsigned long long>(t.VarOccurrences() +
                                                  p.VarOccurrences()));
      for (size_t which = 0; which < std::size(kCases); ++which) {
        const BoundedCase& c = kCases[which];
        const Formula compact = c.build(t, p);
        std::printf(" %12llu", static_cast<unsigned long long>(
                                   compact.VarOccurrences()));
        report->AddRow("bounded_sizes",
                       {k, n, t.VarOccurrences() + p.VarOccurrences(), c.name,
                        compact.VarOccurrences()});
        if (k == 2) {
          series[which].push_back(
              static_cast<double>(compact.VarOccurrences()));
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n(sizes are linear in n for each fixed k; the constant "
              "factor is exponential in k, which is Section 4's point)\n");
  for (size_t which = 0; which < std::size(kCases); ++which) {
    std::vector<uint64_t> sizes(series[which].begin(), series[which].end());
    report->AddSeries(std::string("bounded_k2_") + kCases[which].name,
                      series[which], bench::GrowthVerdict(sizes));
  }
}

void ValidateEquivalence(obs::Report* report) {
  bench::Headline(
      "logical-equivalence validation of (5)-(9) against reference "
      "semantics (random instances, n = 6, k = 2)");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(vocabulary.Intern("v" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  const std::vector<Var> p_vars(vars.begin(), vars.begin() + 2);
  Rng rng(11);
  int checks = 0;
  int failures = 0;
  for (int trial = 0; trial < 30; ++trial) {
    Formula t = RandomFormula(vars, 4, &rng);
    Formula p = RandomFormula(p_vars, 3, &rng);
    if (!IsSatisfiable(t) || !IsSatisfiable(p)) continue;
    for (const BoundedCase& c : kCases) {
      const Formula compact = c.build(t, p);
      const ModelSet reference =
          OperatorById(c.op)->ReviseModels(Theory({t}), p, alphabet);
      const ModelSet actual = EnumerateModels(compact, alphabet);
      ++checks;
      if (!(reference == actual)) ++failures;
    }
  }
  std::printf("equivalence checks: %d, failures: %d\n", checks, failures);
  report->AddTable("equivalence_validation", {"checks", "failures"});
  report->AddRow("equivalence_validation", {checks, failures});
}

void ValidateTheorem41(obs::Report* report) {
  bench::Headline(
      "Table 1 bounded NO entry: Theorem 4.1 (GFUV with |P| = 1), "
      "exhaustive over 3-SAT_3");
  Vocabulary vocabulary;
  const Theorem41Family family(3, &vocabulary);
  const Formula advice = GfuvFormula(family.t_prime, family.p_prime);
  int agree = 0;
  int total = 0;
  for (uint64_t mask = 0; mask < 256; ++mask) {
    std::vector<size_t> pi;
    for (size_t j = 0; j < 8; ++j) {
      if ((mask >> j) & 1) pi.push_back(j);
    }
    const bool satisfiable =
        IsSatisfiable(family.base.tau.InstanceFormula(pi));
    ++total;
    if (satisfiable == Entails(advice, family.Query(pi))) ++agree;
  }
  std::printf("|P'| = 1; instances decided correctly: %d/%d\n", agree,
              total);
  report->AddTable("reductions", {"reduction", "agree", "total"});
  report->AddRow("reductions", {"thm4.1_gfuv", agree, total});
}

void PrintVerdictTable(obs::Report* report) {
  bench::Headline("Reproduced Table 1 (bounded case)");
  std::printf("%-12s %-26s %-26s\n", "formalism", "logical equiv. (2)",
              "query equiv. (1)");
  const struct Row {
    const char* name;
    const char* logical;
    const char* query;
  } rows[] = {
      {"GFUV,Nebel", "NO  (Thm 4.1 reduc.)", "NO  (Thm 4.1 reduc.)"},
      {"Winslett", "YES (formula (5) meas.)", "YES"},
      {"Borgida", "YES (Cor 4.4 measured)", "YES"},
      {"Forbus", "YES (formula (6) meas.)", "YES"},
      {"Satoh", "YES (formula (7) meas.)", "YES"},
      {"Dalal", "YES (formula (8) meas.)", "YES"},
      {"Weber", "YES (formula (9) meas.)", "YES"},
      {"WIDTIO", "YES (by construction)", "YES"},
  };
  report->AddTable("table1_bounded",
                   {"formalism", "logical_equivalence", "query_equivalence"});
  for (const Row& row : rows) {
    std::printf("%-12s %-26s %-26s\n", row.name, row.logical, row.query);
    report->AddRow("table1_bounded", {row.name, row.logical, row.query});
  }
}

void BM_BoundedConstruction(benchmark::State& state) {
  const size_t which = static_cast<size_t>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Vocabulary vocabulary;
  Formula t;
  Formula p;
  BuildInstance(n, 2, &vocabulary, &t, &p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kCases[which].build(t, p));
  }
  state.SetLabel(std::string(kCases[which].name) + "/n=" +
                 std::to_string(n));
}

void RegisterBenchmarks() {
  for (size_t which = 0; which < std::size(kCases); ++which) {
    for (int n : {16, 64}) {
      benchmark::RegisterBenchmark("BM_BoundedConstruction",
                                   &BM_BoundedConstruction)
          ->Args({static_cast<int>(which), n})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter(
      "bench_table1_bounded", "BENCH_table1_bounded.json", &argc, argv);
  revise::MeasureBoundedSizes(&reporter.report());
  revise::ValidateEquivalence(&reporter.report());
  revise::ValidateTheorem41(&reporter.report());
  revise::PrintVerdictTable(&reporter.report());
  benchmark::Initialize(&argc, argv);
  revise::RegisterBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
