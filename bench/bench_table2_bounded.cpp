// Table 2, "Iterated, bounded case": chains of constant-size updates.
//
// YES entries (query equivalence, Corollary 6.4): the expanded schemes
// (12)-(16) for Winslett / Borgida / Satoh / Forbus — per-step sizes over
// long chains (linear growth) and validation against reference semantics.
// NO entries (logical equivalence, Theorem 6.5): the iterated reduction,
// validated over sampled 3-SAT_3 instances for all six model-based
// operators.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "compact/iterated_revision.h"
#include "hardness/families.h"
#include "hardness/random_instances.h"
#include "revision/iterated.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

struct StepCase {
  const char* name;
  CompactStepFn step;
  OperatorId op;
};

const StepCase kSteps[] = {
    {"Winslett(16)", &WinslettCompactStep, OperatorId::kWinslett},
    {"Borgida", &BorgidaCompactStep, OperatorId::kBorgida},
    {"Satoh(13)", &SatohCompactStep, OperatorId::kSatoh},
    {"Forbus(14)", &ForbusCompactStep, OperatorId::kForbus},
};

// Chain of constant-size updates: alternately retract/assert one of the
// first two letters, flipping which.
std::vector<Formula> BoundedChain(const std::vector<Var>& vars, int m,
                                  Rng* rng) {
  std::vector<Formula> updates;
  for (int i = 0; i < m; ++i) {
    const Var v = vars[rng->Below(2)];
    updates.push_back(Formula::Literal(v, rng->Chance(0.5)));
  }
  return updates;
}

void MeasureBoundedIteratedSizes(obs::Report* report) {
  bench::Headline(
      "Table 2 bounded YES entries: per-step sizes of the schemes "
      "(12)-(16), n = 10 letters, |P^i| = 1");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  std::vector<Formula> letters;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
    letters.push_back(Formula::Variable(vars.back()));
  }
  const Formula t = ConjoinAll(letters);
  Rng rng(31);
  const std::vector<Formula> updates = BoundedChain(vars, 10, &rng);
  std::printf("%-6s", "m");
  for (const StepCase& c : kSteps) std::printf(" %14s", c.name);
  std::printf("\n");
  std::vector<std::vector<uint64_t>> sizes(std::size(kSteps));
  for (size_t which = 0; which < std::size(kSteps); ++which) {
    const auto steps =
        CompactIterated(kSteps[which].step, t, updates, &vocabulary);
    for (const Formula& f : steps) {
      sizes[which].push_back(f.VarOccurrences());
    }
  }
  report->AddTable("bounded_iterated_sizes",
                   {"m", "operator", "size"});
  for (size_t m = 0; m < updates.size(); ++m) {
    std::printf("%-6zu", m + 1);
    for (size_t which = 0; which < std::size(kSteps); ++which) {
      std::printf(" %14llu",
                  static_cast<unsigned long long>(sizes[which][m]));
      report->AddRow("bounded_iterated_sizes",
                     {m + 1, kSteps[which].name, sizes[which][m]});
    }
    std::printf("\n");
  }
  for (size_t which = 0; which < std::size(kSteps); ++which) {
    const std::string verdict = bench::GrowthVerdict(sizes[which]);
    std::printf("%s growth: %s;  ", kSteps[which].name, verdict.c_str());
    report->AddSeries(
        std::string("bounded_iterated_") + kSteps[which].name,
        std::vector<double>(sizes[which].begin(), sizes[which].end()),
        verdict);
  }
  std::printf("(paper: all polynomial in |T| + m)\n");
}

void ValidateQueryEquivalence(obs::Report* report) {
  bench::Headline(
      "query-equivalence validation of the schemes against reference "
      "iterated semantics (n = 5, m = 4, random bounded chains)");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(vocabulary.Intern("v" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(32);
  int checks = 0;
  int failures = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Formula t;
    do {
      t = RandomFormula(vars, 4, &rng);
    } while (!IsSatisfiable(t));
    const std::vector<Var> p_vars(vars.begin(), vars.begin() + 2);
    std::vector<Formula> updates;
    for (int i = 0; i < 4; ++i) {
      Formula p;
      do {
        p = RandomFormula(p_vars, 2, &rng);
      } while (!IsSatisfiable(p));
      updates.push_back(p);
    }
    for (const StepCase& c : kSteps) {
      const auto steps = CompactIterated(c.step, t, updates, &vocabulary);
      const ModelSet reference = IteratedReviseModels(
          *OperatorById(c.op), Theory({t}), updates, alphabet);
      ++checks;
      if (!(EnumerateModels(steps.back(), alphabet) == reference)) {
        ++failures;
      }
    }
  }
  std::printf("checks: %d, failures: %d\n", checks, failures);
  report->AddTable("equivalence_validation", {"checks", "failures"});
  report->AddRow("equivalence_validation", {checks, failures});
}

void ValidateTheorem65(obs::Report* report) {
  bench::Headline(
      "Table 2 bounded NO entries: Theorem 6.5 iterated reduction (all six "
      "model-based operators), sampled 3-SAT_3 instances");
  Vocabulary vocabulary;
  const Theorem65Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  Rng rng(33);
  std::vector<std::vector<size_t>> instances;
  instances.push_back({});
  std::vector<size_t> all(family.tau.num_clauses());
  for (size_t j = 0; j < all.size(); ++j) all[j] = j;
  instances.push_back(all);
  for (int i = 0; i < 24; ++i) {
    instances.push_back(family.tau.RandomInstance(
        1 + rng.Below(family.tau.num_clauses()), &rng));
  }
  report->AddTable("reductions", {"operator", "agree", "total"});
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    const ModelSet revised = IteratedReviseModels(
        *op, family.t, family.updates, alphabet);
    int agree = 0;
    for (const auto& pi : instances) {
      const bool satisfiable =
          IsSatisfiable(family.tau.InstanceFormula(pi));
      if (satisfiable == revised.Contains(family.CPi(pi, alphabet))) {
        ++agree;
      }
    }
    std::printf("  %-9s: %d/%zu instances decided correctly\n",
                std::string(op->name()).c_str(), agree, instances.size());
    report->AddRow("reductions",
                   {std::string(op->name()), agree, instances.size()});
  }
}

void PrintVerdictTable(obs::Report* report) {
  bench::Headline("Reproduced Table 2 (iterated, bounded case)");
  std::printf("%-12s %-26s %-26s\n", "formalism", "logical equiv. (2)",
              "query equiv. (1)");
  const struct Row {
    const char* name;
    const char* logical;
    const char* query;
  } rows[] = {
      {"GFUV,Nebel", "NO  (Thm 4.1)", "NO  (Thm 4.1)"},
      {"Winslett", "NO  (Thm 6.5 reduc.)", "YES (Cor 6.4 measured)"},
      {"Borgida", "NO  (Thm 6.5 reduc.)", "YES (Cor 6.4 measured)"},
      {"Forbus", "NO  (Thm 6.5 reduc.)", "YES (Cor 6.4 measured)"},
      {"Satoh", "NO  (Thm 6.5 reduc.)", "YES (Cor 6.4 measured)"},
      {"Dalal", "NO  (Thm 6.5 reduc.)", "YES (Thm 5.1 measured)"},
      {"Weber", "NO  (Thm 6.5 reduc.)", "YES (Cor 5.2 measured)"},
      {"WIDTIO", "YES (by construction)", "YES (by construction)"},
  };
  report->AddTable("table2_bounded",
                   {"formalism", "logical_equivalence", "query_equivalence"});
  for (const Row& row : rows) {
    std::printf("%-12s %-26s %-26s\n", row.name, row.logical, row.query);
    report->AddRow("table2_bounded", {row.name, row.logical, row.query});
  }
}

void BM_BoundedIteratedStep(benchmark::State& state) {
  const size_t which = static_cast<size_t>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  std::vector<Formula> letters;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
    letters.push_back(Formula::Variable(vars.back()));
  }
  const Formula t = ConjoinAll(letters);
  Rng rng(34);
  const std::vector<Formula> updates = BoundedChain(vars, m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CompactIterated(kSteps[which].step, t, updates, &vocabulary));
  }
  state.SetLabel(std::string(kSteps[which].name) + "/m=" +
                 std::to_string(m));
}

void RegisterBenchmarks() {
  for (size_t which = 0; which < std::size(kSteps); ++which) {
    for (int m : {4, 8}) {
      benchmark::RegisterBenchmark("BM_BoundedIteratedStep",
                                   &BM_BoundedIteratedStep)
          ->Args({static_cast<int>(which), m})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter(
      "bench_table2_bounded", "BENCH_table2_bounded.json", &argc, argv);
  revise::MeasureBoundedIteratedSizes(&reporter.report());
  revise::ValidateQueryEquivalence(&reporter.report());
  revise::ValidateTheorem65(&reporter.report());
  revise::PrintVerdictTable(&reporter.report());
  benchmark::Initialize(&argc, argv);
  revise::RegisterBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
