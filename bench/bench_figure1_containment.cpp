// Figure 1: the containment lattice between the model sets of the six
// model-based operators.
//
// Reproduction: sweep random satisfiable (T, P) pairs and check every
// claimed arrow (set containment), recording a strictness witness for each
// (a pair where the containment is proper).  Also re-derives the worked
// example of Section 2.2.2.  Timings: ReviseModels per operator.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hardness/random_instances.h"
#include "logic/evaluate.h"
#include "logic/parser.h"
#include "revision/model_based.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

struct Edge {
  OperatorId from;
  OperatorId to;
};

// The arrows of Figure 1 (from ⊆ to).
const Edge kEdges[] = {
    {OperatorId::kDalal, OperatorId::kForbus},
    {OperatorId::kDalal, OperatorId::kSatoh},
    {OperatorId::kDalal, OperatorId::kBorgida},
    {OperatorId::kForbus, OperatorId::kWinslett},
    {OperatorId::kSatoh, OperatorId::kWinslett},
    {OperatorId::kSatoh, OperatorId::kWeber},
    {OperatorId::kBorgida, OperatorId::kWinslett},
};

void ReproduceFigure1(obs::Report* report) {
  bench::Headline("Figure 1: containment between operator model sets");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(vocabulary.Intern("f" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(42);
  const int kPairs = 400;
  int violations = 0;
  std::vector<int> strict(std::size(kEdges), 0);
  // Also check the three NON-arrows stay non-arrows (Winslett vs Weber in
  // both directions, Forbus vs Borgida).
  int win_not_in_web = 0;
  int web_not_in_win = 0;
  int forbus_not_in_borgida = 0;
  int tested = 0;
  for (int pair = 0; pair < kPairs; ++pair) {
    Formula t = RandomFormula(vars, 4, &rng);
    Formula p = RandomFormula(vars, 4, &rng);
    if (pair % 2 == 1) {
      // Force the interesting (inconsistent) regime on half the pairs:
      // with T & P consistent all four revision operators collapse to
      // M(T & P) and the containments are trivially equalities.
      t = Formula::And(t, Formula::Not(p));
    }
    if (!IsSatisfiable(t) || !IsSatisfiable(p)) continue;
    ++tested;
    const ModelSet mt = EnumerateModels(t, alphabet);
    const ModelSet mp = EnumerateModels(p, alphabet);
    const ModelSet win = WinslettModels(mt, mp);
    const ModelSet borgida = BorgidaModels(mt, mp);
    const ModelSet forbus = ForbusModels(mt, mp);
    const ModelSet satoh = SatohModels(mt, mp);
    const ModelSet dalal = DalalModels(mt, mp);
    const ModelSet weber = WeberModels(mt, mp);
    auto of = [&](OperatorId id) -> const ModelSet& {
      switch (id) {
        case OperatorId::kWinslett:
          return win;
        case OperatorId::kBorgida:
          return borgida;
        case OperatorId::kForbus:
          return forbus;
        case OperatorId::kSatoh:
          return satoh;
        case OperatorId::kDalal:
          return dalal;
        default:
          return weber;
      }
    };
    for (size_t e = 0; e < std::size(kEdges); ++e) {
      const ModelSet& small = of(kEdges[e].from);
      const ModelSet& big = of(kEdges[e].to);
      if (!small.IsSubsetOf(big)) ++violations;
      if (small.size() < big.size()) ++strict[e];
    }
    if (!win.IsSubsetOf(weber)) ++win_not_in_web;
    if (!weber.IsSubsetOf(win)) ++web_not_in_win;
    if (!forbus.IsSubsetOf(borgida)) ++forbus_not_in_borgida;
  }
  std::printf("random pairs tested: %d (5 letters)\n", tested);
  std::printf("%-22s %-12s %s\n", "arrow (subset)", "violations",
              "proper on");
  report->AddTable("figure1_arrows",
                   {"from", "to", "violations", "proper_on"});
  for (size_t e = 0; e < std::size(kEdges); ++e) {
    std::printf("%-8s -> %-10s %-12d %d pairs\n",
                std::string(OperatorById(kEdges[e].from)->name()).c_str(),
                std::string(OperatorById(kEdges[e].to)->name()).c_str(),
                violations == 0 ? 0 : violations, strict[e]);
    report->AddRow("figure1_arrows",
                   {std::string(OperatorById(kEdges[e].from)->name()),
                    std::string(OperatorById(kEdges[e].to)->name()),
                    violations, strict[e]});
  }
  std::printf("non-arrows confirmed: Winslett !⊆ Weber on %d pairs, "
              "Weber !⊆ Winslett on %d, Forbus !⊆ Borgida on %d\n",
              win_not_in_web, web_not_in_win, forbus_not_in_borgida);
  std::printf("total containment violations: %d (paper predicts 0)\n",
              violations);
  report->AddTable("figure1_summary",
                   {"pairs_tested", "violations", "winslett_not_in_weber",
                    "weber_not_in_winslett", "forbus_not_in_borgida"});
  report->AddRow("figure1_summary",
                 {tested, violations, win_not_in_web, web_not_in_win,
                  forbus_not_in_borgida});

  // Section 2.2.2 worked example.
  bench::Headline("Section 2.2.2 worked example (exact model sets)");
  Vocabulary v2;
  const Theory t = Theory({ParseOrDie("a & b & c", &v2)});
  const Formula p =
      ParseOrDie("(!a & !b & !d) | (!c & b & (a ^ d))", &v2);
  const Alphabet ex_alphabet = RevisionAlphabet(t, p);
  report->AddTable("worked_example", {"operator", "models"});
  for (const ModelBasedOperator* op : AllModelBasedOperators()) {
    const ModelSet result = op->ReviseModels(t, p, ex_alphabet);
    std::printf("  %-9s:", std::string(op->name()).c_str());
    std::string models;
    for (const Interpretation& m : result) {
      std::printf(" %s", m.ToString(ex_alphabet, v2).c_str());
      if (!models.empty()) models += ' ';
      models += m.ToString(ex_alphabet, v2);
    }
    std::printf("\n");
    report->AddRow("worked_example", {std::string(op->name()), models});
  }
  std::printf("expected (paper): Winslett/Borgida {a,b},{c},{b,d}; "
              "Forbus {a,b},{b,d}; Satoh {a,b},{c}; Dalal {a,b}; "
              "Weber all four models of P\n");
}

void BM_ReviseModels(benchmark::State& state) {
  const OperatorId id = static_cast<OperatorId>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(vocabulary.Intern("g" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(7);
  Formula t = RandomFormula(vars, 4, &rng);
  while (!IsSatisfiable(t)) t = RandomFormula(vars, 4, &rng);
  Formula p = RandomFormula(vars, 4, &rng);
  while (!IsSatisfiable(p)) p = RandomFormula(vars, 4, &rng);
  const Theory theory({t});
  const RevisionOperator* op = OperatorById(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->ReviseModels(theory, p, alphabet));
  }
  state.SetLabel(std::string(op->name()) + "/n=" + std::to_string(n));
}

void RegisterBenchmarks() {
  for (const RevisionOperator* op : AllOperators()) {
    for (int n : {4, 6, 8}) {
      benchmark::RegisterBenchmark("BM_ReviseModels", &BM_ReviseModels)
          ->Args({static_cast<int>(op->id()), n})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_figure1_containment",
                                       "BENCH_figure1_containment.json",
                                       &argc, argv);
  revise::ReproduceFigure1(&reporter.report());
  revise::RegisterBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
