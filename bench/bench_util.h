// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: it first
// prints the reproduced rows (computed from scratch at startup), then runs
// google-benchmark timings for the machinery involved.  With --json[=path]
// the reproduced rows, growth series, and an instrumentation snapshot are
// also written as a machine-readable report (see obs/report.h).  With
// --trace=<path> a Chrome Trace Event timeline of every recorded span is
// written at exit (equivalent to REVISE_TRACE=chrome:<path>; the flag
// wins when both are given).  With --explain=<path> per-operation cost
// attribution (obs/profile.h) is enabled for the whole run and the
// completed profile trees are written to <path> as JSON.  With
// --statsz[=port] a live introspection server (obs/statsz.h) runs for
// the duration of the bench (bare --statsz binds an ephemeral port,
// announced on stderr); --statsz-linger=<seconds> keeps the process
// alive that long after WriteIfRequested so harnesses can scrape it.
// The constructor also honors REVISE_STATSZ, REVISE_METRICS_DUMP, and
// REVISE_WATCHDOG_S, so every bench is observable without flags.

#ifndef REVISE_BENCH_BENCH_UTIL_H_
#define REVISE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/statsz.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "solve/model_cache.h"
#include "util/parallel.h"
#include "util/random.h"

namespace revise::bench {

inline void Headline(const std::string& text) {
  std::printf("\n==== %s ====\n", text.c_str());
}

// Crude growth classification from a size series f(i): compares the last
// two ratios f(i)/f(i-1) — "poly" growth has ratios tending to 1 for
// linear steps, "exp" stays bounded away.  The verdict threshold of 1.8
// for doubling-style explosion is generous.  Series that are too short,
// contain zero entries (the ratios would be inf/NaN), or are not monotone
// non-decreasing get "n/a" — a noisy series is not evidence of explosion.
inline std::string GrowthVerdict(const std::vector<uint64_t>& sizes) {
  if (sizes.size() < 3) return "n/a";
  for (const uint64_t size : sizes) {
    if (size == 0) return "n/a";
  }
  for (size_t i = 1; i < sizes.size(); ++i) {
    if (sizes[i] < sizes[i - 1]) return "n/a";
  }
  const double r1 = static_cast<double>(sizes[sizes.size() - 1]) /
                    static_cast<double>(sizes[sizes.size() - 2]);
  const double r2 = static_cast<double>(sizes[sizes.size() - 2]) /
                    static_cast<double>(sizes[sizes.size() - 3]);
  return (r1 > 1.8 && r2 > 1.8) ? "EXPONENTIAL" : "polynomial";
}

// Handles the --json[=path] and --trace=<path> flags for a bench binary
// and owns its report.
//
// Construct before benchmark::Initialize (which rejects flags it does not
// know): the constructor strips --json and --trace from argv.  The
// Measure*/Validate* functions fill report() alongside their printf
// output; WriteIfRequested serializes at exit.  Without --json the report
// is still assembled but never written.  --trace=<path> switches span
// collection to the Chrome sink (as REVISE_TRACE=chrome:<path> would) so
// the run leaves a loadable timeline behind.
class JsonReporter {
 public:
  JsonReporter(std::string_view bench_name, std::string default_path,
               int* argc, char** argv)
      : report_(bench_name), path_(std::move(default_path)) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        requested_ = true;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        requested_ = true;
        path_ = argv[i] + 7;
      } else if (std::strncmp(argv[i], "--trace=", 8) == 0 &&
                 argv[i][8] != '\0') {
        obs::SetChromeTracePath(argv[i] + 8);
        obs::SetTraceSink(obs::TraceSink::kChrome);
      } else if (std::strncmp(argv[i], "--explain=", 10) == 0 &&
                 argv[i][10] != '\0') {
        explain_path_ = argv[i] + 10;
        obs::SetProfilingEnabled(true);
      } else if (std::strcmp(argv[i], "--statsz") == 0) {
        statsz_requested_ = true;  // ephemeral port
      } else if (std::strncmp(argv[i], "--statsz=", 9) == 0) {
        statsz_requested_ = true;
        statsz_port_ = static_cast<uint16_t>(
            std::strtoul(argv[i] + 9, nullptr, 10));
      } else if (std::strncmp(argv[i], "--statsz-linger=", 16) == 0) {
        linger_s_ = std::strtod(argv[i] + 16, nullptr);
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
    // Live introspection: the explicit flag wins; otherwise the REVISE_*
    // activation variables apply, so every bench is scrapeable without
    // code changes.  Start failures are stderr-only — observability must
    // never fail the measurement run.
    if (statsz_requested_) {
      obs::StatszOptions statsz_options;
      statsz_options.port = statsz_port_;
      const Status statsz_status = obs::StartGlobalStatsz(statsz_options);
      if (!statsz_status.ok()) {
        std::fprintf(stderr, "revise: statsz failed to start: %s\n",
                     statsz_status.ToString().c_str());
      }
    } else {
      obs::StartStatszFromEnv();
    }
    obs::StartMetricsDumperFromEnv();
    obs::StartStallWatchdogFromEnv();
    // Execution-environment metadata so reports from different machines
    // and REVISE_THREADS / REVISE_MODEL_CACHE settings stay comparable.
    const uint64_t threads = static_cast<uint64_t>(ParallelThreads());
    const uint64_t hardware =
        static_cast<uint64_t>(std::thread::hardware_concurrency());
    // Timings measured with more workers than cores are not comparable
    // to true parallel runs; record what the machine can actually
    // deliver and say so once.
    const uint64_t effective =
        hardware == 0 ? threads : std::min(threads, hardware);
    if (hardware != 0 && threads > hardware) {
      std::fprintf(stderr,
                   "revise: REVISE_THREADS=%llu exceeds the %llu hardware "
                   "threads; timings reflect oversubscription\n",
                   static_cast<unsigned long long>(threads),
                   static_cast<unsigned long long>(hardware));
    }
    report_.SetMeta("threads", obs::Json(threads));
    report_.SetMeta("hardware_threads", obs::Json(hardware));
    report_.SetMeta("effective_parallelism", obs::Json(effective));
    report_.SetMeta("model_cache_capacity",
                    obs::Json(static_cast<uint64_t>(
                        ModelCache::Global().capacity())));
  }

  obs::Report& report() { return report_; }
  bool requested() const { return requested_; }
  const std::string& path() const { return path_; }

  // Returns false if writing was requested and failed.
  bool WriteIfRequested() {
    bool ok = true;
    if (!explain_path_.empty()) {
      obs::Json doc = obs::Json::MakeObject();
      doc["schema_version"] = obs::kSchemaVersion;
      doc["schema_minor"] = obs::kSchemaMinor;
      doc["profiles"] = obs::ProfileForestToJson();
      std::FILE* file = std::fopen(explain_path_.c_str(), "w");
      if (file == nullptr) {
        std::fprintf(stderr, "explain profile: cannot open %s\n",
                     explain_path_.c_str());
        ok = false;
      } else {
        const std::string text = doc.Dump(/*indent=*/2);
        std::fwrite(text.data(), 1, text.size(), file);
        std::fputc('\n', file);
        std::fclose(file);
        std::printf("\nEXPLAIN profiles written to %s\n",
                    explain_path_.c_str());
      }
    }
    if (requested_) {
      const Status status = report_.WriteToFile(path_);
      if (!status.ok()) {
        std::fprintf(stderr, "json report: %s\n", status.ToString().c_str());
        ok = false;
      } else {
        std::printf("\nJSON report written to %s\n", path_.c_str());
      }
    }
    Linger();
    return ok;
  }

  // Keeps the process (and its statsz server) alive for the
  // --statsz-linger window — the CI smoke job scrapes during it.
  void Linger() const {
    if (!(linger_s_ > 0.0)) return;
    std::fprintf(stderr, "revise: lingering %.1fs for statsz scrapes\n",
                 linger_s_);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s_));
  }

 private:
  obs::Report report_;
  std::string path_;
  std::string explain_path_;
  bool requested_ = false;
  bool statsz_requested_ = false;
  uint16_t statsz_port_ = 0;
  double linger_s_ = 0.0;
};

// A scaling knowledge base: n letters all true (the paper's hard cases
// and worked examples all start from complete theories).
inline Theory CompleteTheory(int n, const std::string& prefix,
                             Vocabulary* vocabulary,
                             std::vector<Var>* vars_out = nullptr) {
  Theory t;
  for (int i = 0; i < n; ++i) {
    const Var v = vocabulary->Intern(prefix + std::to_string(i));
    if (vars_out != nullptr) vars_out->push_back(v);
    t.Add(Formula::Variable(v));
  }
  return t;
}

}  // namespace revise::bench

#endif  // REVISE_BENCH_BENCH_UTIL_H_
