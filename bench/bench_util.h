// Shared helpers for the reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper: it first
// prints the reproduced rows (computed from scratch at startup), then runs
// google-benchmark timings for the machinery involved.

#ifndef REVISE_BENCH_BENCH_UTIL_H_
#define REVISE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "logic/theory.h"
#include "logic/vocabulary.h"
#include "util/random.h"

namespace revise::bench {

inline void Headline(const std::string& text) {
  std::printf("\n==== %s ====\n", text.c_str());
}

// Crude growth classification from a size series f(i): compares the last
// ratio f(end)/f(end-1) — "poly" growth has ratios tending to 1 for linear
// steps, "exp" stays bounded away.  We report the ratios and let the
// reader (and EXPERIMENTS.md) interpret; the verdict threshold of 1.8 for
// doubling-style explosion is generous.
inline std::string GrowthVerdict(const std::vector<uint64_t>& sizes) {
  if (sizes.size() < 3) return "n/a";
  const double r1 = static_cast<double>(sizes[sizes.size() - 1]) /
                    static_cast<double>(sizes[sizes.size() - 2]);
  const double r2 = static_cast<double>(sizes[sizes.size() - 2]) /
                    static_cast<double>(sizes[sizes.size() - 3]);
  return (r1 > 1.8 && r2 > 1.8) ? "EXPONENTIAL" : "polynomial";
}

// A scaling knowledge base: n letters all true (the paper's hard cases
// and worked examples all start from complete theories).
inline Theory CompleteTheory(int n, const std::string& prefix,
                             Vocabulary* vocabulary,
                             std::vector<Var>* vars_out = nullptr) {
  Theory t;
  for (int i = 0; i < n; ++i) {
    const Var v = vocabulary->Intern(prefix + std::to_string(i));
    if (vars_out != nullptr) vars_out->push_back(v);
    t.Add(Formula::Variable(v));
  }
  return t;
}

}  // namespace revise::bench

#endif  // REVISE_BENCH_BENCH_UTIL_H_
