// Table 2, "Iterated, general case": compactability of T * P^1 * ... * P^m
// with unbounded update sizes.
//
// YES entries (query equivalence): Dalal's Phi_m (Theorem 5.1) and Weber's
// formula (10) (Corollary 5.2) — we measure the per-step size over chains
// of m revisions and validate query equivalence against reference
// semantics on small alphabets.  NO entries carry over from Table 1; the
// logical-equivalence column is Theorem 3.6's reduction again.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "compact/iterated_revision.h"
#include "hardness/random_instances.h"
#include "revision/iterated.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

// A chain of m unbounded-size random 3-CNF updates over n letters.
std::vector<Formula> MakeChain(const std::vector<Var>& vars, int m,
                               Rng* rng) {
  std::vector<Formula> updates;
  for (int i = 0; i < m; ++i) {
    Formula p;
    do {
      p = RandomClauses(vars, vars.size(), 3, rng);
    } while (!IsSatisfiable(p));
    updates.push_back(p);
  }
  return updates;
}

void MeasureIteratedSizes(obs::Report* report) {
  bench::Headline(
      "Table 2 general YES entries: per-step sizes of Dalal's Phi_m "
      "(Thm 5.1) and Weber's formula (10) (Cor 5.2), n = 12 letters");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 12; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(21);
  Formula t;
  do {
    t = RandomClauses(vars, 18, 3, &rng);
  } while (!IsSatisfiable(t));
  const std::vector<Formula> updates = MakeChain(vars, 6, &rng);
  const auto phis = DalalCompactIterated(t, updates, vars, &vocabulary);
  const auto psis = WeberCompactIterated(t, updates, vars, &vocabulary);
  std::printf("%-6s %10s %14s %14s\n", "m", "|T|+sum|P|", "|Phi_m| Dalal",
              "|(10)| Weber");
  report->AddTable("iterated_sizes",
                   {"m", "input_size", "dalal_size", "weber_size"});
  uint64_t input = t.VarOccurrences();
  for (size_t m = 0; m < updates.size(); ++m) {
    input += updates[m].VarOccurrences();
    std::printf("%-6zu %10llu %14llu %14llu\n", m + 1,
                static_cast<unsigned long long>(input),
                static_cast<unsigned long long>(phis[m].VarOccurrences()),
                static_cast<unsigned long long>(psis[m].VarOccurrences()));
    report->AddRow("iterated_sizes",
                   {m + 1, input, phis[m].VarOccurrences(),
                    psis[m].VarOccurrences()});
  }
  std::vector<uint64_t> dalal_sizes;
  std::vector<uint64_t> weber_sizes;
  for (const Formula& f : phis) dalal_sizes.push_back(f.VarOccurrences());
  for (const Formula& f : psis) weber_sizes.push_back(f.VarOccurrences());
  const std::string dalal_verdict = bench::GrowthVerdict(dalal_sizes);
  const std::string weber_verdict = bench::GrowthVerdict(weber_sizes);
  std::printf("growth in m: Dalal %s, Weber %s (paper: both polynomial)\n",
              dalal_verdict.c_str(), weber_verdict.c_str());
  report->AddSeries("dalal_iterated_size",
                    std::vector<double>(dalal_sizes.begin(), dalal_sizes.end()),
                    dalal_verdict);
  report->AddSeries("weber_iterated_size",
                    std::vector<double>(weber_sizes.begin(), weber_sizes.end()),
                    weber_verdict);
}

void ValidateQueryEquivalence(obs::Report* report) {
  bench::Headline(
      "query-equivalence validation of Phi_m / formula (10) against "
      "reference iterated semantics (n = 5, m = 3, random chains)");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 5; ++i) {
    vars.push_back(vocabulary.Intern("q" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(22);
  int checks = 0;
  int failures = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Formula t;
    do {
      t = RandomFormula(vars, 4, &rng);
    } while (!IsSatisfiable(t));
    std::vector<Formula> updates;
    for (int i = 0; i < 3; ++i) {
      Formula p;
      do {
        p = RandomFormula(vars, 4, &rng);
      } while (!IsSatisfiable(p));
      updates.push_back(p);
    }
    const auto phis = DalalCompactIterated(t, updates, vars, &vocabulary);
    const auto psis = WeberCompactIterated(t, updates, vars, &vocabulary);
    const ModelSet dalal_reference = IteratedReviseModels(
        *OperatorById(OperatorId::kDalal), Theory({t}), updates, alphabet);
    const ModelSet weber_reference = IteratedReviseModels(
        *OperatorById(OperatorId::kWeber), Theory({t}), updates, alphabet);
    checks += 2;
    if (!(EnumerateModels(phis.back(), alphabet) == dalal_reference)) {
      ++failures;
    }
    if (!(EnumerateModels(psis.back(), alphabet) == weber_reference)) {
      ++failures;
    }
  }
  std::printf("checks: %d, failures: %d\n", checks, failures);
  report->AddTable("equivalence_validation", {"checks", "failures"});
  report->AddRow("equivalence_validation", {checks, failures});
}

void PrintVerdictTable(obs::Report* report) {
  bench::Headline("Reproduced Table 2 (iterated, general case)");
  std::printf("%-12s %-26s %-26s\n", "formalism", "logical equiv. (2)",
              "query equiv. (1)");
  const struct Row {
    const char* name;
    const char* logical;
    const char* query;
  } rows[] = {
      {"GFUV,Nebel", "NO  (Thm 3.7)", "NO  (Thm 3.1)"},
      {"Winslett", "NO  (Thm 3.7)", "NO  (Thm 3.2)"},
      {"Borgida", "NO  (Thm 3.7)", "NO  (Thm 3.2)"},
      {"Forbus", "NO  (Thm 3.7)", "NO  (Thm 3.3)"},
      {"Satoh", "NO  (Thm 3.7)", "NO  (Thm 3.2)"},
      {"Dalal", "NO  (Thm 3.6)", "YES (Thm 5.1 measured)"},
      {"Weber", "NO  (Thm 3.6)", "YES (Cor 5.2 measured)"},
      {"WIDTIO", "YES (by construction)", "YES (by construction)"},
  };
  report->AddTable("table2_general",
                   {"formalism", "logical_equivalence", "query_equivalence"});
  for (const Row& row : rows) {
    std::printf("%-12s %-26s %-26s\n", row.name, row.logical, row.query);
    report->AddRow("table2_general", {row.name, row.logical, row.query});
  }
}

void BM_DalalIteratedChain(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(23);
  Formula t;
  do {
    t = RandomClauses(vars, 15, 3, &rng);
  } while (!IsSatisfiable(t));
  const std::vector<Formula> updates = MakeChain(vars, m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DalalCompactIterated(t, updates, vars, &vocabulary));
  }
}
BENCHMARK(BM_DalalIteratedChain)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_WeberIteratedChain(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(24);
  Formula t;
  do {
    t = RandomClauses(vars, 15, 3, &rng);
  } while (!IsSatisfiable(t));
  const std::vector<Formula> updates = MakeChain(vars, m, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        WeberCompactIterated(t, updates, vars, &vocabulary));
  }
}
BENCHMARK(BM_WeberIteratedChain)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter(
      "bench_table2_general", "BENCH_table2_general.json", &argc, argv);
  revise::MeasureIteratedSizes(&reporter.report());
  revise::ValidateQueryEquivalence(&reporter.report());
  revise::PrintVerdictTable(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
