// Section 7: the results hold for GENERIC data structures with a
// polynomial ASK model-checking algorithm (Definition 7.1, Theorem 7.1),
// not just propositional formulas.
//
// We instantiate the definition with ROBDDs (canonical, ASK = one
// root-to-terminal walk) and measure |D| for the revised knowledge base:
//   * on the Theorem 3.6 hard gadget, where Theorem 7.1 says the size of
//     ANY such structure is the obstacle;
//   * on random instances, comparing the BDD of the revision against the
//     BDD obtained by projecting the Theorem 3.4 compact formula (they
//     are the identical canonical node — an independent engine confirming
//     query equivalence);
//   * ASK latency vs the SAT-based model checking route.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bdd/bdd.h"
#include "bench/bench_util.h"
#include "compact/single_revision.h"
#include "hardness/families.h"
#include "hardness/random_instances.h"
#include "model/canonical.h"
#include "revision/operator.h"
#include "solve/services.h"
#include "util/random.h"

namespace revise {
namespace {

void MeasureHardFamilyBddSizes(obs::Report* report) {
  bench::Headline(
      "Theorem 3.6 gadget as an OBDD (n = 3): |D| for T, P and T *_D P");
  Vocabulary vocabulary;
  const Theorem36Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  BddManager manager(alphabet.vars());
  const auto t_node = manager.FromFormula(family.t.AsFormula());
  const auto p_node = manager.FromFormula(family.p);
  const ModelSet revised = OperatorById(OperatorId::kDalal)
                               ->ReviseModels(family.t, family.p, alphabet);
  const auto revised_node = manager.FromFormula(CanonicalDnf(revised));
  std::printf("letters: %zu;  |D(T)| = %zu nodes, |D(P)| = %zu, "
              "|D(T *_D P)| = %zu, models of T *_D P: %llu\n",
              alphabet.size(), manager.NodeCount(t_node),
              manager.NodeCount(p_node), manager.NodeCount(revised_node),
              static_cast<unsigned long long>(
                  manager.CountModels(revised_node)));
  report->AddTable("bdd_sizes", {"letters", "nodes_t", "nodes_p",
                                 "nodes_revised", "models_revised"});
  report->AddRow("bdd_sizes",
                 {alphabet.size(), manager.NodeCount(t_node),
                  manager.NodeCount(p_node), manager.NodeCount(revised_node),
                  manager.CountModels(revised_node)});
  std::printf("(Theorem 7.1: if |D(T * P)| were polynomially bounded for "
              "all n, NP ⊆ P/poly — the n = 3 data point is the runnable "
              "instance of the advice argument)\n");
}

void CrossCheckCompactProjection(obs::Report* report) {
  bench::Headline(
      "independent-engine check: BDD(projection of Thm 3.4 formula) == "
      "BDD(reference revision), random instances");
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  const Alphabet alphabet(vars);
  Rng rng(55);
  int agree = 0;
  int total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Formula t = RandomFormula(vars, 4, &rng);
    Formula p = RandomFormula(vars, 4, &rng);
    if (!IsSatisfiable(t) || !IsSatisfiable(p)) continue;
    const Formula compact = DalalCompact(t, p, &vocabulary);
    std::vector<Var> aux;
    for (const Var v : compact.Vars()) {
      if (!alphabet.Contains(v)) aux.push_back(v);
    }
    BddManager manager(vars);
    const auto projected =
        manager.Exists(manager.FromFormula(compact), aux);
    const ModelSet reference = OperatorById(OperatorId::kDalal)
                                   ->ReviseModels(Theory({t}), p, alphabet);
    const auto reference_node =
        manager.FromFormula(CanonicalDnf(reference));
    ++total;
    if (projected == reference_node) ++agree;
  }
  std::printf("identical canonical nodes: %d/%d\n", agree, total);
  report->AddTable("projection_crosscheck", {"agree", "total"});
  report->AddRow("projection_crosscheck", {agree, total});
}

void MeasureAskLatency(obs::Report* report) {
  bench::Headline(
      "ASK(D, M) latency: one BDD walk vs recomputing the revision");
  Vocabulary vocabulary;
  const Theorem36Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  const ModelSet revised = OperatorById(OperatorId::kDalal)
                               ->ReviseModels(family.t, family.p, alphabet);
  BddManager manager(alphabet.vars());
  const auto d = manager.FromFormula(CanonicalDnf(revised));
  Rng rng(66);
  // Time 10k ASK walks.
  const auto start = std::chrono::steady_clock::now();
  size_t positive = 0;
  const int kQueries = 10000;
  for (int i = 0; i < kQueries; ++i) {
    Interpretation m(alphabet.size());
    for (size_t j = 0; j < alphabet.size(); ++j) {
      m.Set(j, rng.Chance(0.5));
    }
    positive += manager.Evaluate(d, m, alphabet) ? 1 : 0;
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    kQueries;
  std::printf("%.3f us per ASK over %zu letters (%zu nodes); %zu of %d "
              "random interpretations were models\n",
              us, alphabet.size(), manager.NodeCount(d), positive,
              kQueries);
  report->AddTable("ask_latency",
                   {"us_per_ask", "letters", "nodes", "positive", "queries"});
  report->AddRow("ask_latency",
                 {us, alphabet.size(), manager.NodeCount(d), positive,
                  kQueries});
}

void BM_BddFromFormula(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Vocabulary vocabulary;
  std::vector<Var> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(vocabulary.Intern("x" + std::to_string(i)));
  }
  Rng rng(8);
  const Formula f =
      RandomClauses(vars, static_cast<size_t>(n * 2.0), 3, &rng);
  for (auto _ : state) {
    BddManager manager(vars);
    benchmark::DoNotOptimize(manager.FromFormula(f));
  }
}
BENCHMARK(BM_BddFromFormula)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);

void BM_BddAsk(benchmark::State& state) {
  Vocabulary vocabulary;
  const Theorem36Family family(3, &vocabulary);
  const Alphabet alphabet = family.FullAlphabet();
  BddManager manager(alphabet.vars());
  const auto d = manager.FromFormula(
      Formula::And(family.t.AsFormula(), family.p));
  Rng rng(9);
  Interpretation m(alphabet.size());
  for (auto _ : state) {
    for (size_t j = 0; j < alphabet.size(); ++j) {
      m.Set(j, rng.Chance(0.5));
    }
    benchmark::DoNotOptimize(manager.Evaluate(d, m, alphabet));
  }
}
BENCHMARK(BM_BddAsk)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace revise

int main(int argc, char** argv) {
  revise::bench::JsonReporter reporter("bench_section7_datastructures",
                                       "BENCH_section7_datastructures.json",
                                       &argc, argv);
  revise::MeasureHardFamilyBddSizes(&reporter.report());
  revise::CrossCheckCompactProjection(&reporter.report());
  revise::MeasureAskLatency(&reporter.report());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return reporter.WriteIfRequested() ? 0 : 1;
}
